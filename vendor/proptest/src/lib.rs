#![forbid(unsafe_code)]
//! A minimal, offline, API-compatible subset of the `proptest` crate.
//!
//! This workspace builds in hermetic environments with no registry access;
//! the property tests run against this vendored shim instead of upstream
//! `proptest`. The surface mirrors what the repo's tests use:
//!
//! - the [`proptest!`] macro with `name: Type` and `pat in strategy`
//!   parameters and an optional `#![proptest_config(..)]` header,
//! - [`Strategy`] with `prop_map` / `boxed`, [`Just`], integer-range and
//!   tuple strategies, string-literal "regex" strategies over a small
//!   pattern language (char classes + `{m,n}` repetition + `\PC`),
//! - [`collection::vec`], [`option::of`], [`sample::Index`],
//!   [`any`] for the primitive types the tests draw,
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   [`prop_oneof!`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test SplitMix64 stream (seeded by the test's module path), there is
//! no shrinking, and failed assertions panic immediately with the failing
//! values in the message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Run configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded stream.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Stable FNV-1a seed for a test, derived from its full path.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A value generator (subset of upstream `Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> BoxedStrategy<V> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always-this-value strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// From pre-boxed alternatives (at least one).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Union<V> {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (((rng.next_u64() as u128 * span) >> 64) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (((rng.next_u64() as u128 * span) >> 64) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

/// Types with a canonical uniform strategy ([`any`]).
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! array_arbitrary {
    ($($n:literal),*) => {$(
        impl Arbitrary for [u8; $n] {
            fn arbitrary(rng: &mut TestRng) -> [u8; $n] {
                let mut out = [0u8; $n];
                for chunk in out.chunks_mut(8) {
                    let v = rng.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&v[..chunk.len()]);
                }
                out
            }
        }
    )*};
}

array_arbitrary!(4, 8, 16, 20, 32);

/// Strategy for any [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vec of `element` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> VecStrategy<S> {
            VecStrategy {
                element: self.element.clone(),
                size: self.size.clone(),
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Option strategies (subset of `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Some`/`None` with equal probability.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Sampling helpers (subset of `proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An arbitrary index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a concrete length (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

// --- String-literal "regex" strategies -----------------------------------

/// One atom of the mini pattern language.
enum PatItem {
    /// A literal character.
    Literal(char),
    /// A character class with repetition bounds.
    Class {
        set: Vec<char>,
        min: usize,
        max: usize,
    },
}

/// Printable-character pool backing `\PC` (ASCII printable, Latin-1
/// letters, and a few multi-byte code points to exercise UTF-8 paths).
fn printable_pool() -> Vec<char> {
    let mut set: Vec<char> = (0x20u32..0x7f).filter_map(char::from_u32).collect();
    set.extend((0xe0u32..=0xff).filter_map(char::from_u32));
    set.extend(['€', 'π', '中', '文', '✓']);
    set
}

/// Parse `[...]` (after the opening bracket) into a char set.
fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        match c {
            ']' => {
                if let Some(p) = pending {
                    set.push(p);
                }
                return set;
            }
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                if let Some(p) = pending.replace(escaped) {
                    set.push(p);
                }
            }
            '-' if pending.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let lo = pending.take().expect("checked above");
                let hi = chars.next().expect("peeked above");
                let (lo, hi) = (lo as u32, hi as u32);
                assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                set.extend((lo..=hi).filter_map(char::from_u32));
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    set.push(p);
                }
            }
        }
    }
}

/// Parse optional `{m,n}` repetition following an atom.
fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<(usize, usize)> {
    if chars.peek() != Some(&'{') {
        return None;
    }
    chars.next();
    let mut body = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (m, n) = body
                .split_once(',')
                .expect("pattern repetition needs {m,n}");
            return Some((
                m.trim().parse().expect("bad repetition lower bound"),
                n.trim().parse().expect("bad repetition upper bound"),
            ));
        }
        body.push(c);
    }
    panic!("unterminated repetition");
}

fn parse_pattern(pattern: &str) -> Vec<PatItem> {
    let mut chars = pattern.chars().peekable();
    let mut items = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Some(parse_class(&mut chars, pattern)),
            '\\' => match chars.next() {
                Some('P') => {
                    // `\PC`: any printable (non-control) character.
                    assert_eq!(chars.next(), Some('C'), "only \\PC is supported");
                    Some(printable_pool())
                }
                Some(escaped) => {
                    items.push(PatItem::Literal(escaped));
                    None
                }
                None => panic!("dangling escape in pattern {pattern:?}"),
            },
            other => {
                items.push(PatItem::Literal(other));
                None
            }
        };
        if let Some(set) = atom {
            assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
            let (min, max) = parse_repeat(&mut chars).unwrap_or((1, 1));
            items.push(PatItem::Class { set, min, max });
        }
    }
    items
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for item in parse_pattern(self) {
            match item {
                PatItem::Literal(c) => out.push(c),
                PatItem::Class { set, min, max } => {
                    let count = min + rng.below((max - min + 1) as u64) as usize;
                    for _ in 0..count {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

// --- Macros ----------------------------------------------------------------

/// The test-defining macro (subset of upstream `proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($params:tt)* ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed =
                $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                $crate::__proptest_bind! { __rng; $($params)* }
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $p:pat in $s:expr) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
    };
    ($rng:ident; $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $n:ident : $t:ty) => {
        let $n: $t = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident; $n:ident : $t:ty, $($rest:tt)*) => {
        let $n: $t = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
}

/// Assertion macros: panic immediately (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_language_generates_matching_strings() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[A-Za-z0-9]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));

            let s = Strategy::generate(&"CN=[a-z]{1,4}", &mut rng);
            assert!(s.starts_with("CN="));

            let s = Strategy::generate(&"[a-z0-9.-]{1,32}", &mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-'));

            let s = Strategy::generate(&"\\PC{0,64}", &mut rng);
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn escaped_backslash_class() {
        let mut rng = TestRng::new(2);
        let mut saw_backslash = false;
        for _ in 0..500 {
            let s = Strategy::generate(&"[a\\\\-]{1,8}", &mut rng);
            assert!(s.chars().all(|c| c == 'a' || c == '\\' || c == '-'));
            saw_backslash |= s.contains('\\');
        }
        assert!(saw_backslash);
    }

    proptest! {
        #[test]
        fn macro_with_typed_params(value: u64, flag: bool) {
            let _ = (value, flag);
        }

        #[test]
        fn macro_with_strategies(
            x in 0u64..100,
            v in crate::collection::vec(any::<u8>(), 0..4),
            o in crate::option::of(0u64..8),
            idx in any::<crate::sample::Index>(),
        ) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 4);
            if let Some(inner) = o {
                prop_assert!(inner < 8);
            }
            prop_assert!(idx.index(10) < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn configured_case_count(seed in 0u64..1000) {
            let _ = seed;
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let name = prop_oneof![Just("A"), Just("B")];
        let strat = (name.clone(), name).prop_map(|(a, b)| format!("{a}{b}"));
        let mut rng = TestRng::new(3);
        for _ in 0..50 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(["AA", "AB", "BA", "BB"].contains(&s.as_str()));
        }
    }
}
