#![forbid(unsafe_code)]
//! A minimal, offline, API-compatible subset of the `criterion` crate.
//!
//! This workspace builds in hermetic environments with no registry access;
//! the `harness = false` bench targets compile against this vendored shim.
//! It provides the surface the repo's benches use — [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `throughput` /
//! `bench_function` / `bench_with_input` / `finish`, [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: one warm-up call, then a timed
//! loop sized to roughly 100 ms (capped by the group's sample size), and
//! a single mean-per-iteration line on stdout. There are no statistics,
//! plots, or saved baselines — the numbers are indicative, not
//! publication-grade; use the dedicated `--bin` emitters for recorded
//! measurements.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, e.g. `parse/4096`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (the group supplies the function name).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    /// Upper bound on timed iterations (derived from the sample size).
    max_iters: u64,
    /// Filled in by [`Bencher::iter`]: (total elapsed, iterations).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `f`, first warming up with one untimed call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std_black_box(f());
        // Size the timed loop to ~100 ms using one measured call.
        let probe_start = Instant::now();
        std_black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(100);
        let iters = (target.as_nanos() / probe.as_nanos()).clamp(1, self.max_iters as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one(
    full_id: &str,
    max_iters: u64,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher {
        max_iters,
        result: None,
    };
    f(&mut bencher);
    let Some((elapsed, iters)) = bencher.result else {
        println!("{full_id:<48} (no Bencher::iter call)");
        return;
    };
    let mean = elapsed / iters.max(1) as u32;
    let mut line = format!(
        "{full_id:<48} mean {:>12}  ({iters} iters)",
        format_duration(mean)
    );
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 / mean.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.0} elem/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Cap timed iterations for each benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Report throughput alongside mean time.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        run_one(&full_id, self.sample_size.max(1) * 10, self.throughput, f);
        self
    }

    /// Run one benchmark that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (upstream finalizes reports here; the shim prints live).
    pub fn finish(self) {}
}

/// The bench driver (subset of upstream `Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&id.to_string(), 1000, None, f);
        self
    }
}

/// Bundle bench functions under one callable group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); the shim
            // runs every group unconditionally and ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| {
            b.iter(|| (0u64..4).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        group.finish();
    }

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher {
            max_iters: 50,
            result: None,
        };
        b.iter(|| black_box(1 + 1));
        let (elapsed, iters) = b.result.expect("iter must record");
        assert!((1..=50).contains(&iters));
        assert!(elapsed.as_nanos() > 0);
    }
}
