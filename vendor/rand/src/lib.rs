#![forbid(unsafe_code)]
//! A minimal, offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in hermetic environments with no registry access,
//! so the handful of `rand` calls the workload generator makes are served
//! by this vendored shim instead of the real crate. Only the surface the
//! repo uses is provided: [`Rng::gen_bool`], [`Rng::gen_range`] over
//! half-open and inclusive integer ranges, [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`].
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 (Steele, Lea &
//! Flood 2014) — deterministic, well mixed, and adequate for simulation
//! workloads. The *stream* differs from upstream `rand`; all calibrated
//! population counts in this repo are structural (derived from explicit
//! counts, not draws), so only loose-tolerance rates depend on it.

use std::ops::{Range, RangeInclusive};

/// Sample a value of `T` from a range, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Core entropy source: everything is derived from 64-bit draws.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Integer types that [`SampleRange`] knows how to draw uniformly.
///
/// The blanket `Range<T>`/`RangeInclusive<T>` impls below hang off this
/// trait (one generic impl each, like upstream) so type inference can
/// unify an unsuffixed literal range with the expected output type.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Draw uniformly from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire multiply-shift: unbiased enough for simulation.
                (lo as i128 + ((rng.next_u64() as u128 * span) >> 64) as i128) as $t
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + ((rng.next_u64() as u128 * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// The user-facing convenience trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform draw from an integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 underneath; the
    /// upstream `StdRng` stream is *not* reproduced).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(4..=365);
            assert!((4..=365).contains(&v));
            let w: usize = rng.gen_range(0..13);
            assert!(w < 13);
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!(v < 100);
    }
}
