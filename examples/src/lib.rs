#![forbid(unsafe_code)]
//! Shared helpers for the example binaries.
//!
//! Run the examples with, e.g.:
//! ```sh
//! cargo run -p certchain-examples --example quickstart
//! ```

use certchain_chainlab::{Analysis, CrossSignRegistry, Pipeline};
use certchain_workload::{CampusProfile, CampusTrace};

/// Generate a small campus trace and analyze it — the setup most examples
/// start from.
pub fn quick_lab() -> (CampusTrace, Analysis) {
    let trace = CampusTrace::generate(CampusProfile::quick());
    let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();
    let pipeline = Pipeline::new(
        &trace.eco.trust,
        &trace.ct_index,
        CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
    );
    let analysis = pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights));
    (trace, analysis)
}
