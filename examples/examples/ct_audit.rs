//! CT audit: exercise the Certificate Transparency substrate directly —
//! submit certificates, obtain SCTs, verify inclusion and consistency
//! proofs, and run the §4.2 compliance check for a non-public leaf
//! anchored to a public root.
//!
//! ```sh
//! cargo run -p certchain-examples --example ct_audit
//! ```

use certchain_asn1::Asn1Time;
use certchain_cryptosim::sha256;
use certchain_ctlog::merkle::{leaf_hash, verify_consistency, verify_inclusion};
use certchain_ctlog::{CtLog, DomainIndex};
use certchain_workload::pki::{ca_validity, CaHandle, Ecosystem};
use certchain_x509::{DistinguishedName, Validity};
use std::sync::Arc;

fn main() {
    let mut eco = Ecosystem::bootstrap(7);
    let t0 = Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).unwrap();

    // Submit a handful of public leaves.
    let mut log = CtLog::new(7, "audit-log");
    let mut leaves = Vec::new();
    for i in 0..10 {
        let leaf = eco.issue_public_leaf(i % 3, &format!("site{i}.example.org"), t0, 90);
        log.submit(Arc::clone(&leaf), t0.plus_days(i as u64));
        leaves.push(leaf);
    }
    let head_old = log.tree_head(t0.plus_days(10));
    println!(
        "tree head @ {} entries: {}",
        head_old.tree_size,
        sha256::hex(&head_old.root)
    );

    // Inclusion proof for one leaf.
    let target = &leaves[4];
    let (index, proof) = log.prove_inclusion(&target.fingerprint()).unwrap();
    let ok = verify_inclusion(
        &leaf_hash(target.der()),
        index,
        head_old.tree_size,
        &proof,
        &head_old.root,
    );
    println!(
        "inclusion proof for {} (index {index}, {} hashes): {}",
        target.subject,
        proof.len(),
        if ok { "VERIFIED" } else { "FAILED" }
    );

    // The log grows; prove append-only consistency.
    for i in 10..25 {
        let leaf = eco.issue_public_leaf(i % 3, &format!("site{i}.example.org"), t0, 90);
        log.submit(leaf, t0.plus_days(i as u64));
    }
    let head_new = log.tree_head(t0.plus_days(30));
    let cproof = log.prove_consistency(head_old.tree_size).unwrap();
    let consistent = verify_consistency(
        head_old.tree_size,
        &head_old.root,
        head_new.tree_size,
        &head_new.root,
        &cproof,
    );
    println!(
        "consistency {} → {} entries ({} hashes): {}",
        head_old.tree_size,
        head_new.tree_size,
        cproof.len(),
        if consistent { "VERIFIED" } else { "FAILED" }
    );

    // §4.2's compliance rule: a non-public leaf anchored to a public root
    // must be CT-logged.
    let public_ica = eco.public_cas[0].ica.clone();
    let serial = eco.next_serial();
    let org_ca = CaHandle::issued_by(
        &public_ica,
        eco.seed,
        "audit:org-ca",
        DistinguishedName::cn_o("Org Private CA", "Org"),
        ca_validity(),
        serial,
    );
    let serial = eco.next_serial();
    let anchored_leaf = org_ca.issue_leaf(
        "portal.org.example",
        Validity::days_from(t0, 365),
        serial,
        eco.seed,
    );
    let sct = log.submit(Arc::clone(&anchored_leaf), t0);
    println!(
        "\nanchored non-public leaf CT-logged: SCT verifies = {}",
        sct.verify(log.public_key())
    );
    let index = DomainIndex::build(&[&log]);
    println!(
        "crt.sh-style lookup for portal.org.example finds {} record(s); compliant = {}",
        index.records("portal.org.example").len(),
        index.contains_fingerprint(&anchored_leaf.fingerprint())
    );
}
