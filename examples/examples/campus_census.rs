//! Campus census: generate a synthetic campus trace, run the full analysis
//! pipeline over its Zeek-style logs, and print the §3.2.2 chain census
//! with establishment rates — the reproduction's core loop end-to-end.
//!
//! ```sh
//! cargo run -p certchain-examples --example campus_census
//! ```

use certchain_chainlab::ChainCategoryLabel;
use certchain_report::table::{num, pct};
use certchain_report::Table;

fn main() {
    println!("generating synthetic campus trace (quick profile)…");
    let (trace, analysis) = certchain_examples::quick_lab();
    println!(
        "  {} ssl.log records, {} distinct certificates, {} distinct chains\n",
        trace.ssl_records.len(),
        trace.x509_records.len(),
        analysis.chains.len()
    );

    let mut table = Table::new(
        "Chain census (per §3.2.2 categories)",
        &[
            "Category",
            "#. Chains",
            "Weighted conns",
            "Established",
            "No-SNI",
        ],
    );
    for (name, cat) in [
        ("Public-DB-only", ChainCategoryLabel::PublicOnly),
        ("Non-public-DB-only", ChainCategoryLabel::NonPublicOnly),
        ("Hybrid", ChainCategoryLabel::Hybrid),
        ("TLS interception", ChainCategoryLabel::Interception),
    ] {
        let chains = analysis.chains_in(cat).count();
        let usage = analysis.usage_of(|c| c.category == cat);
        table.row(&[
            name.to_string(),
            num(chains as f64, 0),
            num(usage.connections, 0),
            pct(usage.established_rate()),
            pct(usage.no_sni_rate()),
        ]);
    }
    println!("{}", table.render());

    println!(
        "interception entities identified via CT cross-reference: {}",
        analysis.interception_entities.len()
    );
    println!(
        "DGA cluster chains detected: {}",
        analysis.chains.iter().filter(|c| c.is_dga).count()
    );
    println!(
        "TLS 1.3 records skipped (no visible chain): {}",
        analysis.no_chain_records
    );
}
