//! Interception hunt: the paper's §3.2.1 middlebox-detection method on a
//! single connection — observe a leaf for a domain, cross-reference CT,
//! and call out the mismatch.
//!
//! ```sh
//! cargo run -p certchain-examples --example interception_hunt
//! ```

use certchain_chainlab::interception::{detect, InterceptionVerdict};
use certchain_chainlab::pipeline::issuer_entity;
use certchain_chainlab::ChainCategoryLabel;

fn main() {
    let (trace, analysis) = certchain_examples::quick_lab();

    // Walk the analyzed chains and show a few verdicts with their evidence.
    let mut shown = 0;
    for chain in analysis.chains_in(ChainCategoryLabel::Interception) {
        let Some(sni) = chain.snis.iter().next() else {
            continue;
        };
        let verdict = detect(&chain.certs, Some(sni), &trace.eco.trust, &trace.ct_index);
        if verdict != InterceptionVerdict::LikelyIntercepted {
            continue;
        }
        let leaf = &chain.certs[0];
        let recorded = trace
            .ct_index
            .recorded_issuers_overlapping(sni, leaf.validity);
        println!("domain: {sni}");
        println!("  observed issuer : {}", leaf.issuer);
        println!(
            "  CT-recorded     : {}",
            recorded
                .iter()
                .map(|dn| dn.to_rfc4514())
                .collect::<Vec<_>>()
                .join(" | ")
        );
        println!(
            "  verdict         : LIKELY INTERCEPTED by \"{}\"\n",
            issuer_entity(&leaf.issuer)
        );
        shown += 1;
        if shown == 5 {
            break;
        }
    }

    println!(
        "total interception entities identified: {} (the paper found 80)",
        analysis.interception_entities.len()
    );
    // The Appendix-B caveat: interception of origins absent from CT is
    // invisible to this method.
    let evaded = analysis
        .chains_in(ChainCategoryLabel::NonPublicOnly)
        .filter(|c| c.snis.iter().any(|s| s.starts_with("private-origin-")))
        .count();
    println!("undetectable (non-CT origin) interception chains misfiled as non-public: {evaded}");
}
