//! Quickstart: build a tiny PKI, deliver a misconfigured chain, and watch
//! two validation strategies disagree — the paper's §5/§6.1 finding in
//! thirty lines of API.
//!
//! ```sh
//! cargo run -p certchain-examples --example quickstart
//! ```

use certchain_asn1::Asn1Time;
use certchain_cryptosim::KeyPair;
use certchain_netsim::{validate_chain, ValidationPolicy};
use certchain_trust::TrustDb;
use certchain_x509::{CertificateBuilder, DistinguishedName, Serial, Validity};
use std::sync::Arc;

fn main() {
    // --- A minimal public PKI: root (trusted everywhere) + intermediate.
    let root_kp = KeyPair::derive(1, "quickstart:root");
    let root_dn = DistinguishedName::cn_o("Example Trust Root", "Example Trust LLC");
    let validity = Validity::days_from(Asn1Time::from_ymd_hms(2020, 1, 1, 0, 0, 0).unwrap(), 3650);
    let root = CertificateBuilder::new()
        .serial(Serial::from_u64(1))
        .issuer(root_dn.clone())
        .subject(root_dn.clone())
        .validity(validity)
        .ca(None)
        .sign(&root_kp)
        .into_arc();

    let ica_kp = KeyPair::derive(1, "quickstart:ica");
    let ica_dn = DistinguishedName::cn_o("Example Issuing CA", "Example Trust LLC");
    let ica = CertificateBuilder::new()
        .serial(Serial::from_u64(2))
        .issuer(root_dn)
        .subject(ica_dn.clone())
        .validity(validity)
        .public_key(ica_kp.public().clone())
        .ca(Some(0))
        .sign(&root_kp)
        .into_arc();

    let leaf_kp = KeyPair::derive(1, "quickstart:leaf");
    let leaf = CertificateBuilder::new()
        .serial(Serial::from_u64(3))
        .issuer(ica_dn)
        .subject(DistinguishedName::cn("www.example.org"))
        .validity(validity)
        .public_key(leaf_kp.public().clone())
        .leaf_for("www.example.org")
        .sign(&ica_kp)
        .into_arc();

    let mut trust = TrustDb::new();
    trust.add_root_everywhere(Arc::clone(&root));

    // --- The server misconfiguration the paper keeps finding: a perfectly
    // good chain with an unnecessary self-signed certificate appended.
    let junk_kp = KeyPair::derive(9, "quickstart:junk");
    let junk_dn = DistinguishedName::cn_o("tester", "HP Inc.");
    let junk = CertificateBuilder::new()
        .serial(Serial::from_u64(4))
        .issuer(junk_dn.clone())
        .subject(junk_dn)
        .validity(validity)
        .sign(&junk_kp)
        .into_arc();
    let delivered = vec![leaf, ica, junk];

    let at = Asn1Time::from_ymd_hms(2021, 6, 1, 0, 0, 0).unwrap();
    println!("delivered chain:");
    for (i, cert) in delivered.iter().enumerate() {
        println!("  [{i}] subject: {}", cert.subject);
        println!("      issuer:  {}", cert.issuer);
    }
    println!();
    for (name, policy) in [
        ("Chrome-like (path building)", ValidationPolicy::Browser),
        (
            "OpenSSL-like (strict presented)",
            ValidationPolicy::StrictPresented,
        ),
    ] {
        match validate_chain(policy, &delivered, &trust, at, Some("www.example.org")) {
            Ok(()) => println!("{name}: VALID"),
            Err(e) => println!("{name}: REJECTED ({e})"),
        }
    }
    println!("\nSame chain, two answers — exactly the inconsistency the paper warns about (§6.1).");
}
