//! The November-2024 retrospective (§5 + Appendix D): evolve the ecosystem
//! three years forward, scan every previously-flagged server with the
//! simulated `s_client`, and compare the two validation methods.
//!
//! ```sh
//! cargo run -p certchain-examples --example revisit_2024
//! ```

use certchain_scanner::revisit::revisit;
use certchain_scanner::{compare, scan_all};
use certchain_workload::evolve::RevisitPopulation;
use certchain_workload::pki::Ecosystem;
use certchain_workload::servers::hybrid;

fn main() {
    println!("bootstrapping PKI ecosystem and the 321 hybrid servers…");
    let mut eco = Ecosystem::bootstrap(20250901);
    let hybrid_servers = hybrid::build(&mut eco, 100_000);
    let refs: Vec<_> = hybrid_servers.iter().collect();

    println!("evolving to November 2024 and scanning…");
    let population = RevisitPopulation::generate(&mut eco, &refs);
    let results = scan_all(&population);
    println!(
        "  scanned {} chains from reachable servers\n",
        results.len()
    );

    // --- Table 5.
    let t5 = compare(&results);
    println!("Table 5 (issuer-subject vs key-signature):");
    println!(
        "  single-certificate chains : {} / {}",
        t5.is_single, t5.ks_single
    );
    println!(
        "  valid chains              : {} / {}",
        t5.is_valid, t5.ks_valid
    );
    println!(
        "  broken chains             : {} / {}",
        t5.is_broken, t5.ks_broken
    );
    println!("  unrecognized keys         : - / {}", t5.ks_unrecognized);
    println!(
        "  ASN.1-error disagreements : {} (the paper found exactly one)\n",
        t5.parse_error_disagreements
    );

    // --- §5 report.
    let report = revisit(&population, &eco.trust);
    let h = &report.hybrid;
    println!("§5 hybrid revisit: {}/321 reachable", h.reachable);
    println!(
        "  {} now public-DB ({} via Let's Encrypt), {} now non-public, {} still hybrid",
        h.now_public, h.now_lets_encrypt, h.now_nonpub, h.still_hybrid
    );
    let n = &report.nonpub;
    println!(
        "§5 non-public revisit: {}/{} servers now deliver multi-cert chains ({:.2}% complete)",
        n.now_multi,
        n.servers,
        n.complete_share * 100.0
    );
    println!("\nChrome vs OpenSSL on the complete+unnecessary chains:");
    for case in &report.divergence {
        println!(
            "  {} → Chrome: {} | OpenSSL-strict: {}",
            case.domain,
            if case.chrome_valid { "VALID" } else { "REJECT" },
            if case.openssl_valid {
                "VALID"
            } else {
                "REJECT"
            }
        );
    }
}
