//! Zeek round trip: write the synthetic trace to real on-disk `ssl.log` /
//! `x509.log` files in Zeek's TSV format, read them back, and run the
//! analysis over the *files* — demonstrating that the pipeline consumes
//! exactly what a real Zeek deployment produces.
//!
//! ```sh
//! cargo run -p certchain-examples --example zeek_roundtrip
//! ```

use certchain_chainlab::{ChainCategoryLabel, CrossSignRegistry, Pipeline};
use certchain_netsim::zeek::reader::{read_ssl_log, read_x509_log};
use certchain_netsim::zeek::tsv::{write_ssl_log, write_x509_log};
use certchain_workload::{CampusProfile, CampusTrace};

fn main() -> std::io::Result<()> {
    let trace = CampusTrace::generate(CampusProfile::quick());
    let open = certchain_netsim::SimClock::campus_window_start().now();

    let dir = std::env::temp_dir().join("certchain-zeek-logs");
    std::fs::create_dir_all(&dir)?;
    let ssl_path = dir.join("ssl.log");
    let x509_path = dir.join("x509.log");

    // Write.
    let mut ssl_file = std::io::BufWriter::new(std::fs::File::create(&ssl_path)?);
    write_ssl_log(&mut ssl_file, &trace.ssl_records, open)?;
    let mut x509_file = std::io::BufWriter::new(std::fs::File::create(&x509_path)?);
    write_x509_log(&mut x509_file, &trace.x509_records, open)?;
    drop((ssl_file, x509_file));
    println!(
        "wrote {} ({} records) and {} ({} records)",
        ssl_path.display(),
        trace.ssl_records.len(),
        x509_path.display(),
        trace.x509_records.len()
    );

    // Read back and analyze the files, exactly as one would real logs.
    let ssl = read_ssl_log(&std::fs::read_to_string(&ssl_path)?).expect("ssl.log parses");
    let x509 = read_x509_log(&std::fs::read_to_string(&x509_path)?).expect("x509.log parses");
    println!(
        "read back {} ssl records, {} x509 records",
        ssl.len(),
        x509.len()
    );

    let pipeline = Pipeline::new(
        &trace.eco.trust,
        &trace.ct_index,
        CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
    );
    let analysis = pipeline.analyze(&ssl, &x509, None);
    println!(
        "analysis over the files: {} chains, {} hybrid, {} interception entities",
        analysis.chains.len(),
        analysis.chains_in(ChainCategoryLabel::Hybrid).count(),
        analysis.interception_entities.len()
    );
    Ok(())
}
