//! Integration: the campus trace's hybrid servers feed the 2024 evolution,
//! the scanner consumes the evolved population, and the §5 / Table 5
//! numbers come out — across four crates.

use certchain_integration::shared_lab;
use certchain_scanner::revisit::{matches_paper, revisit};
use certchain_scanner::{compare, scan_all};
use certchain_workload::evolve::RevisitPopulation;
use certchain_workload::pki::Ecosystem;
use certchain_workload::trace::ChainCategory;

fn population() -> (Ecosystem, RevisitPopulation) {
    let (trace, _) = shared_lab();
    // Re-bootstrap an ecosystem with the same seed (the shared lab's eco is
    // behind a shared reference). Serial numbers are globally sequential,
    // so the public population must be regenerated first, exactly as
    // `CampusTrace::generate` does — then determinism guarantees the
    // hybrid servers come out byte-identical.
    let mut eco = Ecosystem::bootstrap(trace.profile.seed);
    let public_weight = 1.0; // weight does not influence certificates
    let _public = certchain_workload::servers::public::build(
        &mut eco,
        0,
        trace.profile.public_chains,
        public_weight,
    );
    let hybrid = certchain_workload::servers::hybrid::build(&mut eco, 100_000);
    // The regenerated hybrid servers must equal the trace's (determinism).
    let trace_hybrid: Vec<_> = trace
        .servers
        .iter()
        .filter(|s| matches!(s.category, ChainCategory::Hybrid(_)))
        .collect();
    assert_eq!(hybrid.len(), trace_hybrid.len());
    for (a, b) in hybrid.iter().zip(&trace_hybrid) {
        let fa: Vec<_> = a.endpoint.chain.iter().map(|c| c.fingerprint()).collect();
        let fb: Vec<_> = b.endpoint.chain.iter().map(|c| c.fingerprint()).collect();
        assert_eq!(fa, fb, "hybrid regeneration must be deterministic");
    }
    let refs: Vec<_> = hybrid.iter().collect();
    let pop = RevisitPopulation::generate(&mut eco, &refs);
    (eco, pop)
}

#[test]
fn section5_and_table5_from_campus_hybrids() {
    let (eco, pop) = population();
    let report = revisit(&pop, &eco.trust);
    matches_paper(&report).unwrap();

    let results = scan_all(&pop);
    let t5 = compare(&results);
    assert_eq!(t5.total, 12_676);
    assert_eq!(
        (t5.is_single, t5.is_valid, t5.is_broken),
        (2_568, 9_825, 283)
    );
    assert_eq!(
        (t5.ks_single, t5.ks_valid, t5.ks_broken, t5.ks_unrecognized),
        (2_568, 9_821, 284, 3)
    );
    assert_eq!(t5.parse_error_disagreements, 1);
    assert_eq!(t5.position_disagreements, 0);
}

#[test]
fn divergence_cases_match_section5() {
    let (eco, pop) = population();
    let report = revisit(&pop, &eco.trust);
    assert_eq!(report.divergence.len(), 3);
    assert!(report
        .divergence
        .iter()
        .all(|c| c.chrome_valid && !c.openssl_valid));
}

#[test]
fn unreachable_servers_stay_dark() {
    let (_eco, pop) = population();
    let unreachable = pop.servers.iter().filter(|s| !s.reachable()).count();
    assert_eq!(unreachable, 51);
    let scanned = scan_all(&pop).len();
    assert_eq!(scanned + unreachable, pop.servers.len());
}
