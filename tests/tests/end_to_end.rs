//! End-to-end integration: trace generation → Zeek TSV serialization →
//! re-parse → analysis, asserting the pipeline behaves identically over
//! serialized logs and in-memory records.

use certchain_chainlab::{ChainCategoryLabel, CrossSignRegistry, Pipeline};
use certchain_integration::shared_lab;
use certchain_netsim::zeek::reader::{read_ssl_log, read_x509_log};
use certchain_netsim::zeek::tsv::{write_ssl_log, write_x509_log};
use certchain_netsim::SimClock;

#[test]
fn zeek_serialization_round_trips_exactly() {
    let (trace, _) = shared_lab();
    let open = SimClock::campus_window_start().now();

    let mut ssl_buf = Vec::new();
    write_ssl_log(&mut ssl_buf, &trace.ssl_records, open).unwrap();
    let parsed = read_ssl_log(std::str::from_utf8(&ssl_buf).unwrap()).unwrap();
    assert_eq!(parsed, trace.ssl_records);

    let mut x509_buf = Vec::new();
    write_x509_log(&mut x509_buf, &trace.x509_records, open).unwrap();
    let parsed = read_x509_log(std::str::from_utf8(&x509_buf).unwrap()).unwrap();
    assert_eq!(parsed, trace.x509_records);
}

#[test]
fn analysis_identical_over_serialized_logs() {
    let (trace, direct) = shared_lab();
    let open = SimClock::campus_window_start().now();

    let mut ssl_buf = Vec::new();
    write_ssl_log(&mut ssl_buf, &trace.ssl_records, open).unwrap();
    let ssl = read_ssl_log(std::str::from_utf8(&ssl_buf).unwrap()).unwrap();
    let mut x509_buf = Vec::new();
    write_x509_log(&mut x509_buf, &trace.x509_records, open).unwrap();
    let x509 = read_x509_log(std::str::from_utf8(&x509_buf).unwrap()).unwrap();

    let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();
    let pipeline = Pipeline::new(
        &trace.eco.trust,
        &trace.ct_index,
        CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
    );
    let reparsed = pipeline.analyze(&ssl, &x509, Some(&weights));

    assert_eq!(reparsed.chains.len(), direct.chains.len());
    assert_eq!(reparsed.interception_entities, direct.interception_entities);
    for cat in [
        ChainCategoryLabel::PublicOnly,
        ChainCategoryLabel::NonPublicOnly,
        ChainCategoryLabel::Hybrid,
        ChainCategoryLabel::Interception,
    ] {
        assert_eq!(
            reparsed.chains_in(cat).count(),
            direct.chains_in(cat).count(),
            "category {cat:?}"
        );
    }
    // Per-chain categorization agrees chain by chain.
    for chain in &direct.chains {
        let idx = reparsed.index[&chain.key];
        assert_eq!(reparsed.chains[idx].category, chain.category);
        assert_eq!(reparsed.chains[idx].hybrid_category, chain.hybrid_category);
    }
}

#[test]
fn headline_numbers_survive_the_whole_stack() {
    let (trace, analysis) = shared_lab();
    // Table 2 / §3.2.2 shape.
    assert_eq!(analysis.chains_in(ChainCategoryLabel::Hybrid).count(), 321);
    // §4.2 CT compliance.
    let logged: Vec<bool> = analysis
        .chains
        .iter()
        .filter_map(|c| c.leaf_ct_logged)
        .collect();
    assert_eq!(logged.len(), 26);
    assert!(logged.iter().all(|&l| l));
    // Figure 6: 56.74% of no-path chains at ratio ≥ 0.5.
    let no_path: Vec<f64> = analysis
        .chains
        .iter()
        .filter(|c| {
            matches!(
                c.hybrid_category,
                Some(certchain_chainlab::HybridCategory::NoPath(_))
            )
        })
        .map(|c| c.path.mismatch_ratio)
        .collect();
    assert_eq!(no_path.len(), 215);
    let ge_half = no_path.iter().filter(|&&r| r >= 0.5).count();
    assert_eq!(ge_half, 122, "= 56.74% of 215");
    // Weighted connection totals track Table 2.
    let hybrid_conns: f64 = analysis
        .usage_of(|c| c.category == ChainCategoryLabel::Hybrid)
        .connections;
    assert!((hybrid_conns - trace.targets.hybrid_connections as f64).abs() < 100.0);
}

#[test]
fn distinct_certificate_count_is_consistent() {
    let (trace, analysis) = shared_lab();
    // Every distinct certificate the analysis saw is in x509.log, and the
    // trace never logs a certificate twice.
    assert!(analysis.distinct_certificates <= trace.x509_records.len());
    let mut fps: Vec<_> = trace.x509_records.iter().map(|r| r.fingerprint).collect();
    fps.sort();
    fps.dedup();
    assert_eq!(fps.len(), trace.x509_records.len());
}
