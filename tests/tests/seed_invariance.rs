//! Seed invariance: the structural invariants the paper reports must hold
//! for *any* ecosystem seed, not just the default — the full-fidelity
//! populations are constructed, not sampled.

use certchain_workload::pki::Ecosystem;
use certchain_workload::servers::hybrid;
use certchain_workload::trace::{ChainCategory, HybridKind};

#[test]
fn hybrid_taxonomy_holds_across_seeds() {
    for seed in [1u64, 777, 0xDEAD_BEEF] {
        let mut eco = Ecosystem::bootstrap(seed);
        let servers = hybrid::build(&mut eco, 0);
        assert_eq!(servers.len(), 321, "seed {seed}");

        let mut complete = 0;
        let mut scalyr = 0;
        let mut contains = 0;
        let mut no_path = 0;
        let mut ge_half = 0;
        for s in &servers {
            let ChainCategory::Hybrid(kind) = s.category else {
                panic!("non-hybrid server from the hybrid builder");
            };
            match kind {
                HybridKind::CompleteAnchored { .. } => complete += 1,
                HybridKind::CompletePubToPrv => scalyr += 1,
                HybridKind::ContainsPath(_) => contains += 1,
                HybridKind::NoPath(_) => {
                    no_path += 1;
                    // Mismatch ratio from raw adjacency (generator-side).
                    let chain = &s.endpoint.chain;
                    let pairs = chain.len() - 1;
                    let mismatches = chain
                        .windows(2)
                        .filter(|w| w[0].issuer != w[1].subject)
                        .count();
                    if mismatches as f64 / pairs as f64 >= 0.5 {
                        ge_half += 1;
                    }
                }
            }
        }
        assert_eq!(
            (complete, scalyr, contains, no_path),
            (26, 10, 70, 215),
            "seed {seed}"
        );
        assert_eq!(ge_half, 122, "Figure 6 split must be exact for seed {seed}");
    }
}

#[test]
fn different_seeds_produce_different_certificates() {
    let mut a = Ecosystem::bootstrap(101);
    let mut b = Ecosystem::bootstrap(102);
    let sa = hybrid::build(&mut a, 0);
    let sb = hybrid::build(&mut b, 0);
    let fa = sa[0].endpoint.chain[0].fingerprint();
    let fb = sb[0].endpoint.chain[0].fingerprint();
    assert_ne!(fa, fb, "seeds must actually vary the key material");
}
