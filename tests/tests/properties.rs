//! Cross-crate property tests: invariants that must hold for arbitrary
//! chains, not just generated populations.

use certchain_asn1::Asn1Time;
use certchain_chainlab::matchpath::{analyze, path_verdict_leaf_agnostic, PathVerdict};
use certchain_chainlab::{CertRecord, CrossSignRegistry};
use certchain_x509::{DistinguishedName, Fingerprint, Validity};
use proptest::prelude::*;

/// Arbitrary chains over a small DN alphabet so matches actually occur.
fn arb_chain() -> impl Strategy<Value = Vec<CertRecord>> {
    let name = prop_oneof![
        Just("A"),
        Just("B"),
        Just("C"),
        Just("D"),
        Just("E"),
        Just("leaf.org")
    ];
    proptest::collection::vec(
        (
            name.clone(),
            name,
            proptest::option::of(any::<bool>()),
            any::<u8>(),
        ),
        1..8,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (issuer, subject, ca, fp))| CertRecord {
                fingerprint: Fingerprint([fp.wrapping_add(i as u8); 32]),
                issuer: DistinguishedName::cn(issuer),
                subject: DistinguishedName::cn(subject),
                validity: Validity::days_from(Asn1Time::from_unix(0), 30),
                bc_ca: ca,
                san_dns: vec![],
            })
            .collect()
    })
}

proptest! {
    /// Mismatch ratio is always in [0, 1] and equals
    /// mismatches / (len - 1).
    #[test]
    fn mismatch_ratio_bounds(chain in arb_chain()) {
        let report = analyze(&chain, &CrossSignRegistry::new());
        prop_assert!(report.mismatch_ratio >= 0.0 && report.mismatch_ratio <= 1.0);
        if chain.len() > 1 {
            let expected =
                report.mismatch_positions.len() as f64 / (chain.len() - 1) as f64;
            prop_assert!((report.mismatch_ratio - expected).abs() < 1e-12);
        } else {
            prop_assert_eq!(report.mismatch_ratio, 0.0);
        }
    }

    /// Runs never overlap, are sorted, and cover exactly the matching pairs.
    #[test]
    fn runs_partition_matching_pairs(chain in arb_chain()) {
        let report = analyze(&chain, &CrossSignRegistry::new());
        let mut covered = vec![false; report.pair_matches.len()];
        let mut last_end = 0usize;
        for run in &report.runs {
            prop_assert!(run.start <= run.end);
            prop_assert!(run.end < chain.len());
            prop_assert!(run.start >= last_end, "runs are ordered and disjoint");
            last_end = run.end;
            for slot in &mut covered[run.start..run.end] {
                *slot = true;
            }
        }
        for (i, (&m, &c)) in report.pair_matches.iter().zip(&covered).enumerate() {
            prop_assert_eq!(m, c, "pair {} coverage", i);
        }
    }

    /// IsComplete implies every pair matches; NoComplete implies no run
    /// starts at a leaf candidate.
    #[test]
    fn verdict_consistency(chain in arb_chain()) {
        let report = analyze(&chain, &CrossSignRegistry::new());
        match report.verdict {
            PathVerdict::IsComplete => {
                prop_assert!(report.pair_matches.iter().all(|&m| m));
                prop_assert!(chain[0].is_leaf_candidate());
            }
            PathVerdict::NoComplete => {
                prop_assert!(report.runs.iter().all(|r| !r.starts_at_leaf));
            }
            PathVerdict::ContainsComplete => {
                prop_assert!(report.runs.iter().any(|r| r.starts_at_leaf));
            }
        }
        // The leaf-agnostic verdict is never *stricter* than the leaf-aware
        // one about the existence of matching structure.
        let agnostic = path_verdict_leaf_agnostic(&report);
        if report.verdict != PathVerdict::NoComplete {
            prop_assert_ne!(agnostic, PathVerdict::NoComplete);
        }
    }

    /// Reversing a fully-matched chain cannot create mismatches out of
    /// thin air: the pair count is stable under reversal.
    #[test]
    fn pair_count_stable_under_reversal(chain in arb_chain()) {
        let report = analyze(&chain, &CrossSignRegistry::new());
        let mut reversed = chain.clone();
        reversed.reverse();
        let rev_report = analyze(&reversed, &CrossSignRegistry::new());
        prop_assert_eq!(report.pair_matches.len(), rev_report.pair_matches.len());
    }
}
