//! Cross-crate integration tests live in `tests/tests/`; this helper crate
//! hosts the shared fixtures.

use certchain_chainlab::{Analysis, CrossSignRegistry, Pipeline};
use certchain_workload::{CampusProfile, CampusTrace};
use std::sync::OnceLock;

/// A shared quick-profile trace + analysis, generated once per test binary.
pub fn shared_lab() -> &'static (CampusTrace, Analysis) {
    static CELL: OnceLock<(CampusTrace, Analysis)> = OnceLock::new();
    CELL.get_or_init(|| {
        let trace = CampusTrace::generate(CampusProfile::quick());
        let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();
        let pipeline = Pipeline::new(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
        );
        let analysis = pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights));
        (trace, analysis)
    })
}
