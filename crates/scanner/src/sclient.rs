//! The `s_client`-style scan.

use certchain_workload::evolve::{RevisitPopulation, RevisitServer};
use certchain_x509::pem;

/// One certificate as retrieved over the wire.
#[derive(Debug, Clone)]
pub struct ScannedCert {
    /// The DER exactly as the server sent it (possibly malformed).
    pub der: Vec<u8>,
    /// Issuer DN string as a field-level parser (Zeek-like) reports it.
    pub issuer: String,
    /// Subject DN string.
    pub subject: String,
}

/// One server's scan result.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// The domain dialed.
    pub domain: String,
    /// The chain in delivery order.
    pub chain: Vec<ScannedCert>,
    /// `-showcerts` output: PEM blocks in delivery order.
    pub pem: String,
    /// Index of the server within the revisit population.
    pub server_idx: usize,
}

/// Scan one server (None when unreachable).
pub fn scan(server: &RevisitServer, server_idx: usize) -> Option<ScanResult> {
    if !server.reachable() {
        return None;
    }
    let domain = server
        .endpoint
        .domain
        .clone()
        .unwrap_or_else(|| server.endpoint.ip.to_string());
    let mut chain = Vec::with_capacity(server.endpoint.chain.len());
    let mut pem_out = String::new();
    for (i, cert) in server.endpoint.chain.iter().enumerate() {
        // The wire DER honours any malformed-byte override the server
        // carries (the Table 5 ASN.1-error chain); the field view is what
        // a tolerant parser extracted.
        let der = match &server.wire_der_override {
            Some(ders) => ders[i].clone(),
            None => cert.der().to_vec(),
        };
        pem_out.push_str(&pem::encode("CERTIFICATE", &der));
        chain.push(ScannedCert {
            der,
            issuer: cert.issuer.to_rfc4514(),
            subject: cert.subject.to_rfc4514(),
        });
    }
    Some(ScanResult {
        domain,
        chain,
        pem: pem_out,
        server_idx,
    })
}

/// Scan the whole population; unreachable servers yield nothing.
pub fn scan_all(population: &RevisitPopulation) -> Vec<ScanResult> {
    population
        .servers
        .iter()
        .enumerate()
        .filter_map(|(idx, s)| scan(s, idx))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_workload::pki::Ecosystem;
    use certchain_workload::servers::hybrid;
    use certchain_x509::Certificate;

    fn population() -> RevisitPopulation {
        let mut eco = Ecosystem::bootstrap(123);
        let hybrid_servers = hybrid::build(&mut eco, 0);
        let refs: Vec<_> = hybrid_servers.iter().collect();
        RevisitPopulation::generate(&mut eco, &refs)
    }

    #[test]
    fn scan_skips_unreachable() {
        let pop = population();
        let results = scan_all(&pop);
        assert_eq!(results.len(), 12_676);
    }

    #[test]
    fn pem_round_trips_to_wire_der() {
        let pop = population();
        let result = scan_all(&pop).into_iter().next().unwrap();
        let blocks = certchain_x509::pem::decode_all("CERTIFICATE", &result.pem).unwrap();
        assert_eq!(blocks.len(), result.chain.len());
        for (block, cert) in blocks.iter().zip(&result.chain) {
            assert_eq!(block, &cert.der);
            // Well-formed scans parse back into certificates.
            assert!(Certificate::parse(block).is_ok());
        }
    }

    #[test]
    fn malformed_override_reaches_the_wire() {
        let pop = population();
        let results = scan_all(&pop);
        let malformed: Vec<_> = results
            .iter()
            .filter(|r| r.chain.iter().any(|c| Certificate::parse(&c.der).is_err()))
            .collect();
        assert_eq!(malformed.len(), 1, "exactly one ASN.1-broken chain");
    }
}
