//! The issuer–subject validation method (Appendix D.1).
//!
//! Traverses the chain from the leaf upward, checking whether each
//! certificate's issuer field equals the next certificate's subject field,
//! recording the positions of conflicting pairs. This is the method the
//! main study had to use (no key material in the logs).

use crate::sclient::ScanResult;

/// Verdict of the issuer–subject method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssuerSubjectVerdict {
    /// A single-certificate chain (not validated further).
    Single,
    /// Every issuer–subject pair matches.
    Valid,
    /// At least one pair conflicts; positions of the conflicting pairs.
    Broken {
        /// Indices of the conflicting pairs (0 = leaf pair).
        mismatch_positions: Vec<usize>,
    },
}

/// Validate one scanned chain.
pub fn validate_issuer_subject(result: &ScanResult) -> IssuerSubjectVerdict {
    if result.chain.len() <= 1 {
        return IssuerSubjectVerdict::Single;
    }
    let mismatch_positions: Vec<usize> = result
        .chain
        .windows(2)
        .enumerate()
        .filter_map(|(i, pair)| (pair[0].issuer != pair[1].subject).then_some(i))
        .collect();
    if mismatch_positions.is_empty() {
        IssuerSubjectVerdict::Valid
    } else {
        IssuerSubjectVerdict::Broken { mismatch_positions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sclient::ScannedCert;

    fn chain(pairs: &[(&str, &str)]) -> ScanResult {
        ScanResult {
            domain: "t.example".into(),
            chain: pairs
                .iter()
                .map(|(issuer, subject)| ScannedCert {
                    der: vec![],
                    issuer: issuer.to_string(),
                    subject: subject.to_string(),
                })
                .collect(),
            pem: String::new(),
            server_idx: 0,
        }
    }

    #[test]
    fn single() {
        let r = chain(&[("CN=x", "CN=x")]);
        assert_eq!(validate_issuer_subject(&r), IssuerSubjectVerdict::Single);
    }

    #[test]
    fn valid() {
        let r = chain(&[
            ("CN=ica", "CN=leaf"),
            ("CN=root", "CN=ica"),
            ("CN=root", "CN=root"),
        ]);
        assert_eq!(validate_issuer_subject(&r), IssuerSubjectVerdict::Valid);
    }

    #[test]
    fn broken_with_positions() {
        let r = chain(&[
            ("CN=ica", "CN=leaf"),
            ("CN=root", "CN=NOT-ica"),
            ("CN=other", "CN=NOT-root"),
        ]);
        assert_eq!(
            validate_issuer_subject(&r),
            IssuerSubjectVerdict::Broken {
                mismatch_positions: vec![0, 1]
            }
        );
    }

    #[test]
    fn empty_chain_is_single() {
        let r = chain(&[]);
        assert_eq!(validate_issuer_subject(&r), IssuerSubjectVerdict::Single);
    }
}
