#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The November-2024 retrospective scanner (§5) and the validation-method
//! comparison of Appendix D (Table 5).
//!
//! Mimics `openssl s_client -connect $domain:443 -showcerts` against the
//! evolved server population: for each reachable server the scanner
//! retrieves the full delivered chain as PEM (unlike the campus logs, the
//! scan sees keys and signatures), then runs two independent validators:
//!
//! - [`issuersubject`] — the paper's field-level method (works on logged
//!   fields only), and
//! - [`keysig`] — full cryptographic verification over the wire DER,
//!   standing in for the Python `cryptography` implementation.
//!
//! [`compare()`] cross-tabulates the two into Table 5; [`revisit`] computes
//! every §5 statistic, including the Chrome/OpenSSL divergence experiment.

pub mod compare;
pub mod issuersubject;
pub mod keysig;
pub mod revisit;
pub mod sclient;
pub mod sweep;

pub use compare::{compare, Table5};
pub use issuersubject::{validate_issuer_subject, IssuerSubjectVerdict};
pub use keysig::{validate_keysig, KeysigVerdict};
pub use sclient::{scan_all, ScanResult, ScannedCert};
pub use sweep::{ip_space_sweep, SweepReport};
