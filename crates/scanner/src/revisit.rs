//! §5 revisit statistics and the Chrome/OpenSSL divergence experiment.

use crate::issuersubject::{validate_issuer_subject, IssuerSubjectVerdict};
use crate::sclient::{scan_all, ScanResult};
use certchain_asn1::Asn1Time;
use certchain_netsim::{validate_chain, ValidationPolicy};
use certchain_trust::TrustDb;
use certchain_workload::evolve::{NowState, PrevState, RevisitPopulation};

/// §5 hybrid-revisit outcomes.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct HybridRevisit {
    /// Servers scanned (reachable).
    pub reachable: u64,
    /// Servers now delivering public-DB-only chains.
    pub now_public: u64,
    /// ...of which issued by Let's Encrypt.
    pub now_lets_encrypt: u64,
    /// Servers now delivering non-public-DB-only chains.
    pub now_nonpub: u64,
    /// Servers still delivering hybrid chains.
    pub still_hybrid: u64,
    /// Still-hybrid: complete matched path, no unnecessary certs.
    pub still_complete_clean: u64,
    /// Still-hybrid: complete matched path with unnecessary certs.
    pub still_complete_unnecessary: u64,
    /// Still-hybrid: no matched path.
    pub still_no_path: u64,
}

/// §5 non-public revisit outcomes.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct NonPubRevisit {
    /// Servers scanned.
    pub servers: u64,
    /// Now delivering multi-certificate chains.
    pub now_multi: u64,
    /// Of the now-multi servers: previously multi-certificate.
    pub prev_multi: u64,
    /// Of the now-multi servers: previously a single self-signed cert.
    pub prev_single_self_signed: u64,
    /// Of the now-multi servers: previously a single distinct-DN cert.
    pub prev_single_distinct: u64,
    /// Share of now-multi chains that are complete matched paths.
    pub complete_share: f64,
}

/// One chain's Chrome-vs-OpenSSL verdict pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceCase {
    /// Domain scanned.
    pub domain: String,
    /// Chrome-like (path building over maintained stores).
    pub chrome_valid: bool,
    /// OpenSSL-like (strict walk of the presented chain).
    pub openssl_valid: bool,
}

/// The full §5 report.
#[derive(Debug, Clone)]
pub struct RevisitReport {
    /// Hybrid-server outcomes.
    pub hybrid: HybridRevisit,
    /// Non-public-server outcomes.
    pub nonpub: NonPubRevisit,
    /// The validation comparison over the complete-plus-unnecessary
    /// still-hybrid chains (3 in the paper).
    pub divergence: Vec<DivergenceCase>,
}

/// Compute the §5 report from the evolved population.
pub fn revisit(population: &RevisitPopulation, trust: &TrustDb) -> RevisitReport {
    let results = scan_all(population);
    let mut hybrid = HybridRevisit::default();
    let mut nonpub = NonPubRevisit::default();
    let mut nonpub_multi_complete = 0u64;
    let mut divergence = Vec::new();
    let at = Asn1Time::from_ymd_hms(2024, 11, 15, 0, 0, 0).expect("valid date");

    for result in &results {
        let server = &population.servers[result.server_idx];
        if server.is_alias {
            continue; // extra Table 5 chains, not §5 servers
        }
        match server.prev {
            PrevState::Hybrid(prev_kind) => {
                let _ = prev_kind;
                hybrid.reachable += 1;
                match server.now {
                    NowState::PublicValid | NowState::PublicLeafOnly | NowState::PublicBroken => {
                        hybrid.now_public += 1;
                        if result.chain[0].issuer.contains("CN=R3") {
                            hybrid.now_lets_encrypt += 1;
                        }
                    }
                    NowState::NonPubSingle
                    | NowState::NonPubMultiValid
                    | NowState::NonPubMultiBroken => hybrid.now_nonpub += 1,
                    NowState::HybridCompleteClean => {
                        hybrid.still_hybrid += 1;
                        hybrid.still_complete_clean += 1;
                    }
                    NowState::HybridCompleteUnnecessary => {
                        hybrid.still_hybrid += 1;
                        hybrid.still_complete_unnecessary += 1;
                        divergence.push(divergence_case(result, server, trust, at));
                    }
                    NowState::HybridNoPath => {
                        hybrid.still_hybrid += 1;
                        hybrid.still_no_path += 1;
                    }
                    NowState::Unreachable => unreachable!("scan skips unreachable"),
                }
            }
            prev @ (PrevState::NonPubMulti
            | PrevState::NonPubSingleSelfSigned
            | PrevState::NonPubSingleDistinct) => {
                nonpub.servers += 1;
                if result.chain.len() > 1 {
                    nonpub.now_multi += 1;
                    match prev {
                        PrevState::NonPubMulti => nonpub.prev_multi += 1,
                        PrevState::NonPubSingleSelfSigned => nonpub.prev_single_self_signed += 1,
                        PrevState::NonPubSingleDistinct => nonpub.prev_single_distinct += 1,
                        PrevState::Hybrid(_) => unreachable!("matched above"),
                    }
                    if validate_issuer_subject(result) == IssuerSubjectVerdict::Valid {
                        nonpub_multi_complete += 1;
                    }
                }
            }
        }
    }
    nonpub.complete_share = if nonpub.now_multi == 0 {
        0.0
    } else {
        nonpub_multi_complete as f64 / nonpub.now_multi as f64
    };

    RevisitReport {
        hybrid,
        nonpub,
        divergence,
    }
}

fn divergence_case(
    result: &ScanResult,
    server: &certchain_workload::evolve::RevisitServer,
    trust: &TrustDb,
    at: Asn1Time,
) -> DivergenceCase {
    let chain = &server.endpoint.chain;
    let sni = server.endpoint.domain.as_deref();
    DivergenceCase {
        domain: result.domain.clone(),
        chrome_valid: validate_chain(ValidationPolicy::Browser, chain, trust, at, sni).is_ok(),
        openssl_valid: validate_chain(ValidationPolicy::StrictPresented, chain, trust, at, sni)
            .is_ok(),
    }
}

/// Convenience: assert-friendly check that a report matches the §5 numbers.
pub fn matches_paper(report: &RevisitReport) -> Result<(), String> {
    let h = &report.hybrid;
    let n = &report.nonpub;
    let checks: [(&str, bool); 10] = [
        ("270 reachable", h.reachable == 270),
        ("231 now public", h.now_public == 231),
        ("4 now non-public", h.now_nonpub == 4),
        ("35 still hybrid", h.still_hybrid == 35),
        ("9 complete clean", h.still_complete_clean == 9),
        (
            "3 complete + unnecessary",
            h.still_complete_unnecessary == 3,
        ),
        ("12,404 non-public servers", n.servers == 12_404),
        ("9,849 now multi", n.now_multi == 9_849),
        (
            "39.00% previously multi",
            (n.prev_multi as f64 / n.now_multi as f64 - 0.39).abs() < 0.001,
        ),
        (
            "~97.61% complete",
            (n.complete_share - 0.9761).abs() < 0.001,
        ),
    ];
    for (name, ok) in checks {
        if !ok {
            return Err(format!("§5 check failed: {name}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_workload::pki::Ecosystem;
    use certchain_workload::servers::hybrid as hybrid_pop;
    use certchain_workload::GroundTruth;

    fn setup() -> (Ecosystem, RevisitPopulation) {
        let mut eco = Ecosystem::bootstrap(321);
        let hybrid_servers = hybrid_pop::build(&mut eco, 0);
        let refs: Vec<_> = hybrid_servers.iter().collect();
        let pop = RevisitPopulation::generate(&mut eco, &refs);
        let _ = GroundTruth::default();
        (eco, pop)
    }

    #[test]
    fn reproduces_section5() {
        let (eco, pop) = setup();
        let report = revisit(&pop, &eco.trust);
        matches_paper(&report).unwrap();
        // The dominant migration target is Let's Encrypt.
        assert!(report.hybrid.now_lets_encrypt >= 200);
        assert_eq!(report.hybrid.still_no_path, 23);
        assert!(
            (report.nonpub.prev_single_self_signed as f64 / report.nonpub.now_multi as f64
                - 0.5344)
                .abs()
                < 0.001
        );
    }

    /// §5: "Interestingly, the two tools produced different validation
    /// results. Chrome successfully validates these chains … OpenSSL
    /// yields different results."
    #[test]
    fn chrome_openssl_divergence_on_unnecessary_chains() {
        let (eco, pop) = setup();
        let report = revisit(&pop, &eco.trust);
        assert_eq!(report.divergence.len(), 3);
        for case in &report.divergence {
            assert!(case.chrome_valid, "{}: Chrome should validate", case.domain);
            assert!(
                !case.openssl_valid,
                "{}: strict-presented should reject",
                case.domain
            );
        }
    }
}
