//! The §6.3 future-work experiment: an active sweep of the (simulated) IP
//! address space, combined with the passive trace.
//!
//! The paper's closing suggestion: "Future studies may generalize and
//! broaden the certificate chain analysis by performing active scanning of
//! the entire IP address space, combined with network traffic logs from
//! operators." This module implements that combination over the simulated
//! campus: dial every server by IP (no SNI — the scanner does not know
//! hostnames), retrieve the delivered chain, and diff against what passive
//! monitoring saw.
//!
//! Two passive blind spots become measurable:
//! - **TLS 1.3-only servers**: their chains never cross the wire in clear,
//!   so the passive logs have no certificates for them at all.
//! - **SNI-less reachability**: the sweep obtains chains without SNI,
//!   which is exactly how most single-certificate non-public servers are
//!   reached anyway.

use certchain_chainlab::{Analysis, ChainKey};
use certchain_workload::servers::GeneratedServer;
use certchain_x509::Fingerprint;
use std::collections::HashSet;

/// Result of sweeping the simulated address space.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Servers dialed.
    pub servers_scanned: u64,
    /// Servers that presented at least one certificate.
    pub chains_obtained: u64,
    /// Distinct chains seen by the sweep.
    pub distinct_chains: u64,
    /// Chains the sweep found that the passive analysis never saw
    /// (TLS 1.3-only servers and servers with zero captured connections).
    pub chains_missed_by_passive: u64,
    /// Distinct certificates recovered that passive monitoring missed.
    pub certs_missed_by_passive: u64,
}

/// Sweep every server and diff against the passive analysis.
pub fn ip_space_sweep(servers: &[GeneratedServer], passive: &Analysis) -> SweepReport {
    let mut report = SweepReport::default();
    let mut seen_chains: HashSet<ChainKey> = HashSet::new();
    let passive_certs: HashSet<Fingerprint> = passive
        .chains
        .iter()
        .flat_map(|c| c.key.0.iter().copied())
        .collect();
    let mut missed_certs: HashSet<Fingerprint> = HashSet::new();

    for server in servers {
        report.servers_scanned += 1;
        if server.endpoint.chain.is_empty() {
            continue;
        }
        report.chains_obtained += 1;
        let key = ChainKey(
            server
                .endpoint
                .chain
                .iter()
                .map(|c| c.fingerprint())
                .collect(),
        );
        if !seen_chains.insert(key.clone()) {
            continue;
        }
        report.distinct_chains += 1;
        if !passive.index.contains_key(&key) {
            report.chains_missed_by_passive += 1;
            for fp in &key.0 {
                if !passive_certs.contains(fp) {
                    missed_certs.insert(*fp);
                }
            }
        }
    }
    report.certs_missed_by_passive = missed_certs.len() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_chainlab::{CrossSignRegistry, Pipeline};
    use certchain_workload::{CampusProfile, CampusTrace};

    fn setup() -> (CampusTrace, Analysis) {
        let trace = CampusTrace::generate(CampusProfile::quick());
        let pipeline = Pipeline::new(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
        );
        let analysis = pipeline.analyze(&trace.ssl_records, &trace.x509_records, None);
        (trace, analysis)
    }

    #[test]
    fn sweep_covers_every_server_and_finds_the_passive_blind_spot() {
        let (trace, analysis) = setup();
        let report = ip_space_sweep(&trace.servers, &analysis);
        assert_eq!(report.servers_scanned, trace.servers.len() as u64);
        assert_eq!(report.chains_obtained, report.servers_scanned);
        // Passive monitoring cannot see the TLS 1.3-only public servers:
        // roughly a quarter of the public population.
        let expected_blind = trace.profile.public_chains / 4;
        let diff = report.chains_missed_by_passive as i64 - expected_blind as i64;
        assert!(
            diff.abs() <= 2,
            "blind spot {} vs expected ~{}",
            report.chains_missed_by_passive,
            expected_blind
        );
        assert!(report.certs_missed_by_passive > 0);
        // Everything passive saw, the sweep sees too.
        assert!(report.distinct_chains as usize >= analysis.chains.len());
    }

    #[test]
    fn sweep_against_empty_passive_counts_everything_as_missed() {
        let (trace, _) = setup();
        let empty = Pipeline::new(&trace.eco.trust, &trace.ct_index, CrossSignRegistry::new())
            .analyze(&[], &[], None);
        let report = ip_space_sweep(&trace.servers, &empty);
        assert_eq!(report.chains_missed_by_passive, report.distinct_chains);
    }
}
