//! Table 5: the issuer–subject vs key–signature comparison.

use crate::issuersubject::{validate_issuer_subject, IssuerSubjectVerdict};
use crate::keysig::{validate_keysig, KeysigVerdict};
use crate::sclient::ScanResult;

/// The two columns of Table 5 plus the cross-method diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table5 {
    /// Total chains validated.
    pub total: u64,
    /// Issuer–subject: single-certificate chains.
    pub is_single: u64,
    /// Issuer–subject: valid chains.
    pub is_valid: u64,
    /// Issuer–subject: broken chains.
    pub is_broken: u64,
    /// Key–signature: single-certificate chains.
    pub ks_single: u64,
    /// Key–signature: valid chains.
    pub ks_valid: u64,
    /// Key–signature: broken chains (including ASN.1 parse errors).
    pub ks_broken: u64,
    /// Key–signature: chains with unrecognized key algorithms.
    pub ks_unrecognized: u64,
    /// Chains valid by issuer–subject but failing key–signature due to an
    /// ASN.1 parse error (the paper found exactly one).
    pub parse_error_disagreements: u64,
    /// Broken chains where both methods flag the same pair positions.
    pub position_agreements: u64,
    /// Broken chains where the positions differ.
    pub position_disagreements: u64,
}

/// Run both validators over every scanned chain.
pub fn compare(results: &[ScanResult]) -> Table5 {
    let mut t = Table5::default();
    for result in results {
        t.total += 1;
        let is = validate_issuer_subject(result);
        let ks = validate_keysig(result);
        match &is {
            IssuerSubjectVerdict::Single => t.is_single += 1,
            IssuerSubjectVerdict::Valid => t.is_valid += 1,
            IssuerSubjectVerdict::Broken { .. } => t.is_broken += 1,
        }
        match &ks {
            KeysigVerdict::Single => t.ks_single += 1,
            KeysigVerdict::Valid => t.ks_valid += 1,
            KeysigVerdict::Broken { .. } => t.ks_broken += 1,
            KeysigVerdict::UnrecognizedKey => t.ks_unrecognized += 1,
            KeysigVerdict::ParseError { .. } => {
                // The Python implementation reports these as broken.
                t.ks_broken += 1;
                if is == IssuerSubjectVerdict::Valid {
                    t.parse_error_disagreements += 1;
                }
            }
        }
        if let (
            IssuerSubjectVerdict::Broken { mismatch_positions },
            KeysigVerdict::Broken { failure_positions },
        ) = (&is, &ks)
        {
            if mismatch_positions == failure_positions {
                t.position_agreements += 1;
            } else {
                t.position_disagreements += 1;
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_workload::evolve::RevisitPopulation;
    use certchain_workload::pki::Ecosystem;
    use certchain_workload::servers::hybrid;

    fn table5() -> Table5 {
        let mut eco = Ecosystem::bootstrap(55);
        let hybrid_servers = hybrid::build(&mut eco, 0);
        let refs: Vec<_> = hybrid_servers.iter().collect();
        let pop = RevisitPopulation::generate(&mut eco, &refs);
        let results = crate::sclient::scan_all(&pop);
        compare(&results)
    }

    /// The headline reproduction: every number in Table 5.
    #[test]
    fn reproduces_table5_exactly() {
        let t = table5();
        assert_eq!(t.total, 12_676);
        assert_eq!(t.is_single, 2_568);
        assert_eq!(t.is_valid, 9_825);
        assert_eq!(t.is_broken, 283);
        assert_eq!(t.ks_single, 2_568);
        assert_eq!(t.ks_valid, 9_821);
        assert_eq!(t.ks_broken, 284);
        assert_eq!(t.ks_unrecognized, 3);
        assert_eq!(t.parse_error_disagreements, 1);
    }

    /// Appendix D: "our approach accurately identifies the position of
    /// each issuer–subject mismatch within broken chains, and these
    /// positions align with those identified by key-signature validation."
    #[test]
    fn mismatch_positions_agree() {
        let t = table5();
        assert_eq!(t.position_disagreements, 0);
        assert_eq!(t.position_agreements, 283);
    }
}
