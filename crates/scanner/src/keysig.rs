//! The key–signature validation method (Appendix D.2).
//!
//! Parses the wire DER strictly and verifies every certificate's signature
//! with the public key of the next certificate in the chain — the
//! reproduction of the study's Python `cryptography` validator.

use crate::sclient::ScanResult;
use certchain_x509::{AlgorithmId, Certificate};

/// Verdict of the key–signature method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeysigVerdict {
    /// Single-certificate chain.
    Single,
    /// Every signature verifies under the next certificate's key.
    Valid,
    /// A signature failed; positions of the failing pairs.
    Broken {
        /// Indices of the failing pairs (0 = leaf pair).
        failure_positions: Vec<usize>,
    },
    /// A certificate's key/signature algorithm is not implemented by the
    /// validator (Table 5's three "unrecognized key" chains).
    UnrecognizedKey,
    /// A certificate's DER failed strict ASN.1 parsing (the one chain the
    /// issuer–subject method calls valid but this method cannot process).
    ParseError {
        /// Index of the certificate whose DER failed to parse.
        position: usize,
    },
}

/// Validate one scanned chain cryptographically.
pub fn validate_keysig(result: &ScanResult) -> KeysigVerdict {
    if result.chain.len() <= 1 {
        return KeysigVerdict::Single;
    }
    let mut parsed = Vec::with_capacity(result.chain.len());
    for (i, cert) in result.chain.iter().enumerate() {
        match Certificate::parse(&cert.der) {
            Ok(c) => parsed.push(c),
            Err(_) => return KeysigVerdict::ParseError { position: i },
        }
    }
    if parsed
        .iter()
        .any(|c| matches!(c.algorithm, AlgorithmId::Unknown(_)))
    {
        return KeysigVerdict::UnrecognizedKey;
    }
    let failure_positions: Vec<usize> = parsed
        .windows(2)
        .enumerate()
        .filter_map(|(i, pair)| (!pair[0].verify_signed_by(&pair[1].public_key)).then_some(i))
        .collect();
    if failure_positions.is_empty() {
        KeysigVerdict::Valid
    } else {
        KeysigVerdict::Broken { failure_positions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sclient::ScannedCert;
    use certchain_asn1::{oid::known, Asn1Time};
    use certchain_cryptosim::KeyPair;
    use certchain_x509::{CertificateBuilder, DistinguishedName, Validity};

    fn window() -> Validity {
        Validity::days_from(Asn1Time::from_ymd_hms(2024, 1, 1, 0, 0, 0).unwrap(), 365)
    }

    fn wrap(certs: Vec<Vec<u8>>) -> ScanResult {
        ScanResult {
            domain: "t.example".into(),
            chain: certs
                .into_iter()
                .map(|der| ScannedCert {
                    der,
                    issuer: String::new(),
                    subject: String::new(),
                })
                .collect(),
            pem: String::new(),
            server_idx: 0,
        }
    }

    fn valid_pair() -> (Vec<u8>, Vec<u8>) {
        let root_kp = KeyPair::derive(1, "ks:root");
        let root_dn = DistinguishedName::cn("KS Root");
        let root = CertificateBuilder::new()
            .issuer(root_dn.clone())
            .subject(root_dn.clone())
            .validity(window())
            .ca(None)
            .sign(&root_kp);
        let leaf_kp = KeyPair::derive(1, "ks:leaf");
        let leaf = CertificateBuilder::new()
            .issuer(root_dn)
            .subject(DistinguishedName::cn("leaf.example"))
            .validity(window())
            .public_key(leaf_kp.public().clone())
            .sign(&root_kp);
        (leaf.der().to_vec(), root.der().to_vec())
    }

    #[test]
    fn valid_chain() {
        let (leaf, root) = valid_pair();
        assert_eq!(
            validate_keysig(&wrap(vec![leaf, root])),
            KeysigVerdict::Valid
        );
    }

    #[test]
    fn single_chain() {
        let (leaf, _) = valid_pair();
        assert_eq!(validate_keysig(&wrap(vec![leaf])), KeysigVerdict::Single);
    }

    #[test]
    fn forged_signature_breaks_at_position() {
        let (_, root) = valid_pair();
        let rogue = KeyPair::derive(9, "ks:rogue");
        let forged = CertificateBuilder::new()
            .issuer(DistinguishedName::cn("KS Root"))
            .subject(DistinguishedName::cn("victim.example"))
            .validity(window())
            .public_key(KeyPair::derive(2, "v").public().clone())
            .sign(&rogue);
        assert_eq!(
            validate_keysig(&wrap(vec![forged.der().to_vec(), root])),
            KeysigVerdict::Broken {
                failure_positions: vec![0]
            }
        );
    }

    #[test]
    fn unknown_algorithm_detected() {
        let root_kp = KeyPair::derive(1, "ks:root2");
        let root_dn = DistinguishedName::cn("KS Root 2");
        let root = CertificateBuilder::new()
            .issuer(root_dn.clone())
            .subject(root_dn.clone())
            .validity(window())
            .ca(None)
            .sign(&root_kp);
        let weird = CertificateBuilder::new()
            .issuer(root_dn)
            .subject(DistinguishedName::cn("weird.example"))
            .validity(window())
            .public_key(KeyPair::derive(3, "w").public().clone())
            .algorithm(certchain_x509::AlgorithmId::Unknown(
                known::unknown_algorithm(),
            ))
            .sign(&root_kp);
        assert_eq!(
            validate_keysig(&wrap(vec![weird.der().to_vec(), root.der().to_vec()])),
            KeysigVerdict::UnrecognizedKey
        );
    }

    #[test]
    fn truncated_der_is_a_parse_error() {
        let (leaf, root) = valid_pair();
        let mut bad_root = root;
        bad_root.truncate(bad_root.len() - 1);
        assert_eq!(
            validate_keysig(&wrap(vec![leaf, bad_root])),
            KeysigVerdict::ParseError { position: 1 }
        );
    }
}
