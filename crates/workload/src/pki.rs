//! The PKI ecosystem: public CAs (stores + CCADB + CT), cross-signing,
//! and handles for issuing certificates from any authority.

use crate::issuers::{PublicCaSpec, PUBLIC_CAS};
use certchain_asn1::Asn1Time;
use certchain_cryptosim::KeyPair;
use certchain_ctlog::CtLog;
use certchain_trust::TrustDb;
use certchain_x509::{Certificate, CertificateBuilder, DistinguishedName, Serial, Validity};
use std::sync::Arc;

/// A certificate authority we hold the key for.
#[derive(Debug, Clone)]
pub struct CaHandle {
    /// The CA's subject DN (what it writes into issued certs' issuer field).
    pub dn: DistinguishedName,
    /// Signing keypair.
    pub keypair: KeyPair,
    /// The CA's own certificate.
    pub cert: Arc<Certificate>,
}

impl CaHandle {
    /// A self-signed CA (root or standalone private CA).
    pub fn self_signed(
        seed: u64,
        label: &str,
        dn: DistinguishedName,
        validity: Validity,
        serial: Serial,
    ) -> CaHandle {
        let keypair = KeyPair::derive(seed, label);
        let cert = CertificateBuilder::new()
            .serial(serial)
            .issuer(dn.clone())
            .subject(dn.clone())
            .validity(validity)
            .ca(None)
            .sign(&keypair)
            .into_arc();
        CaHandle { dn, keypair, cert }
    }

    /// A CA whose certificate is issued by `parent`.
    pub fn issued_by(
        parent: &CaHandle,
        seed: u64,
        label: &str,
        dn: DistinguishedName,
        validity: Validity,
        serial: Serial,
    ) -> CaHandle {
        let keypair = KeyPair::derive(seed, label);
        let cert = CertificateBuilder::new()
            .serial(serial)
            .issuer(parent.dn.clone())
            .subject(dn.clone())
            .validity(validity)
            .public_key(keypair.public().clone())
            .ca(Some(0))
            .sign(&parent.keypair)
            .into_arc();
        CaHandle { dn, keypair, cert }
    }

    /// Issue a leaf certificate for `domain`.
    pub fn issue_leaf(
        &self,
        domain: &str,
        validity: Validity,
        serial: Serial,
        leaf_seed: u64,
    ) -> Arc<Certificate> {
        let leaf_key = KeyPair::derive(leaf_seed, &format!("leaf:{domain}:{serial}"));
        CertificateBuilder::new()
            .serial(serial)
            .issuer(self.dn.clone())
            .subject(DistinguishedName::cn(domain))
            .validity(validity)
            .public_key(leaf_key.public().clone())
            .leaf_for(domain)
            .sign(&self.keypair)
            .into_arc()
    }
}

/// A public CA family as deployed: trusted root + CCADB intermediate.
#[derive(Debug, Clone)]
pub struct PublicCa {
    /// The static spec this family was built from.
    pub spec: PublicCaSpec,
    /// Trusted root.
    pub root: CaHandle,
    /// The issuing intermediate (listed in CCADB).
    pub ica: CaHandle,
}

/// The bootstrapped ecosystem shared by all generators.
#[derive(Debug)]
pub struct Ecosystem {
    /// Ecosystem seed.
    pub seed: u64,
    /// Trust databases (stores + CCADB).
    pub trust: TrustDb,
    /// The CT log public leaves get submitted to.
    pub ct: CtLog,
    /// Public CA families in [`PUBLIC_CAS`] order.
    pub public_cas: Vec<PublicCa>,
    /// Cross-sign disclosures: (subject DN, alternate issuer DN) pairs,
    /// modelling CA announcements such as Sectigo's chain documentation.
    pub cross_sign_disclosures: Vec<(DistinguishedName, DistinguishedName)>,
    serial_counter: u64,
}

/// Standard CA validity: long-lived, covering the campus window and the
/// 2024 revisit.
pub fn ca_validity() -> Validity {
    Validity::days_from(
        Asn1Time::from_ymd_hms(2015, 1, 1, 0, 0, 0).expect("valid date"),
        25 * 365,
    )
}

impl Ecosystem {
    /// Build the public PKI: every [`PUBLIC_CAS`] family gets a root in all
    /// major stores and an intermediate in CCADB; one intermediate is also
    /// cross-signed by a second root (disclosed), and the whole set is
    /// CT-ready.
    pub fn bootstrap(seed: u64) -> Ecosystem {
        let mut trust = TrustDb::new();
        let ct = CtLog::new(seed, "campus-ct-log");
        let mut serial_counter = 1u64;
        let mut next_serial = || {
            serial_counter += 1;
            Serial::from_u64(serial_counter)
        };

        let mut public_cas = Vec::with_capacity(PUBLIC_CAS.len());
        for spec in PUBLIC_CAS {
            let root_dn = DistinguishedName::cn_o(spec.root_cn, spec.org);
            let root = CaHandle::self_signed(
                seed,
                &format!("pub-root:{}", spec.root_cn),
                root_dn,
                ca_validity(),
                next_serial(),
            );
            trust.add_root_everywhere(Arc::clone(&root.cert));

            let ica_dn = DistinguishedName::cn_o(spec.ica_cn, spec.org);
            let ica = CaHandle::issued_by(
                &root,
                seed,
                &format!("pub-ica:{}", spec.ica_cn),
                ica_dn,
                ca_validity(),
                next_serial(),
            );
            trust.add_ccadb_intermediate(Arc::clone(&ica.cert));
            public_cas.push(PublicCa {
                spec: *spec,
                root,
                ica,
            });
        }

        // Cross-signing: the COMODO intermediate also holds a certificate
        // issued by the Sectigo AAA root (same subject + key, different
        // issuer), and the relationship is publicly disclosed.
        let mut cross_sign_disclosures = Vec::new();
        let (sectigo_idx, comodo_idx) = (2usize, 3usize);
        debug_assert_eq!(PUBLIC_CAS[sectigo_idx].org, "Sectigo Limited");
        debug_assert_eq!(PUBLIC_CAS[comodo_idx].org, "COMODO CA Limited");
        let cross_cert = CertificateBuilder::new()
            .serial(next_serial())
            .issuer(public_cas[sectigo_idx].root.dn.clone())
            .subject(public_cas[comodo_idx].ica.dn.clone())
            .validity(ca_validity())
            .public_key(public_cas[comodo_idx].ica.keypair.public().clone())
            .ca(Some(0))
            .sign(&public_cas[sectigo_idx].root.keypair)
            .into_arc();
        trust.add_ccadb_intermediate(Arc::clone(&cross_cert));
        cross_sign_disclosures.push((
            public_cas[comodo_idx].ica.dn.clone(),
            public_cas[sectigo_idx].root.dn.clone(),
        ));

        Ecosystem {
            seed,
            trust,
            ct,
            public_cas,
            cross_sign_disclosures,
            serial_counter,
        }
    }

    /// Allocate the next certificate serial.
    pub fn next_serial(&mut self) -> Serial {
        self.serial_counter += 1;
        Serial::from_u64(self.serial_counter)
    }

    /// The Let's Encrypt family (used by the §5 migration).
    pub fn lets_encrypt(&self) -> &PublicCa {
        self.public_cas
            .iter()
            .find(|ca| ca.spec.org == "Let's Encrypt")
            .expect("bootstrap always creates Let's Encrypt")
    }

    /// A public CA by root CN.
    pub fn public_ca(&self, root_cn: &str) -> Option<&PublicCa> {
        self.public_cas.iter().find(|ca| ca.spec.root_cn == root_cn)
    }

    /// Issue a CT-logged public leaf: issued by `family.ica`, submitted to
    /// the CT log at `issued_at`.
    pub fn issue_public_leaf(
        &mut self,
        family_idx: usize,
        domain: &str,
        issued_at: Asn1Time,
        days: u64,
    ) -> Arc<Certificate> {
        let serial = self.next_serial();
        let seed = self.seed;
        let leaf = self.public_cas[family_idx].ica.issue_leaf(
            domain,
            Validity::days_from(issued_at, days),
            serial,
            seed,
        );
        self.ct.submit(Arc::clone(&leaf), issued_at);
        leaf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_netsim::{validate_chain, ValidationPolicy};
    use certchain_trust::IssuerClass;

    #[test]
    fn bootstrap_populates_stores_and_ccadb() {
        let eco = Ecosystem::bootstrap(7);
        assert_eq!(eco.public_cas.len(), PUBLIC_CAS.len());
        for family in &eco.public_cas {
            assert!(eco
                .trust
                .is_listed_certificate(&family.root.cert.fingerprint()));
            assert!(eco.trust.is_listed_subject(&family.ica.dn));
        }
        // One cross-sign entry disclosed.
        assert_eq!(eco.cross_sign_disclosures.len(), 1);
    }

    #[test]
    fn public_leaf_is_ct_logged_and_validates() {
        let mut eco = Ecosystem::bootstrap(7);
        let t = Asn1Time::from_ymd_hms(2020, 10, 1, 0, 0, 0).unwrap();
        let leaf = eco.issue_public_leaf(0, "shop.example.org", t, 90);
        assert!(eco.ct.contains(&leaf.fingerprint()));
        assert_eq!(eco.trust.classify(&leaf), IssuerClass::PublicDb);
        let chain = vec![leaf, Arc::clone(&eco.public_cas[0].ica.cert)];
        for policy in [ValidationPolicy::Browser, ValidationPolicy::StrictPresented] {
            validate_chain(
                policy,
                &chain,
                &eco.trust,
                t.plus_days(10),
                Some("shop.example.org"),
            )
            .unwrap();
        }
    }

    #[test]
    fn cross_signed_intermediate_verifies_under_both_roots() {
        let eco = Ecosystem::bootstrap(9);
        let comodo = eco.public_ca("COMODO RSA Certification Authority").unwrap();
        let sectigo = eco.public_ca("AAA Certificate Services").unwrap();
        // Primary certificate verifies under COMODO root.
        assert!(comodo
            .ica
            .cert
            .verify_signed_by(&comodo.root.cert.public_key));
        // The cross-signed twin (same subject DN) sits in CCADB; any cert
        // issued by the COMODO ICA also chains through Sectigo's root via
        // the cross certificate, because the ICA keypair is shared.
        let leaf = comodo.ica.issue_leaf(
            "cross.example.org",
            Validity::days_from(Asn1Time::from_ymd_hms(2020, 10, 1, 0, 0, 0).unwrap(), 90),
            Serial::from_u64(999_999),
            1,
        );
        assert!(leaf.verify_signed_by(comodo.ica.keypair.public()));
        let _ = sectigo;
    }

    #[test]
    fn bootstrap_is_deterministic() {
        let a = Ecosystem::bootstrap(11);
        let b = Ecosystem::bootstrap(11);
        for (x, y) in a.public_cas.iter().zip(&b.public_cas) {
            assert_eq!(x.root.cert.fingerprint(), y.root.cert.fingerprint());
            assert_eq!(x.ica.cert.fingerprint(), y.ica.cert.fingerprint());
        }
        let c = Ecosystem::bootstrap(12);
        assert_ne!(
            a.public_cas[0].root.cert.fingerprint(),
            c.public_cas[0].root.cert.fingerprint()
        );
    }

    #[test]
    fn private_ca_classifies_non_public() {
        let eco = Ecosystem::bootstrap(13);
        let private = CaHandle::self_signed(
            13,
            "corp-ca",
            DistinguishedName::cn_o("Corp Internal Root", "Corp Inc"),
            ca_validity(),
            Serial::from_u64(1),
        );
        let leaf = private.issue_leaf(
            "intranet.corp",
            Validity::days_from(Asn1Time::from_ymd_hms(2020, 10, 1, 0, 0, 0).unwrap(), 365),
            Serial::from_u64(2),
            13,
        );
        assert_eq!(eco.trust.classify(&leaf), IssuerClass::NonPublicDb);
        assert_eq!(eco.trust.classify(&private.cert), IssuerClass::NonPublicDb);
    }
}
