//! Misconfiguration operators.
//!
//! Each operator reproduces one real-world failure mode the paper catalogs,
//! by mutating a well-formed delivered chain. The operators are pure
//! functions over chains, so the hybrid-population builder can compose them
//! and tests can assert their post-conditions individually.

use crate::pki::{ca_validity, CaHandle};
use certchain_cryptosim::KeyPair;
use certchain_x509::{Certificate, CertificateBuilder, DistinguishedName, Serial, Validity};
use std::sync::Arc;

/// Append an unrelated certificate after an otherwise valid chain
/// (Appendix F.2: the HP `CN=tester` self-signed cert, Athenz certs,
/// stray roots from other CAs). The appended certificate does not link to
/// the chain, so strict validators reject the result.
pub fn append_unnecessary(
    chain: &[Arc<Certificate>],
    junk: Arc<Certificate>,
) -> Vec<Arc<Certificate>> {
    let mut out = chain.to_vec();
    out.push(junk);
    out
}

/// Prepend a stray leaf before the complete matched path (§4.2: "several
/// chains begin with a leaf certificate followed by the complete matched
/// path", whose issuer does not match the following subject).
pub fn prepend_stray_leaf(
    chain: &[Arc<Certificate>],
    stray: Arc<Certificate>,
) -> Vec<Arc<Certificate>> {
    let mut out = Vec::with_capacity(chain.len() + 1);
    out.push(stray);
    out.extend_from_slice(chain);
    out
}

/// Replace the leaf of a valid chain with an unrelated self-signed
/// certificate (Table 7 row 2: "Non-pub-DB self-signed leaf followed by a
/// valid sub-chain", 13 chains).
pub fn replace_leaf_with_self_signed(
    chain: &[Arc<Certificate>],
    self_signed: Arc<Certificate>,
) -> Vec<Arc<Certificate>> {
    let mut out = Vec::with_capacity(chain.len());
    out.push(self_signed);
    out.extend_from_slice(&chain[1..]);
    out
}

/// Truncate a public chain (drop the leaf's issuer) and append a
/// non-public root (Table 7 row 5: 5 chains).
pub fn truncate_and_append_root(
    chain: &[Arc<Certificate>],
    private_root: Arc<Certificate>,
) -> Vec<Arc<Certificate>> {
    let mut out: Vec<Arc<Certificate>> = Vec::with_capacity(chain.len());
    // Keep the leaf, drop the intermediate that issues it, keep the rest.
    out.push(Arc::clone(&chain[0]));
    if chain.len() > 2 {
        out.extend_from_slice(&chain[2..]);
    }
    out.push(private_root);
    out
}

/// The Let's Encrypt staging-environment artifact (Appendix F.2): a
/// certificate with issuer `CN=Fake LE Root X1` and subject
/// `CN=Fake LE Intermediate X1` appended after a valid chain — the
/// `--test-cert` / `--dry-run` placeholder deployed to production by 14
/// distinct domains.
pub fn fake_le_staging_cert(seed: u64, serial: Serial) -> Arc<Certificate> {
    let fake_root_kp = KeyPair::derive(seed, "fake-le-root");
    let fake_ica_kp = KeyPair::derive(seed, "fake-le-ica");
    CertificateBuilder::new()
        .serial(serial)
        .issuer(DistinguishedName::cn("Fake LE Root X1"))
        .subject(DistinguishedName::cn("Fake LE Intermediate X1"))
        .validity(ca_validity())
        .public_key(fake_ica_kp.public().clone())
        .ca(Some(0))
        .sign(&fake_root_kp)
        .into_arc()
}

/// The HP `tester` certificate (Appendix F.2): issuer and subject CN both
/// "tester".
pub fn hp_tester_cert(seed: u64, serial: Serial) -> Arc<Certificate> {
    let kp = KeyPair::derive(seed, "hp-tester");
    let dn = DistinguishedName::cn_o("tester", "HP Inc.");
    CertificateBuilder::new()
        .serial(serial)
        .issuer(dn.clone())
        .subject(dn)
        .validity(ca_validity())
        .sign(&kp)
        .into_arc()
}

/// An Athenz-style self-signed service-auth certificate (Appendix F.2).
pub fn athenz_cert(seed: u64, serial: Serial, service: &str) -> Arc<Certificate> {
    let kp = KeyPair::derive(seed, &format!("athenz:{service}"));
    let dn = DistinguishedName::cn_o(&format!("athenz.{service}"), "Athenz");
    CertificateBuilder::new()
        .serial(serial)
        .issuer(dn.clone())
        .subject(dn)
        .validity(ca_validity())
        .sign(&kp)
        .into_arc()
}

/// The paper's Appendix F.3 footnote leaf: the default
/// `emailAddress=webmaster@localhost, CN=localhost, …` self-signed
/// certificate that 100 of the 108 self-signed-leaf chains carry.
pub fn localhost_leaf(seed: u64, serial: Serial) -> Arc<Certificate> {
    use certchain_x509::dn::AttrType;
    let kp = KeyPair::derive(seed, &format!("localhost-leaf:{serial}"));
    let dn = DistinguishedName::from_pairs(&[
        (AttrType::EmailAddress, "webmaster@localhost"),
        (AttrType::CommonName, "localhost"),
        (AttrType::OrganizationalUnit, "none"),
        (AttrType::Organization, "none"),
        (AttrType::Locality, "Sometown"),
        (AttrType::StateOrProvince, "Someprovince"),
        (AttrType::Country, "US"),
    ]);
    CertificateBuilder::new()
        .serial(serial)
        .issuer(dn.clone())
        .subject(dn)
        .validity(Validity::days_from(
            certchain_asn1::Asn1Time::from_ymd_hms(2019, 6, 1, 0, 0, 0).expect("valid date"),
            3650,
        ))
        .sign(&kp)
        .into_arc()
}

/// A generic standalone self-signed certificate for junk/mismatch slots.
pub fn self_signed(seed: u64, label: &str, cn: &str, serial: Serial) -> Arc<Certificate> {
    let kp = KeyPair::derive(seed, label);
    let dn = DistinguishedName::cn(cn);
    CertificateBuilder::new()
        .serial(serial)
        .issuer(dn.clone())
        .subject(dn)
        .validity(ca_validity())
        .sign(&kp)
        .into_arc()
}

/// A certificate with *distinct*, unrelated issuer and subject whose issuer
/// matches nothing in the chain (a pure mismatch filler).
pub fn orphan_cert(
    seed: u64,
    label: &str,
    issuer_cn: &str,
    subject_cn: &str,
    serial: Serial,
) -> Arc<Certificate> {
    let signer = KeyPair::derive(seed, &format!("{label}:signer"));
    let subject_kp = KeyPair::derive(seed, &format!("{label}:subject"));
    CertificateBuilder::new()
        .serial(serial)
        .issuer(DistinguishedName::cn(issuer_cn))
        .subject(DistinguishedName::cn(subject_cn))
        .validity(ca_validity())
        .public_key(subject_kp.public().clone())
        .sign(&signer)
        .into_arc()
}

/// Build a private standalone CA for the truncate-and-append-root cases.
pub fn private_root(seed: u64, label: &str, org: &str, serial: Serial) -> CaHandle {
    CaHandle::self_signed(
        seed,
        label,
        DistinguishedName::cn_o(&format!("{org} Root CA"), org),
        ca_validity(),
        serial,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;

    fn base_chain() -> Vec<Arc<Certificate>> {
        let root = CaHandle::self_signed(
            1,
            "m:root",
            DistinguishedName::cn("M Root"),
            ca_validity(),
            Serial::from_u64(1),
        );
        let ica = CaHandle::issued_by(
            &root,
            1,
            "m:ica",
            DistinguishedName::cn("M ICA"),
            ca_validity(),
            Serial::from_u64(2),
        );
        let leaf = ica.issue_leaf(
            "m.example.org",
            Validity::days_from(Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).unwrap(), 90),
            Serial::from_u64(3),
            1,
        );
        vec![leaf, Arc::clone(&ica.cert), Arc::clone(&root.cert)]
    }

    #[test]
    fn append_unnecessary_breaks_last_link_only() {
        let chain = base_chain();
        let junk = hp_tester_cert(1, Serial::from_u64(9));
        let out = append_unnecessary(&chain, Arc::clone(&junk));
        assert_eq!(out.len(), 4);
        // Original adjacencies intact.
        assert_eq!(out[0].issuer, out[1].subject);
        assert_eq!(out[1].issuer, out[2].subject);
        // New adjacency broken.
        assert_ne!(out[2].issuer, out[3].subject);
    }

    #[test]
    fn prepend_stray_leaf_breaks_first_link() {
        let chain = base_chain();
        let stray = self_signed(2, "m:stray", "old.example.org", Serial::from_u64(9));
        let out = prepend_stray_leaf(&chain, stray);
        assert_eq!(out.len(), 4);
        assert_ne!(out[0].issuer, out[1].subject);
        assert_eq!(out[1].issuer, out[2].subject);
    }

    #[test]
    fn replace_leaf_keeps_subchain_valid() {
        let chain = base_chain();
        let ss = localhost_leaf(3, Serial::from_u64(9));
        let out = replace_leaf_with_self_signed(&chain, ss);
        assert_eq!(out.len(), 3);
        assert!(out[0].is_self_signed());
        assert_ne!(out[0].issuer, out[1].subject);
        assert_eq!(out[1].issuer, out[2].subject);
    }

    #[test]
    fn truncate_and_append_root_shape() {
        let chain = base_chain();
        let prv = private_root(4, "m:prv", "Shadow Org", Serial::from_u64(9));
        let out = truncate_and_append_root(&chain, Arc::clone(&prv.cert));
        // leaf, root (ICA dropped), private root appended.
        assert_eq!(out.len(), 3);
        assert_ne!(out[0].issuer, out[1].subject, "issuing ICA was removed");
        assert!(out[2].is_self_signed());
    }

    #[test]
    fn fake_le_staging_has_paper_names() {
        let cert = fake_le_staging_cert(1, Serial::from_u64(1));
        assert_eq!(cert.issuer.common_name(), Some("Fake LE Root X1"));
        assert_eq!(cert.subject.common_name(), Some("Fake LE Intermediate X1"));
        assert!(!cert.is_self_signed());
    }

    #[test]
    fn localhost_leaf_matches_footnote() {
        let cert = localhost_leaf(1, Serial::from_u64(1));
        assert!(cert.is_self_signed());
        let rendered = cert.subject.to_rfc4514();
        assert!(
            rendered.contains("emailAddress=webmaster@localhost"),
            "{rendered}"
        );
        assert!(rendered.contains("CN=localhost"));
        assert!(rendered.contains("ST=Someprovince"));
    }

    #[test]
    fn orphan_cert_has_distinct_fields() {
        let cert = orphan_cert(1, "m:orphan", "Issuer X", "Subject Y", Serial::from_u64(1));
        assert!(!cert.is_self_signed());
        assert_eq!(cert.issuer.common_name(), Some("Issuer X"));
        assert_eq!(cert.subject.common_name(), Some("Subject Y"));
    }
}
