//! Ecosystem evolution to November 2024 — the §5 retrospective population.
//!
//! The paper re-scanned (a) the 321 servers that had delivered hybrid
//! chains and (b) the 12,404 SNI-extractable servers that had delivered
//! non-public-DB-only chains. This module produces that server population
//! in its evolved state, with previous-state tags, so the `scanner` crate
//! can reproduce every §5 number and the Table 5 validation comparison.
//!
//! The arithmetic lives in one place ([`RevisitPlan`]) and is checked by
//! tests against the paper's reported values:
//!
//! - hybrid: 270/321 reachable; 231 → public-DB (9 leaf-only, 21 broken,
//!   201 valid), 4 → non-public single, 35 still hybrid (9 complete clean,
//!   3 complete + unnecessary, 23 no path);
//! - non-public: 12,404 servers, 9,849 now multi (39.00% previously multi,
//!   53.44% previously single self-signed, 7.56% previously single
//!   distinct); 9,613 of the multi chains (97.61%) are complete matched
//!   paths, 236 broken; plus 2 alias servers so the scan corpus matches
//!   Table 5's 12,676 chains;
//! - Table 5 specials: 3 valid chains carrying an unknown-algorithm
//!   certificate and 1 valid chain with a malformed-DER certificate.

use crate::misconfig;
use crate::pki::{ca_validity, CaHandle, Ecosystem};
use crate::servers::{server_ip, ChainCategory, GeneratedServer, HybridKind};
use certchain_asn1::Asn1Time;
use certchain_netsim::ServerEndpoint;
use certchain_x509::{AlgorithmId, Certificate, DistinguishedName, Validity};
use std::sync::Arc;

fn nov_2024() -> Asn1Time {
    Asn1Time::from_ymd_hms(2024, 10, 1, 0, 0, 0).expect("valid date")
}

/// What a revisited server previously served (campus-window state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrevState {
    /// A hybrid chain of the given kind.
    Hybrid(HybridKind),
    /// A single self-signed non-public certificate.
    NonPubSingleSelfSigned,
    /// A single non-public certificate with distinct issuer/subject.
    NonPubSingleDistinct,
    /// A multi-certificate non-public chain.
    NonPubMulti,
}

/// What the evolved server delivers now (generator-side truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NowState {
    /// Unreachable in November 2024.
    Unreachable,
    /// Public-DB-only chain, valid.
    PublicValid,
    /// Public-DB-only, leaf only (missing intermediate → single cert).
    PublicLeafOnly,
    /// Public-DB-only, broken (leaf + non-issuing certificate).
    PublicBroken,
    /// Non-public single certificate.
    NonPubSingle,
    /// Non-public multi-certificate complete matched path.
    NonPubMultiValid,
    /// Non-public multi-certificate chain with a mismatch.
    NonPubMultiBroken,
    /// Still hybrid: complete matched path, no unnecessary certs.
    HybridCompleteClean,
    /// Still hybrid: complete matched path plus unnecessary certs — the
    /// chains the paper ran the Chrome/OpenSSL comparison on.
    HybridCompleteUnnecessary,
    /// Still hybrid: no matched path.
    HybridNoPath,
}

/// Special markers for the Table 5 key-signature experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeysigQuirk {
    /// No quirk.
    None,
    /// The chain contains a certificate with an unrecognized key algorithm.
    UnknownAlgorithm,
    /// The chain contains a certificate whose DER is malformed (parses in
    /// the Zeek-field view, fails in the strict ASN.1 parser).
    MalformedDer,
}

/// One server in the November-2024 scan universe.
#[derive(Debug, Clone)]
pub struct RevisitServer {
    /// Alias endpoints contribute extra chains to the Table 5 corpus but
    /// are not counted as distinct servers in the §5 statistics.
    pub is_alias: bool,
    /// The endpoint as scanned (chain = evolved chain).
    pub endpoint: ServerEndpoint,
    /// Previous (campus-window) state.
    pub prev: PrevState,
    /// Evolved state (ground truth).
    pub now: NowState,
    /// Table 5 quirk marker.
    pub quirk: KeysigQuirk,
    /// For [`KeysigQuirk::MalformedDer`]: the on-the-wire DER of each
    /// chain certificate (one of them deliberately corrupted). `None`
    /// means the certificates' own DER is authoritative.
    pub wire_der_override: Option<Vec<Vec<u8>>>,
}

impl RevisitServer {
    /// Whether the scanner can reach this server.
    pub fn reachable(&self) -> bool {
        self.now != NowState::Unreachable
    }
}

/// The plan constants (kept together so the consistency tests read like
/// the paper's own arithmetic).
pub struct RevisitPlan;

impl RevisitPlan {
    pub const HYBRID_TOTAL: usize = 321;
    pub const HYBRID_REACHABLE: usize = 270;
    pub const HYBRID_TO_PUBLIC: usize = 231;
    pub const HYBRID_PUBLIC_LEAF_ONLY: usize = 9;
    pub const HYBRID_PUBLIC_BROKEN: usize = 21;
    pub const HYBRID_TO_NONPUB: usize = 4;
    pub const HYBRID_STILL_COMPLETE_CLEAN: usize = 9;
    pub const HYBRID_STILL_COMPLETE_UNNECESSARY: usize = 3;
    pub const HYBRID_STILL_NO_PATH: usize = 23;
    pub const NONPUB_SERVERS: usize = 12_404;
    pub const NONPUB_NOW_MULTI: usize = 9_849;
    pub const NONPUB_PREV_MULTI: usize = 3_841;
    pub const NONPUB_PREV_SINGLE_SS: usize = 5_263;
    pub const NONPUB_PREV_SINGLE_DISTINCT: usize = 745;
    pub const NONPUB_MULTI_BROKEN: usize = 236;
    pub const ALIAS_SERVERS: usize = 2;
}

/// The whole scan universe.
#[derive(Debug)]
pub struct RevisitPopulation {
    /// Servers, hybrid first, then non-public, then aliases.
    pub servers: Vec<RevisitServer>,
}

impl RevisitPopulation {
    /// Evolve the campus ecosystem to its November-2024 state.
    ///
    /// `hybrid_servers` must be the 321 hybrid servers from the campus
    /// trace (their endpoints seed the identities of the revisited hosts).
    pub fn generate(eco: &mut Ecosystem, hybrid_servers: &[&GeneratedServer]) -> RevisitPopulation {
        assert_eq!(
            hybrid_servers.len(),
            RevisitPlan::HYBRID_TOTAL,
            "the revisit starts from the 321 hybrid servers"
        );
        let mut servers = Vec::with_capacity(12_676 + 51);
        evolve_hybrid(eco, hybrid_servers, &mut servers);
        evolve_nonpub(eco, &mut servers);
        RevisitPopulation { servers }
    }

    /// Reachable servers only (what the scanner actually obtains).
    pub fn reachable(&self) -> impl Iterator<Item = &RevisitServer> {
        self.servers.iter().filter(|s| s.reachable())
    }
}

fn le_chain(eco: &mut Ecosystem, domain: &str) -> Vec<Arc<Certificate>> {
    let le = eco.lets_encrypt().ica.clone();
    let serial = eco.next_serial();
    let leaf = le.issue_leaf(
        domain,
        Validity::days_from(nov_2024(), 90),
        serial,
        eco.seed,
    );
    vec![leaf, Arc::clone(&le.cert)]
}

fn evolve_hybrid(
    eco: &mut Ecosystem,
    hybrid_servers: &[&GeneratedServer],
    out: &mut Vec<RevisitServer>,
) {
    use RevisitPlan as P;
    for (i, server) in hybrid_servers.iter().enumerate() {
        let prev_kind = match server.category {
            ChainCategory::Hybrid(k) => k,
            other => panic!("expected hybrid server, got {other:?}"),
        };
        let prev = PrevState::Hybrid(prev_kind);
        let domain = server
            .endpoint
            .domain
            .clone()
            .unwrap_or_else(|| format!("hybrid-{i}.example.org"));
        let mut endpoint = server.endpoint.clone();

        let (now, chain): (NowState, Vec<Arc<Certificate>>) = if i >= P::HYBRID_REACHABLE {
            // 51 unreachable.
            (NowState::Unreachable, Vec::new())
        } else if i < P::HYBRID_PUBLIC_LEAF_ONLY {
            // Leaf-only Let's Encrypt misconfiguration.
            let chain = le_chain(eco, &domain);
            (NowState::PublicLeafOnly, vec![chain[0].clone()])
        } else if i < P::HYBRID_PUBLIC_LEAF_ONLY + P::HYBRID_PUBLIC_BROKEN {
            // Leaf plus a stale non-issuing public intermediate (never
            // Let's Encrypt's own, which would make the chain valid).
            let chain = le_chain(eco, &domain);
            let wrong_family = 1 + (i + 3) % (eco.public_cas.len() - 1);
            let wrong = Arc::clone(&eco.public_cas[wrong_family].ica.cert);
            (NowState::PublicBroken, vec![chain[0].clone(), wrong])
        } else if i < P::HYBRID_TO_PUBLIC {
            // Valid Let's Encrypt chain — the dominant migration target.
            (NowState::PublicValid, le_chain(eco, &domain))
        } else if i < P::HYBRID_TO_PUBLIC + P::HYBRID_TO_NONPUB {
            let serial = eco.next_serial();
            let cert =
                misconfig::self_signed(eco.seed, &format!("revisit-nonpub:{i}"), &domain, serial);
            (NowState::NonPubSingle, vec![cert])
        } else if i < P::HYBRID_TO_PUBLIC + P::HYBRID_TO_NONPUB + P::HYBRID_STILL_COMPLETE_CLEAN {
            // Still hybrid, complete clean: a fresh anchored chain in the
            // original style (non-public leaf chained to a public ICA).
            let ica = eco.public_cas[i % eco.public_cas.len()].ica.clone();
            let serial = eco.next_serial();
            let signing = CaHandle::issued_by(
                &ica,
                eco.seed,
                &format!("revisit-anchored:{i}"),
                DistinguishedName::cn_o(&format!("Org CA {i}"), "Org"),
                ca_validity(),
                serial,
            );
            let serial = eco.next_serial();
            let leaf = signing.issue_leaf(
                &domain,
                Validity::days_from(nov_2024(), 365),
                serial,
                eco.seed,
            );
            (
                NowState::HybridCompleteClean,
                vec![leaf, Arc::clone(&signing.cert), Arc::clone(&ica.cert)],
            )
        } else if i < P::HYBRID_TO_PUBLIC
            + P::HYBRID_TO_NONPUB
            + P::HYBRID_STILL_COMPLETE_CLEAN
            + P::HYBRID_STILL_COMPLETE_UNNECESSARY
        {
            // Complete path + unnecessary cert: the Chrome/OpenSSL
            // divergence chains of §5.
            let family = i % eco.public_cas.len();
            let leaf = eco.issue_public_leaf(family, &domain, nov_2024(), 90);
            let ica = Arc::clone(&eco.public_cas[family].ica.cert);
            let serial = eco.next_serial();
            let junk = misconfig::self_signed(
                eco.seed,
                &format!("revisit-junk:{i}"),
                "appliance.local",
                serial,
            );
            (NowState::HybridCompleteUnnecessary, vec![leaf, ica, junk])
        } else {
            // Still hybrid, no matched path.
            let family = i % eco.public_cas.len();
            let leaf = eco.issue_public_leaf(family, &domain, nov_2024(), 90);
            let other = (family + 2) % eco.public_cas.len();
            let non_issuing = Arc::clone(&eco.public_cas[other].root.cert);
            let serial = eco.next_serial();
            let junk = misconfig::orphan_cert(
                eco.seed,
                &format!("revisit-nopath:{i}"),
                &format!("Gone CA {i}"),
                &format!("Also Gone {i}"),
                serial,
            );
            (NowState::HybridNoPath, vec![leaf, junk, non_issuing])
        };
        endpoint.set_chain(chain);
        out.push(RevisitServer {
            is_alias: false,
            endpoint,
            prev,
            now,
            quirk: KeysigQuirk::None,
            wire_der_override: None,
        });
    }
}

fn evolve_nonpub(eco: &mut Ecosystem, out: &mut Vec<RevisitServer>) {
    use RevisitPlan as P;
    // One long-lived private PKI per ~500 servers.
    let n_pkis = 25;
    let pkis: Vec<(CaHandle, CaHandle)> = (0..n_pkis)
        .map(|p| {
            let serial = eco.next_serial();
            let root = CaHandle::self_signed(
                eco.seed,
                &format!("revisit-pki-root:{p}"),
                DistinguishedName::cn_o(&format!("RevisitOrg{p} Root"), &format!("RevisitOrg{p}")),
                ca_validity(),
                serial,
            );
            let serial = eco.next_serial();
            let ica = CaHandle::issued_by(
                &root,
                eco.seed,
                &format!("revisit-pki-ica:{p}"),
                DistinguishedName::cn_o(
                    &format!("RevisitOrg{p} Issuing CA"),
                    &format!("RevisitOrg{p}"),
                ),
                ca_validity(),
                serial,
            );
            (root, ica)
        })
        .collect();

    let prev_for = |i: usize| -> PrevState {
        if i < P::NONPUB_PREV_MULTI {
            PrevState::NonPubMulti
        } else if i < P::NONPUB_PREV_MULTI + P::NONPUB_PREV_SINGLE_SS {
            PrevState::NonPubSingleSelfSigned
        } else if i < P::NONPUB_NOW_MULTI {
            PrevState::NonPubSingleDistinct
        } else {
            // now-single servers: previous state spread across singles.
            if i % 2 == 0 {
                PrevState::NonPubSingleSelfSigned
            } else {
                PrevState::NonPubSingleDistinct
            }
        }
    };

    for i in 0..P::NONPUB_SERVERS + P::ALIAS_SERVERS {
        let domain = format!("revisit-{i:05}.corp.internal");
        let prev = if i < P::NONPUB_SERVERS {
            prev_for(i)
        } else {
            PrevState::NonPubMulti // aliases
        };
        let (root, ica) = &pkis[i % n_pkis];
        let is_multi = !(P::NONPUB_NOW_MULTI..P::NONPUB_SERVERS).contains(&i);
        let mut quirk = KeysigQuirk::None;
        let mut wire_der_override = None;
        let (now, chain): (NowState, Vec<Arc<Certificate>>) = if !is_multi {
            let serial = eco.next_serial();
            let cert =
                misconfig::self_signed(eco.seed, &format!("revisit-single:{i}"), &domain, serial);
            (NowState::NonPubSingle, vec![cert])
        } else if i < P::NONPUB_MULTI_BROKEN {
            // Broken multi chain: leaf + non-issuing intermediate.
            let serial = eco.next_serial();
            let leaf = ica.issue_leaf(
                &domain,
                Validity::days_from(nov_2024(), 365),
                serial,
                eco.seed,
            );
            let (_, wrong_ica) = &pkis[(i + 7) % n_pkis];
            (
                NowState::NonPubMultiBroken,
                vec![leaf, Arc::clone(&wrong_ica.cert)],
            )
        } else {
            // Valid hierarchical chain — the §5 trend.
            let serial = eco.next_serial();
            let leaf = ica.issue_leaf(
                &domain,
                Validity::days_from(nov_2024(), 365),
                serial,
                eco.seed,
            );
            let mut chain = vec![leaf, Arc::clone(&ica.cert), Arc::clone(&root.cert)];
            // Table 5 specials: 3 chains with an unknown-algorithm cert,
            // 1 with a malformed-DER cert.
            if (P::NONPUB_MULTI_BROKEN..P::NONPUB_MULTI_BROKEN + 3).contains(&i) {
                quirk = KeysigQuirk::UnknownAlgorithm;
                let serial = eco.next_serial();
                let leaf_kp =
                    certchain_cryptosim::KeyPair::derive(eco.seed, &format!("unk-alg:{i}"));
                let weird = certchain_x509::CertificateBuilder::new()
                    .serial(serial)
                    .issuer(ica.dn.clone())
                    .subject(DistinguishedName::cn(&domain))
                    .validity(Validity::days_from(nov_2024(), 365))
                    .public_key(leaf_kp.public().clone())
                    .algorithm(AlgorithmId::Unknown(
                        certchain_asn1::oid::known::unknown_algorithm(),
                    ))
                    .sign(&ica.keypair);
                chain[0] = weird.into_arc();
            } else if i == P::NONPUB_MULTI_BROKEN + 3 {
                quirk = KeysigQuirk::MalformedDer;
                // The wire bytes of the intermediate are corrupted in a way
                // that the strict DER parser rejects (truncated inner TLV)
                // while the field-level view stays intact.
                let mut ders: Vec<Vec<u8>> = chain.iter().map(|c| c.der().to_vec()).collect();
                let der = &mut ders[1];
                let last = der.len() - 1;
                der.truncate(last);
                wire_der_override = Some(ders);
            }
            (NowState::NonPubMultiValid, chain)
        };
        let sid = 900_000 + i as u64;
        out.push(RevisitServer {
            is_alias: i >= P::NONPUB_SERVERS,
            endpoint: ServerEndpoint::new(sid, server_ip(sid), 443, Some(domain), chain),
            prev,
            now,
            quirk,
            wire_der_override,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servers::hybrid;

    fn population() -> RevisitPopulation {
        let mut eco = Ecosystem::bootstrap(77);
        let hybrid_servers = hybrid::build(&mut eco, 100_000);
        let refs: Vec<&GeneratedServer> = hybrid_servers.iter().collect();
        RevisitPopulation::generate(&mut eco, &refs)
    }

    fn count(pop: &RevisitPopulation, now: NowState) -> usize {
        pop.servers.iter().filter(|s| s.now == now).count()
    }

    #[test]
    fn plan_matches_paper_arithmetic() {
        use RevisitPlan as P;
        assert_eq!(P::HYBRID_REACHABLE, 270);
        assert_eq!(P::HYBRID_TOTAL - P::HYBRID_REACHABLE, 51);
        assert_eq!(
            P::HYBRID_TO_PUBLIC
                + P::HYBRID_TO_NONPUB
                + P::HYBRID_STILL_COMPLETE_CLEAN
                + P::HYBRID_STILL_COMPLETE_UNNECESSARY
                + P::HYBRID_STILL_NO_PATH,
            P::HYBRID_REACHABLE
        );
        // §5: 79.40% now multi, 39.00% / 53.44% / 7.56% previous states.
        assert!((P::NONPUB_NOW_MULTI as f64 / P::NONPUB_SERVERS as f64 - 0.7940).abs() < 0.001);
        assert_eq!(
            P::NONPUB_PREV_MULTI + P::NONPUB_PREV_SINGLE_SS + P::NONPUB_PREV_SINGLE_DISTINCT,
            P::NONPUB_NOW_MULTI
        );
        assert!((P::NONPUB_PREV_MULTI as f64 / P::NONPUB_NOW_MULTI as f64 - 0.39).abs() < 0.001);
        // Complete share 97.61%.
        let complete = P::NONPUB_NOW_MULTI - P::NONPUB_MULTI_BROKEN;
        assert!(
            (complete as f64 / P::NONPUB_NOW_MULTI as f64 - 0.9761).abs() < 0.001,
            "complete share"
        );
    }

    #[test]
    fn table5_totals() {
        let pop = population();
        let reachable: Vec<_> = pop.reachable().collect();
        assert_eq!(reachable.len(), 12_676);
        let single = reachable
            .iter()
            .filter(|s| s.endpoint.chain_len() == 1)
            .count();
        assert_eq!(single, 2_568);
        let unknown = reachable
            .iter()
            .filter(|s| s.quirk == KeysigQuirk::UnknownAlgorithm)
            .count();
        assert_eq!(unknown, 3);
        let malformed = reachable
            .iter()
            .filter(|s| s.quirk == KeysigQuirk::MalformedDer)
            .count();
        assert_eq!(malformed, 1);
    }

    #[test]
    fn hybrid_now_states() {
        let pop = population();
        assert_eq!(count(&pop, NowState::Unreachable), 51);
        assert_eq!(count(&pop, NowState::PublicLeafOnly), 9);
        assert_eq!(count(&pop, NowState::PublicBroken), 21);
        assert_eq!(count(&pop, NowState::PublicValid), 201);
        assert_eq!(count(&pop, NowState::HybridCompleteClean), 9);
        assert_eq!(count(&pop, NowState::HybridCompleteUnnecessary), 3);
        assert_eq!(count(&pop, NowState::HybridNoPath), 23);
    }

    #[test]
    fn broken_budget_sums_to_283() {
        use RevisitPlan as P;
        let issuer_subject_broken = P::NONPUB_MULTI_BROKEN
            + P::HYBRID_PUBLIC_BROKEN
            + P::HYBRID_STILL_COMPLETE_UNNECESSARY
            + P::HYBRID_STILL_NO_PATH;
        assert_eq!(issuer_subject_broken, 283);
    }

    #[test]
    fn valid_budget_sums_to_9825() {
        let pop = population();
        let valid = pop
            .reachable()
            .filter(|s| {
                matches!(
                    s.now,
                    NowState::PublicValid
                        | NowState::NonPubMultiValid
                        | NowState::HybridCompleteClean
                )
            })
            .count();
        assert_eq!(valid, 9_825);
    }

    #[test]
    fn malformed_der_override_fails_strict_parse() {
        let pop = population();
        let s = pop
            .servers
            .iter()
            .find(|s| s.quirk == KeysigQuirk::MalformedDer)
            .unwrap();
        let ders = s.wire_der_override.as_ref().unwrap();
        assert!(Certificate::parse(&ders[1]).is_err());
        // The other certificates in the override still parse.
        assert!(Certificate::parse(&ders[0]).is_ok());
        // And the field-level view (the in-memory certs) is intact.
        assert_eq!(s.endpoint.chain.len(), ders.len());
    }

    #[test]
    fn unknown_alg_chains_are_issuer_subject_valid() {
        let pop = population();
        for s in pop
            .servers
            .iter()
            .filter(|s| s.quirk == KeysigQuirk::UnknownAlgorithm)
        {
            let chain = &s.endpoint.chain;
            for w in chain.windows(2) {
                assert_eq!(w[0].issuer, w[1].subject);
            }
            assert!(matches!(chain[0].algorithm, AlgorithmId::Unknown(_)));
        }
    }

    #[test]
    fn lets_encrypt_dominates_migrations() {
        let pop = population();
        let le_chains = pop
            .servers
            .iter()
            .filter(|s| {
                s.now == NowState::PublicValid
                    && s.endpoint.chain[0]
                        .issuer
                        .common_name()
                        .map(|cn| cn == "R3")
                        .unwrap_or(false)
            })
            .count();
        assert_eq!(le_chains, 201);
    }
}
