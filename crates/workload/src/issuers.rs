//! Named issuer catalogs: the public CAs, the government/corporate
//! non-public issuers of Table 6, and the 80 interception vendors of
//! Table 1.

/// A public CA family: a root plus its default intermediate.
#[derive(Debug, Clone, Copy)]
pub struct PublicCaSpec {
    /// Organization name.
    pub org: &'static str,
    /// Root CN.
    pub root_cn: &'static str,
    /// Default intermediate CN.
    pub ica_cn: &'static str,
    /// Whether this CA issues with fully automated tooling (drives the §5
    /// Let's Encrypt migration).
    pub automated: bool,
}

/// The public CA population. Shaped after the issuers the paper names
/// (Let's Encrypt, Sectigo/AAA, DigiCert, COMODO, GoDaddy) plus filler.
pub const PUBLIC_CAS: &[PublicCaSpec] = &[
    PublicCaSpec {
        org: "Let's Encrypt",
        root_cn: "ISRG Root X1",
        ica_cn: "R3",
        automated: true,
    },
    PublicCaSpec {
        org: "DigiCert Inc",
        root_cn: "DigiCert Global Root CA",
        ica_cn: "DigiCert SHA2 Secure Server CA",
        automated: false,
    },
    PublicCaSpec {
        org: "Sectigo Limited",
        root_cn: "AAA Certificate Services",
        ica_cn: "Sectigo RSA Domain Validation Secure Server CA",
        automated: false,
    },
    PublicCaSpec {
        org: "COMODO CA Limited",
        root_cn: "COMODO RSA Certification Authority",
        ica_cn: "COMODO RSA Domain Validation Secure Server CA",
        automated: false,
    },
    PublicCaSpec {
        org: "GoDaddy.com, Inc.",
        root_cn: "Go Daddy Root Certificate Authority - G2",
        ica_cn: "Go Daddy Secure Certificate Authority - G2",
        automated: false,
    },
    PublicCaSpec {
        org: "GlobalSign nv-sa",
        root_cn: "GlobalSign Root CA",
        ica_cn: "GlobalSign RSA OV SSL CA 2018",
        automated: false,
    },
    PublicCaSpec {
        org: "VeriSign, Inc.",
        root_cn: "VeriSign Class 3 Public Primary CA - G5",
        ica_cn: "Symantec Class 3 Secure Server CA - G4",
        automated: false,
    },
    PublicCaSpec {
        org: "Entrust, Inc.",
        root_cn: "Entrust Root Certification Authority - G2",
        ica_cn: "Entrust Certification Authority - L1K",
        automated: false,
    },
];

/// A non-public issuer anchored to a public root (Table 6 / Appendix F.1).
#[derive(Debug, Clone, Copy)]
pub struct AnchoredIssuerSpec {
    /// The non-public signing CA's CN (e.g. "Veterans Affairs CA B3").
    pub ca_cn: &'static str,
    /// Organization.
    pub org: &'static str,
    /// The public intermediate that issued it (e.g. "Verizon SSP CA A2").
    pub public_ica_cn: &'static str,
    /// Entity category for Table 6.
    pub category: AnchoredCategory,
    /// Example domain served.
    pub domain: &'static str,
}

/// Table 6 entity categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnchoredCategory {
    /// Symantec, SignKorea and others — 10 chains.
    Corporate,
    /// Korea, Brazil, USA — 16 chains.
    Government,
}

/// The 26 anchored-issuer chains of Table 6: 16 government + 10 corporate.
pub fn anchored_issuers() -> Vec<AnchoredIssuerSpec> {
    use AnchoredCategory::*;
    let mut specs = Vec::with_capacity(26);
    // --- Government: USA (Federal PKI), Korea (KLID), Brazil (ITI) ---
    let gov: [(&str, &str, &str, &str); 16] = [
        (
            "Veterans Affairs CA B3",
            "U.S. Department of Veterans Affairs",
            "Verizon SSP CA A2",
            "va-services.gov.test",
        ),
        (
            "Veterans Affairs CA B4",
            "U.S. Department of Veterans Affairs",
            "Verizon SSP CA A2",
            "portal.va.gov.test",
        ),
        (
            "DHS CA4",
            "U.S. Department of Homeland Security",
            "Verizon SSP CA A2",
            "apps.dhs.gov.test",
        ),
        (
            "Treasury OCIO CA",
            "U.S. Department of the Treasury",
            "Verizon SSP CA A2",
            "fiscal.treasury.gov.test",
        ),
        (
            "GPO SCA",
            "U.S. Government Publishing Office",
            "Verizon SSP CA A2",
            "permanent.gpo.gov.test",
        ),
        (
            "KLID CA 1",
            "Korea Local Information Research & Development Institute",
            "KICA Public CA",
            "minwon.klid.kr.test",
        ),
        (
            "KLID CA 2",
            "Korea Local Information Research & Development Institute",
            "KICA Public CA",
            "portal.klid.kr.test",
        ),
        (
            "GPKI ROOT CA Sub",
            "Government of Korea",
            "KICA Public CA",
            "gov.kr.test",
        ),
        (
            "KOSCOM CA 3",
            "Government of Korea",
            "KICA Public CA",
            "koscom.kr.test",
        ),
        (
            "EPKI Gov CA",
            "Government of Korea",
            "KICA Public CA",
            "epki.go.kr.test",
        ),
        (
            "AC Secretaria da Receita Federal do Brasil",
            "Instituto Nacional de Tecnologia da Informacao",
            "AC Raiz Intermediaria v5",
            "receita.fazenda.gov.br.test",
        ),
        (
            "AC Presidencia da Republica",
            "Instituto Nacional de Tecnologia da Informacao",
            "AC Raiz Intermediaria v5",
            "planalto.gov.br.test",
        ),
        (
            "AC Caixa",
            "Instituto Nacional de Tecnologia da Informacao",
            "AC Raiz Intermediaria v5",
            "caixa.gov.br.test",
        ),
        (
            "AC Serpro",
            "Instituto Nacional de Tecnologia da Informacao",
            "AC Raiz Intermediaria v5",
            "serpro.gov.br.test",
        ),
        (
            "AC Certisign Multipla",
            "Instituto Nacional de Tecnologia da Informacao",
            "AC Raiz Intermediaria v5",
            "certisign.com.br.test",
        ),
        (
            "AC Imprensa Oficial",
            "Instituto Nacional de Tecnologia da Informacao",
            "AC Raiz Intermediaria v5",
            "imprensaoficial.sp.gov.br.test",
        ),
    ];
    for (ca_cn, org, ica, domain) in gov {
        specs.push(AnchoredIssuerSpec {
            ca_cn,
            org,
            public_ica_cn: ica,
            category: Government,
            domain,
        });
    }
    // --- Corporate: Symantec Private SSL, SignKorea, others ---
    let corp: [(&str, &str, &str, &str); 10] = [
        (
            "Symantec Private SSL SHA1 CA",
            "Symantec Corporation",
            "Symantec Class 3 Secure Server CA - G4",
            "internal.symantec.com.test",
        ),
        (
            "Symantec Private SSL CA - G2",
            "Symantec Corporation",
            "Symantec Class 3 Secure Server CA - G4",
            "apps.symantec.com.test",
        ),
        (
            "SignKorea SSL CA",
            "SignKorea Co., Ltd.",
            "KICA Public CA",
            "signkorea.co.kr.test",
        ),
        (
            "SignKorea EV CA",
            "SignKorea Co., Ltd.",
            "KICA Public CA",
            "ev.signkorea.co.kr.test",
        ),
        (
            "Hyundai AutoEver CA",
            "Hyundai AutoEver Corp.",
            "KICA Public CA",
            "autoever.hyundai.test",
        ),
        (
            "Samsung SDS CA 2",
            "Samsung SDS Co., Ltd.",
            "KICA Public CA",
            "sds.samsung.test",
        ),
        (
            "LG CNS Internal CA",
            "LG CNS Co., Ltd.",
            "KICA Public CA",
            "cns.lg.test",
        ),
        (
            "Banco do Brasil CA",
            "Banco do Brasil S.A.",
            "AC Raiz Intermediaria v5",
            "bb.com.br.test",
        ),
        (
            "Petrobras CA",
            "Petroleo Brasileiro S.A.",
            "AC Raiz Intermediaria v5",
            "petrobras.com.br.test",
        ),
        (
            "Embraer Private CA",
            "Embraer S.A.",
            "AC Raiz Intermediaria v5",
            "embraer.com.br.test",
        ),
    ];
    for (ca_cn, org, ica, domain) in corp {
        specs.push(AnchoredIssuerSpec {
            ca_cn,
            org,
            public_ica_cn: ica,
            category: Corporate,
            domain,
        });
    }
    specs
}

/// Table 1 interception-vendor categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InterceptionCategory {
    SecurityAndNetwork,
    BusinessAndCorporate,
    HealthAndEducation,
    GovernmentAndPublicService,
    BankAndFinance,
    Other,
}

impl InterceptionCategory {
    /// Display name matching Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            InterceptionCategory::SecurityAndNetwork => "Security & Network",
            InterceptionCategory::BusinessAndCorporate => "Business & Corporate",
            InterceptionCategory::HealthAndEducation => "Health & Education",
            InterceptionCategory::GovernmentAndPublicService => "Government & Public Service",
            InterceptionCategory::BankAndFinance => "Bank & Finance",
            InterceptionCategory::Other => "Other",
        }
    }

    /// All categories in Table 1 order.
    pub fn all() -> [InterceptionCategory; 6] {
        [
            InterceptionCategory::SecurityAndNetwork,
            InterceptionCategory::BusinessAndCorporate,
            InterceptionCategory::HealthAndEducation,
            InterceptionCategory::GovernmentAndPublicService,
            InterceptionCategory::BankAndFinance,
            InterceptionCategory::Other,
        ]
    }
}

/// One interception vendor (middlebox CA).
#[derive(Debug, Clone)]
pub struct InterceptionVendor {
    /// Vendor / organization name.
    pub name: String,
    /// Table 1 category.
    pub category: InterceptionCategory,
}

/// The 80 interception issuers of Table 1: 31 security & network vendors,
/// 27 business & corporate, 10 health & education, 6 government, 3 finance,
/// 3 other. Named vendors follow the paper's examples (Zscaler, McAfee,
/// FireEye, Fortinet, Securly, Freddie Mac, Nationwide); the remainder are
/// synthesized per category.
pub fn interception_vendors() -> Vec<InterceptionVendor> {
    use InterceptionCategory::*;
    let mut vendors = Vec::with_capacity(80);
    let named_security = [
        "Zscaler",
        "McAfee Web Gateway",
        "FireEye",
        "Fortinet FortiGate",
        "Palo Alto Networks",
        "Blue Coat ProxySG",
        "Sophos UTM",
        "Check Point",
        "Cisco Umbrella",
        "Netskope",
        "Forcepoint",
        "Barracuda",
        "WatchGuard",
        "Smoothwall",
        "ContentKeeper",
    ];
    for name in named_security {
        vendors.push(InterceptionVendor {
            name: name.to_string(),
            category: SecurityAndNetwork,
        });
    }
    for i in named_security.len()..31 {
        vendors.push(InterceptionVendor {
            name: format!("NetShield Appliance {:02}", i + 1),
            category: SecurityAndNetwork,
        });
    }
    let named_corp = [
        "Freddie Mac",
        "Acme Global Holdings",
        "Initech",
        "Umbrella Corp",
    ];
    for name in named_corp {
        vendors.push(InterceptionVendor {
            name: name.to_string(),
            category: BusinessAndCorporate,
        });
    }
    for i in named_corp.len()..27 {
        vendors.push(InterceptionVendor {
            name: format!("Corporate Proxy CA {:02}", i + 1),
            category: BusinessAndCorporate,
        });
    }
    let named_edu = ["Securly", "Lightspeed Systems", "GoGuardian"];
    for name in named_edu {
        vendors.push(InterceptionVendor {
            name: name.to_string(),
            category: HealthAndEducation,
        });
    }
    for i in named_edu.len()..10 {
        vendors.push(InterceptionVendor {
            name: format!("District Filter CA {:02}", i + 1),
            category: HealthAndEducation,
        });
    }
    for i in 0..6 {
        vendors.push(InterceptionVendor {
            name: format!("US Gov Dept Gateway {:02}", i + 1),
            category: GovernmentAndPublicService,
        });
    }
    let named_finance = ["Nationwide", "First Federal Trust", "Meridian Bank"];
    for name in named_finance {
        vendors.push(InterceptionVendor {
            name: name.to_string(),
            category: BankAndFinance,
        });
    }
    for i in 0..3 {
        vendors.push(InterceptionVendor {
            name: format!("Misc Proxy {:02}", i + 1),
            category: Other,
        });
    }
    vendors
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn anchored_issuers_match_table6() {
        let specs = anchored_issuers();
        assert_eq!(specs.len(), 26);
        let gov = specs
            .iter()
            .filter(|s| s.category == AnchoredCategory::Government)
            .count();
        let corp = specs
            .iter()
            .filter(|s| s.category == AnchoredCategory::Corporate)
            .count();
        assert_eq!(gov, 16);
        assert_eq!(corp, 10);
        // Distinct CA names.
        let names: std::collections::HashSet<_> = specs.iter().map(|s| s.ca_cn).collect();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn interception_vendors_match_table1() {
        let vendors = interception_vendors();
        assert_eq!(vendors.len(), 80);
        let mut by_cat: HashMap<InterceptionCategory, usize> = HashMap::new();
        for v in &vendors {
            *by_cat.entry(v.category).or_default() += 1;
        }
        assert_eq!(by_cat[&InterceptionCategory::SecurityAndNetwork], 31);
        assert_eq!(by_cat[&InterceptionCategory::BusinessAndCorporate], 27);
        assert_eq!(by_cat[&InterceptionCategory::HealthAndEducation], 10);
        assert_eq!(by_cat[&InterceptionCategory::GovernmentAndPublicService], 6);
        assert_eq!(by_cat[&InterceptionCategory::BankAndFinance], 3);
        assert_eq!(by_cat[&InterceptionCategory::Other], 3);
        // Named examples from the paper are present.
        assert!(vendors.iter().any(|v| v.name == "Zscaler"));
        assert!(vendors.iter().any(|v| v.name.contains("Fortinet")));
        assert!(vendors.iter().any(|v| v.name == "Securly"));
        assert!(vendors.iter().any(|v| v.name == "Freddie Mac"));
        assert!(vendors.iter().any(|v| v.name == "Nationwide"));
    }

    #[test]
    fn public_cas_include_lets_encrypt() {
        assert!(PUBLIC_CAS
            .iter()
            .any(|c| c.org == "Let's Encrypt" && c.automated));
        // CA CNs are unique.
        let roots: std::collections::HashSet<_> = PUBLIC_CAS.iter().map(|c| c.root_cn).collect();
        assert_eq!(roots.len(), PUBLIC_CAS.len());
    }
}
