//! The connection-volume model.
//!
//! Every [`TrafficGroup`] gets a volume spec: how many connection records to
//! generate (full fidelity for the small hybrid/DGA groups, scaled for the
//! bulk), the NAT pool its clients draw from, the client-policy mix, and
//! the per-record statistical weight. Client mixes are chosen analytically
//! so that the deterministic validation outcomes land on the paper's
//! establishment rates (§4.2): e.g. chains that only a permissive client
//! accepts get a permissive share equal to the target rate.

use crate::calibration::{CalibrationTargets, CampusProfile};
use crate::issuers::InterceptionCategory;
use crate::servers::TrafficGroup;
use certchain_netsim::nat::NatPool;
use certchain_netsim::ClientPolicy;
use std::net::Ipv4Addr;

/// Weighted client-policy mix. Shares must sum to ~1.
#[derive(Debug, Clone)]
pub struct PolicyMix {
    entries: Vec<(ClientPolicy, f64)>,
}

impl PolicyMix {
    /// Build from `(policy, share)` pairs.
    pub fn new(entries: Vec<(ClientPolicy, f64)>) -> PolicyMix {
        let total: f64 = entries.iter().map(|(_, s)| s).sum();
        debug_assert!((total - 1.0).abs() < 1e-6, "shares sum to {total}");
        PolicyMix { entries }
    }

    /// Deterministically pick the policy for connection `k` of `n` so the
    /// realized proportions match the shares as closely as possible.
    pub fn pick(&self, k: u64, n: u64) -> ClientPolicy {
        debug_assert!(n > 0);
        // Position of this connection in [0,1); walk the cumulative shares.
        let pos = (k as f64 + 0.5) / n as f64;
        let mut acc = 0.0;
        for (policy, share) in &self.entries {
            acc += share;
            if pos < acc {
                return *policy;
            }
        }
        self.entries.last().expect("mix is non-empty").0
    }
}

/// Volume spec for one traffic group.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Total connection records to generate for the group.
    pub connections: u64,
    /// Statistical weight per record.
    pub conn_weight: f64,
    /// NAT pool for the group's clients.
    pub pool: NatPool,
    /// Client mix.
    pub mix: PolicyMix,
}

fn pool(base_block: u32, size: u32) -> NatPool {
    // Carve disjoint /16-ish blocks out of 128.x space per group.
    NatPool::new(
        Ipv4Addr::from(0x8000_0000u32 + (base_block << 16)),
        size.max(1),
    )
}

/// Build the volume spec for each group.
///
/// The returned closure-ish table is consulted by the trace generator.
pub fn group_spec(
    group: TrafficGroup,
    targets: &CalibrationTargets,
    profile: &CampusProfile,
) -> GroupSpec {
    use TrafficGroup::*;
    let cs = profile.conn_scale;
    let scaled = |v: f64| -> u64 { (v * cs).round().max(1.0) as u64 };
    let browser = ClientPolicy::browser();
    let strict = ClientPolicy::strict();
    let perm = ClientPolicy::permissive();
    let perm_no_sni = ClientPolicy::permissive_no_sni();

    // Hybrid connection budget: Table 2 gives 78.26K total and §4.2 gives
    // the no-path split (38,085, of which 19,366 for the 56-group). The
    // remaining 40,175 are split between the complete (36 chains) and
    // contains (70 chains) groups.
    let hybrid_total = targets.hybrid_connections;
    let no_path_total = targets.no_path_connections;
    let no_path_56 = targets.pub_leaf_no_intermediate_connections;
    let complete_total: u64 = 20_000;
    let contains_total = hybrid_total - no_path_total - complete_total;
    // Complete-group internals (see §4.2 rate derivation in DESIGN.md):
    // valid 23 chains 68% of volume, Scalyr 10 chains 30%, expired 3
    // chains 2% → rate = .68·1 + .30·(1-strict) + .02·perm ≈ 97.56%.
    let complete_valid = (complete_total as f64 * 0.68) as u64;
    let complete_scalyr = (complete_total as f64 * 0.30) as u64;
    let complete_expired = complete_total - complete_valid - complete_scalyr;

    match group {
        PublicOnly => GroupSpec {
            connections: (profile.public_chains as u64) * profile.public_conns_per_chain,
            conn_weight: 1.0,
            pool: pool(0, 5_000),
            mix: PolicyMix::new(vec![(browser, 0.95), (strict, 0.05)]),
        },
        HybridComplete => GroupSpec {
            connections: complete_valid,
            conn_weight: 1.0,
            pool: pool(1, 1_200),
            mix: PolicyMix::new(vec![(browser, 0.75), (perm, 0.22), (strict, 0.03)]),
        },
        HybridCompleteScalyr => GroupSpec {
            connections: complete_scalyr,
            conn_weight: 1.0,
            pool: pool(2, 400),
            mix: PolicyMix::new(vec![(browser, 0.75), (perm, 0.22), (strict, 0.03)]),
        },
        HybridCompleteExpired => GroupSpec {
            connections: complete_expired,
            conn_weight: 1.0,
            pool: pool(3, 150),
            mix: PolicyMix::new(vec![(browser, 0.75), (perm, 0.22), (strict, 0.03)]),
        },
        HybridContains => GroupSpec {
            connections: contains_total,
            conn_weight: 1.0,
            pool: pool(4, 5_196),
            // Only the strict share fails on unnecessary certificates:
            // 1 − 0.0796 = 92.04% (§4.2).
            mix: PolicyMix::new(vec![(browser, 0.70), (perm, 0.2204), (strict, 0.0796)]),
        },
        HybridNoPath => GroupSpec {
            connections: no_path_total - no_path_56,
            conn_weight: 1.0,
            pool: pool(5, 543),
            // Only permissive clients establish: share 0.5881 makes the
            // whole no-path group land on 57.42%.
            mix: PolicyMix::new(vec![(perm, 0.5881), (browser, 0.3), (strict, 0.1119)]),
        },
        HybridNoPath56 => GroupSpec {
            connections: no_path_56,
            conn_weight: 1.0,
            pool: pool(6, targets.pub_leaf_no_intermediate_client_ips as u32),
            mix: PolicyMix::new(vec![(perm, 0.5608), (browser, 0.33), (strict, 0.1092)]),
        },
        NonPubSingle => GroupSpec {
            // 140M single-cert connections minus the full-fidelity DGA
            // cluster.
            connections: scaled(140_000_000.0 - targets.dga_connections as f64),
            conn_weight: profile.conn_weight(),
            pool: pool(7, (221_924.0 * cs).round().max(8.0) as u32),
            // SNI presence is governed by whether the *server* has a
            // domain at all (86.70% of single-cert servers do not, §4.3);
            // clients themselves always offer SNI when they know a name.
            mix: PolicyMix::new(vec![(perm, 0.95), (browser, 0.05)]),
        },
        NonPubDga => GroupSpec {
            connections: targets.dga_connections,
            conn_weight: 1.0,
            pool: pool(8, targets.dga_client_ips as u32),
            mix: PolicyMix::new(vec![(perm_no_sni, 1.0)]),
            // (DGA victims connect by raw IP; the servers carry no domain
            // either, so the policy is belt-and-suspenders.)
        },
        NonPubMulti => GroupSpec {
            connections: scaled(targets.nonpub_connections as f64 - 140_000_000.0),
            conn_weight: profile.conn_weight(),
            pool: pool(9, (9_304.0 * cs).round().max(4.0) as u32),
            // 66.3% of multi-cert servers are reached by raw IP (no
            // domain), which combines with the single-cert group's 86.7%
            // to give the §5 total of 79.49% SNI-less connections across
            // all non-public-DB-only traffic.
            mix: PolicyMix::new(vec![(perm, 0.90), (browser, 0.05), (strict, 0.05)]),
        },
        NonPubFreak => GroupSpec {
            // Each freak chain was observed exactly once, unestablished
            // (§4.1): a strict client rejects the repeated self-signed
            // certificate pile-up.
            connections: 3,
            conn_weight: 1.0,
            pool: pool(31, 3),
            mix: PolicyMix::new(vec![(strict, 1.0)]),
        },
        Interception(cat) => {
            let (idx, share, ips) = interception_share(targets, cat);
            GroupSpec {
                connections: scaled(targets.interception_connections as f64 * share / 100.0),
                conn_weight: profile.conn_weight(),
                pool: pool(
                    10 + idx as u32,
                    (ips as f64 * cs * 10.0).round().max(2.0) as u32,
                ),
                // Managed endpoints have the vendor root installed
                // (modelled as permissive); a small unmanaged share fails.
                mix: PolicyMix::new(vec![(perm, 0.97), (browser, 0.03)]),
            }
        }
    }
}

fn interception_share(
    targets: &CalibrationTargets,
    cat: InterceptionCategory,
) -> (usize, f64, u64) {
    let idx = InterceptionCategory::all()
        .iter()
        .position(|c| *c == cat)
        .expect("category is in the table");
    let (_, _, share, ips) = targets.interception_categories[idx];
    // The two zero-share rows still see a trickle of connections.
    (idx, share.max(0.005), ips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_netsim::ValidationPolicy;

    fn targets() -> CalibrationTargets {
        CalibrationTargets::paper()
    }

    #[test]
    fn policy_mix_proportions_are_exact() {
        let mix = PolicyMix::new(vec![
            (ClientPolicy::browser(), 0.70),
            (ClientPolicy::permissive(), 0.2204),
            (ClientPolicy::strict(), 0.0796),
        ]);
        let n = 10_000u64;
        let mut strict = 0;
        for k in 0..n {
            if mix.pick(k, n).validation == ValidationPolicy::StrictPresented {
                strict += 1;
            }
        }
        let share = strict as f64 / n as f64;
        assert!((share - 0.0796).abs() < 0.001, "strict share = {share}");
    }

    #[test]
    fn hybrid_budget_sums_to_table2() {
        let t = targets();
        let p = CampusProfile::default();
        let groups = [
            TrafficGroup::HybridComplete,
            TrafficGroup::HybridCompleteScalyr,
            TrafficGroup::HybridCompleteExpired,
            TrafficGroup::HybridContains,
            TrafficGroup::HybridNoPath,
            TrafficGroup::HybridNoPath56,
        ];
        let total: u64 = groups
            .iter()
            .map(|g| group_spec(*g, &t, &p).connections)
            .sum();
        assert_eq!(total, t.hybrid_connections);
    }

    #[test]
    fn pools_are_disjoint_across_groups() {
        let t = targets();
        let p = CampusProfile::default();
        let a = group_spec(TrafficGroup::HybridComplete, &t, &p).pool;
        let b = group_spec(TrafficGroup::HybridNoPath56, &t, &p).pool;
        let ips_a: std::collections::HashSet<_> = (0..500u64).map(|i| a.public_ip(i)).collect();
        let ips_b: std::collections::HashSet<_> = (0..500u64).map(|i| b.public_ip(i)).collect();
        assert!(ips_a.is_disjoint(&ips_b));
    }

    #[test]
    fn interception_connection_shares_follow_table1() {
        let t = targets();
        let p = CampusProfile::default();
        let security = group_spec(
            TrafficGroup::Interception(InterceptionCategory::SecurityAndNetwork),
            &t,
            &p,
        )
        .connections;
        let corp = group_spec(
            TrafficGroup::Interception(InterceptionCategory::BusinessAndCorporate),
            &t,
            &p,
        )
        .connections;
        let ratio = security as f64 / corp as f64;
        assert!(
            (ratio - 94.74 / 4.99).abs() < 1.0,
            "security/corp connection ratio = {ratio}"
        );
    }

    #[test]
    fn scaled_groups_carry_weights() {
        let t = targets();
        let p = CampusProfile::default();
        let s = group_spec(TrafficGroup::NonPubSingle, &t, &p);
        assert!((s.conn_weight - 1000.0).abs() < 1e-9);
        let h = group_spec(TrafficGroup::HybridContains, &t, &p);
        assert!((h.conn_weight - 1.0).abs() < 1e-9);
    }
}
