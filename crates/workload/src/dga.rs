//! The DGA certificate cluster (§4.3, "Single-certificate chains — Special
//! case").
//!
//! The paper found a cluster of single-certificate chains whose issuer and
//! subject both contain randomly generated domains following one pattern
//! (`www[dot]randomstring[dot]com`), distinct from each other, with validity
//! periods spread uniformly between 4 and 365 days.

use rand::Rng;

/// Generate one DGA-style domain: `www.<random string>.com`.
///
/// The random string alternates consonants and vowels the way classic DGA
/// families do, so the domains look pronounceable-but-meaningless and all
/// match one regular pattern a detector can key on.
pub fn dga_domain(rng: &mut impl Rng, len: usize) -> String {
    const CONSONANTS: &[u8] = b"bcdfghjklmnpqrstvwxz";
    const VOWELS: &[u8] = b"aeiou";
    let mut label = String::with_capacity(len);
    for i in 0..len {
        let set = if i % 2 == 0 { CONSONANTS } else { VOWELS };
        label.push(set[rng.gen_range(0..set.len())] as char);
    }
    format!("www.{label}.com")
}

/// Whether a domain matches the cluster's pattern: `www.<8-16 lowercase
/// alternating letters>.com`.
pub fn matches_dga_pattern(domain: &str) -> bool {
    let Some(rest) = domain.strip_prefix("www.") else {
        return false;
    };
    let Some(label) = rest.strip_suffix(".com") else {
        return false;
    };
    if !(8..=16).contains(&label.len()) {
        return false;
    }
    label.bytes().enumerate().all(|(i, b)| {
        let is_vowel = matches!(b, b'a' | b'e' | b'i' | b'o' | b'u');
        b.is_ascii_lowercase() && (if i % 2 == 0 { !is_vowel } else { is_vowel })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_domains_match_the_pattern() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let len = rng.gen_range(8..=16);
            let d = dga_domain(&mut rng, len);
            assert!(matches_dga_pattern(&d), "{d}");
        }
    }

    #[test]
    fn generated_domains_are_diverse() {
        let mut rng = StdRng::seed_from_u64(2);
        let domains: std::collections::HashSet<String> =
            (0..100).map(|_| dga_domain(&mut rng, 12)).collect();
        assert!(domains.len() > 95);
    }

    #[test]
    fn normal_domains_do_not_match() {
        for d in [
            "www.example.com",    // 'example' breaks alternation
            "www.google.com",     // too short
            "mail.abcdefgh.com",  // wrong prefix
            "www.badomain.org",   // wrong suffix
            "www.BADOMAIN.com",   // uppercase
            "www.www.kazete.com", // nested
        ] {
            assert!(!matches_dga_pattern(d), "{d}");
        }
    }

    #[test]
    fn alternation_pattern_matches_manually_built_domain() {
        assert!(matches_dga_pattern("www.bakelotifu.com"));
        assert!(!matches_dga_pattern("www.bbkelotifu.com"));
    }
}
