//! The non-public-DB-only population (§4.3, Table 8).
//!
//! Bulk sub-populations (self-signed singles, matched multi-cert chains)
//! are scaled by the profile's `chain_scale`; the small tails the paper
//! reports as absolute numbers (the DGA cluster, the 142 contains-path and
//! 87 no-path multi chains, the complex-PKI chains of Figure 7) are
//! generated at full fidelity with weight 1.

use crate::calibration::{CalibrationTargets, CampusProfile};
use crate::dga;
use crate::misconfig;
use crate::pki::{ca_validity, CaHandle, Ecosystem};
use crate::servers::{server_ip, ChainCategory, GeneratedServer, NonPubKind, TrafficGroup};
use certchain_asn1::Asn1Time;
use certchain_cryptosim::KeyPair;
use certchain_x509::{
    BasicConstraints, Certificate, CertificateBuilder, DistinguishedName, Extension, KeyUsage,
    Serial, Validity,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn t(y: u64, m: u64, d: u64) -> Asn1Time {
    Asn1Time::from_ymd_hms(y, m, d, 0, 0, 0).expect("valid date")
}

/// How many servers of each sub-kind to generate for a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonPubCounts {
    /// Scaled self-signed singles.
    pub single_self_signed: usize,
    /// Scaled distinct-issuer singles (excluding the DGA cluster).
    pub single_distinct: usize,
    /// Full-fidelity DGA cluster chains.
    pub dga: usize,
    /// Scaled matched multi-cert chains.
    pub multi_matched: usize,
    /// Full-fidelity contains-a-matched-path chains (Table 8: 142).
    pub multi_contains: usize,
    /// Full-fidelity no-matched-path chains (Table 8: 87).
    pub multi_no_path: usize,
}

impl NonPubCounts {
    /// Derive counts from the calibration targets and profile scale.
    pub fn from_profile(targets: &CalibrationTargets, profile: &CampusProfile) -> NonPubCounts {
        let singles = targets.nonpub_chains as f64 * targets.nonpub_single_share;
        let self_signed = singles * targets.nonpub_single_selfsigned_share;
        let distinct = singles - self_signed;
        let multi = targets.nonpub_chains as f64 - singles;
        let matched =
            multi - targets.nonpub_multi_contains as f64 - targets.nonpub_multi_no_path as f64;
        let scale = profile.chain_scale;
        NonPubCounts {
            single_self_signed: (self_signed * scale).round().max(1.0) as usize,
            single_distinct: (distinct * scale).round().max(1.0) as usize,
            dga: 30,
            multi_matched: (matched * scale).round().max(1.0) as usize,
            multi_contains: targets.nonpub_multi_contains as usize,
            multi_no_path: targets.nonpub_multi_no_path as usize,
        }
    }
}

/// Deterministically spread an index over 0..10_000 so small populations
/// still follow the Table 4 port proportions.
fn mix10k(i: usize) -> usize {
    (i.wrapping_mul(2_654_435_761)) % 10_000
}

/// Port assignment following Table 4's non-public single-cert column.
fn single_port(i: usize) -> u16 {
    match mix10k(i) {
        0..=4628 => 443,
        4629..=6780 => 8888,
        6781..=8688 => 33854,
        8689..=9110 => 13000,
        9111..=9240 => 25,
        9241..=9620 => 8443,
        9621..=9810 => 10443,
        _ => 4443,
    }
}

/// Port assignment following Table 4's non-public multi-cert column.
fn multi_port(i: usize) -> u16 {
    match mix10k(i) {
        0..=8350 => 443,
        8351..=8768 => 8531,
        8769..=9053 => 9093,
        9054..=9234 => 38881,
        9235..=9379 => 6443,
        9380..=9689 => 8080,
        _ => 8444,
    }
}

/// Build a self-signed certificate with controllable basicConstraints
/// presence (§4.3: most non-public certs omit the extension entirely).
fn self_signed_device(
    seed: u64,
    label: &str,
    cn: &str,
    serial: Serial,
    include_bc: bool,
    validity: Validity,
) -> Arc<Certificate> {
    let kp = KeyPair::derive(seed, label);
    let dn = DistinguishedName::cn(cn);
    let mut b = CertificateBuilder::new()
        .serial(serial)
        .issuer(dn.clone())
        .subject(dn)
        .validity(validity);
    if include_bc {
        b = b.extension(Extension::BasicConstraints(BasicConstraints {
            ca: false,
            path_len: None,
        }));
    }
    b.sign(&kp).into_arc()
}

/// A private-PKI CA whose certificate may omit basicConstraints — the
/// §4.3 observation that 78.32% of subsequently-presented non-public certs
/// lack the extension.
fn np_ca(
    seed: u64,
    label: &str,
    dn: DistinguishedName,
    parent: Option<&CaHandle>,
    include_bc: bool,
    serial: Serial,
) -> CaHandle {
    let keypair = KeyPair::derive(seed, label);
    let (issuer_dn, signer) = match parent {
        Some(p) => (p.dn.clone(), p.keypair.clone()),
        None => (dn.clone(), keypair.clone()),
    };
    let mut b = CertificateBuilder::new()
        .serial(serial)
        .issuer(issuer_dn)
        .subject(dn.clone())
        .validity(ca_validity())
        .public_key(keypair.public().clone());
    if include_bc {
        b = b
            .extension(Extension::BasicConstraints(BasicConstraints {
                ca: true,
                path_len: None,
            }))
            .extension(Extension::KeyUsage(KeyUsage::ca()));
    }
    let cert = b.sign(&signer).into_arc();
    CaHandle { dn, keypair, cert }
}

/// A private organization's PKI: root plus a few intermediates.
struct PrivatePki {
    root: CaHandle,
    intermediates: Vec<CaHandle>,
}

fn build_private_pkis(eco: &mut Ecosystem, n: usize, rng: &mut StdRng) -> Vec<PrivatePki> {
    let mut pkis = Vec::with_capacity(n);
    for p in 0..n {
        let org = format!("PrivOrg{p:03}");
        let serial = eco.next_serial();
        let root = np_ca(
            eco.seed,
            &format!("np-root:{org}"),
            DistinguishedName::cn_o(&format!("{org} Root CA"), &org),
            None,
            rng.gen_bool(0.2168), // BC present on 21.68% of subsequent certs
            serial,
        );
        let n_icas = 1 + (p % 3);
        let mut intermediates = Vec::with_capacity(n_icas);
        for k in 0..n_icas {
            let serial = eco.next_serial();
            intermediates.push(np_ca(
                eco.seed,
                &format!("np-ica:{org}:{k}"),
                DistinguishedName::cn_o(&format!("{org} Issuing CA {k}"), &org),
                Some(&root),
                rng.gen_bool(0.2168),
                serial,
            ));
        }
        pkis.push(PrivatePki {
            root,
            intermediates,
        });
    }
    pkis
}

/// Issue a non-public leaf with BC present at the first-presented rate
/// (44.69%).
fn np_leaf(eco: &mut Ecosystem, ca: &CaHandle, domain: &str, rng: &mut StdRng) -> Arc<Certificate> {
    let serial = eco.next_serial();
    let kp = KeyPair::derive(eco.seed, &format!("np-leaf:{domain}:{serial}"));
    let mut b = CertificateBuilder::new()
        .serial(serial)
        .issuer(ca.dn.clone())
        .subject(DistinguishedName::cn(domain))
        .validity(Validity::days_from(
            t(2020, 6, 1),
            365 + (rng.gen_range(0..400)),
        ))
        .public_key(kp.public().clone());
    if rng.gen_bool(0.4469) {
        b = b
            .extension(Extension::BasicConstraints(BasicConstraints {
                ca: false,
                path_len: None,
            }))
            .extension(Extension::SubjectAltName(vec![domain.to_string()]));
    }
    b.sign(&ca.keypair).into_arc()
}

/// Build the whole non-public-DB-only population.
pub fn build(
    eco: &mut Ecosystem,
    base_id: u64,
    counts: NonPubCounts,
    profile: &CampusProfile,
) -> Vec<GeneratedServer> {
    let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x6e6f_6e70); // "nonp"
    let chain_weight = profile.chain_weight();
    let mut out = Vec::new();
    let push = |out: &mut Vec<GeneratedServer>,
                chain: Vec<Arc<Certificate>>,
                kind: NonPubKind,
                weight: f64,
                domain: Option<String>,
                port: u16,
                group: TrafficGroup| {
        let sid = base_id + out.len() as u64;
        out.push(GeneratedServer {
            endpoint: certchain_netsim::ServerEndpoint::new(
                sid,
                server_ip(sid),
                port,
                domain,
                chain,
            ),
            category: ChainCategory::NonPublicOnly(kind),
            weight,
            in_pub_leaf_no_intermediate_group: false,
            group,
        });
    };

    // ---- Self-signed singles (printers, appliances, default vhosts). ----
    for i in 0..counts.single_self_signed {
        let serial = eco.next_serial();
        let include_bc = (i * 10_000 / counts.single_self_signed.max(1)) >= 5531;
        let has_domain = (i * 1000 / counts.single_self_signed.max(1)) >= 867;
        let cn = format!("device-{i:05}.local");
        let cert = self_signed_device(
            eco.seed,
            &format!("np-ss:{i}"),
            &cn,
            serial,
            include_bc,
            Validity::days_from(t(2019, 1, 1), 3650),
        );
        push(
            &mut out,
            vec![cert],
            NonPubKind::SingleSelfSigned,
            chain_weight,
            has_domain.then(|| cn.clone()),
            single_port(i),
            TrafficGroup::NonPubSingle,
        );
    }

    // ---- Distinct-issuer singles (non-DGA). ----
    for i in 0..counts.single_distinct {
        let serial = eco.next_serial();
        let cert = misconfig::orphan_cert(
            eco.seed,
            &format!("np-sd:{i}"),
            &format!("Gateway CA {i}"),
            &format!("gw-{i:04}.internal"),
            serial,
        );
        push(
            &mut out,
            vec![cert],
            NonPubKind::SingleDistinct,
            chain_weight,
            None,
            single_port(i + 17),
            TrafficGroup::NonPubSingle,
        );
    }

    // ---- The DGA cluster (full fidelity; §4.3 special case). ----
    for i in 0..counts.dga {
        let serial = eco.next_serial();
        let issuer_domain = dga::dga_domain(&mut rng, 8 + (i % 9));
        let subject_domain = dga::dga_domain(&mut rng, 8 + ((i + 3) % 9));
        let kp = KeyPair::derive(eco.seed, &format!("dga:{i}"));
        let days = rng.gen_range(4..=365);
        let start = t(2020, 9, 1).plus_days(rng.gen_range(0..300));
        let cert = CertificateBuilder::new()
            .serial(serial)
            .issuer(DistinguishedName::cn(&issuer_domain))
            .subject(DistinguishedName::cn(&subject_domain))
            .validity(Validity::days_from(start, days))
            .public_key(kp.public().clone())
            .sign(&KeyPair::derive(eco.seed, &format!("dga-signer:{i}")))
            .into_arc();
        push(
            &mut out,
            vec![cert],
            NonPubKind::Dga,
            1.0,
            None,
            443,
            TrafficGroup::NonPubDga,
        );
    }

    // ---- The three freak chains (§4.1): unusually long chains of
    // 3,822 / 921 / 41 certificates, each observed exactly once and never
    // established. Modelled as a misconfigured server repeating one
    // self-signed certificate (cheap to ship, still a real length-N
    // delivered chain) — Figure 1 excludes them as outliers.
    for (k, freak_len) in [3_822usize, 921, 41].into_iter().enumerate() {
        let serial = eco.next_serial();
        let cert = self_signed_device(
            eco.seed,
            &format!("np-freak:{k}"),
            &format!("freak-{k}.misconfigured.internal"),
            serial,
            false,
            Validity::days_from(t(2020, 1, 1), 3650),
        );
        let chain = vec![cert; freak_len];
        push(
            &mut out,
            chain,
            NonPubKind::MultiMatched,
            1.0,
            None,
            443,
            TrafficGroup::NonPubFreak,
        );
    }

    // ---- Private PKIs for the multi-cert chains. ----
    let pkis = build_private_pkis(eco, 40, &mut rng);

    // Matched multi-cert chains (scaled). Lengths 2–5 with the §4.3 note
    // that intermediates are linked to at most two other intermediates in
    // the straightforward deployments.
    for i in 0..counts.multi_matched {
        let pki = &pkis[i % (pkis.len() - 2)]; // last 2 PKIs reserved as hubs
        let ica = &pki.intermediates[i % pki.intermediates.len()];
        let domain = format!("svc-{i:04}.corp.internal");
        let leaf = np_leaf(eco, ica, &domain, &mut rng);
        let chain = match i % 20 {
            0..=11 => vec![leaf, Arc::clone(&ica.cert)],
            12..=16 => vec![leaf, Arc::clone(&ica.cert), Arc::clone(&pki.root.cert)],
            17..=18 => {
                // Four-cert chain through a second intermediate tier.
                let serial = eco.next_serial();
                let sub = np_ca(
                    eco.seed,
                    &format!("np-sub:{i}"),
                    DistinguishedName::cn(&format!("Sub CA {i}")),
                    Some(ica),
                    rng.gen_bool(0.2168),
                    serial,
                );
                let leaf2 = np_leaf(eco, &sub, &domain, &mut rng);
                vec![
                    leaf2,
                    Arc::clone(&sub.cert),
                    Arc::clone(&ica.cert),
                    Arc::clone(&pki.root.cert),
                ]
            }
            _ => {
                // Five-cert chain.
                let serial = eco.next_serial();
                let sub = np_ca(
                    eco.seed,
                    &format!("np-sub5a:{i}"),
                    DistinguishedName::cn(&format!("Sub5a CA {i}")),
                    Some(ica),
                    rng.gen_bool(0.2168),
                    serial,
                );
                let serial = eco.next_serial();
                let sub2 = np_ca(
                    eco.seed,
                    &format!("np-sub5b:{i}"),
                    DistinguishedName::cn(&format!("Sub5b CA {i}")),
                    Some(&sub),
                    rng.gen_bool(0.2168),
                    serial,
                );
                let leaf2 = np_leaf(eco, &sub2, &domain, &mut rng);
                vec![
                    leaf2,
                    Arc::clone(&sub2.cert),
                    Arc::clone(&sub.cert),
                    Arc::clone(&ica.cert),
                    Arc::clone(&pki.root.cert),
                ]
            }
        };
        let has_domain = (i * 1000 / counts.multi_matched.max(1)) >= 663;
        push(
            &mut out,
            chain,
            NonPubKind::MultiMatched,
            chain_weight,
            has_domain.then_some(domain),
            multi_port(i),
            TrafficGroup::NonPubMulti,
        );
    }

    // Complex-PKI matched chains (Figure 7): hub intermediates adjacent to
    // ≥3 distinct intermediates across chains. Full fidelity, 12 chains.
    let hub_pki = &pkis[pkis.len() - 1];
    let serial_base: Vec<Serial> = (0..4).map(|_| eco.next_serial()).collect();
    let hub = np_ca(
        eco.seed,
        "np-hub",
        DistinguishedName::cn_o("Hub Issuing CA", "PrivOrgHub"),
        Some(&hub_pki.root),
        true,
        serial_base[0].clone(),
    );
    let spokes: Vec<CaHandle> = (0..4)
        .map(|k| {
            let serial = eco.next_serial();
            np_ca(
                eco.seed,
                &format!("np-spoke:{k}"),
                DistinguishedName::cn_o(&format!("Spoke CA {k}"), "PrivOrgHub"),
                Some(&hub),
                true,
                serial,
            )
        })
        .collect();
    for i in 0..12 {
        let spoke = &spokes[i % spokes.len()];
        let domain = format!("hub-svc-{i}.corp.internal");
        let leaf = np_leaf(eco, spoke, &domain, &mut rng);
        let chain = vec![
            leaf,
            Arc::clone(&spoke.cert),
            Arc::clone(&hub.cert),
            Arc::clone(&hub_pki.root.cert),
        ];
        push(
            &mut out,
            chain,
            NonPubKind::MultiMatched,
            1.0,
            Some(domain),
            multi_port(i),
            TrafficGroup::NonPubMulti,
        );
    }

    // Contains-a-matched-path chains (142, full fidelity): matched path
    // plus a private junk certificate.
    for i in 0..counts.multi_contains {
        let pki = &pkis[i % (pkis.len() - 2)];
        let ica = &pki.intermediates[i % pki.intermediates.len()];
        let domain = format!("extra-{i:03}.corp.internal");
        let leaf = np_leaf(eco, ica, &domain, &mut rng);
        let serial = eco.next_serial();
        let junk = misconfig::self_signed(
            eco.seed,
            &format!("np-junk:{i}"),
            &format!("stale-appliance-{i}.internal"),
            serial,
        );
        let chain = vec![leaf, Arc::clone(&ica.cert), junk];
        push(
            &mut out,
            chain,
            NonPubKind::MultiContains,
            1.0,
            Some(domain),
            multi_port(i + 3),
            TrafficGroup::NonPubMulti,
        );
    }

    // No-matched-path chains (87, full fidelity): the intermediate that
    // issued the leaf is missing.
    for i in 0..counts.multi_no_path {
        let pki = &pkis[i % (pkis.len() - 2)];
        let wrong_ica = &pki.intermediates[0];
        let domain = format!("broken-{i:03}.corp.internal");
        // The leaf claims an issuer that is not in the chain.
        let serial = eco.next_serial();
        let ghost = np_ca(
            eco.seed,
            &format!("np-ghost:{i}"),
            DistinguishedName::cn(&format!("Ghost Issuing CA {i}")),
            Some(&pki.root),
            false,
            serial,
        );
        let leaf = np_leaf(eco, &ghost, &domain, &mut rng);
        let second = if i % 2 == 0 {
            Arc::clone(&wrong_ica.cert)
        } else {
            let serial = eco.next_serial();
            misconfig::orphan_cert(
                eco.seed,
                &format!("np-np:{i}"),
                &format!("Lost CA {i}"),
                &format!("Found CA {i}"),
                serial,
            )
        };
        // Ensure the second certificate really does not match the leaf's
        // issuer: the ghost CA's cert is deliberately not included.
        let chain = vec![leaf, second];
        push(
            &mut out,
            chain,
            NonPubKind::MultiNoPath,
            1.0,
            Some(domain),
            multi_port(i + 7),
            TrafficGroup::NonPubMulti,
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibrationTargets;

    fn population() -> (Ecosystem, Vec<GeneratedServer>, NonPubCounts) {
        let targets = CalibrationTargets::paper();
        let profile = CampusProfile::quick();
        let counts = NonPubCounts::from_profile(&targets, &profile);
        let mut eco = Ecosystem::bootstrap(profile.seed);
        let servers = build(&mut eco, 50_000, counts, &profile);
        (eco, servers, counts)
    }

    fn kind_count(servers: &[GeneratedServer], kind: NonPubKind) -> usize {
        servers
            .iter()
            .filter(|s| s.category == ChainCategory::NonPublicOnly(kind))
            .count()
    }

    #[test]
    fn counts_follow_profile() {
        let (_eco, servers, counts) = population();
        assert_eq!(
            kind_count(&servers, NonPubKind::SingleSelfSigned),
            counts.single_self_signed
        );
        assert_eq!(
            kind_count(&servers, NonPubKind::SingleDistinct),
            counts.single_distinct
        );
        assert_eq!(kind_count(&servers, NonPubKind::Dga), counts.dga);
        assert_eq!(kind_count(&servers, NonPubKind::MultiContains), 142);
        assert_eq!(kind_count(&servers, NonPubKind::MultiNoPath), 87);
    }

    #[test]
    fn weighted_single_share_matches_paper() {
        let (_eco, servers, _) = population();
        let weighted = |pred: &dyn Fn(&GeneratedServer) -> bool| -> f64 {
            servers.iter().filter(|s| pred(s)).map(|s| s.weight).sum()
        };
        let singles = weighted(&|s| {
            matches!(
                s.category,
                ChainCategory::NonPublicOnly(
                    NonPubKind::SingleSelfSigned | NonPubKind::SingleDistinct | NonPubKind::Dga
                )
            )
        });
        let total = weighted(&|_| true);
        let share = singles / total;
        assert!(
            (share - 0.7810).abs() < 0.02,
            "weighted single share = {share}"
        );
    }

    #[test]
    fn all_chains_classify_non_public() {
        let (eco, servers, _) = population();
        for s in servers.iter().take(50) {
            for cert in &s.endpoint.chain {
                assert_eq!(
                    eco.trust.classify(cert),
                    certchain_trust::IssuerClass::NonPublicDb,
                    "cert in {:?} chain",
                    s.category
                );
            }
        }
    }

    #[test]
    fn matched_chains_really_match() {
        let (_eco, servers, _) = population();
        for s in &servers {
            if s.category == ChainCategory::NonPublicOnly(NonPubKind::MultiMatched) {
                let chain = &s.endpoint.chain;
                for i in 0..chain.len() - 1 {
                    assert_eq!(chain[i].issuer, chain[i + 1].subject);
                }
            }
        }
    }

    #[test]
    fn no_path_chains_have_zero_matches() {
        let (_eco, servers, _) = population();
        for s in &servers {
            if s.category == ChainCategory::NonPublicOnly(NonPubKind::MultiNoPath) {
                let chain = &s.endpoint.chain;
                for i in 0..chain.len() - 1 {
                    assert_ne!(chain[i].issuer, chain[i + 1].subject);
                }
            }
        }
    }

    #[test]
    fn dga_chains_match_pattern_and_validity() {
        let (_eco, servers, _) = population();
        for s in &servers {
            if s.category == ChainCategory::NonPublicOnly(NonPubKind::Dga) {
                let cert = &s.endpoint.chain[0];
                let issuer = cert.issuer.common_name().unwrap();
                let subject = cert.subject.common_name().unwrap();
                assert!(dga::matches_dga_pattern(issuer), "{issuer}");
                assert!(dga::matches_dga_pattern(subject), "{subject}");
                assert_ne!(issuer, subject);
                let days = cert.validity.lifetime_days();
                assert!((4..=365).contains(&days), "{days}");
            }
        }
    }

    #[test]
    fn hub_intermediate_links_to_three_plus_spokes() {
        let (_eco, servers, _) = population();
        use std::collections::{HashMap, HashSet};
        // adjacency: for each intermediate (by subject), which distinct
        // intermediate subjects appear adjacent across chains.
        let mut adj: HashMap<String, HashSet<String>> = HashMap::new();
        for s in &servers {
            let chain = &s.endpoint.chain;
            for w in chain.windows(2) {
                let a = w[0].subject.to_rfc4514();
                let b = w[1].subject.to_rfc4514();
                if a.contains("CA") && b.contains("CA") {
                    adj.entry(b.clone()).or_default().insert(a.clone());
                    adj.entry(a).or_default().insert(b);
                }
            }
        }
        // srclint: commutative -- max over set sizes; order-insensitive
        let max_links = adj.values().map(|v| v.len()).max().unwrap_or(0);
        assert!(
            max_links >= 3,
            "hub should link >=3 intermediates, got {max_links}"
        );
    }

    #[test]
    fn bc_omission_rates_roughly_match() {
        let (_eco, servers, _) = population();
        let mut first = (0usize, 0usize);
        let mut subsequent = (0usize, 0usize);
        for s in &servers {
            if s.endpoint.chain_len() > 10 {
                continue; // the freak chains repeat one cert thousands of times
            }
            for (i, cert) in s.endpoint.chain.iter().enumerate() {
                let omitted = cert.basic_constraints().is_none();
                if i == 0 {
                    first.0 += omitted as usize;
                    first.1 += 1;
                } else {
                    subsequent.0 += omitted as usize;
                    subsequent.1 += 1;
                }
            }
        }
        let first_rate = first.0 as f64 / first.1 as f64;
        let subsequent_rate = subsequent.0 as f64 / subsequent.1.max(1) as f64;
        assert!((first_rate - 0.5531).abs() < 0.10, "first = {first_rate}");
        assert!(
            (subsequent_rate - 0.7832).abs() < 0.12,
            "subsequent = {subsequent_rate}"
        );
    }
}
