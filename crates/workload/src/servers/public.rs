//! The public-DB-only background population.
//!
//! The paper reports only this population's chain-length distribution
//! (Figure 1: >60% of public chains are advertised with length 2, since
//! servers usually omit the root). It also supplies the pool of "popular
//! public domains" whose CT records the interception detector
//! cross-references.

use crate::pki::Ecosystem;
use crate::servers::{server_ip, ChainCategory, GeneratedServer, TrafficGroup};
use certchain_asn1::Asn1Time;
use std::sync::Arc;

/// Deterministic synthetic public domain names.
pub fn public_domain(i: usize) -> String {
    const WORDS: [&str; 16] = [
        "news", "video", "cloud", "shop", "mail", "search", "social", "bank", "stream", "game",
        "learn", "travel", "forum", "music", "docs", "photo",
    ];
    format!("{}{}.example.com", WORDS[i % WORDS.len()], i)
}

/// Build `count` public-DB-only servers with Figure-1-shaped chain lengths:
/// 8% length 1 (leaf only, missing intermediate), 62% length 2 (leaf+ICA),
/// 25% length 3 (root included), 5% length 4 (extra intermediate chain).
///
/// Every leaf is CT-logged, which is what lets the interception detector
/// establish the "real" issuer for these domains.
pub fn build(eco: &mut Ecosystem, base_id: u64, count: usize, weight: f64) -> Vec<GeneratedServer> {
    let start = Asn1Time::from_ymd_hms(2020, 8, 1, 0, 0, 0).expect("valid date");
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let family = i % eco.public_cas.len();
        let domain = public_domain(i);
        let leaf = eco.issue_public_leaf(family, &domain, start.plus_days((i % 200) as u64), 397);
        let ica = Arc::clone(&eco.public_cas[family].ica.cert);
        let root = Arc::clone(&eco.public_cas[family].root.cert);
        let chain = match i % 100 {
            // 8%: leaf only (server forgot the intermediate).
            0..=7 => vec![leaf],
            // 62%: the canonical [leaf, intermediate].
            8..=69 => vec![leaf, ica],
            // 25%: root needlessly included.
            70..=94 => vec![leaf, ica, root],
            // 5%: longer chain (cross-signed intermediate added).
            _ => {
                let other = (family + 1) % eco.public_cas.len();
                let extra = Arc::clone(&eco.public_cas[other].ica.cert);
                vec![leaf, ica, root, extra]
            }
        };
        let sid = base_id + i as u64;
        out.push(GeneratedServer {
            endpoint: certchain_netsim::ServerEndpoint::new(
                sid,
                server_ip(sid),
                443,
                Some(domain),
                chain,
            ),
            category: ChainCategory::PublicOnly,
            weight,
            in_pub_leaf_no_intermediate_group: false,
            group: TrafficGroup::PublicOnly,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_distribution_matches_figure1() {
        let mut eco = Ecosystem::bootstrap(3);
        let servers = build(&mut eco, 0, 1000, 100.0);
        assert_eq!(servers.len(), 1000);
        let len2 = servers
            .iter()
            .filter(|s| s.endpoint.chain_len() == 2)
            .count();
        // 62% at length 2.
        assert!((600..=640).contains(&len2), "len2 = {len2}");
        let len1 = servers
            .iter()
            .filter(|s| s.endpoint.chain_len() == 1)
            .count();
        assert!((70..=90).contains(&len1), "len1 = {len1}");
    }

    #[test]
    fn leaves_are_ct_logged() {
        let mut eco = Ecosystem::bootstrap(3);
        let servers = build(&mut eco, 0, 50, 1.0);
        for s in &servers {
            assert!(eco.ct.contains(&s.endpoint.chain[0].fingerprint()));
        }
    }

    #[test]
    fn domains_are_distinct() {
        let domains: std::collections::HashSet<_> = (0..500).map(public_domain).collect();
        assert_eq!(domains.len(), 500);
    }
}
