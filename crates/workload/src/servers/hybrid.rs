//! The full-fidelity hybrid population: exactly the 321 chains of Table 3,
//! with the Table 6 anchored-entity split, the Table 7 no-path breakdown,
//! the 56-chain public-leaf-without-intermediate subgroup, the 14 Fake LE
//! staging chains, and mismatch ratios arranged so 122/215 (56.74%) of the
//! no-path chains sit at ratio ≥ 0.5 (Figure 6).

use crate::issuers::anchored_issuers;
use crate::misconfig;
use crate::pki::{ca_validity, CaHandle, Ecosystem};
use crate::servers::{
    server_ip, ChainCategory, ContainsKind, GeneratedServer, HybridKind, NoPathKind, TrafficGroup,
};
use certchain_asn1::Asn1Time;
use certchain_netsim::ServerEndpoint;
use certchain_x509::{Certificate, DistinguishedName, Validity};
use std::collections::HashMap;
use std::sync::Arc;

fn t(y: u64, m: u64, d: u64) -> Asn1Time {
    Asn1Time::from_ymd_hms(y, m, d, 0, 0, 0).expect("valid date")
}

/// Port assignment for hybrid servers following Table 4's hybrid column.
///
/// Ports are assigned to specific chain indices whose connection volumes
/// (set by the traffic model: complete chains ≈ 590 conns, contains ≈ 288,
/// no-path ≈ 118) land the *connection-weighted* shares near the paper's
/// 97.21% / 1.36% / 1.22% / 0.18% / 0.01% split.
fn hybrid_port(index: usize) -> u16 {
    match index {
        // 8443 ≈ 1.36%: one complete + one contains + one no-path chain.
        3 | 40 | 110 => 8443,
        // 8088 ≈ 1.22%: same shape.
        4 | 41 | 111 => 8088,
        // 25 ≈ 0.18%: one no-path chain.
        112 => 25,
        // 9191 ≈ 0.01%: one (low-volume) no-path chain.
        113 => 9191,
        _ => 443,
    }
}

/// Build (or fetch) the public intermediates the anchored issuers hang off.
fn anchored_public_icas(eco: &mut Ecosystem) -> HashMap<&'static str, CaHandle> {
    let mut out = HashMap::new();
    let specs: [(&'static str, &str); 3] = [
        (
            "Verizon SSP CA A2",
            "Entrust Root Certification Authority - G2",
        ),
        ("KICA Public CA", "GlobalSign Root CA"),
        ("AC Raiz Intermediaria v5", "DigiCert Global Root CA"),
    ];
    for (ica_cn, root_cn) in specs {
        let root = eco
            .public_ca(root_cn)
            .unwrap_or_else(|| panic!("bootstrap created {root_cn}"))
            .root
            .clone();
        let serial = eco.next_serial();
        let ica = CaHandle::issued_by(
            &root,
            eco.seed,
            &format!("anchored-ica:{ica_cn}"),
            DistinguishedName::cn_o(ica_cn, "Public Trust Services"),
            ca_validity(),
            serial,
        );
        eco.trust.add_ccadb_intermediate(Arc::clone(&ica.cert));
        out.insert(ica_cn, ica);
    }
    // The Symantec corporate chains reuse the VeriSign family intermediate.
    let veri = eco
        .public_ca("VeriSign Class 3 Public Primary CA - G5")
        .expect("bootstrap created VeriSign")
        .ica
        .clone();
    out.insert("Symantec Class 3 Secure Server CA - G4", veri);
    out
}

/// Build all 321 hybrid servers. `base_id` namespaces endpoint ids.
pub fn build(eco: &mut Ecosystem, base_id: u64) -> Vec<GeneratedServer> {
    let mut out = Vec::with_capacity(321);
    let icas = anchored_public_icas(eco);

    // ---- (1a) 26 complete paths: non-public leaf anchored to public root.
    for (i, spec) in anchored_issuers().into_iter().enumerate() {
        let public_ica = icas
            .get(spec.public_ica_cn)
            .unwrap_or_else(|| panic!("missing public ICA {}", spec.public_ica_cn))
            .clone();
        let serial = eco.next_serial();
        let signing_ca = CaHandle::issued_by(
            &public_ica,
            eco.seed,
            &format!("anchored-ca:{}", spec.ca_cn),
            DistinguishedName::cn_o(spec.ca_cn, spec.org),
            ca_validity(),
            serial,
        );
        // The first three chains carry expired leaves (§4.2); the longest
        // expired more than 5 years before the window's end.
        let expired = i < 3;
        let validity = if i == 0 {
            Validity::days_from(t(2014, 3, 1), 400) // expired > 5 years
        } else if expired {
            Validity::days_from(t(2018, 6, 1), 365)
        } else {
            Validity::days_from(t(2020, 3, 1), 730)
        };
        let serial = eco.next_serial();
        let leaf = signing_ca.issue_leaf(spec.domain, validity, serial, eco.seed);
        // §4.2: all these leaves are properly CT-logged.
        eco.ct.submit(Arc::clone(&leaf), validity.not_before);
        let chain = vec![
            leaf,
            Arc::clone(&signing_ca.cert),
            Arc::clone(&public_ica.cert),
        ];
        let sid = base_id + out.len() as u64;
        out.push(GeneratedServer {
            endpoint: ServerEndpoint::new(
                sid,
                server_ip(sid),
                hybrid_port(out.len()),
                Some(spec.domain.to_string()),
                chain,
            ),
            category: ChainCategory::Hybrid(HybridKind::CompleteAnchored {
                category: spec.category,
                expired,
            }),
            weight: 1.0,
            in_pub_leaf_no_intermediate_group: false,
            group: if expired {
                TrafficGroup::HybridCompleteExpired
            } else {
                TrafficGroup::HybridComplete
            },
        });
    }

    // ---- (1b) 10 complete paths: public chain + trailing private cert
    // continuing the sequence (Scalyr / Canal+, Appendix F.1).
    let sectigo_root = eco
        .public_ca("AAA Certificate Services")
        .expect("bootstrap created Sectigo")
        .root
        .clone();
    let sectigo_ica = eco
        .public_ca("AAA Certificate Services")
        .expect("bootstrap created Sectigo")
        .ica
        .clone();
    // Second intermediate between the issuing ICA and the root.
    let serial = eco.next_serial();
    let usertrust = CaHandle::issued_by(
        &sectigo_root,
        eco.seed,
        "usertrust-ica",
        DistinguishedName::cn_o("USERTrust RSA Certification Authority", "Sectigo Limited"),
        ca_validity(),
        serial,
    );
    eco.trust
        .add_ccadb_intermediate(Arc::clone(&usertrust.cert));
    // Re-parent the issuing ICA under USERTrust so the chain has two
    // intermediates: leaf ← DV ICA ← USERTrust ← AAA root.
    let serial = eco.next_serial();
    let dv_ica = CaHandle::issued_by(
        &usertrust,
        eco.seed,
        "scalyr-dv-ica",
        sectigo_ica.dn.clone(),
        ca_validity(),
        serial,
    );
    eco.trust.add_ccadb_intermediate(Arc::clone(&dv_ica.cert));
    for i in 0..10u64 {
        let (org, domain) = if i < 5 {
            ("Scalyr", format!("app{}.scalyr.com.test", i + 1))
        } else {
            ("Canal+", format!("backend{}.canal-plus.com.test", i - 4))
        };
        let serial = eco.next_serial();
        let leaf = dv_ica.issue_leaf(
            &domain,
            Validity::days_from(t(2020, 7, 1), 397),
            serial,
            eco.seed,
        );
        eco.ct.submit(Arc::clone(&leaf), t(2020, 7, 1));
        // The trailing private certificate: subject = AAA root's DN
        // (continuing the sequence), issuer = the organization itself.
        let serial = eco.next_serial();
        let trailing = certchain_x509::CertificateBuilder::new()
            .serial(serial)
            .issuer(DistinguishedName::cn_o(org, org))
            .subject(sectigo_root.dn.clone())
            .validity(ca_validity())
            .public_key(
                certchain_cryptosim::KeyPair::derive(eco.seed, &format!("trail:{org}:{i}"))
                    .public()
                    .clone(),
            )
            .sign(&certchain_cryptosim::KeyPair::derive(
                eco.seed,
                &format!("trail-signer:{org}"),
            ))
            .into_arc();
        let chain = vec![
            leaf,
            Arc::clone(&dv_ica.cert),
            Arc::clone(&usertrust.cert),
            trailing,
        ];
        let sid = base_id + out.len() as u64;
        out.push(GeneratedServer {
            endpoint: ServerEndpoint::new(
                sid,
                server_ip(sid),
                hybrid_port(out.len()),
                Some(domain),
                chain,
            ),
            category: ChainCategory::Hybrid(HybridKind::CompletePubToPrv),
            weight: 1.0,
            in_pub_leaf_no_intermediate_group: false,
            group: TrafficGroup::HybridCompleteScalyr,
        });
    }

    // ---- (2) 70 contains-a-complete-path chains with unnecessary certs.
    build_contains(eco, &mut out, base_id);

    // ---- (3) 215 no-complete-path chains (Table 7).
    build_no_path(eco, &mut out, base_id);

    assert_eq!(out.len(), 321, "hybrid population must match Table 3");
    out
}

/// A valid public chain `[leaf, ica]` for `domain` from family `family_idx`.
fn public_pair(
    eco: &mut Ecosystem,
    family_idx: usize,
    domain: &str,
    start: Asn1Time,
) -> Vec<Arc<Certificate>> {
    let leaf = eco.issue_public_leaf(family_idx, domain, start, 397);
    let ica = Arc::clone(&eco.public_cas[family_idx].ica.cert);
    vec![leaf, ica]
}

#[allow(clippy::too_many_arguments)] // internal helper threading the full generator state through
fn push_server(
    out: &mut Vec<GeneratedServer>,
    base_id: u64,
    port: u16,
    domain: Option<String>,
    chain: Vec<Arc<Certificate>>,
    kind: HybridKind,
    group: TrafficGroup,
    in_56: bool,
) {
    let sid = base_id + out.len() as u64;
    out.push(GeneratedServer {
        endpoint: ServerEndpoint::new(sid, server_ip(sid), port, domain, chain),
        category: ChainCategory::Hybrid(kind),
        weight: 1.0,
        in_pub_leaf_no_intermediate_group: in_56,
        group,
    });
}

fn build_contains(eco: &mut Ecosystem, out: &mut Vec<GeneratedServer>, base_id: u64) {
    let start = t(2020, 8, 1);
    // 14 Fake LE staging chains, each a distinct domain on Let's Encrypt.
    let le_idx = 0usize;
    for i in 0..14u64 {
        let domain = format!("staging{}.example.org", i + 1);
        let mut chain = public_pair(eco, le_idx, &domain, start);
        // Complete path up to the LE root, then the staging placeholder.
        chain.push(Arc::clone(&eco.public_cas[le_idx].root.cert));
        let serial = eco.next_serial();
        let chain = misconfig::append_unnecessary(
            &chain,
            misconfig::fake_le_staging_cert(eco.seed, serial),
        );
        push_server(
            out,
            base_id,
            hybrid_port(out.len()),
            Some(domain),
            chain,
            HybridKind::ContainsPath(ContainsKind::FakeLeStaging),
            TrafficGroup::HybridContains,
            false,
        );
    }
    // 20 with appended corporate self-signed certs (HP tester & friends).
    for i in 0..20u64 {
        let family = 1 + (i as usize % 4); // DigiCert/Sectigo/COMODO/GoDaddy
        let domain = format!("corp{}.example.com", i + 1);
        let base = public_pair(eco, family, &domain, start);
        let serial = eco.next_serial();
        let junk = if i == 0 {
            // The paper's literal HP `CN=tester` example
            // (webauth.hpconnected.com).
            misconfig::hp_tester_cert(eco.seed, serial)
        } else {
            misconfig::self_signed(
                eco.seed,
                &format!("corp-junk:{i}"),
                &format!("internal-appliance-{i}.corp"),
                serial,
            )
        };
        let chain = misconfig::append_unnecessary(&base, junk);
        push_server(
            out,
            base_id,
            hybrid_port(out.len()),
            Some(domain),
            chain,
            HybridKind::ContainsPath(ContainsKind::AppendedSelfSigned),
            TrafficGroup::HybridContains,
            false,
        );
    }
    // 12 with extra roots from unrelated public CAs appended. These chains
    // are the long tail of Figure 4 (lengths up to ~6).
    for i in 0..12u64 {
        let family = 1 + (i as usize % 4);
        let domain = format!("multiroot{}.example.com", i + 1);
        let mut chain = public_pair(eco, family, &domain, start);
        chain.push(Arc::clone(&eco.public_cas[family].root.cert));
        let extras = 1 + (i as usize % 3);
        for k in 0..extras {
            let other = (family + k + 1) % eco.public_cas.len();
            chain.push(Arc::clone(&eco.public_cas[other].root.cert));
        }
        // The appended roots are public-DB certs, so the chain is only
        // hybrid if a non-public cert is present too; half of these also
        // carry an Athenz-style cert, the rest a private self-signed one.
        let serial = eco.next_serial();
        let junk = if i % 2 == 0 {
            misconfig::athenz_cert(eco.seed, serial, &format!("svc{i}"))
        } else {
            misconfig::self_signed(eco.seed, &format!("mr-junk:{i}"), "appliance.local", serial)
        };
        chain.push(junk);
        push_server(
            out,
            base_id,
            hybrid_port(out.len()),
            Some(domain),
            chain,
            HybridKind::ContainsPath(ContainsKind::AppendedRoots),
            TrafficGroup::HybridContains,
            false,
        );
    }
    // 12 with Athenz service certs appended (misconfigured tooling).
    for i in 0..12u64 {
        let family = (i as usize) % eco.public_cas.len();
        let domain = format!("athenz{}.example.net", i + 1);
        let base = public_pair(eco, family, &domain, start);
        let serial = eco.next_serial();
        let chain = misconfig::append_unnecessary(
            &base,
            misconfig::athenz_cert(eco.seed, serial, &format!("prod{i}")),
        );
        push_server(
            out,
            base_id,
            hybrid_port(out.len()),
            Some(domain),
            chain,
            HybridKind::ContainsPath(ContainsKind::AppendedAthenz),
            TrafficGroup::HybridContains,
            false,
        );
    }
    // 12 with a stray leaf *before* the complete matched path.
    for i in 0..12u64 {
        let family = (i as usize) % eco.public_cas.len();
        let domain = format!("strayleaf{}.example.net", i + 1);
        let base = public_pair(eco, family, &domain, start);
        let serial = eco.next_serial();
        let stray = misconfig::self_signed(
            eco.seed,
            &format!("stray:{i}"),
            &format!("old-{domain}"),
            serial,
        );
        let chain = misconfig::prepend_stray_leaf(&base, stray);
        push_server(
            out,
            base_id,
            hybrid_port(out.len()),
            Some(domain),
            chain,
            HybridKind::ContainsPath(ContainsKind::LeadingStrayLeaf),
            TrafficGroup::HybridContains,
            false,
        );
    }
}

fn build_no_path(eco: &mut Ecosystem, out: &mut Vec<GeneratedServer>, base_id: u64) {
    let start = t(2020, 8, 1);

    // ---- Row 1: 108 self-signed leaf + mismatched pairs. 100 use the
    // localhost DN; 55 of the 108 have fully mismatched tails (ratio 1.0)
    // and 53 have mostly-matching tails (ratio 0.4), so that together with
    // rows 3, 5 and 6 exactly 122/215 = 56.74% of no-path chains have a
    // mismatch ratio >= 0.5 (Figure 6).
    for i in 0..108u64 {
        let serial = eco.next_serial();
        let leaf = if i < 100 {
            misconfig::localhost_leaf(eco.seed.wrapping_add(i), serial)
        } else {
            misconfig::self_signed(
                eco.seed,
                &format!("ssleaf:{i}"),
                &format!("device-{i}.internal"),
                serial,
            )
        };
        let family = (i as usize) % eco.public_cas.len();
        let chain = if i < 55 {
            // [ss-leaf, public ICA] — one mismatched pair, ratio 1.0.
            vec![leaf, Arc::clone(&eco.public_cas[family].ica.cert)]
        } else {
            // [ss-leaf, A1, A2, A3, A4, X]: the A-chain matches downward
            // (A1←A2←A3←A4) but X breaks the tail, so the rest is NOT a
            // valid sub-chain (keeping this out of Table 7 row 2) and the
            // mismatch ratio is 2/5 = 0.4 < 0.5 (Figure 6's left mass).
            let root_handle = eco.public_cas[family].root.clone();
            let serial = eco.next_serial();
            let a4 = CaHandle::issued_by(
                &root_handle,
                eco.seed,
                &format!("row1-a4:{i}"),
                DistinguishedName::cn(&format!("Row1 A4 CA {i}")),
                ca_validity(),
                serial,
            );
            let serial = eco.next_serial();
            let a3 = CaHandle::issued_by(
                &a4,
                eco.seed,
                &format!("row1-a3:{i}"),
                DistinguishedName::cn(&format!("Row1 A3 CA {i}")),
                ca_validity(),
                serial,
            );
            let serial = eco.next_serial();
            let a2 = CaHandle::issued_by(
                &a3,
                eco.seed,
                &format!("row1-a2:{i}"),
                DistinguishedName::cn(&format!("Row1 A2 CA {i}")),
                ca_validity(),
                serial,
            );
            let serial = eco.next_serial();
            let a1 = CaHandle::issued_by(
                &a2,
                eco.seed,
                &format!("row1-a1:{i}"),
                DistinguishedName::cn(&format!("Row1 A1 CA {i}")),
                ca_validity(),
                serial,
            );
            let serial = eco.next_serial();
            let junk = misconfig::orphan_cert(
                eco.seed,
                &format!("row1-x:{i}"),
                &format!("Row1 X Issuer {i}"),
                &format!("Row1 X Subject {i}"),
                serial,
            );
            vec![
                leaf,
                Arc::clone(&a1.cert),
                Arc::clone(&a2.cert),
                Arc::clone(&a3.cert),
                Arc::clone(&a4.cert),
                junk,
            ]
        };
        push_server(
            out,
            base_id,
            hybrid_port(out.len()),
            Some(format!("nopath-ss{}.internal.test", i + 1)),
            chain,
            HybridKind::NoPath(NoPathKind::SelfSignedLeafMismatches),
            TrafficGroup::HybridNoPath,
            false,
        );
    }

    // ---- Row 2: 13 self-signed leaf + valid sub-chain (ratio 1/3).
    for i in 0..13u64 {
        let family = (i as usize) % eco.public_cas.len();
        let serial = eco.next_serial();
        let ss = misconfig::self_signed(
            eco.seed,
            &format!("row2:{i}"),
            &format!("replaced-{i}.example.org"),
            serial,
        );
        // Valid sub-chain: [ICA, root] plus a mid CA for length/ratio.
        let serial2 = eco.next_serial();
        let mid = CaHandle::issued_by(
            &eco.public_cas[family].root.clone(),
            eco.seed,
            &format!("row2-mid:{i}"),
            DistinguishedName::cn(&format!("Row2 Mid CA {i}")),
            ca_validity(),
            serial2,
        );
        let serial3 = eco.next_serial();
        let inner = CaHandle::issued_by(
            &mid,
            eco.seed,
            &format!("row2-inner:{i}"),
            DistinguishedName::cn(&format!("Row2 Inner CA {i}")),
            ca_validity(),
            serial3,
        );
        let chain = vec![
            ss,
            Arc::clone(&inner.cert),
            Arc::clone(&mid.cert),
            Arc::clone(&eco.public_cas[family].root.cert),
        ];
        push_server(
            out,
            base_id,
            hybrid_port(out.len()),
            Some(format!("row2-{}.example.org", i + 1)),
            chain,
            HybridKind::NoPath(NoPathKind::SelfSignedLeafValidSubchain),
            TrafficGroup::HybridNoPath,
            false,
        );
    }

    // ---- Row 3: 61 all-mismatched (ratio 1.0). 40 carry a public-DB
    // leaf with no issuing intermediate (the 56-group's larger half).
    for i in 0..61u64 {
        let family = (i as usize) % eco.public_cas.len();
        let other = (family + 2) % eco.public_cas.len();
        let in_56 = i < 40;
        let domain = format!("row3-{}.example.org", i + 1);
        let chain = if in_56 {
            // Public leaf, then certs that do not issue it.
            let leaf = eco.issue_public_leaf(family, &domain, start, 397);
            let serial = eco.next_serial();
            let junk = misconfig::orphan_cert(
                eco.seed,
                &format!("row3-junk:{i}"),
                &format!("Unrelated Issuer {i}"),
                &format!("Unrelated Subject {i}"),
                serial,
            );
            vec![leaf, junk, Arc::clone(&eco.public_cas[other].root.cert)]
        } else {
            // Non-public leaf + non-issuing public certs.
            let serial = eco.next_serial();
            let leaf = misconfig::orphan_cert(
                eco.seed,
                &format!("row3-leaf:{i}"),
                &format!("Ghost CA {i}"),
                &domain,
                serial,
            );
            vec![
                leaf,
                Arc::clone(&eco.public_cas[other].ica.cert),
                Arc::clone(&eco.public_cas[family].root.cert),
            ]
        };
        push_server(
            out,
            base_id,
            hybrid_port(out.len()),
            Some(domain),
            chain,
            HybridKind::NoPath(NoPathKind::AllMismatched),
            if in_56 {
                TrafficGroup::HybridNoPath56
            } else {
                TrafficGroup::HybridNoPath
            },
            in_56,
        );
    }

    // ---- Row 4: 27 partial mismatches (ratio 1/4 < 0.5). 16 carry a
    // public leaf with no issuing intermediate (the 56-group's remainder).
    for i in 0..27u64 {
        let family = (i as usize) % eco.public_cas.len();
        let in_56 = i < 16;
        let domain = format!("row4-{}.example.org", i + 1);
        let serial = eco.next_serial();
        let mid2 = CaHandle::issued_by(
            &eco.public_cas[family].ica.clone(),
            eco.seed,
            &format!("row4-i2:{i}"),
            DistinguishedName::cn(&format!("Row4 I2 CA {i}")),
            ca_validity(),
            serial,
        );
        let serial = eco.next_serial();
        let mid1 = CaHandle::issued_by(
            &mid2,
            eco.seed,
            &format!("row4-i1:{i}"),
            DistinguishedName::cn(&format!("Row4 I1 CA {i}")),
            ca_validity(),
            serial,
        );
        let serial = eco.next_serial();
        let inner = CaHandle::issued_by(
            &mid1,
            eco.seed,
            &format!("row4-inner:{i}"),
            DistinguishedName::cn(&format!("Row4 Inner CA {i}")),
            ca_validity(),
            serial,
        );
        let leaf = if in_56 {
            eco.issue_public_leaf(family, &domain, start, 397)
        } else {
            let serial = eco.next_serial();
            misconfig::orphan_cert(
                eco.seed,
                &format!("row4-leaf:{i}"),
                &format!("Phantom CA {i}"),
                &domain,
                serial,
            )
        };
        // [leaf, C1, C2, C3]: X ✓ ✓ → ratio 1/3 < 0.5. The matched run
        // consists purely of CA certificates, so no complete matched path
        // (which must start at an end-entity certificate) exists.
        let chain = vec![
            leaf,
            Arc::clone(&inner.cert),
            Arc::clone(&mid1.cert),
            Arc::clone(&mid2.cert),
        ];
        push_server(
            out,
            base_id,
            hybrid_port(out.len()),
            Some(domain),
            chain,
            HybridKind::NoPath(NoPathKind::PartialMismatched),
            if in_56 {
                TrafficGroup::HybridNoPath56
            } else {
                TrafficGroup::HybridNoPath
            },
            in_56,
        );
    }

    // ---- Row 5: 5 chains with a non-public root appended to a truncated
    // public sub-chain: [leaf, I2, I3, prv-root] where the leaf's issuing
    // intermediate I1 is missing → X ✓ X (ratio 2/3).
    for i in 0..5u64 {
        let family = (i as usize) % eco.public_cas.len();
        let domain = format!("row5-{}.example.org", i + 1);
        // The sub-chain's top issuer is the family *intermediate*, so the
        // path is truncated: nothing presented or in a root store issues
        // `mid` directly — that is what makes this row no-complete-path.
        let serial = eco.next_serial();
        let mid = CaHandle::issued_by(
            &eco.public_cas[family].ica.clone(),
            eco.seed,
            &format!("row5-mid:{i}"),
            DistinguishedName::cn(&format!("Row5 Mid CA {i}")),
            ca_validity(),
            serial,
        );
        let serial = eco.next_serial();
        let issuing = CaHandle::issued_by(
            &mid,
            eco.seed,
            &format!("row5-issuing:{i}"),
            DistinguishedName::cn(&format!("Row5 Issuing CA {i}")),
            ca_validity(),
            serial,
        );
        let serial = eco.next_serial();
        let missing_i1 = CaHandle::issued_by(
            &issuing,
            eco.seed,
            &format!("row5-missing-i1:{i}"),
            DistinguishedName::cn(&format!("Row5 Missing I1 CA {i}")),
            ca_validity(),
            serial,
        );
        let serial = eco.next_serial();
        let leaf =
            missing_i1.issue_leaf(&domain, Validity::days_from(start, 365), serial, eco.seed);
        let serial = eco.next_serial();
        let prv = misconfig::private_root(eco.seed, &format!("row5-prv:{i}"), "Shadow IT", serial);
        // Truncated at the bottom (the leaf's issuer is absent) and capped
        // with a private root: X ✓ X.
        let chain = vec![
            leaf,
            Arc::clone(&issuing.cert),
            Arc::clone(&mid.cert),
            Arc::clone(&prv.cert),
        ];
        push_server(
            out,
            base_id,
            hybrid_port(out.len()),
            Some(domain),
            chain,
            HybridKind::NoPath(NoPathKind::RootAppended),
            TrafficGroup::HybridNoPath,
            false,
        );
    }

    // ---- Row 6: 1 chain with a non-public root and mismatches everywhere
    // (ratio 1.0): [orphan, prv-root, public root].
    {
        let serial = eco.next_serial();
        let orphan = misconfig::orphan_cert(
            eco.seed,
            "row6-orphan",
            "Lost Issuer",
            "row6.example.org",
            serial,
        );
        let serial = eco.next_serial();
        let prv = misconfig::private_root(eco.seed, "row6-prv", "Rogue Ops", serial);
        let chain = vec![
            orphan,
            Arc::clone(&prv.cert),
            Arc::clone(&eco.public_cas[0].root.cert),
        ];
        push_server(
            out,
            base_id,
            hybrid_port(out.len()),
            Some("row6.example.org".to_string()),
            chain,
            HybridKind::NoPath(NoPathKind::RootAndMismatches),
            TrafficGroup::HybridNoPath,
            false,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::issuers::AnchoredCategory;

    fn population() -> (Ecosystem, Vec<GeneratedServer>) {
        let mut eco = Ecosystem::bootstrap(99);
        let servers = build(&mut eco, 10_000);
        (eco, servers)
    }

    fn count_kind(servers: &[GeneratedServer], f: impl Fn(&HybridKind) -> bool) -> usize {
        servers
            .iter()
            .filter(|s| matches!(&s.category, ChainCategory::Hybrid(k) if f(k)))
            .count()
    }

    #[test]
    fn table3_counts() {
        let (_eco, servers) = population();
        assert_eq!(servers.len(), 321);
        assert_eq!(
            count_kind(&servers, |k| matches!(
                k,
                HybridKind::CompleteAnchored { .. }
            )),
            26
        );
        assert_eq!(
            count_kind(&servers, |k| matches!(k, HybridKind::CompletePubToPrv)),
            10
        );
        assert_eq!(
            count_kind(&servers, |k| matches!(k, HybridKind::ContainsPath(_))),
            70
        );
        assert_eq!(
            count_kind(&servers, |k| matches!(k, HybridKind::NoPath(_))),
            215
        );
    }

    #[test]
    fn table6_and_expired_counts() {
        let (_eco, servers) = population();
        let mut corp = 0;
        let mut gov = 0;
        let mut expired = 0;
        for s in &servers {
            if let ChainCategory::Hybrid(HybridKind::CompleteAnchored {
                category,
                expired: e,
            }) = s.category
            {
                match category {
                    AnchoredCategory::Corporate => corp += 1,
                    AnchoredCategory::Government => gov += 1,
                }
                if e {
                    expired += 1;
                }
            }
        }
        assert_eq!(corp, 10);
        assert_eq!(gov, 16);
        assert_eq!(expired, 3);
    }

    #[test]
    fn table7_counts() {
        let (_eco, servers) = population();
        let count = |kind: NoPathKind| {
            count_kind(
                &servers,
                |k| matches!(k, HybridKind::NoPath(n) if *n == kind),
            )
        };
        assert_eq!(count(NoPathKind::SelfSignedLeafMismatches), 108);
        assert_eq!(count(NoPathKind::SelfSignedLeafValidSubchain), 13);
        assert_eq!(count(NoPathKind::AllMismatched), 61);
        assert_eq!(count(NoPathKind::PartialMismatched), 27);
        assert_eq!(count(NoPathKind::RootAppended), 5);
        assert_eq!(count(NoPathKind::RootAndMismatches), 1);
    }

    #[test]
    fn fifty_six_group() {
        let (_eco, servers) = population();
        let in_56 = servers
            .iter()
            .filter(|s| s.in_pub_leaf_no_intermediate_group)
            .count();
        assert_eq!(in_56, 56);
    }

    #[test]
    fn anchored_leaves_are_ct_logged_and_chains_are_hybrid() {
        let (eco, servers) = population();
        for s in &servers {
            if let ChainCategory::Hybrid(HybridKind::CompleteAnchored { .. }) = s.category {
                let leaf = &s.endpoint.chain[0];
                assert!(
                    eco.ct.contains(&leaf.fingerprint()),
                    "leaf must be CT-logged"
                );
                // Leaf issued by a non-public issuer...
                assert_eq!(
                    eco.trust.classify(leaf),
                    certchain_trust::IssuerClass::NonPublicDb
                );
                // ...while the signing CA's own cert is public-DB-issued.
                assert_eq!(
                    eco.trust.classify(&s.endpoint.chain[1]),
                    certchain_trust::IssuerClass::PublicDb
                );
            }
        }
    }

    #[test]
    fn scalyr_chains_continue_the_sequence() {
        let (_eco, servers) = population();
        for s in &servers {
            if matches!(
                s.category,
                ChainCategory::Hybrid(HybridKind::CompletePubToPrv)
            ) {
                let chain = &s.endpoint.chain;
                assert_eq!(chain.len(), 4);
                for i in 0..3 {
                    assert_eq!(
                        chain[i].issuer,
                        chain[i + 1].subject,
                        "every adjacent pair matches (that is the point)"
                    );
                }
                // The trailing certificate has a different issuer.
                assert_ne!(chain[3].issuer, chain[3].subject);
            }
        }
    }

    #[test]
    fn fake_le_chains_present() {
        let (_eco, servers) = population();
        let fake = servers
            .iter()
            .filter(|s| {
                s.endpoint
                    .chain
                    .iter()
                    .any(|c| c.subject.common_name() == Some("Fake LE Intermediate X1"))
            })
            .count();
        assert_eq!(fake, 14);
    }

    #[test]
    fn deterministic_generation() {
        let mut eco_a = Ecosystem::bootstrap(5);
        let a = build(&mut eco_a, 0);
        let mut eco_b = Ecosystem::bootstrap(5);
        let b = build(&mut eco_b, 0);
        for (x, y) in a.iter().zip(&b) {
            let fx: Vec<_> = x.endpoint.chain.iter().map(|c| c.fingerprint()).collect();
            let fy: Vec<_> = y.endpoint.chain.iter().map(|c| c.fingerprint()).collect();
            assert_eq!(fx, fy);
        }
    }
}
