//! Server-population builders, one per chain category.
//!
//! Every builder returns [`GeneratedServer`]s carrying the ground-truth
//! label, the statistical weight, and the traffic group the volume model
//! uses. The analysis pipeline never sees these labels; integration tests
//! use them to score the pipeline's classifications.

pub mod hybrid;
pub mod nonpub;
pub mod public;

use crate::issuers::{AnchoredCategory, InterceptionCategory};
use certchain_netsim::ServerEndpoint;
use std::net::Ipv4Addr;

/// Ground-truth chain category (what the generator actually built).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainCategory {
    /// All certificates issued by public-DB issuers.
    PublicOnly,
    /// All certificates from non-public-DB issuers.
    NonPublicOnly(NonPubKind),
    /// Mixed issuers.
    Hybrid(HybridKind),
    /// Delivered by a TLS-interception middlebox.
    Interception(InterceptionCategory),
}

/// Sub-kinds of non-public-DB-only chains (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NonPubKind {
    /// One self-signed certificate.
    SingleSelfSigned,
    /// One certificate with distinct issuer and subject.
    SingleDistinct,
    /// The DGA cluster (a special case of SingleDistinct).
    Dga,
    /// Multi-certificate chain forming a complete matched path.
    MultiMatched,
    /// Multi-certificate chain containing a matched path plus extras.
    MultiContains,
    /// Multi-certificate chain with no matched path.
    MultiNoPath,
}

/// Sub-kinds of hybrid chains (Tables 3, 6, 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HybridKind {
    /// Complete path: non-public leaf anchored to a public root (Table 6).
    /// `expired` marks the 3 chains whose leaf had expired.
    CompleteAnchored {
        category: AnchoredCategory,
        expired: bool,
    },
    /// Complete path: public leaf + intermediates followed by a private
    /// certificate continuing the subject/issuer sequence (Scalyr/Canal+).
    CompletePubToPrv,
    /// Contains a complete matched path plus unnecessary certificates.
    ContainsPath(ContainsKind),
    /// No complete matched path (Table 7).
    NoPath(NoPathKind),
}

/// What kind of unnecessary certificate pollutes a contains-path chain
/// (Appendix F.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainsKind {
    /// `Fake LE Intermediate X1` staging certificate appended (14 chains).
    FakeLeStaging,
    /// Corporate self-signed certificate appended (HP `tester` etc.).
    AppendedSelfSigned,
    /// Extra root certificates from unrelated public CAs appended.
    AppendedRoots,
    /// Athenz service certificates appended by misconfigured software.
    AppendedAthenz,
    /// Stray leaf prepended before the complete matched path.
    LeadingStrayLeaf,
}

/// Table 7 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoPathKind {
    /// Self-signed leaf followed by mismatched pairs (108 chains).
    SelfSignedLeafMismatches,
    /// Self-signed leaf followed by a valid sub-chain (13 chains).
    SelfSignedLeafValidSubchain,
    /// Every issuer–subject pair mismatched (61 chains).
    AllMismatched,
    /// Some pairs match but no complete path (27 chains).
    PartialMismatched,
    /// Non-public root appended to a truncated public sub-chain (5 chains).
    RootAppended,
    /// Non-public root plus mismatched pairs (1 chain).
    RootAndMismatches,
}

/// Traffic group: selects the volume/mix parameters in `traffic.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficGroup {
    PublicOnly,
    HybridComplete,
    HybridCompleteExpired,
    HybridCompleteScalyr,
    HybridContains,
    HybridNoPath,
    HybridNoPath56,
    NonPubSingle,
    NonPubDga,
    NonPubMulti,
    /// The three freak-length chains of §4.1: one unestablished
    /// connection each.
    NonPubFreak,
    Interception(InterceptionCategory),
}

/// One generated server plus its labels.
#[derive(Debug, Clone)]
pub struct GeneratedServer {
    /// The endpoint as the network simulator sees it.
    pub endpoint: ServerEndpoint,
    /// Ground-truth category.
    pub category: ChainCategory,
    /// Statistical weight: how many paper-scale chains this generated chain
    /// represents (1.0 for full-fidelity populations).
    pub weight: f64,
    /// Member of the 56-chain "public leaf without issuing intermediate"
    /// subgroup (§4.2).
    pub in_pub_leaf_no_intermediate_group: bool,
    /// Traffic group.
    pub group: TrafficGroup,
}

/// Allocate server IPs from TEST-NET-3-like space, deterministic by id.
pub fn server_ip(id: u64) -> Ipv4Addr {
    // 45.0.0.0/8-style synthetic space, skipping .0 and .255 host octets.
    let a = 45u8;
    let b = ((id >> 12) & 0xff) as u8;
    let c = ((id >> 6) & 0x3f) as u8 * 4 + 1;
    let d = ((id & 0x3f) as u8) * 4 + 1;
    Ipv4Addr::new(a, b, c, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_ips_are_stable_and_distinct_enough() {
        assert_eq!(server_ip(1), server_ip(1));
        let ips: std::collections::HashSet<_> = (0u64..4096).map(server_ip).collect();
        assert_eq!(ips.len(), 4096);
    }
}
