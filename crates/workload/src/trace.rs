//! Trace assembly: populations + volume model → Zeek-shaped logs.

use crate::calibration::{CalibrationTargets, CampusProfile};
use crate::interception::{self, InterceptionCounts};
use crate::pki::Ecosystem;
use crate::servers::{hybrid, nonpub, public, GeneratedServer, TrafficGroup};
use crate::traffic::{group_spec, GroupSpec};
use certchain_asn1::Asn1Time;
use certchain_ctlog::DomainIndex;
use certchain_netsim::handshake::record_connection;
use certchain_netsim::{Client, SimClock, SslRecord, TlsVersion, X509Record};

use certchain_x509::{DistinguishedName, Fingerprint};
use std::collections::{BTreeMap, HashMap, HashSet};

pub use crate::servers::{ChainCategory, ContainsKind, HybridKind, NoPathKind, NonPubKind};

/// Reporting sidecar for one connection record: which server produced it
/// and how many paper-scale connections it represents. The analysis
/// pipeline itself never reads this — it exists so experiment reports can
/// rescale to paper numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnMeta {
    /// Index into [`CampusTrace::servers`].
    pub server_idx: usize,
    /// Statistical weight of this record.
    pub weight: f64,
}

/// Ground truth: generator-side labels for scoring the analysis pipeline.
#[derive(Debug, Default)]
pub struct GroundTruth {
    /// Delivered-chain fingerprints → server index.
    pub by_chain: HashMap<Vec<Fingerprint>, usize>,
}

/// The complete synthetic campus trace.
#[derive(Debug)]
pub struct CampusTrace {
    /// Profile used.
    pub profile: CampusProfile,
    /// Paper targets (for reporting).
    pub targets: CalibrationTargets,
    /// ssl.log records.
    pub ssl_records: Vec<SslRecord>,
    /// Per-record sidecar, aligned with `ssl_records`.
    pub conn_meta: Vec<ConnMeta>,
    /// x509.log records, one per distinct certificate.
    pub x509_records: Vec<X509Record>,
    /// The generated server population with ground-truth labels.
    pub servers: Vec<GeneratedServer>,
    /// The full PKI ecosystem (trust databases, CT log, CA keys — the
    /// latter are what the §5 evolution operators re-issue with).
    pub eco: Ecosystem,
    /// crt.sh-style domain index over the CT log.
    pub ct_index: DomainIndex,
    /// Publicly disclosed cross-signing relationships.
    pub cross_sign_disclosures: Vec<(DistinguishedName, DistinguishedName)>,
    /// Ground-truth labels.
    pub truth: GroundTruth,
}

impl CampusTrace {
    /// Generate the full trace for `profile` using all available cores.
    ///
    /// Shorthand for [`CampusTrace::generate_with`] with `threads = 0`; the
    /// produced trace is identical for every thread count.
    pub fn generate(profile: CampusProfile) -> CampusTrace {
        CampusTrace::generate_with(profile, 0)
    }

    /// Generate the full trace for `profile` on `threads` worker threads
    /// (`0` = available parallelism, `1` = fully sequential).
    ///
    /// Population building mutates the PKI ecosystem and stays sequential.
    /// Connection emission, however, is a pure function of the connection's
    /// global `uid` and its index within its traffic group, so it is
    /// decomposed into one work item per server with precomputed index
    /// offsets (prefix sums over the sequential emission order) and sharded
    /// contiguously across threads. Shards are merged back in work-item
    /// order, so the result is identical to the sequential trace for any
    /// thread count.
    pub fn generate_with(profile: CampusProfile, threads: usize) -> CampusTrace {
        let threads = resolve_threads(threads);
        let targets = CalibrationTargets::paper();
        let mut eco = Ecosystem::bootstrap(profile.seed);

        // Build the populations. Public first: the CT index must know the
        // "real" issuers of the domains interception middleboxes forge.
        let public_weight = (targets.total_chains as f64
            * (1.0
                - targets.share_nonpub_only
                - targets.share_hybrid
                - targets.share_interception))
            / profile.public_chains.max(1) as f64;
        let mut servers = public::build(&mut eco, 0, profile.public_chains, public_weight);
        servers.extend(hybrid::build(&mut eco, 100_000));
        let np_counts = nonpub::NonPubCounts::from_profile(&targets, &profile);
        servers.extend(nonpub::build(&mut eco, 200_000, np_counts, &profile));
        let ic_counts = InterceptionCounts::from_profile(&targets, &profile);
        servers.extend(interception::build(
            &mut eco,
            400_000,
            ic_counts,
            &profile,
            profile.public_chains,
        ));

        // Volume model: group servers, then emit connections.
        let mut by_group: BTreeMap<TrafficGroup, Vec<usize>> = BTreeMap::new();
        for (idx, s) in servers.iter().enumerate() {
            by_group.entry(s.group).or_default().push(idx);
        }

        // Flatten the volume model into per-server work items carrying
        // their `uid` / in-group index offsets. Each server appears in
        // exactly one item, so a per-shard validation-outcome cache hits
        // exactly as often as the sequential one.
        let mut specs: Vec<GroupSpec> = Vec::new();
        let mut items: Vec<WorkItem> = Vec::new();
        let mut uid: u64 = 0;
        for (group, members) in &by_group {
            let spec = group_spec(*group, &targets, &profile);
            let n = members.len() as u64;
            if n == 0 || spec.connections == 0 {
                continue;
            }
            // Every generated chain must be *observed* at least once, even
            // in groups whose scaled connection volume rounds below the
            // server count (e.g. the 0.02%-of-connections interception
            // categories of Table 1). Floor the record count at one per
            // server and rescale the per-record weight so the weighted
            // connection total is preserved.
            let records = spec.connections.max(n);
            let conn_weight = spec.conn_weight * spec.connections as f64 / records as f64;
            let per_server = records / n;
            let remainder = (records % n) as usize;
            let spec_idx = specs.len();
            specs.push(spec);
            let mut k_in_group: u64 = 0;
            for (slot, &server_idx) in members.iter().enumerate() {
                let conns = per_server + u64::from(slot < remainder);
                items.push(WorkItem {
                    server_idx,
                    group: *group,
                    spec_idx,
                    conns,
                    uid_start: uid,
                    k_start: k_in_group,
                    records,
                    conn_weight,
                });
                uid += conns;
                k_in_group += conns;
            }
        }

        let clock = SimClock::campus_window_start();
        let base_secs = clock.now().unix_secs();
        let window_secs = SimClock::campus_window_end().unix_secs() - base_secs;

        let shards = shard_items(&items, threads);
        let emitted: Vec<ShardOutput> = if shards.len() <= 1 {
            vec![emit_shard(
                &items,
                &servers,
                &specs,
                &eco,
                base_secs,
                window_secs,
            )]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|part| {
                        let (servers, specs, eco) = (&servers, &specs, &eco);
                        scope.spawn(move || {
                            emit_shard(part, servers, specs, eco, base_secs, window_secs)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("trace emitter thread panicked"))
                    .collect()
            })
        };

        // Merge in shard (= sequential stream) order. x509.log keeps the
        // first sighting of each certificate: within a shard local-first is
        // stream-first, and shards are concatenated in stream order, so
        // keeping the globally-first record reproduces the sequential
        // dedup exactly.
        let mut ssl_records = Vec::new();
        let mut conn_meta = Vec::new();
        let mut x509_records = Vec::new();
        let mut seen_certs: HashSet<Fingerprint> = HashSet::new();
        for shard in emitted {
            ssl_records.extend(shard.ssl);
            conn_meta.extend(shard.meta);
            for rec in shard.x509 {
                if seen_certs.insert(rec.fingerprint) {
                    x509_records.push(rec);
                }
            }
        }

        let mut truth = GroundTruth::default();
        for (idx, s) in servers.iter().enumerate() {
            let fps: Vec<Fingerprint> = s.endpoint.chain.iter().map(|c| c.fingerprint()).collect();
            truth.by_chain.insert(fps, idx);
        }

        let ct_index = DomainIndex::build(&[&eco.ct]);
        let cross_sign_disclosures = eco.cross_sign_disclosures.clone();
        CampusTrace {
            profile,
            targets,
            ssl_records,
            conn_meta,
            x509_records,
            servers,
            eco,
            ct_index,
            cross_sign_disclosures,
            truth,
        }
    }
}

/// One server's slice of the emission stream: everything the sequential
/// loop would have known when it reached this server, captured as plain
/// offsets so any thread can emit the slice independently.
#[derive(Debug, Clone, Copy)]
struct WorkItem {
    server_idx: usize,
    group: TrafficGroup,
    spec_idx: usize,
    /// Connection records to emit for this server.
    conns: u64,
    /// Global `uid` counter value just before this item's first record.
    uid_start: u64,
    /// In-group connection index of this item's first record.
    k_start: u64,
    /// Total records in the group (the policy-mix denominator).
    records: u64,
    conn_weight: f64,
}

/// What one shard of work items produces. `x509` holds the shard-local
/// first sighting of each certificate, in stream order.
struct ShardOutput {
    ssl: Vec<SslRecord>,
    meta: Vec<ConnMeta>,
    x509: Vec<X509Record>,
}

/// Split `items` into at most `threads` contiguous chunks, balanced by
/// connection count. Chunk boundaries never affect the merged output —
/// they only set the parallel grain.
fn shard_items(items: &[WorkItem], threads: usize) -> Vec<&[WorkItem]> {
    if threads <= 1 || items.len() < 2 {
        return vec![items];
    }
    let total: u64 = items.iter().map(|i| i.conns).sum::<u64>().max(1);
    let shards = threads.min(items.len());
    let mut parts = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut emitted: u64 = 0;
    for shard in 1..shards {
        let target = total * shard as u64 / shards as u64;
        let mut end = start;
        while end < items.len() && emitted < target {
            emitted += items[end].conns;
            end += 1;
        }
        parts.push(&items[start..end]);
        start = end;
    }
    parts.push(&items[start..]);
    parts
}

/// Emit every connection record for one shard of work items. Pure function
/// of the item offsets: the sequential loop and any sharding of it produce
/// the same records in the same relative order.
fn emit_shard(
    items: &[WorkItem],
    servers: &[GeneratedServer],
    specs: &[GroupSpec],
    eco: &Ecosystem,
    base_secs: u64,
    window_secs: u64,
) -> ShardOutput {
    let mut out = ShardOutput {
        ssl: Vec::new(),
        meta: Vec::new(),
        x509: Vec::new(),
    };
    let mut seen_certs: HashSet<Fingerprint> = HashSet::new();
    // Validation outcome cache: (server, policy id) → established.
    // Validation outcomes are designed to be time-invariant within the
    // window; validate once per (server, policy) and reuse the verdict.
    let mut outcome_cache: HashMap<(usize, u8), bool> = HashMap::new();
    for item in items {
        let server = &servers[item.server_idx];
        let spec = &specs[item.spec_idx];
        for c in 0..item.conns {
            let uid = item.uid_start + c + 1;
            let policy = spec.mix.pick(item.k_start + c, item.records);
            let at = Asn1Time::from_unix(base_secs + uid.wrapping_mul(2_654_435_761) % window_secs);
            let client = Client::new(spec.pool.public_ip(uid.wrapping_mul(0x9e37_79b9)), policy);
            // The paper's analyzed logs only carry chain-bearing
            // connections (TLS ≤ 1.2). Roughly a quarter of TLS traffic is
            // 1.3 and invisible to the monitor (§6.3); modelled as TLS
            // 1.3-only *servers* in the public background, whose chains
            // passive monitoring never sees (the IP-space sweep of
            // `scanner::sweep` recovers them).
            let version = if item.group == TrafficGroup::PublicOnly && item.server_idx % 4 == 3 {
                TlsVersion::Tls13
            } else {
                TlsVersion::Tls12
            };
            let policy_id = policy_id(policy);
            let established = *outcome_cache
                .entry((item.server_idx, policy_id))
                .or_insert_with(|| {
                    certchain_netsim::validate_chain(
                        policy.validation,
                        &server.endpoint.chain,
                        &eco.trust,
                        at,
                        policy
                            .sends_sni
                            .then_some(server.endpoint.domain.as_deref())
                            .flatten(),
                    )
                    .is_ok()
                });
            let outcome =
                record_connection(uid, at, &client, &server.endpoint, established, version);
            if version == TlsVersion::Tls12 {
                for cert in &server.endpoint.chain {
                    if seen_certs.insert(cert.fingerprint()) {
                        out.x509.push(X509Record::from_certificate(at, cert));
                    }
                }
            }
            out.ssl.push(outcome.ssl);
            out.meta.push(ConnMeta {
                server_idx: item.server_idx,
                weight: item.conn_weight,
            });
        }
    }
    out
}

/// `0` → available parallelism (falling back to 1), anything else as-is.
fn resolve_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn policy_id(policy: certchain_netsim::ClientPolicy) -> u8 {
    use certchain_netsim::ValidationPolicy::*;
    let v = match policy.validation {
        Browser => 0,
        StrictPresented => 1,
        Permissive => 2,
    };
    v | ((policy.sends_sni as u8) << 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_trace() -> &'static CampusTrace {
        static TRACE: std::sync::OnceLock<CampusTrace> = std::sync::OnceLock::new();
        TRACE.get_or_init(|| CampusTrace::generate(CampusProfile::quick()))
    }

    #[test]
    fn trace_generates_and_joins() {
        let trace = quick_trace();
        assert!(!trace.ssl_records.is_empty());
        assert_eq!(trace.ssl_records.len(), trace.conn_meta.len());
        // Every fingerprint referenced by an ssl record exists in x509.log.
        let known: HashSet<Fingerprint> =
            trace.x509_records.iter().map(|r| r.fingerprint).collect();
        for rec in trace.ssl_records.iter().take(2_000) {
            for fp in &rec.cert_chain_fps {
                assert!(known.contains(fp), "dangling fingerprint in ssl.log");
            }
        }
    }

    #[test]
    fn timestamps_are_inside_the_window() {
        let trace = quick_trace();
        let start = SimClock::campus_window_start().now();
        let end = SimClock::campus_window_end();
        for rec in &trace.ssl_records {
            assert!(
                rec.ts >= start && rec.ts <= end,
                "ts {} outside window",
                rec.ts
            );
        }
    }

    #[test]
    fn hybrid_connections_are_full_fidelity() {
        let trace = quick_trace();
        let hybrid_conns: f64 = trace
            .conn_meta
            .iter()
            .filter(|m| {
                matches!(
                    trace.servers[m.server_idx].category,
                    ChainCategory::Hybrid(_)
                )
            })
            .map(|m| m.weight)
            .sum();
        let target = trace.targets.hybrid_connections as f64;
        assert!(
            (hybrid_conns - target).abs() / target < 0.01,
            "hybrid weighted connections = {hybrid_conns}, target {target}"
        );
    }

    #[test]
    fn hybrid_establishment_rates_match_paper() {
        let trace = quick_trace();
        let mut complete = (0u64, 0u64);
        let mut contains = (0u64, 0u64);
        let mut no_path = (0u64, 0u64);
        for (rec, meta) in trace.ssl_records.iter().zip(&trace.conn_meta) {
            let server = &trace.servers[meta.server_idx];
            let bucket = match server.category {
                ChainCategory::Hybrid(
                    HybridKind::CompleteAnchored { .. } | HybridKind::CompletePubToPrv,
                ) => &mut complete,
                ChainCategory::Hybrid(HybridKind::ContainsPath(_)) => &mut contains,
                ChainCategory::Hybrid(HybridKind::NoPath(_)) => &mut no_path,
                _ => continue,
            };
            bucket.0 += rec.established as u64;
            bucket.1 += 1;
        }
        let rate = |b: &(u64, u64)| b.0 as f64 / b.1.max(1) as f64;
        assert!(
            (rate(&complete) - 0.9756).abs() < 0.01,
            "complete rate = {}",
            rate(&complete)
        );
        assert!(
            (rate(&contains) - 0.9204).abs() < 0.01,
            "contains rate = {}",
            rate(&contains)
        );
        assert!(
            (rate(&no_path) - 0.5742).abs() < 0.015,
            "no-path rate = {}",
            rate(&no_path)
        );
    }

    #[test]
    fn single_cert_sni_rate_matches_paper() {
        let trace = quick_trace();
        let mut no_sni = 0f64;
        let mut total = 0f64;
        for (rec, meta) in trace.ssl_records.iter().zip(&trace.conn_meta) {
            let server = &trace.servers[meta.server_idx];
            if matches!(
                server.category,
                ChainCategory::NonPublicOnly(
                    NonPubKind::SingleSelfSigned | NonPubKind::SingleDistinct | NonPubKind::Dga
                )
            ) {
                // Weighted: the full-fidelity DGA cluster is a large share
                // of *generated* records at small scales but a negligible
                // share of paper-scale connections.
                total += meta.weight;
                no_sni += meta.weight * (rec.server_name.is_none() as u64 as f64);
            }
        }
        let rate = no_sni / total.max(1.0);
        assert!((rate - 0.867).abs() < 0.04, "single no-SNI rate = {rate}");
    }

    #[test]
    fn ground_truth_covers_every_chain() {
        let trace = quick_trace();
        assert_eq!(trace.truth.by_chain.len(), trace.servers.len());
        for rec in trace.ssl_records.iter().take(500) {
            if !rec.cert_chain_fps.is_empty() {
                assert!(trace.truth.by_chain.contains_key(&rec.cert_chain_fps));
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = CampusTrace::generate(CampusProfile::quick());
        let b = CampusTrace::generate(CampusProfile::quick());
        assert_eq!(a.ssl_records.len(), b.ssl_records.len());
        assert_eq!(a.ssl_records[..100], b.ssl_records[..100]);
        assert_eq!(a.x509_records.len(), b.x509_records.len());
    }

    #[test]
    fn thread_count_does_not_change_the_trace() {
        let seq = CampusTrace::generate_with(CampusProfile::quick(), 1);
        let par = CampusTrace::generate_with(CampusProfile::quick(), 4);
        assert_eq!(seq.ssl_records, par.ssl_records);
        assert_eq!(seq.conn_meta, par.conn_meta);
        assert_eq!(seq.x509_records, par.x509_records);
    }
}
