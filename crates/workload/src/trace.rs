//! Trace assembly: populations + volume model → Zeek-shaped logs.

use crate::calibration::{CalibrationTargets, CampusProfile};
use crate::interception::{self, InterceptionCounts};
use crate::pki::Ecosystem;
use crate::servers::{hybrid, nonpub, public, GeneratedServer, TrafficGroup};
use crate::traffic::{group_spec, GroupSpec};
use certchain_asn1::Asn1Time;
use certchain_ctlog::DomainIndex;
use certchain_netsim::handshake::record_connection;
use certchain_netsim::{Client, SimClock, SslRecord, TlsVersion, X509Record};
use certchain_obs::Registry;

use certchain_x509::{DistinguishedName, Fingerprint};
use std::collections::{BTreeMap, HashMap, HashSet};

pub use crate::servers::{ChainCategory, ContainsKind, HybridKind, NoPathKind, NonPubKind};

/// Reporting sidecar for one connection record: which server produced it
/// and how many paper-scale connections it represents. The analysis
/// pipeline itself never reads this — it exists so experiment reports can
/// rescale to paper numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnMeta {
    /// Index into [`CampusTrace::servers`].
    pub server_idx: usize,
    /// Statistical weight of this record.
    pub weight: f64,
}

/// Ground truth: generator-side labels for scoring the analysis pipeline.
#[derive(Debug, Default)]
pub struct GroundTruth {
    /// Delivered-chain fingerprints → server index.
    pub by_chain: HashMap<Vec<Fingerprint>, usize>,
}

/// The complete synthetic campus trace.
#[derive(Debug)]
pub struct CampusTrace {
    /// Profile used.
    pub profile: CampusProfile,
    /// Paper targets (for reporting).
    pub targets: CalibrationTargets,
    /// ssl.log records.
    pub ssl_records: Vec<SslRecord>,
    /// Per-record sidecar, aligned with `ssl_records`.
    pub conn_meta: Vec<ConnMeta>,
    /// x509.log records, one per distinct certificate.
    pub x509_records: Vec<X509Record>,
    /// The generated server population with ground-truth labels.
    pub servers: Vec<GeneratedServer>,
    /// The full PKI ecosystem (trust databases, CT log, CA keys — the
    /// latter are what the §5 evolution operators re-issue with).
    pub eco: Ecosystem,
    /// crt.sh-style domain index over the CT log.
    pub ct_index: DomainIndex,
    /// Publicly disclosed cross-signing relationships.
    pub cross_sign_disclosures: Vec<(DistinguishedName, DistinguishedName)>,
    /// Ground-truth labels.
    pub truth: GroundTruth,
}

/// Receives a generated trace record-by-record, in the deterministic
/// emission order. Sinks let `certchain generate` write Zeek logs straight
/// to disk without materializing the trace: only one emission window is in
/// memory at a time, regardless of connection volume.
pub trait TraceSink {
    /// Error surfaced by the sink (e.g. `std::io::Error` for file sinks).
    type Error;
    /// One ssl.log record with its reporting sidecar.
    fn ssl(&mut self, record: SslRecord, meta: ConnMeta) -> Result<(), Self::Error>;
    /// One x509.log record — the global first sighting of a certificate.
    fn x509(&mut self, record: X509Record) -> Result<(), Self::Error>;
}

/// Everything a generated trace carries besides the record streams:
/// populations, PKI state, CT index, and ground truth. This is what
/// [`CampusTrace::stream_with`] returns after the records have been
/// delivered to the sink.
#[derive(Debug)]
pub struct TraceContext {
    /// Profile used.
    pub profile: CampusProfile,
    /// Paper targets (for reporting).
    pub targets: CalibrationTargets,
    /// The generated server population with ground-truth labels.
    pub servers: Vec<GeneratedServer>,
    /// The full PKI ecosystem.
    pub eco: Ecosystem,
    /// crt.sh-style domain index over the CT log.
    pub ct_index: DomainIndex,
    /// Publicly disclosed cross-signing relationships.
    pub cross_sign_disclosures: Vec<(DistinguishedName, DistinguishedName)>,
    /// Ground-truth labels.
    pub truth: GroundTruth,
}

/// The in-memory sink behind [`CampusTrace::generate_with`].
#[derive(Default)]
struct VecSink {
    ssl: Vec<SslRecord>,
    meta: Vec<ConnMeta>,
    x509: Vec<X509Record>,
}

impl TraceSink for VecSink {
    type Error = std::convert::Infallible;

    fn ssl(&mut self, record: SslRecord, meta: ConnMeta) -> Result<(), Self::Error> {
        self.ssl.push(record);
        self.meta.push(meta);
        Ok(())
    }

    fn x509(&mut self, record: X509Record) -> Result<(), Self::Error> {
        self.x509.push(record);
        Ok(())
    }
}

impl CampusTrace {
    /// Generate the full trace for `profile` using all available cores.
    ///
    /// Shorthand for [`CampusTrace::generate_with`] with `threads = 0`; the
    /// produced trace is identical for every thread count.
    pub fn generate(profile: CampusProfile) -> CampusTrace {
        CampusTrace::generate_with(profile, 0)
    }

    /// Generate the full trace for `profile` on `threads` worker threads
    /// (`0` = available parallelism, `1` = fully sequential).
    ///
    /// This is [`CampusTrace::stream_with`] into an in-memory sink; the
    /// record vectors hold exactly the stream a file sink would have
    /// written.
    pub fn generate_with(profile: CampusProfile, threads: usize) -> CampusTrace {
        let mut sink = VecSink::default();
        let ctx =
            CampusTrace::stream_with(profile, threads, &mut sink).unwrap_or_else(|e| match e {});
        CampusTrace {
            profile: ctx.profile,
            targets: ctx.targets,
            ssl_records: sink.ssl,
            conn_meta: sink.meta,
            x509_records: sink.x509,
            servers: ctx.servers,
            eco: ctx.eco,
            ct_index: ctx.ct_index,
            cross_sign_disclosures: ctx.cross_sign_disclosures,
            truth: ctx.truth,
        }
    }

    /// Generate the trace for `profile` on `threads` worker threads,
    /// delivering every record to `sink` instead of materializing it.
    ///
    /// Population building mutates the PKI ecosystem and stays sequential.
    /// Connection emission, however, is a pure function of the connection's
    /// global `uid` and its index within its traffic group, so it is
    /// decomposed into work items with precomputed index offsets (prefix
    /// sums over the sequential emission order), split into fixed-size
    /// batches, and emitted a window of `threads` batches at a time.
    /// Batches drain to the sink in batch (= sequential stream) order and
    /// certificates dedup against a global first-sighting set, so the
    /// delivered stream is identical to the sequential one for any thread
    /// count — and identical to the vectors [`CampusTrace::generate_with`]
    /// returns.
    ///
    /// The first sink error aborts generation and is returned as-is.
    pub fn stream_with<S: TraceSink>(
        profile: CampusProfile,
        threads: usize,
        sink: &mut S,
    ) -> Result<TraceContext, S::Error> {
        CampusTrace::stream_observed(profile, threads, sink, None)
    }

    /// [`CampusTrace::stream_with`] plus generation accounting: when a
    /// metrics registry is given, the emitted volumes are recorded into
    /// it — `generate.connections` (ssl records delivered to the sink),
    /// `generate.certificates` (deduplicated x509 records), and the
    /// `generate.servers` / `generate.distinct_chains` population gauges.
    /// All four are derived from the deterministic delivered stream, so
    /// they are identical for every thread count.
    pub fn stream_observed<S: TraceSink>(
        profile: CampusProfile,
        threads: usize,
        sink: &mut S,
        metrics: Option<&Registry>,
    ) -> Result<TraceContext, S::Error> {
        let threads = resolve_threads(threads);
        let targets = CalibrationTargets::paper();
        let mut eco = Ecosystem::bootstrap(profile.seed);

        // Build the populations. Public first: the CT index must know the
        // "real" issuers of the domains interception middleboxes forge.
        let public_weight = (targets.total_chains as f64
            * (1.0
                - targets.share_nonpub_only
                - targets.share_hybrid
                - targets.share_interception))
            / profile.public_chains.max(1) as f64;
        let mut servers = public::build(&mut eco, 0, profile.public_chains, public_weight);
        servers.extend(hybrid::build(&mut eco, 100_000));
        let np_counts = nonpub::NonPubCounts::from_profile(&targets, &profile);
        servers.extend(nonpub::build(&mut eco, 200_000, np_counts, &profile));
        let ic_counts = InterceptionCounts::from_profile(&targets, &profile);
        servers.extend(interception::build(
            &mut eco,
            400_000,
            ic_counts,
            &profile,
            profile.public_chains,
        ));

        // Volume model: group servers, then emit connections.
        let mut by_group: BTreeMap<TrafficGroup, Vec<usize>> = BTreeMap::new();
        for (idx, s) in servers.iter().enumerate() {
            by_group.entry(s.group).or_default().push(idx);
        }

        // Flatten the volume model into per-server work items carrying
        // their `uid` / in-group index offsets. Each server appears in
        // exactly one item, so a per-shard validation-outcome cache hits
        // exactly as often as the sequential one.
        let mut specs: Vec<GroupSpec> = Vec::new();
        let mut items: Vec<WorkItem> = Vec::new();
        let mut uid: u64 = 0;
        for (group, members) in &by_group {
            let spec = group_spec(*group, &targets, &profile);
            let n = members.len() as u64;
            if n == 0 || spec.connections == 0 {
                continue;
            }
            // Every generated chain must be *observed* at least once, even
            // in groups whose scaled connection volume rounds below the
            // server count (e.g. the 0.02%-of-connections interception
            // categories of Table 1). Floor the record count at one per
            // server and rescale the per-record weight so the weighted
            // connection total is preserved.
            let records = spec.connections.max(n);
            let conn_weight = spec.conn_weight * spec.connections as f64 / records as f64;
            let per_server = records / n;
            let remainder = (records % n) as usize;
            let spec_idx = specs.len();
            specs.push(spec);
            let mut k_in_group: u64 = 0;
            for (slot, &server_idx) in members.iter().enumerate() {
                let conns = per_server + u64::from(slot < remainder);
                items.push(WorkItem {
                    server_idx,
                    group: *group,
                    spec_idx,
                    conns,
                    uid_start: uid,
                    k_start: k_in_group,
                    records,
                    conn_weight,
                });
                uid += conns;
                k_in_group += conns;
            }
        }

        let clock = SimClock::campus_window_start();
        let base_secs = clock.now().unix_secs();
        let window_secs = SimClock::campus_window_end().unix_secs() - base_secs;

        // Emit in fixed-size batches, a window of `threads` at a time.
        // Batches drain in batch (= sequential stream) order; x509.log
        // keeps the first sighting of each certificate: within a batch
        // local-first is stream-first, and batches drain in stream order,
        // so keeping the globally-first record reproduces the sequential
        // dedup exactly. Peak memory is one window of batch outputs,
        // independent of total connection volume.
        let batches = batch_items(items);
        let mut seen_certs: HashSet<Fingerprint> = HashSet::new();
        let conn_counter = metrics.map(|r| r.counter("generate.connections"));
        let cert_counter = metrics.map(|r| r.counter("generate.certificates"));
        let drain = |sink: &mut S,
                     out: ShardOutput,
                     seen_certs: &mut HashSet<Fingerprint>|
         -> Result<(), S::Error> {
            for rec in out.x509 {
                if seen_certs.insert(rec.fingerprint) {
                    if let Some(c) = &cert_counter {
                        c.inc();
                    }
                    sink.x509(rec)?;
                }
            }
            if let Some(c) = &conn_counter {
                c.add(out.ssl.len() as u64);
            }
            for (rec, meta) in out.ssl.into_iter().zip(out.meta) {
                sink.ssl(rec, meta)?;
            }
            Ok(())
        };
        if threads <= 1 {
            for batch in &batches {
                let out = emit_shard(batch, &servers, &specs, &eco, base_secs, window_secs);
                drain(sink, out, &mut seen_certs)?;
            }
        } else {
            for window in batches.chunks(threads) {
                let outs: Vec<ShardOutput> = std::thread::scope(|scope| {
                    let handles: Vec<_> = window
                        .iter()
                        .map(|batch| {
                            let (servers, specs, eco) = (&servers, &specs, &eco);
                            scope.spawn(move || {
                                emit_shard(batch, servers, specs, eco, base_secs, window_secs)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("trace emitter thread panicked"))
                        .collect()
                });
                for out in outs {
                    drain(sink, out, &mut seen_certs)?;
                }
            }
        }

        let mut truth = GroundTruth::default();
        for (idx, s) in servers.iter().enumerate() {
            let fps: Vec<Fingerprint> = s.endpoint.chain.iter().map(|c| c.fingerprint()).collect();
            truth.by_chain.insert(fps, idx);
        }
        if let Some(r) = metrics {
            r.gauge("generate.servers").set(servers.len() as u64);
            r.gauge("generate.distinct_chains")
                .set(truth.by_chain.len() as u64);
        }

        let ct_index = DomainIndex::build(&[&eco.ct]);
        let cross_sign_disclosures = eco.cross_sign_disclosures.clone();
        Ok(TraceContext {
            profile,
            targets,
            servers,
            eco,
            ct_index,
            cross_sign_disclosures,
            truth,
        })
    }
}

/// One server's slice of the emission stream: everything the sequential
/// loop would have known when it reached this server, captured as plain
/// offsets so any thread can emit the slice independently.
#[derive(Debug, Clone, Copy)]
struct WorkItem {
    server_idx: usize,
    group: TrafficGroup,
    spec_idx: usize,
    /// Connection records to emit for this server.
    conns: u64,
    /// Global `uid` counter value just before this item's first record.
    uid_start: u64,
    /// In-group connection index of this item's first record.
    k_start: u64,
    /// Total records in the group (the policy-mix denominator).
    records: u64,
    conn_weight: f64,
}

/// What one shard of work items produces. `x509` holds the shard-local
/// first sighting of each certificate, in stream order.
struct ShardOutput {
    ssl: Vec<SslRecord>,
    meta: Vec<ConnMeta>,
    x509: Vec<X509Record>,
}

/// Connection records per emission batch. The batch is both the parallel
/// grain and the streaming memory bound: at most one window of batch
/// outputs is ever materialized.
const BATCH_CONNS: u64 = 16_384;

/// Split the work items into contiguous batches of ~[`BATCH_CONNS`]
/// records. Emission is a pure function of an item's offsets, so an item
/// larger than a batch is split — the tail keeps emitting the same
/// records from its advanced `uid_start`/`k_start`. Batch boundaries
/// never affect the drained output, only the grain.
fn batch_items(items: Vec<WorkItem>) -> Vec<Vec<WorkItem>> {
    let mut batches = Vec::new();
    let mut cur: Vec<WorkItem> = Vec::new();
    let mut cur_conns = 0u64;
    for mut item in items {
        loop {
            let room = BATCH_CONNS - cur_conns;
            if item.conns <= room {
                cur_conns += item.conns;
                cur.push(item);
                if cur_conns == BATCH_CONNS {
                    batches.push(std::mem::take(&mut cur));
                    cur_conns = 0;
                }
                break;
            }
            let mut head = item;
            head.conns = room;
            cur.push(head);
            batches.push(std::mem::take(&mut cur));
            cur_conns = 0;
            item.uid_start += room;
            item.k_start += room;
            item.conns -= room;
        }
    }
    if !cur.is_empty() {
        batches.push(cur);
    }
    batches
}

/// Emit every connection record for one shard of work items. Pure function
/// of the item offsets: the sequential loop and any sharding of it produce
/// the same records in the same relative order.
fn emit_shard(
    items: &[WorkItem],
    servers: &[GeneratedServer],
    specs: &[GroupSpec],
    eco: &Ecosystem,
    base_secs: u64,
    window_secs: u64,
) -> ShardOutput {
    let mut out = ShardOutput {
        ssl: Vec::new(),
        meta: Vec::new(),
        x509: Vec::new(),
    };
    let mut seen_certs: HashSet<Fingerprint> = HashSet::new();
    // Validation outcome cache: (server, policy id) → established.
    // Validation outcomes are designed to be time-invariant within the
    // window; validate once per (server, policy) and reuse the verdict.
    let mut outcome_cache: HashMap<(usize, u8), bool> = HashMap::new();
    for item in items {
        let server = &servers[item.server_idx];
        let spec = &specs[item.spec_idx];
        for c in 0..item.conns {
            let uid = item.uid_start + c + 1;
            let policy = spec.mix.pick(item.k_start + c, item.records);
            let at = Asn1Time::from_unix(base_secs + uid.wrapping_mul(2_654_435_761) % window_secs);
            let client = Client::new(spec.pool.public_ip(uid.wrapping_mul(0x9e37_79b9)), policy);
            // The paper's analyzed logs only carry chain-bearing
            // connections (TLS ≤ 1.2). Roughly a quarter of TLS traffic is
            // 1.3 and invisible to the monitor (§6.3); modelled as TLS
            // 1.3-only *servers* in the public background, whose chains
            // passive monitoring never sees (the IP-space sweep of
            // `scanner::sweep` recovers them).
            let version = if item.group == TrafficGroup::PublicOnly && item.server_idx % 4 == 3 {
                TlsVersion::Tls13
            } else {
                TlsVersion::Tls12
            };
            let policy_id = policy_id(policy);
            let established = *outcome_cache
                .entry((item.server_idx, policy_id))
                .or_insert_with(|| {
                    certchain_netsim::validate_chain(
                        policy.validation,
                        &server.endpoint.chain,
                        &eco.trust,
                        at,
                        policy
                            .sends_sni
                            .then_some(server.endpoint.domain.as_deref())
                            .flatten(),
                    )
                    .is_ok()
                });
            let outcome =
                record_connection(uid, at, &client, &server.endpoint, established, version);
            if version == TlsVersion::Tls12 {
                for cert in &server.endpoint.chain {
                    if seen_certs.insert(cert.fingerprint()) {
                        out.x509.push(X509Record::from_certificate(at, cert));
                    }
                }
            }
            out.ssl.push(outcome.ssl);
            out.meta.push(ConnMeta {
                server_idx: item.server_idx,
                weight: item.conn_weight,
            });
        }
    }
    out
}

/// `0` → available parallelism (falling back to 1), anything else as-is.
fn resolve_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    // srclint: allow(det-thread-sensitivity) -- knob resolution only; generated traces are independent of the count
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn policy_id(policy: certchain_netsim::ClientPolicy) -> u8 {
    use certchain_netsim::ValidationPolicy::*;
    let v = match policy.validation {
        Browser => 0,
        StrictPresented => 1,
        Permissive => 2,
    };
    v | ((policy.sends_sni as u8) << 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_trace() -> &'static CampusTrace {
        static TRACE: std::sync::OnceLock<CampusTrace> = std::sync::OnceLock::new();
        TRACE.get_or_init(|| CampusTrace::generate(CampusProfile::quick()))
    }

    #[test]
    fn trace_generates_and_joins() {
        let trace = quick_trace();
        assert!(!trace.ssl_records.is_empty());
        assert_eq!(trace.ssl_records.len(), trace.conn_meta.len());
        // Every fingerprint referenced by an ssl record exists in x509.log.
        let known: HashSet<Fingerprint> =
            trace.x509_records.iter().map(|r| r.fingerprint).collect();
        for rec in trace.ssl_records.iter().take(2_000) {
            for fp in &rec.cert_chain_fps {
                assert!(known.contains(fp), "dangling fingerprint in ssl.log");
            }
        }
    }

    #[test]
    fn timestamps_are_inside_the_window() {
        let trace = quick_trace();
        let start = SimClock::campus_window_start().now();
        let end = SimClock::campus_window_end();
        for rec in &trace.ssl_records {
            assert!(
                rec.ts >= start && rec.ts <= end,
                "ts {} outside window",
                rec.ts
            );
        }
    }

    #[test]
    fn hybrid_connections_are_full_fidelity() {
        let trace = quick_trace();
        let hybrid_conns: f64 = trace
            .conn_meta
            .iter()
            .filter(|m| {
                matches!(
                    trace.servers[m.server_idx].category,
                    ChainCategory::Hybrid(_)
                )
            })
            .map(|m| m.weight)
            .sum();
        let target = trace.targets.hybrid_connections as f64;
        assert!(
            (hybrid_conns - target).abs() / target < 0.01,
            "hybrid weighted connections = {hybrid_conns}, target {target}"
        );
    }

    #[test]
    fn hybrid_establishment_rates_match_paper() {
        let trace = quick_trace();
        let mut complete = (0u64, 0u64);
        let mut contains = (0u64, 0u64);
        let mut no_path = (0u64, 0u64);
        for (rec, meta) in trace.ssl_records.iter().zip(&trace.conn_meta) {
            let server = &trace.servers[meta.server_idx];
            let bucket = match server.category {
                ChainCategory::Hybrid(
                    HybridKind::CompleteAnchored { .. } | HybridKind::CompletePubToPrv,
                ) => &mut complete,
                ChainCategory::Hybrid(HybridKind::ContainsPath(_)) => &mut contains,
                ChainCategory::Hybrid(HybridKind::NoPath(_)) => &mut no_path,
                _ => continue,
            };
            bucket.0 += rec.established as u64;
            bucket.1 += 1;
        }
        let rate = |b: &(u64, u64)| b.0 as f64 / b.1.max(1) as f64;
        assert!(
            (rate(&complete) - 0.9756).abs() < 0.01,
            "complete rate = {}",
            rate(&complete)
        );
        assert!(
            (rate(&contains) - 0.9204).abs() < 0.01,
            "contains rate = {}",
            rate(&contains)
        );
        assert!(
            (rate(&no_path) - 0.5742).abs() < 0.015,
            "no-path rate = {}",
            rate(&no_path)
        );
    }

    #[test]
    fn single_cert_sni_rate_matches_paper() {
        let trace = quick_trace();
        let mut no_sni = 0f64;
        let mut total = 0f64;
        for (rec, meta) in trace.ssl_records.iter().zip(&trace.conn_meta) {
            let server = &trace.servers[meta.server_idx];
            if matches!(
                server.category,
                ChainCategory::NonPublicOnly(
                    NonPubKind::SingleSelfSigned | NonPubKind::SingleDistinct | NonPubKind::Dga
                )
            ) {
                // Weighted: the full-fidelity DGA cluster is a large share
                // of *generated* records at small scales but a negligible
                // share of paper-scale connections.
                total += meta.weight;
                no_sni += meta.weight * (rec.server_name.is_none() as u64 as f64);
            }
        }
        let rate = no_sni / total.max(1.0);
        assert!((rate - 0.867).abs() < 0.04, "single no-SNI rate = {rate}");
    }

    #[test]
    fn ground_truth_covers_every_chain() {
        let trace = quick_trace();
        assert_eq!(trace.truth.by_chain.len(), trace.servers.len());
        for rec in trace.ssl_records.iter().take(500) {
            if !rec.cert_chain_fps.is_empty() {
                assert!(trace.truth.by_chain.contains_key(&rec.cert_chain_fps));
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = CampusTrace::generate(CampusProfile::quick());
        let b = CampusTrace::generate(CampusProfile::quick());
        assert_eq!(a.ssl_records.len(), b.ssl_records.len());
        assert_eq!(a.ssl_records[..100], b.ssl_records[..100]);
        assert_eq!(a.x509_records.len(), b.x509_records.len());
    }

    #[test]
    fn stream_matches_generate() {
        struct CountSink {
            ssl: u64,
            x509: u64,
            weight: f64,
        }
        impl TraceSink for CountSink {
            type Error = std::convert::Infallible;
            fn ssl(&mut self, _rec: SslRecord, meta: ConnMeta) -> Result<(), Self::Error> {
                self.ssl += 1;
                self.weight += meta.weight;
                Ok(())
            }
            fn x509(&mut self, _rec: X509Record) -> Result<(), Self::Error> {
                self.x509 += 1;
                Ok(())
            }
        }
        let trace = quick_trace();
        let mut sink = CountSink {
            ssl: 0,
            x509: 0,
            weight: 0.0,
        };
        let ctx = CampusTrace::stream_with(CampusProfile::quick(), 2, &mut sink)
            .unwrap_or_else(|e| match e {});
        assert_eq!(sink.ssl as usize, trace.ssl_records.len());
        assert_eq!(sink.x509 as usize, trace.x509_records.len());
        let total: f64 = trace.conn_meta.iter().map(|m| m.weight).sum();
        assert!((sink.weight - total).abs() < 1e-6);
        assert_eq!(ctx.servers.len(), trace.servers.len());
    }

    #[test]
    fn sink_errors_abort_generation() {
        struct FailingSink {
            remaining: u64,
        }
        impl TraceSink for FailingSink {
            type Error = &'static str;
            fn ssl(&mut self, _rec: SslRecord, _meta: ConnMeta) -> Result<(), Self::Error> {
                if self.remaining == 0 {
                    return Err("disk full");
                }
                self.remaining -= 1;
                Ok(())
            }
            fn x509(&mut self, _rec: X509Record) -> Result<(), Self::Error> {
                Ok(())
            }
        }
        let mut sink = FailingSink { remaining: 10 };
        let err = CampusTrace::stream_with(CampusProfile::quick(), 2, &mut sink).unwrap_err();
        assert_eq!(err, "disk full");
    }

    #[test]
    fn batches_split_large_items_without_changing_records() {
        // An item larger than BATCH_CONNS must split into offset-advanced
        // tails that cover exactly the same (uid, k) pairs.
        let item = WorkItem {
            server_idx: 0,
            group: TrafficGroup::PublicOnly,
            spec_idx: 0,
            conns: BATCH_CONNS * 2 + 17,
            uid_start: 5,
            k_start: 3,
            records: BATCH_CONNS * 3,
            conn_weight: 1.0,
        };
        let batches = batch_items(vec![item]);
        assert_eq!(batches.len(), 3);
        let mut uid = item.uid_start;
        let mut k = item.k_start;
        let mut conns = 0;
        for batch in &batches {
            for part in batch {
                assert_eq!(part.uid_start, uid);
                assert_eq!(part.k_start, k);
                assert_eq!(part.records, item.records);
                uid += part.conns;
                k += part.conns;
                conns += part.conns;
            }
        }
        assert_eq!(conns, item.conns);
    }

    #[test]
    fn thread_count_does_not_change_the_trace() {
        let seq = CampusTrace::generate_with(CampusProfile::quick(), 1);
        let par = CampusTrace::generate_with(CampusProfile::quick(), 4);
        assert_eq!(seq.ssl_records, par.ssl_records);
        assert_eq!(seq.conn_meta, par.conn_meta);
        assert_eq!(seq.x509_records, par.x509_records);
    }
}
