//! Every number from the paper, in one place.
//!
//! `CalibrationTargets` records the published values; `CampusProfile`
//! derives the generator parameters (scales, population sizes) from them.
//! The experiment binaries print paper-vs-measured against these constants.

/// Published values from Dong et al., IMC 2025.
///
/// Field names reference the table/section they come from.
#[derive(Debug, Clone)]
pub struct CalibrationTargets {
    // ---- §1 / §3.2.2 / Table 2 ----
    /// Total unique certificate chains in the dataset.
    pub total_chains: u64,
    /// Distinct certificates across those chains.
    pub total_certs: u64,
    /// TLS connections involving chains associated with non-public-DB issuers.
    pub nonpub_associated_connections: u64,
    /// Share of chains that are non-public-DB-only (§3.2.2: 16.24%).
    pub share_nonpub_only: f64,
    /// Share of chains that are hybrid (0.02%).
    pub share_hybrid: f64,
    /// Share of chains that are TLS interception (11.19%).
    pub share_interception: f64,
    /// Non-public-DB-only: chains / connections / client IPs (Table 2).
    pub nonpub_chains: u64,
    pub nonpub_connections: u64,
    pub nonpub_client_ips: u64,
    /// Hybrid: chains / connections / client IPs (Table 2).
    pub hybrid_chains: u64,
    pub hybrid_connections: u64,
    pub hybrid_client_ips: u64,
    /// Interception: chains / connections / client IPs (Table 2).
    pub interception_chains: u64,
    pub interception_connections: u64,
    pub interception_client_ips: u64,

    // ---- Table 1 (interception issuers) ----
    /// (category name, issuer count, % of interception connections, client IPs).
    pub interception_categories: [(&'static str, u64, f64, u64); 6],

    // ---- Figure 1 (chain lengths) ----
    /// Public-DB-only chains advertised with length 2 (>60%).
    pub public_share_len2: f64,
    /// Non-public-DB-only single-certificate share (≈80% in Fig. 1; §4.3
    /// gives the precise 78.10%).
    pub nonpub_share_len1: f64,
    /// Interception chains with exactly 3 certificates (>80%).
    pub interception_share_len3: f64,

    // ---- Table 3 (hybrid categories) ----
    /// Complete path, non-public leaf chained to public anchor.
    pub hybrid_complete_nonpub_to_pub: u64,
    /// Complete path, public chain followed by private certificate
    /// (the Scalyr/Canal+ pattern).
    pub hybrid_complete_pub_to_prv: u64,
    /// Contains a complete matched path plus unnecessary certificates.
    pub hybrid_contains_path: u64,
    /// No complete matched path.
    pub hybrid_no_path: u64,

    // ---- §4.2 establishment rates ----
    /// Chains that ARE a complete matched path.
    pub established_rate_complete: f64,
    /// Chains that CONTAIN a complete matched path.
    pub established_rate_contains: f64,
    /// Chains with no complete matched path.
    pub established_rate_no_path: f64,
    /// Connections/IPs for the no-path group.
    pub no_path_connections: u64,
    pub no_path_client_ips: u64,
    /// The 56-chain public-leaf-without-intermediate subgroup.
    pub pub_leaf_no_intermediate_chains: u64,
    pub pub_leaf_no_intermediate_connections: u64,
    pub pub_leaf_no_intermediate_client_ips: u64,
    pub pub_leaf_no_intermediate_established: f64,
    /// Expired-leaf chains among the 36 complete hybrid chains.
    pub hybrid_complete_expired: u64,

    // ---- Table 6 ----
    /// Corporate / Government chain counts among the 26 anchored chains.
    pub anchored_corporate: u64,
    pub anchored_government: u64,

    // ---- Table 7 (no-complete-path categorization) ----
    pub t7_selfsigned_leaf_mismatches: u64,
    pub t7_selfsigned_leaf_valid_subchain: u64,
    pub t7_all_mismatched: u64,
    pub t7_partial_mismatched: u64,
    pub t7_root_appended_to_valid_subchain: u64,
    pub t7_root_and_mismatches: u64,
    /// Of the 108 self-signed-leaf chains, how many have identical
    /// issuer and subject on the leaf (Appendix F.3: 100).
    pub t7_identical_leaf_fields: u64,

    // ---- Figure 6 ----
    /// Share of no-path hybrid chains with mismatch ratio ≥ 0.5 (56.74%).
    pub mismatch_ratio_ge_half: f64,

    // ---- §4.3 / Table 8 ----
    /// Single-certificate share of non-public-DB-only chains (78.10%).
    pub nonpub_single_share: f64,
    /// Self-signed share of those singles (94.19%).
    pub nonpub_single_selfsigned_share: f64,
    /// Share of single-cert connections lacking SNI (86.70%).
    pub nonpub_single_no_sni_share: f64,
    /// Interception single-cert share (13.24%) and its self-signed share
    /// (93.43%).
    pub interception_single_share: f64,
    pub interception_single_selfsigned_share: f64,
    /// Matched-path share of multi-cert chains (Table 8).
    pub nonpub_multi_matched_share: f64,
    pub interception_multi_matched_share: f64,
    /// Contains-a-matched-path counts (Table 8).
    pub nonpub_multi_contains: u64,
    pub interception_multi_contains: u64,
    /// No-matched-path counts (Table 8).
    pub nonpub_multi_no_path: u64,
    pub interception_multi_no_path: u64,
    /// basicConstraints omission: first-presented / subsequently-presented
    /// (§4.3: 55.31% and 78.32%).
    pub bc_omitted_first: f64,
    pub bc_omitted_subsequent: f64,

    // ---- DGA cluster (§4.3) ----
    pub dga_connections: u64,
    pub dga_client_ips: u64,
    /// Validity range in days (4..=365).
    pub dga_validity_min_days: u64,
    pub dga_validity_max_days: u64,

    // ---- Table 4 (port distribution, % of connections) ----
    pub ports_hybrid: [(u16, f64); 5],
    pub ports_nonpub_single: [(u16, f64); 5],
    pub ports_nonpub_multi: [(u16, f64); 5],
    pub ports_interception: [(u16, f64); 5],

    // ---- §5 revisit ----
    pub revisit_hybrid_reachable: u64,
    pub revisit_hybrid_now_public: u64,
    pub revisit_hybrid_now_nonpub: u64,
    pub revisit_hybrid_still_hybrid: u64,
    pub revisit_hybrid_complete_clean: u64,
    pub revisit_hybrid_complete_unnecessary: u64,
    /// Non-public-DB-only revisit.
    pub revisit_nonpub_no_sni_share: f64,
    pub revisit_nonpub_servers: u64,
    pub revisit_nonpub_now_multi: u64,
    pub revisit_nonpub_prev_multi_share: f64,
    pub revisit_nonpub_prev_single_selfsigned_share: f64,
    pub revisit_nonpub_prev_single_distinct_share: f64,
    pub revisit_nonpub_complete_share: f64,

    // ---- Table 5 (Appendix D validation comparison) ----
    pub t5_total_chains: u64,
    pub t5_single: u64,
    pub t5_issuer_subject_valid: u64,
    pub t5_issuer_subject_broken: u64,
    pub t5_keysig_valid: u64,
    pub t5_keysig_broken: u64,
    pub t5_unrecognized_keys: u64,
}

impl CalibrationTargets {
    /// The paper's numbers.
    pub fn paper() -> CalibrationTargets {
        CalibrationTargets {
            total_chains: 731_175,
            total_certs: 743_993,
            nonpub_associated_connections: 259_300_000,
            share_nonpub_only: 0.1624,
            share_hybrid: 0.0002,
            share_interception: 0.1119,
            nonpub_chains: 118_743,
            nonpub_connections: 216_470_000,
            nonpub_client_ips: 231_228,
            hybrid_chains: 321,
            hybrid_connections: 78_260,
            hybrid_client_ips: 11_933,
            interception_chains: 81_818,
            interception_connections: 42_750_000,
            interception_client_ips: 19_149,
            interception_categories: [
                ("Security & Network", 31, 94.74, 17_915),
                ("Business & Corporate", 27, 4.99, 4_787),
                ("Health & Education", 10, 0.02, 35),
                ("Government & Public Service", 6, 0.24, 25),
                ("Bank & Finance", 3, 0.00, 14),
                ("Other", 3, 0.00, 73),
            ],
            public_share_len2: 0.62,
            nonpub_share_len1: 0.7810,
            interception_share_len3: 0.82,
            hybrid_complete_nonpub_to_pub: 26,
            hybrid_complete_pub_to_prv: 10,
            hybrid_contains_path: 70,
            hybrid_no_path: 215,
            established_rate_complete: 0.9756,
            established_rate_contains: 0.9204,
            established_rate_no_path: 0.5742,
            no_path_connections: 38_085,
            no_path_client_ips: 4_987,
            pub_leaf_no_intermediate_chains: 56,
            pub_leaf_no_intermediate_connections: 19_366,
            pub_leaf_no_intermediate_client_ips: 4_444,
            pub_leaf_no_intermediate_established: 0.5608,
            hybrid_complete_expired: 3,
            anchored_corporate: 10,
            anchored_government: 16,
            t7_selfsigned_leaf_mismatches: 108,
            t7_selfsigned_leaf_valid_subchain: 13,
            t7_all_mismatched: 61,
            t7_partial_mismatched: 27,
            t7_root_appended_to_valid_subchain: 5,
            t7_root_and_mismatches: 1,
            t7_identical_leaf_fields: 100,
            mismatch_ratio_ge_half: 0.5674,
            nonpub_single_share: 0.7810,
            nonpub_single_selfsigned_share: 0.9419,
            nonpub_single_no_sni_share: 0.8670,
            interception_single_share: 0.1324,
            interception_single_selfsigned_share: 0.9343,
            nonpub_multi_matched_share: 0.9976,
            interception_multi_matched_share: 0.9894,
            nonpub_multi_contains: 142,
            interception_multi_contains: 56,
            nonpub_multi_no_path: 87,
            interception_multi_no_path: 2_764,
            bc_omitted_first: 0.5531,
            bc_omitted_subsequent: 0.7832,
            dga_connections: 21_880,
            dga_client_ips: 761,
            dga_validity_min_days: 4,
            dga_validity_max_days: 365,
            ports_hybrid: [
                (443, 97.21),
                (8443, 1.36),
                (8088, 1.22),
                (25, 0.18),
                (9191, 0.01),
            ],
            ports_nonpub_single: [
                (443, 46.29),
                (8888, 21.52),
                (33854, 19.08),
                (13000, 4.22),
                (25, 1.30),
            ],
            ports_nonpub_multi: [
                (443, 83.51),
                (8531, 4.18),
                (9093, 2.85),
                (38881, 1.81),
                (6443, 1.45),
            ],
            ports_interception: [
                (8013, 35.40),
                (4437, 25.14),
                (14430, 16.34),
                (443, 13.36),
                (514, 3.53),
            ],
            revisit_hybrid_reachable: 270,
            revisit_hybrid_now_public: 231,
            revisit_hybrid_now_nonpub: 4,
            revisit_hybrid_still_hybrid: 35,
            revisit_hybrid_complete_clean: 9,
            revisit_hybrid_complete_unnecessary: 3,
            revisit_nonpub_no_sni_share: 0.7949,
            revisit_nonpub_servers: 12_404,
            revisit_nonpub_now_multi: 9_849,
            revisit_nonpub_prev_multi_share: 0.3900,
            revisit_nonpub_prev_single_selfsigned_share: 0.5344,
            revisit_nonpub_prev_single_distinct_share: 0.0756,
            revisit_nonpub_complete_share: 0.9761,
            t5_total_chains: 12_676,
            t5_single: 2_568,
            t5_issuer_subject_valid: 9_825,
            t5_issuer_subject_broken: 283,
            t5_keysig_valid: 9_821,
            t5_keysig_broken: 284,
            t5_unrecognized_keys: 3,
        }
    }
}

/// Generator parameters: how much of the paper-scale trace to actually
/// materialize. Weighted statistics multiply back to paper scale.
#[derive(Debug, Clone)]
pub struct CampusProfile {
    /// RNG seed for the whole ecosystem.
    pub seed: u64,
    /// Scale for bulk chain populations (non-public-DB-only, interception,
    /// public-DB-only). 0.01 ⇒ one generated chain represents 100.
    pub chain_scale: f64,
    /// Scale for bulk connection volumes. 0.001 ⇒ one generated record
    /// represents 1000 connections.
    pub conn_scale: f64,
    /// Number of public-DB-only chains to generate (shape-only population
    /// for Figure 1; the paper reports only its length distribution).
    pub public_chains: usize,
    /// Connections per public-DB-only chain (flat; public traffic volume is
    /// not reported by the paper).
    pub public_conns_per_chain: u64,
}

impl Default for CampusProfile {
    fn default() -> CampusProfile {
        CampusProfile {
            seed: 20250901,
            chain_scale: 0.01,
            conn_scale: 0.001,
            public_chains: 2_000,
            public_conns_per_chain: 5,
        }
    }
}

impl CampusProfile {
    /// A much smaller profile for unit tests.
    pub fn quick() -> CampusProfile {
        CampusProfile {
            seed: 42,
            chain_scale: 0.002,
            conn_scale: 0.0002,
            public_chains: 200,
            public_conns_per_chain: 2,
        }
    }

    /// A larger profile for parallel-scaling benchmarks: the same chain
    /// population as the default but ~4× the connection volume, so the
    /// per-record accumulate stage dominates the wall time and thread
    /// scaling is visible on multi-core hosts (`CERTCHAIN_PROFILE=large`).
    pub fn large() -> CampusProfile {
        CampusProfile {
            seed: 20250901,
            chain_scale: 0.01,
            conn_scale: 0.004,
            public_chains: 2_000,
            public_conns_per_chain: 20,
        }
    }

    /// Weight of one scaled chain.
    pub fn chain_weight(&self) -> f64 {
        1.0 / self.chain_scale
    }

    /// Weight of one scaled connection.
    pub fn conn_weight(&self) -> f64 {
        1.0 / self.conn_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shares_are_consistent() {
        let t = CalibrationTargets::paper();
        // 16.24% + 0.02% + 11.19% = 27.45%, which the paper rounds to 28%.
        let sum = t.share_nonpub_only + t.share_hybrid + t.share_interception;
        assert!((sum - 0.2745).abs() < 0.002, "sum = {sum}");
        // Chain counts derive from the shares.
        assert!(
            (t.nonpub_chains as f64 - t.total_chains as f64 * t.share_nonpub_only).abs() < 500.0
        );
        assert_eq!(
            t.hybrid_complete_nonpub_to_pub
                + t.hybrid_complete_pub_to_prv
                + t.hybrid_contains_path
                + t.hybrid_no_path,
            t.hybrid_chains
        );
        assert_eq!(
            t.anchored_corporate + t.anchored_government,
            t.hybrid_complete_nonpub_to_pub
        );
        // Table 7 rows sum to the 215 no-path chains.
        assert_eq!(
            t.t7_selfsigned_leaf_mismatches
                + t.t7_selfsigned_leaf_valid_subchain
                + t.t7_all_mismatched
                + t.t7_partial_mismatched
                + t.t7_root_appended_to_valid_subchain
                + t.t7_root_and_mismatches,
            t.hybrid_no_path
        );
        // Table 1 issuer counts sum to the 80 identified issuers.
        let issuers: u64 = t.interception_categories.iter().map(|c| c.1).sum();
        assert_eq!(issuers, 80);
        // Table 5 columns are internally consistent.
        assert_eq!(
            t.t5_single + t.t5_issuer_subject_valid + t.t5_issuer_subject_broken,
            t.t5_total_chains
        );
        assert_eq!(
            t.t5_single + t.t5_keysig_valid + t.t5_keysig_broken + t.t5_unrecognized_keys,
            t.t5_total_chains
        );
    }

    #[test]
    fn profile_weights() {
        let p = CampusProfile::default();
        assert!((p.chain_weight() - 100.0).abs() < 1e-9);
        assert!((p.conn_weight() - 1000.0).abs() < 1e-9);
        let q = CampusProfile::quick();
        assert!(q.chain_scale < p.chain_scale);
    }
}
