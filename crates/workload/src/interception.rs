//! TLS-interception middleboxes (§3.2.1, Table 1, Appendix B).
//!
//! A middlebox re-signs traffic for real (CT-known) domains with its own
//! vendor CA. The detector in `chainlab` later cross-references the
//! observed issuer against CT's records for the domain — exactly the
//! paper's method — so every detectable interception chain here targets a
//! domain served by the public population. A small tail of chains target
//! private (non-CT) domains, reproducing the paper's caveat that such
//! interception is undetectable by this method.

use crate::calibration::{CalibrationTargets, CampusProfile};
use crate::issuers::{interception_vendors, InterceptionCategory, InterceptionVendor};
use crate::pki::{ca_validity, CaHandle, Ecosystem};
use crate::servers::public::public_domain;
use crate::servers::{server_ip, ChainCategory, GeneratedServer, TrafficGroup};
use certchain_asn1::Asn1Time;
use certchain_x509::{Certificate, DistinguishedName, Validity};
use std::sync::Arc;

fn t(y: u64, m: u64, d: u64) -> Asn1Time {
    Asn1Time::from_ymd_hms(y, m, d, 0, 0, 0).expect("valid date")
}

/// A vendor's middlebox CA pair.
#[derive(Debug, Clone)]
pub struct Middlebox {
    /// Vendor identity.
    pub vendor: InterceptionVendor,
    /// Vendor root (installed on managed endpoints).
    pub root: CaHandle,
    /// Issuing intermediate the box signs forged leaves with.
    pub ica: CaHandle,
}

/// Build the 80 vendor middleboxes.
pub fn build_middleboxes(eco: &mut Ecosystem) -> Vec<Middlebox> {
    interception_vendors()
        .into_iter()
        .map(|vendor| {
            let serial = eco.next_serial();
            let root = CaHandle::self_signed(
                eco.seed,
                &format!("mb-root:{}", vendor.name),
                DistinguishedName::cn_o(&format!("{} Root CA", vendor.name), &vendor.name),
                ca_validity(),
                serial,
            );
            let serial = eco.next_serial();
            let ica = CaHandle::issued_by(
                &root,
                eco.seed,
                &format!("mb-ica:{}", vendor.name),
                DistinguishedName::cn_o(&format!("{} Intermediate CA", vendor.name), &vendor.name),
                ca_validity(),
                serial,
            );
            Middlebox { vendor, root, ica }
        })
        .collect()
}

/// Counts for the interception population.
#[derive(Debug, Clone, Copy)]
pub struct InterceptionCounts {
    /// Scaled single-cert chains (13.24% of interception chains).
    pub single: usize,
    /// Scaled matched multi-cert chains.
    pub multi_matched: usize,
    /// Full-fidelity contains-path chains (Table 8: 56).
    pub multi_contains: usize,
    /// Full-fidelity no-path chains (Table 8: 2,764).
    pub multi_no_path: usize,
}

impl InterceptionCounts {
    /// Derive from calibration + profile.
    pub fn from_profile(
        targets: &CalibrationTargets,
        profile: &CampusProfile,
    ) -> InterceptionCounts {
        let total = targets.interception_chains as f64;
        let single = total * targets.interception_single_share;
        let multi = total - single;
        let matched = multi
            - targets.interception_multi_contains as f64
            - targets.interception_multi_no_path as f64;
        InterceptionCounts {
            single: (single * profile.chain_scale).round().max(1.0) as usize,
            multi_matched: (matched * profile.chain_scale).round().max(1.0) as usize,
            multi_contains: targets.interception_multi_contains as usize,
            multi_no_path: targets.interception_multi_no_path as usize,
        }
    }
}

/// Deterministically spread an index over 0..10_000 so small populations
/// still follow the Table 4 port proportions.
fn mix10k(i: usize) -> usize {
    (i.wrapping_mul(2_654_435_761)) % 10_000
}

/// A second, independent mix for port assignment: ports must not correlate
/// with the vendor schedule (which uses [`mix10k`]), or category-specific
/// connection volumes would skew the Table 4 shares.
fn mix10k_b(i: usize) -> usize {
    let mut h = (i.wrapping_mul(2_654_435_761)) as u32;
    h ^= h >> 16;
    h = h.wrapping_mul(2_246_822_519);
    h ^= h >> 13;
    (h % 10_000) as usize
}

/// Port assignment following Table 4's interception column (8013 is the
/// Fortinet signature the paper calls out).
fn interception_port(i: usize) -> u16 {
    match mix10k_b(i) {
        0..=3539 => 8013,
        3540..=6053 => 4437,
        6054..=7687 => 14430,
        7688..=9023 => 443,
        9024..=9376 => 514,
        9377..=9800 => 10443,
        _ => 8920,
    }
}

/// Pick the vendor for chain `i`: a mixed schedule that keeps Security &
/// Network vendors dominant while guaranteeing every vendor (including the
/// small categories) receives multiple chains.
fn vendor_for(i: usize, boxes: &[Middlebox]) -> usize {
    let idx = match mix10k(i) {
        // 70%: security & network (indices 0..31).
        0..=6999 => i % 31,
        // 15%: business & corporate (31..58).
        7000..=8499 => 31 + i % 27,
        // 7%: health & education (58..68).
        8500..=9199 => 58 + i % 10,
        // 4%: government (68..74).
        9200..=9599 => 68 + i % 6,
        // 2%: bank & finance (74..77).
        9600..=9799 => 74 + i % 3,
        // 2%: other (77..80).
        _ => 77 + i % 3,
    };
    idx.min(boxes.len() - 1)
}

/// A forged leaf for `domain` signed by the middlebox's intermediate.
fn forged_leaf(eco: &mut Ecosystem, mb: &Middlebox, domain: &str) -> Arc<Certificate> {
    let serial = eco.next_serial();
    mb.ica.issue_leaf(
        domain,
        // Middleboxes mint short-lived certs on the fly.
        Validity::days_from(t(2020, 9, 1), 398),
        serial,
        eco.seed,
    )
}

/// Build the interception chain population.
pub fn build(
    eco: &mut Ecosystem,
    base_id: u64,
    counts: InterceptionCounts,
    profile: &CampusProfile,
    public_domain_count: usize,
) -> Vec<GeneratedServer> {
    let boxes = build_middleboxes(eco);
    let chain_weight = profile.chain_weight();
    let mut out = Vec::new();
    let push = |out: &mut Vec<GeneratedServer>,
                chain: Vec<Arc<Certificate>>,
                category: InterceptionCategory,
                weight: f64,
                domain: Option<String>,
                port: u16| {
        let sid = base_id + out.len() as u64;
        out.push(GeneratedServer {
            endpoint: certchain_netsim::ServerEndpoint::new(
                sid,
                server_ip(sid),
                port,
                domain,
                chain,
            ),
            category: ChainCategory::Interception(category),
            weight,
            in_pub_leaf_no_intermediate_group: false,
            group: TrafficGroup::Interception(category),
        });
    };

    // The Appendix-B "undetectable" middlebox: it exclusively intercepts
    // origins whose certificates never reached CT, so the CT
    // cross-reference can never implicate it. It is NOT one of the 80
    // identified vendors.
    let serial = eco.next_serial();
    let stealth_root = CaHandle::self_signed(
        eco.seed,
        "mb-stealth-root",
        DistinguishedName::cn_o("Internal Gateway Root CA", "Unattributed Gateway"),
        ca_validity(),
        serial,
    );
    let serial = eco.next_serial();
    let stealth = Middlebox {
        vendor: InterceptionVendor {
            name: "Unattributed Gateway".to_string(),
            category: InterceptionCategory::Other,
        },
        ica: CaHandle::issued_by(
            &stealth_root,
            eco.seed,
            "mb-stealth-ica",
            DistinguishedName::cn_o("Internal Gateway CA", "Unattributed Gateway"),
            ca_validity(),
            serial,
        ),
        root: stealth_root,
    };

    // A rotating cursor over CT-known public domains to intercept.
    let mut domain_cursor = 0usize;
    let next_domain = |cursor: &mut usize| {
        let d = public_domain(*cursor % public_domain_count.max(1));
        *cursor += 1;
        d
    };

    // ---- Multi-cert matched chains: [forged leaf, vendor ICA, vendor
    // root] — the >80%-length-3 signature of Figure 1.
    for i in 0..counts.multi_matched {
        // ~2% of chains come from the stealth middlebox intercepting
        // private-origin domains (undetectable via CT — Appendix B).
        let (mb, domain) = if i % 50 == 49 {
            (stealth.clone(), format!("private-origin-{i}.corp.internal"))
        } else {
            (
                boxes[vendor_for(i, &boxes)].clone(),
                next_domain(&mut domain_cursor),
            )
        };
        let leaf = forged_leaf(eco, &mb, &domain);
        let chain = vec![leaf, Arc::clone(&mb.ica.cert), Arc::clone(&mb.root.cert)];
        push(
            &mut out,
            chain,
            mb.vendor.category,
            chain_weight,
            Some(domain),
            interception_port(i),
        );
    }

    // ---- Single-cert chains (13.24%; 93.43% self-signed). Every
    // appliance instance mints its own certificate, so each chain is
    // distinct even when the vendor is the same.
    for i in 0..counts.single {
        let mb = boxes[vendor_for(i + 7, &boxes)].clone();
        let serial = eco.next_serial();
        let chain = if (i * 10_000) / counts.single.max(1) < 9_343 {
            // A per-appliance self-signed vendor certificate.
            let appliance = CaHandle::self_signed(
                eco.seed,
                &format!("mb-appliance:{i}"),
                DistinguishedName::cn_o(
                    &format!("{} Appliance {i:03}", mb.vendor.name),
                    &mb.vendor.name,
                ),
                ca_validity(),
                serial,
            );
            vec![appliance.cert]
        } else {
            // A lone per-appliance intermediate (distinct issuer/subject).
            let lone = CaHandle::issued_by(
                &mb.root,
                eco.seed,
                &format!("mb-lone-ica:{i}"),
                DistinguishedName::cn_o(
                    &format!("{} Gateway CA {i:03}", mb.vendor.name),
                    &mb.vendor.name,
                ),
                ca_validity(),
                serial,
            );
            vec![lone.cert]
        };
        push(
            &mut out,
            chain,
            mb.vendor.category,
            chain_weight,
            None,
            interception_port(i + 3),
        );
    }

    // ---- Complex PKI structure (Figure 8): one large vendor deploys
    // regional issuing CAs beneath a central intermediate, so the central
    // intermediate is adjacent to ≥3 distinct intermediates across chains.
    {
        let mb = boxes[0].clone(); // Zscaler, the largest deployment
        let serial = eco.next_serial();
        let central = CaHandle::issued_by(
            &mb.root,
            eco.seed,
            "mb-central-ica",
            DistinguishedName::cn_o(&format!("{} Central CA", mb.vendor.name), &mb.vendor.name),
            ca_validity(),
            serial,
        );
        for region in 0..4u64 {
            let serial = eco.next_serial();
            let regional = CaHandle::issued_by(
                &central,
                eco.seed,
                &format!("mb-regional-ica:{region}"),
                DistinguishedName::cn_o(
                    &format!("{} Regional CA {region}", mb.vendor.name),
                    &mb.vendor.name,
                ),
                ca_validity(),
                serial,
            );
            for k in 0..2u64 {
                let domain = next_domain(&mut domain_cursor);
                let serial = eco.next_serial();
                let leaf = regional.issue_leaf(
                    &domain,
                    Validity::days_from(t(2020, 9, 1), 398),
                    serial,
                    eco.seed,
                );
                let chain = vec![
                    leaf,
                    Arc::clone(&regional.cert),
                    Arc::clone(&central.cert),
                    Arc::clone(&mb.root.cert),
                ];
                push(
                    &mut out,
                    chain,
                    mb.vendor.category,
                    1.0,
                    Some(domain),
                    interception_port((region * 2 + k) as usize),
                );
            }
        }
    }

    // ---- Contains-a-matched-path chains (56, full fidelity): a matched
    // vendor pair plus a stale unrelated vendor cert left behind by an
    // appliance upgrade.
    for i in 0..counts.multi_contains {
        let mb = boxes[vendor_for(i, &boxes)].clone();
        let stale = boxes[(vendor_for(i, &boxes) + 11) % boxes.len()].clone();
        let domain = next_domain(&mut domain_cursor);
        let leaf = forged_leaf(eco, &mb, &domain);
        let chain = vec![
            leaf,
            Arc::clone(&mb.ica.cert),
            Arc::clone(&mb.root.cert),
            Arc::clone(&stale.root.cert),
        ];
        push(
            &mut out,
            chain,
            mb.vendor.category,
            1.0,
            Some(domain),
            interception_port(i + 5),
        );
    }

    // ---- No-matched-path chains (2,764, full fidelity): the appliance
    // presents a forged leaf with the *wrong* intermediate (e.g. a root CA
    // rollover where the box kept the old issuing chain).
    for i in 0..counts.multi_no_path {
        let mb = boxes[vendor_for(i, &boxes)].clone();
        let wrong = boxes[(vendor_for(i, &boxes) + 29) % boxes.len()].clone();
        let domain = next_domain(&mut domain_cursor);
        let leaf = forged_leaf(eco, &mb, &domain);
        let chain = vec![leaf, Arc::clone(&wrong.ica.cert)];
        push(
            &mut out,
            chain,
            mb.vendor.category,
            1.0,
            Some(domain),
            interception_port(i + 9),
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servers::public;

    fn population() -> (Ecosystem, Vec<GeneratedServer>) {
        let targets = CalibrationTargets::paper();
        let profile = CampusProfile::quick();
        let mut eco = Ecosystem::bootstrap(profile.seed);
        // Build some public domains first so CT knows the targets.
        let _pub = public::build(&mut eco, 0, 100, 1.0);
        let counts = InterceptionCounts::from_profile(&targets, &profile);
        let servers = build(&mut eco, 80_000, counts, &profile, 100);
        (eco, servers)
    }

    #[test]
    fn counts_and_categories() {
        let (_eco, servers) = population();
        // 56 contains-path chains plus the 8 regional-hub chains
        // (Figure 8) are the only length-4 chains.
        let len4 = servers
            .iter()
            .filter(|s| s.endpoint.chain_len() == 4)
            .count();
        assert_eq!(len4, 56 + 8);
        let no_path = servers
            .iter()
            .filter(|s| s.endpoint.chain_len() == 2)
            .count();
        assert_eq!(no_path, 2_764);
        // All six categories appear.
        let cats: std::collections::HashSet<_> = servers
            .iter()
            .map(|s| match s.category {
                ChainCategory::Interception(c) => c,
                _ => panic!("non-interception server in population"),
            })
            .collect();
        assert_eq!(cats.len(), 6);
    }

    #[test]
    fn matched_chains_are_length_three_and_matched() {
        let (_eco, servers) = population();
        for s in servers.iter().filter(|s| s.endpoint.chain_len() == 3) {
            let chain = &s.endpoint.chain;
            assert_eq!(chain[0].issuer, chain[1].subject);
            assert_eq!(chain[1].issuer, chain[2].subject);
            assert!(chain[2].is_self_signed());
        }
    }

    #[test]
    fn forged_leaves_conflict_with_ct() {
        let (eco, servers) = population();
        let index = certchain_ctlog::DomainIndex::build(&[&eco.ct]);
        let mut checked = 0;
        for s in servers.iter().filter(|s| s.endpoint.chain_len() == 3) {
            let Some(domain) = &s.endpoint.domain else {
                continue;
            };
            if domain.contains("corp.internal") {
                continue; // the undetectable tail
            }
            let leaf = &s.endpoint.chain[0];
            let recorded = index.recorded_issuers_overlapping(domain, leaf.validity);
            assert!(
                !recorded.is_empty(),
                "CT must know the intercepted domain {domain}"
            );
            assert!(
                !recorded.contains(&&leaf.issuer),
                "the vendor issuer must not be CT-recorded for {domain}"
            );
            checked += 1;
        }
        assert!(checked > 10);
    }

    #[test]
    fn undetectable_tail_exists() {
        let (eco, servers) = population();
        let index = certchain_ctlog::DomainIndex::build(&[&eco.ct]);
        let undetectable = servers
            .iter()
            .filter(|s| {
                s.endpoint
                    .domain
                    .as_deref()
                    .map(|d| !index.knows_domain(d))
                    .unwrap_or(false)
            })
            .count();
        assert!(undetectable > 0, "Appendix-B caveat chains must exist");
    }

    #[test]
    fn fortinet_port_dominates() {
        let (_eco, servers) = population();
        let p8013 = servers.iter().filter(|s| s.endpoint.port == 8013).count() as f64;
        let share = p8013 / servers.len() as f64;
        assert!((share - 0.354).abs() < 0.05, "8013 share = {share}");
    }
}
