#![forbid(unsafe_code)]
//! The synthetic campus: a full PKI ecosystem and TLS traffic trace
//! calibrated to the paper's published distributions.
//!
//! The original study analyzed 12 months of IRB-restricted Zeek logs. This
//! crate is the documented substitution (see DESIGN.md §1): it regenerates
//! a trace with the same *structure* — chain categories in the paper's
//! proportions, the exact 321-hybrid-chain population of Table 3/7, the
//! Table 1 interception-vendor census, the DGA cluster, port and SNI
//! distributions, per-category establishment rates — and hands it to the
//! analysis crates through the very same Zeek record types a real
//! deployment would produce.
//!
//! ## Weights
//!
//! Small populations (all 321 hybrid chains, the 80 interception issuers,
//! the Table 8 tails) are generated at **full fidelity**. Bulk populations
//! (hundreds of thousands of non-public-DB-only chains, hundreds of
//! millions of connections) are generated **scaled**, and every generated
//! chain and connection carries a `weight` so that weighted statistics
//! reproduce the paper's absolute numbers.

pub mod calibration;
pub mod dga;
pub mod evolve;
pub mod interception;
pub mod issuers;
pub mod misconfig;
pub mod pki;
pub mod servers;
pub mod trace;
pub mod traffic;

pub use calibration::{CalibrationTargets, CampusProfile};
pub use pki::Ecosystem;
pub use trace::{CampusTrace, ChainCategory, ConnMeta, GroundTruth, TraceContext, TraceSink};
