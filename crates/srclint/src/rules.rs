//! The srclint rule catalog.
//!
//! Every rule answers one question about a single file, given the
//! [`crate::lexer::Line`] view and the file's workspace classification.
//! Rules are deliberately lexical: srclint runs on every CI push, must
//! build with zero dependencies beyond the workspace, and favors a small
//! number of auditable false positives (silenced with justification
//! markers) over parser-grade precision.

use crate::lexer::Line;
use std::collections::BTreeSet;
use std::fmt;

/// Crates whose output feeds the byte-identical tables/figures. The
/// det-unordered-iter rule only applies here.
pub const DET_CRATES: &[&str] = &[
    "chainlab", "colstore", "obs", "report", "workload", "netsim",
];

/// Crates exempt from det-wallclock: timing is their purpose.
pub const WALLCLOCK_EXEMPT: &[&str] = &["bench", "vendor/criterion"];

/// The single sanctioned wall-clock call site. `obs::clock` wraps
/// `Instant`/`SystemTime` behind an audited monotonic-stopwatch API;
/// every other library read must go through it.
pub const WALLCLOCK_SANCTIONED_FILE: &str = "crates/obs/src/clock.rs";

/// The rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` iteration in a determinism-critical crate.
    DetUnorderedIter,
    /// Wall-clock reads (`Instant::now`/`SystemTime::now`) in library code.
    DetWallclock,
    /// Thread-count/identity probes that can leak into output.
    DetThreadSensitivity,
    /// `unsafe` without a `// SAFETY:` comment.
    UnsafeNeedsSafetyComment,
    /// `#[allow(...)]` without a same-line reason comment.
    NoSilentAllow,
}

impl RuleId {
    /// Every rule, in catalog order.
    pub const ALL: [RuleId; 5] = [
        RuleId::DetUnorderedIter,
        RuleId::DetWallclock,
        RuleId::DetThreadSensitivity,
        RuleId::UnsafeNeedsSafetyComment,
        RuleId::NoSilentAllow,
    ];

    /// Stable kebab-case name (used in output, markers, the allowlist).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::DetUnorderedIter => "det-unordered-iter",
            RuleId::DetWallclock => "det-wallclock",
            RuleId::DetThreadSensitivity => "det-thread-sensitivity",
            RuleId::UnsafeNeedsSafetyComment => "unsafe-needs-safety-comment",
            RuleId::NoSilentAllow => "no-silent-allow",
        }
    }

    /// Parse a rule name.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == s)
    }

    /// One-line description for `rules` output and reports.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::DetUnorderedIter => {
                "HashMap/HashSet iteration inside determinism-critical crates \
                 (chainlab/obs/report/workload/netsim) must be justified with \
                 `// srclint: commutative` or replaced by an ordered container"
            }
            RuleId::DetWallclock => {
                "library code must not read the wall clock \
                 (Instant::now/SystemTime::now) outside obs::clock, the single \
                 sanctioned call site; outputs must be re-runnable"
            }
            RuleId::DetThreadSensitivity => {
                "available_parallelism/thread::current must not influence \
                 non-bench output; thread-count knobs need a justification"
            }
            RuleId::UnsafeNeedsSafetyComment => {
                "every `unsafe` block/fn/impl needs a `// SAFETY:` comment \
                 on the same or a nearby preceding line"
            }
            RuleId::NoSilentAllow => "#[allow(...)] requires a same-line `// reason` comment",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a finding was silenced, if it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Suppression {
    /// `// srclint: commutative` on the same or previous line.
    CommutativeMarker,
    /// `// srclint: allow(<rule>) -- reason` on the same or previous line.
    InlineAllow(String),
    /// Matched an entry in the allowlist file.
    Allowlist(String),
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
    /// Set when an inline marker or allowlist entry silenced the finding.
    pub suppression: Option<Suppression>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    | {}",
            self.path, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`crates/<c>/src/**`, not `src/bin`).
    Lib,
    /// Binary source (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Tests and benches (`tests/**`, `benches/**`).
    Test,
    /// `examples/**`.
    Example,
}

/// A classified workspace file.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// `chainlab`, `vendor/rand`, `tests`, `examples`, ...
    pub crate_name: String,
    /// Position-derived kind.
    pub kind: FileKind,
}

/// Classify a workspace-relative path.
pub fn classify(rel_path: &str) -> FileInfo {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = match parts.first().copied() {
        Some("crates") => parts.get(1).copied().unwrap_or("").to_string(),
        Some("vendor") => format!("vendor/{}", parts.get(1).copied().unwrap_or("")),
        Some(other) => other.to_string(),
        None => String::new(),
    };
    let tail: Vec<&str> = if matches!(parts.first().copied(), Some("crates" | "vendor")) {
        parts[2..].to_vec()
    } else {
        parts[1..].to_vec()
    };
    let kind = match tail.first().copied() {
        Some("tests") | Some("benches") => FileKind::Test,
        Some("examples") => FileKind::Example,
        Some("src") => {
            if tail.get(1).copied() == Some("bin") || tail.get(1).copied() == Some("main.rs") {
                FileKind::Bin
            } else {
                FileKind::Lib
            }
        }
        _ => FileKind::Lib,
    };
    // The workspace-level `examples/` member is all example code.
    let kind = if crate_name == "examples" {
        FileKind::Example
    } else {
        kind
    };
    FileInfo {
        path: rel_path.to_string(),
        crate_name,
        kind,
    }
}

/// First line of the file's `#[cfg(test)]` region, if any. By workspace
/// convention the unit-test module is the last item in a file, so
/// everything from that attribute on is treated as test code.
fn test_region_start(lines: &[Line]) -> Option<usize> {
    lines
        .iter()
        .find(|l| l.code.contains("#[cfg(test)]"))
        .map(|l| l.number)
}

/// Run every applicable rule over one file.
pub fn scan_file(info: &FileInfo, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let test_start = test_region_start(lines);
    let in_test_region = |n: usize| test_start.is_some_and(|s| n >= s);

    if DET_CRATES.contains(&info.crate_name.as_str()) && info.kind == FileKind::Lib {
        det_unordered_iter(info, lines, &mut findings);
    }
    if info.kind == FileKind::Lib
        && !WALLCLOCK_EXEMPT.contains(&info.crate_name.as_str())
        && info.path != WALLCLOCK_SANCTIONED_FILE
    {
        det_wallclock(info, lines, &in_test_region, &mut findings);
    }
    if info.kind == FileKind::Lib
        && info.crate_name != "bench"
        && !info.crate_name.starts_with("vendor/")
    {
        det_thread_sensitivity(info, lines, &in_test_region, &mut findings);
    }
    unsafe_needs_safety_comment(info, lines, &mut findings);
    no_silent_allow(info, lines, &mut findings);
    findings
}

/// The iteration methods whose order follows the hasher, not the data.
const UNORDERED_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn det_unordered_iter(info: &FileInfo, lines: &[Line], out: &mut Vec<Finding>) {
    let names = hash_typed_names(lines);
    if names.is_empty() {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        let mut hit: Option<String> = None;
        // `map.iter()`-style: an unordered method invoked on a tracked name.
        for m in UNORDERED_METHODS {
            for pos in find_method_calls(&line.code, m) {
                if let Some(recv) = ident_ending_at(&line.code, pos) {
                    if names.contains(recv) {
                        hit = Some(format!("`{recv}.{m}()`"));
                    }
                }
            }
        }
        // `for x in &map`-style: the for-expression ends in a tracked name.
        if hit.is_none() {
            if let Some(name) = for_loop_over(&line.code, &names) {
                hit = Some(format!("`for .. in {name}`"));
            }
        }
        let Some(what) = hit else { continue };
        let suppression = (marker_near(lines, idx, "srclint: commutative"))
            .then_some(Suppression::CommutativeMarker)
            .or_else(|| inline_allow_near(lines, idx, RuleId::DetUnorderedIter));
        out.push(Finding {
            rule: RuleId::DetUnorderedIter,
            path: info.path.clone(),
            line: line.number,
            snippet: snippet_of(line),
            message: format!(
                "{what} iterates a hash container in determinism-critical crate \
                 `{}`; iteration order follows the hasher. Sort first, use an \
                 ordered container, or justify with `// srclint: commutative`",
                info.crate_name
            ),
            suppression,
        });
    }
}

fn det_wallclock(
    info: &FileInfo,
    lines: &[Line],
    in_test_region: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for (idx, line) in lines.iter().enumerate() {
        if in_test_region(line.number) {
            continue;
        }
        for probe in ["Instant::now", "SystemTime::now"] {
            if contains_token_path(&line.code, probe) {
                out.push(Finding {
                    rule: RuleId::DetWallclock,
                    path: info.path.clone(),
                    line: line.number,
                    snippet: snippet_of(line),
                    message: format!(
                        "`{probe}()` in library code: analysis outputs must be \
                         reproducible from inputs alone; route timing through \
                         `certchain_obs::clock`, the single sanctioned site"
                    ),
                    suppression: inline_allow_near(lines, idx, RuleId::DetWallclock),
                });
            }
        }
    }
}

fn det_thread_sensitivity(
    info: &FileInfo,
    lines: &[Line],
    in_test_region: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for (idx, line) in lines.iter().enumerate() {
        if in_test_region(line.number) {
            continue;
        }
        for probe in ["available_parallelism", "thread::current"] {
            if contains_token_path(&line.code, probe) {
                out.push(Finding {
                    rule: RuleId::DetThreadSensitivity,
                    path: info.path.clone(),
                    line: line.number,
                    snippet: snippet_of(line),
                    message: format!(
                        "`{probe}` makes behavior depend on the host's thread \
                         configuration; outputs must be identical across thread \
                         counts (justify knob-resolution sites inline)"
                    ),
                    suppression: inline_allow_near(lines, idx, RuleId::DetThreadSensitivity),
                });
            }
        }
    }
}

fn unsafe_needs_safety_comment(info: &FileInfo, lines: &[Line], out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        // A SAFETY comment on the same line, or anywhere in the contiguous
        // block of comment/attribute lines directly above (multi-line
        // SAFETY comments and interposed `#[cfg(...)]` attributes are
        // idiomatic), covers this `unsafe`.
        let mut covered = line.comment.contains("SAFETY:");
        for j in (0..idx).rev() {
            if covered {
                break;
            }
            let above = &lines[j];
            let code = above.code.trim();
            if !code.is_empty() && !code.starts_with("#[") {
                break;
            }
            covered = above.comment.contains("SAFETY:");
        }
        if covered {
            continue;
        }
        out.push(Finding {
            rule: RuleId::UnsafeNeedsSafetyComment,
            path: info.path.clone(),
            line: line.number,
            snippet: snippet_of(line),
            message: "`unsafe` without a `// SAFETY:` comment on the same or a \
                      nearby preceding line"
                .to_string(),
            suppression: inline_allow_near(lines, idx, RuleId::UnsafeNeedsSafetyComment),
        });
    }
}

fn no_silent_allow(info: &FileInfo, lines: &[Line], out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if !(code.contains("#[allow(") || code.contains("#![allow(")) {
            continue;
        }
        if !line.comment.trim_start_matches('/').trim().is_empty() {
            continue;
        }
        out.push(Finding {
            rule: RuleId::NoSilentAllow,
            path: info.path.clone(),
            line: line.number,
            snippet: snippet_of(line),
            message: "silent `#[allow(...)]`: add a same-line `// reason` comment".to_string(),
            suppression: inline_allow_near(lines, idx, RuleId::NoSilentAllow),
        });
    }
}

fn snippet_of(line: &Line) -> String {
    line.code.trim().chars().take(120).collect()
}

/// `// srclint: <marker>` on the flagged line or the line above.
fn marker_near(lines: &[Line], idx: usize, marker: &str) -> bool {
    let check = |l: &Line| l.comment.contains(marker);
    check(&lines[idx]) || (idx > 0 && check(&lines[idx - 1]))
}

/// `// srclint: allow(<rule>) -- reason` on the flagged line or the line
/// above. The reason text is captured for `list-suppressions`.
fn inline_allow_near(lines: &[Line], idx: usize, rule: RuleId) -> Option<Suppression> {
    let needle = format!("srclint: allow({})", rule.name());
    for j in [Some(idx), idx.checked_sub(1)].into_iter().flatten() {
        if let Some(pos) = lines[j].comment.find(&needle) {
            let rest = lines[j].comment[pos + needle.len()..].trim();
            let reason = rest.trim_start_matches("--").trim().to_string();
            return Some(Suppression::InlineAllow(reason));
        }
    }
    None
}

/// Identifiers in this file whose type is `HashMap`/`HashSet` (or a local
/// alias of one): `name: HashMap<..>` annotations (params, fields, lets)
/// and `let name = HashMap::new()`-style initializations.
fn hash_typed_names(lines: &[Line]) -> BTreeSet<String> {
    let mut hash_types: BTreeSet<String> = ["HashMap", "HashSet"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    // Local `type Alias = HashMap<..>` declarations extend the type set.
    for line in lines {
        let code = &line.code;
        if let Some(tpos) = find_word(code, "type") {
            let rest = &code[tpos + 4..];
            if let Some(eq) = rest.find('=') {
                let alias = rest[..eq].trim();
                let rhs = rest[eq + 1..].trim_start();
                if is_hash_type_head(rhs, &hash_types) && is_ident(alias_head(alias)) {
                    hash_types.insert(alias_head(alias).to_string());
                }
            }
        }
    }
    let mut names = BTreeSet::new();
    for line in lines {
        collect_annotated(&line.code, &hash_types, &mut names);
        collect_let_inits(&line.code, &hash_types, &mut names);
    }
    names
}

/// Strip generics from an alias head: `FieldMap` from `FieldMap` (aliases
/// with parameters are not tracked).
fn alias_head(alias: &str) -> &str {
    alias.split('<').next().unwrap_or(alias).trim()
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// Does a type expression start with one of the hash types (after `&`,
/// `mut`, and any `path::` qualifiers)?
fn is_hash_type_head(mut ty: &str, hash_types: &BTreeSet<String>) -> bool {
    ty = ty.trim_start();
    ty = ty.strip_prefix('&').unwrap_or(ty).trim_start();
    ty = ty.strip_prefix("mut ").unwrap_or(ty).trim_start();
    loop {
        let head_len = ty
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(ty.len());
        let head = &ty[..head_len];
        let rest = &ty[head_len..];
        if let Some(stripped) = rest.strip_prefix("::") {
            ty = stripped;
            continue;
        }
        if !hash_types.contains(head) {
            return false;
        }
        // The base types are always written with generics; a bare head is
        // some unrelated item. Local aliases are complete types as-is.
        return if head == "HashMap" || head == "HashSet" {
            rest.trim_start().starts_with('<')
        } else {
            true
        };
    }
}

/// `name: <hash type>` annotations (fn params, struct fields, lets).
fn collect_annotated(code: &str, hash_types: &BTreeSet<String>, out: &mut BTreeSet<String>) {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b':' {
            continue;
        }
        // Skip `::` path separators.
        if i + 1 < bytes.len() && bytes[i + 1] == b':' {
            continue;
        }
        if i > 0 && bytes[i - 1] == b':' {
            continue;
        }
        if !is_hash_type_head(&code[i + 1..], hash_types) {
            continue;
        }
        // Identifier immediately before the `:`.
        if let Some(name) = ident_ending_at(code, i) {
            if is_ident(name) {
                out.insert(name.to_string());
            }
        }
    }
}

/// `let [mut] name = HashMap::new()` / `..with_capacity(..)` /
/// `..collect::<HashMap<..>>()` initializations.
fn collect_let_inits(code: &str, hash_types: &BTreeSet<String>, out: &mut BTreeSet<String>) {
    let Some(let_pos) = find_word(code, "let") else {
        return;
    };
    let rest = &code[let_pos + 3..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name_len = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let name = &rest[..name_len];
    let after = rest[name_len..].trim_start();
    if !is_ident(name) || !after.starts_with('=') {
        return;
    }
    let rhs = &after[1..];
    let init = hash_types.iter().any(|t| {
        rhs.contains(&format!("{t}::new()"))
            || rhs.contains(&format!("{t}::with_capacity"))
            || rhs.contains(&format!("{t}::from"))
            || rhs.contains(&format!("collect::<{t}"))
    });
    if init {
        out.insert(name.to_string());
    }
}

/// Positions of `.method(` calls (returns the index of the `.`).
fn find_method_calls(code: &str, method: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let pat = format!(".{method}(");
    let mut start = 0;
    while let Some(pos) = code[start..].find(&pat) {
        let at = start + pos;
        // Reject longer method names ending with ours (`.retain(` vs `.in(`).
        out.push(at);
        start = at + pat.len();
    }
    out
}

/// The identifier ending right before byte `end` (skipping trailing
/// spaces), or `None`.
fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let head = code[..end].trim_end();
    let mut start = head.len();
    for (pos, c) in head.char_indices().rev() {
        if c.is_ascii_alphanumeric() || c == '_' {
            start = pos;
        } else {
            break;
        }
    }
    (start < head.len()).then(|| &head[start..])
}

/// `for .. in <expr>` where the expression's trailing identifier is a
/// tracked name (covers `&map`, `&mut map`, `self.map`).
fn for_loop_over<'n>(code: &str, names: &'n BTreeSet<String>) -> Option<&'n str> {
    let for_pos = find_word(code, "for")?;
    let in_pos = for_pos + find_word(&code[for_pos..], "in")?;
    // The loop body may share the line; a for-expression cannot contain an
    // unparenthesized `{`, so everything from the first brace is body.
    let expr = code[in_pos + 2..].split('{').next().unwrap_or("").trim();
    let tail_start = expr
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|p| p + expr[p..].chars().next().map_or(1, char::len_utf8))
        .unwrap_or(0);
    let tail = &expr[tail_start..];
    names.get(tail).map(|s| s.as_str())
}

/// Whole-word occurrence of `word` in `code` (identifier boundaries).
fn find_word(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let c = bytes[at - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let end = at + word.len();
        let after_ok = end >= code.len() || {
            let c = bytes[end] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + word.len().max(1);
    }
    None
}

fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word).is_some()
}

/// `Foo::bar`-style probe with an identifier boundary on each side.
fn contains_token_path(code: &str, path: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(path) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let c = code.as_bytes()[at - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let end = at + path.len();
        let after_ok = end >= code.len() || {
            let c = code.as_bytes()[end] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + path.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        scan_file(&classify(path), &lex(src))
    }

    fn rules_of(findings: &[Finding]) -> Vec<(RuleId, usize, bool)> {
        findings
            .iter()
            .map(|f| (f.rule, f.line, f.suppression.is_some()))
            .collect()
    }

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/chainlab/src/usage.rs").crate_name,
            "chainlab"
        );
        assert_eq!(classify("crates/chainlab/src/usage.rs").kind, FileKind::Lib);
        assert_eq!(
            classify("crates/cli/src/bin/certchain.rs").kind,
            FileKind::Bin
        );
        assert_eq!(classify("crates/srclint/src/main.rs").kind, FileKind::Bin);
        assert_eq!(
            classify("crates/netsim/tests/zeek_stream.rs").kind,
            FileKind::Test
        );
        assert_eq!(
            classify("crates/bench/benches/pipeline.rs").kind,
            FileKind::Test
        );
        assert_eq!(classify("vendor/rand/src/lib.rs").crate_name, "vendor/rand");
        assert_eq!(classify("examples/src/lib.rs").kind, FileKind::Example);
        assert_eq!(classify("tests/tests/end_to_end.rs").kind, FileKind::Test);
    }

    #[test]
    fn unordered_iter_flags_map_methods() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) {\n\
                   for (k, v) in m.iter() { println!(\"{k}{v}\"); }\n\
                   }\n";
        let got = scan("crates/chainlab/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetUnorderedIter, 3, false)]);
    }

    #[test]
    fn unordered_iter_flags_for_over_ref() {
        let src = "fn f() {\n\
                   let mut m = std::collections::HashSet::new();\n\
                   m.insert(1);\n\
                   for v in &m { drop(v); }\n\
                   }\n";
        let got = scan("crates/report/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetUnorderedIter, 4, false)]);
    }

    #[test]
    fn unordered_iter_honors_commutative_marker() {
        let src = "fn f(m: std::collections::HashMap<u8, u8>) -> u32 {\n\
                   // srclint: commutative -- order-insensitive sum\n\
                   m.values().map(|&v| v as u32).sum()\n\
                   }\n";
        let got = scan("crates/workload/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetUnorderedIter, 3, true)]);
    }

    #[test]
    fn unordered_iter_ignores_vec_and_btree() {
        let src = "fn f(v: Vec<u32>, b: std::collections::BTreeMap<u8, u8>) {\n\
                   for x in v.iter() { drop(x); }\n\
                   for (k, _) in b.iter() { drop(k); }\n\
                   }\n";
        assert!(scan("crates/chainlab/src/x.rs", src).is_empty());
    }

    #[test]
    fn unordered_iter_only_in_det_crates() {
        let src = "fn f(m: &std::collections::HashMap<u8, u8>) {\n\
                   for k in m.keys() { drop(k); }\n\
                   }\n";
        assert!(scan("crates/trust/src/x.rs", src).is_empty());
        assert!(!scan("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn unordered_iter_tracks_type_aliases() {
        let src = "type FieldMap = HashMap<String, usize>;\n\
                   fn f(fields: &FieldMap) {\n\
                   for k in fields.keys() { drop(k); }\n\
                   }\n";
        let got = scan("crates/netsim/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetUnorderedIter, 3, false)]);
    }

    #[test]
    fn patterns_inside_strings_do_not_fire() {
        let src = "fn f() { let s = \"HashMap::new() Instant::now() unsafe\"; drop(s); }\n";
        assert!(scan("crates/chainlab/src/x.rs", src).is_empty());
    }

    #[test]
    fn wallclock_flags_lib_not_tests() {
        let src = "fn now() -> u64 { let t = std::time::Instant::now(); 0 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { let _ = std::time::SystemTime::now(); }\n\
                   }\n";
        let got = scan("crates/cli/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetWallclock, 1, false)]);
    }

    #[test]
    fn wallclock_exempts_bins_and_criterion() {
        let src = "fn main() { let _ = std::time::Instant::now(); }\n";
        assert!(scan("crates/cli/src/bin/certchain.rs", src).is_empty());
        assert!(scan("vendor/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn wallclock_sanctions_exactly_obs_clock() {
        let src = "pub fn start() { let _ = std::time::Instant::now(); }\n";
        assert!(scan(WALLCLOCK_SANCTIONED_FILE, src).is_empty());
        // Any other file in obs — or anywhere else — still fires.
        let got = scan("crates/obs/src/metrics.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetWallclock, 1, false)]);
    }

    #[test]
    fn unordered_iter_applies_to_obs() {
        let src = "fn f(m: &std::collections::HashMap<u8, u8>) {\n\
                   for k in m.keys() { drop(k); }\n\
                   }\n";
        let got = scan("crates/obs/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetUnorderedIter, 2, false)]);
    }

    #[test]
    fn thread_sensitivity_flags_and_allows_inline() {
        let src = "fn threads() -> usize {\n\
                   // srclint: allow(det-thread-sensitivity) -- resolves a knob; output invariant\n\
                   std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n\
                   }\n\
                   fn bad() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n";
        let got = scan("crates/chainlab/src/x.rs", src);
        assert_eq!(
            rules_of(&got),
            vec![
                (RuleId::DetThreadSensitivity, 3, true),
                (RuleId::DetThreadSensitivity, 5, false)
            ]
        );
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let src = "fn f() {\n\
                   let x = unsafe { std::mem::zeroed::<u8>() };\n\
                   // SAFETY: zeroed u8 is valid.\n\
                   let y = unsafe { std::mem::zeroed::<u8>() };\n\
                   drop((x, y));\n\
                   }\n";
        let got = scan("crates/asn1/src/x.rs", src);
        assert_eq!(
            rules_of(&got),
            vec![(RuleId::UnsafeNeedsSafetyComment, 2, false)]
        );
    }

    #[test]
    fn multi_line_safety_comment_with_cfg_attribute_covers() {
        // The SAFETY: token several comment lines up, with a cfg attribute
        // between the comment block and the `unsafe`, still counts; a code
        // line breaks the block.
        let src = "// SAFETY: the mapping is read-only and lives as long as\n\
                   // the struct, so sharing it across threads is the same\n\
                   // as sharing a shared slice.\n\
                   #[cfg(unix)]\n\
                   unsafe impl Send for M {}\n\
                   fn gap() {}\n\
                   unsafe impl Sync for M {}\n";
        let got = scan("crates/asn1/src/x.rs", src);
        assert_eq!(
            rules_of(&got),
            vec![(RuleId::UnsafeNeedsSafetyComment, 7, false)]
        );
    }

    #[test]
    fn unsafe_code_lint_name_is_not_the_keyword() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(scan("crates/asn1/src/x.rs", src).is_empty());
    }

    #[test]
    fn silent_allow_flagged_commented_allow_ok() {
        let src = "#[allow(dead_code)]\n\
                   fn a() {}\n\
                   #[allow(clippy::too_many_arguments)] // mirrors the paper's table layout\n\
                   fn b() {}\n";
        let got = scan("crates/x509/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::NoSilentAllow, 1, false)]);
    }
}
