//! The srclint rule catalog.
//!
//! Every rule answers one question about a single file, given the
//! [`crate::lexer::Line`] view, the file's workspace classification, and
//! the [`crate::scope::ScopeMap`] attributing each line to its enclosing
//! function. Rules are deliberately lexical: srclint runs on every CI
//! push, must build with zero dependencies beyond the workspace, and
//! favors a small number of auditable false positives (silenced with
//! justification markers) over parser-grade precision. The scope layer
//! buys the two properties line scanning could not: suppression markers
//! only apply within the function that carries them, and whole-function
//! rules (panic freedom, durability ordering, checked arithmetic) can
//! fold over one function's lines at a time.

use crate::lexer::Line;
use crate::scope::ScopeMap;
use std::collections::BTreeSet;
use std::fmt;

/// Crates whose output feeds the byte-identical tables/figures. The
/// det-unordered-iter rule only applies here.
pub const DET_CRATES: &[&str] = &[
    "chainlab", "colstore", "obs", "report", "workload", "netsim",
];

/// Crates exempt from det-wallclock: timing is their purpose.
pub const WALLCLOCK_EXEMPT: &[&str] = &["bench", "vendor/criterion"];

/// The single sanctioned wall-clock call site. `obs::clock` wraps
/// `Instant`/`SystemTime` behind an audited monotonic-stopwatch API;
/// every other library read must go through it.
pub const WALLCLOCK_SANCTIONED_FILE: &str = "crates/obs/src/clock.rs";

/// Long-lived daemon files: the serve loop and the HTTP listener it
/// exposes. A panic here takes the whole daemon down mid-request, so
/// no-panic-in-daemon bans panicking constructs in their non-test code.
pub const DAEMON_FILES: &[&str] = &[
    "crates/cli/src/serve.rs",
    "crates/obs/src/http.rs",
    "crates/obs/src/trace.rs",
];

/// Files subject to durability-manifest-last: everywhere the colstore /
/// checkpoint manifest-last commit convention must hold. `convert.rs`
/// and `compact.rs` both drive the digest-bearing store writer, so the
/// category-digest write path is covered end to end.
pub const DURABILITY_PATHS: &[&str] = &[
    "crates/colstore/src/",
    "crates/cli/src/compact.rs",
    "crates/cli/src/convert.rs",
];

/// Parse-path prefixes handling untrusted input, subject to
/// parser-checked-arith.
pub const PARSER_PATHS: &[&str] = &[
    "crates/netsim/src/zeek/",
    "crates/asn1/src/",
    "crates/x509/src/",
];

/// Files under [`PARSER_PATHS`] that only *produce* bytes (writers,
/// builders): their arithmetic runs on trusted local state.
pub const PARSER_EXEMPT_STEMS: &[&str] = &["writer", "builder", "encode"];

/// The rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` iteration in a determinism-critical crate.
    DetUnorderedIter,
    /// Wall-clock reads (`Instant::now`/`SystemTime::now`) in library code.
    DetWallclock,
    /// Thread-count/identity probes that can leak into output.
    DetThreadSensitivity,
    /// `unsafe` without a `// SAFETY:` comment.
    UnsafeNeedsSafetyComment,
    /// `#[allow(...)]` without a same-line reason comment.
    NoSilentAllow,
    /// Panicking constructs in the serve daemon / HTTP listener files.
    NoPanicInDaemon,
    /// Manifest written before data files are fsync'd, or never fsync'd.
    DurabilityManifestLast,
    /// Unchecked length/offset arithmetic in parse paths.
    ParserCheckedArith,
}

impl RuleId {
    /// Every rule, in catalog order.
    pub const ALL: [RuleId; 8] = [
        RuleId::DetUnorderedIter,
        RuleId::DetWallclock,
        RuleId::DetThreadSensitivity,
        RuleId::UnsafeNeedsSafetyComment,
        RuleId::NoSilentAllow,
        RuleId::NoPanicInDaemon,
        RuleId::DurabilityManifestLast,
        RuleId::ParserCheckedArith,
    ];

    /// Stable kebab-case name (used in output, markers, the allowlist).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::DetUnorderedIter => "det-unordered-iter",
            RuleId::DetWallclock => "det-wallclock",
            RuleId::DetThreadSensitivity => "det-thread-sensitivity",
            RuleId::UnsafeNeedsSafetyComment => "unsafe-needs-safety-comment",
            RuleId::NoSilentAllow => "no-silent-allow",
            RuleId::NoPanicInDaemon => "no-panic-in-daemon",
            RuleId::DurabilityManifestLast => "durability-manifest-last",
            RuleId::ParserCheckedArith => "parser-checked-arith",
        }
    }

    /// Parse a rule name.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == s)
    }

    /// One-line description for `rules` output and reports.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::DetUnorderedIter => {
                "HashMap/HashSet iteration inside determinism-critical crates \
                 (chainlab/obs/report/workload/netsim) must be justified with \
                 `// srclint: commutative` or replaced by an ordered container"
            }
            RuleId::DetWallclock => {
                "library code must not read the wall clock \
                 (Instant::now/SystemTime::now) outside obs::clock, the single \
                 sanctioned call site; outputs must be re-runnable"
            }
            RuleId::DetThreadSensitivity => {
                "available_parallelism/thread::current must not influence \
                 non-bench output; thread-count knobs need a justification"
            }
            RuleId::UnsafeNeedsSafetyComment => {
                "every `unsafe` block/fn/impl needs a `// SAFETY:` comment \
                 on the same or a nearby preceding line"
            }
            RuleId::NoSilentAllow => "#[allow(...)] requires a same-line `// reason` comment",
            RuleId::NoPanicInDaemon => {
                "the serve daemon and HTTP listener (cli::serve, obs::http) \
                 must not unwrap/expect/panic!/index slices outside tests; \
                 escape a justified site with `// PANIC-OK: reason`"
            }
            RuleId::DurabilityManifestLast => {
                "colstore/checkpoint commit functions must fsync data files \
                 before writing the manifest, write the manifest last, and \
                 fsync the manifest itself (crash-consistency convention)"
            }
            RuleId::ParserCheckedArith => {
                "length/offset arithmetic in parse paths (netsim::zeek, asn1, \
                 x509) must use checked_*/saturating_* or follow an explicit \
                 bounds check in the same function"
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a finding was silenced, if it was. Inline markers only count
/// when they sit in the same function as the finding they silence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Suppression {
    /// `// srclint: commutative` on the same or previous line.
    CommutativeMarker,
    /// `// srclint: allow(<rule>) -- reason` on the same or previous line.
    InlineAllow(String),
    /// Matched an entry in the allowlist file.
    Allowlist(String),
    /// `// PANIC-OK: reason` on the same or previous line (the
    /// no-panic-in-daemon escape hatch; the reason must be non-empty).
    PanicOk(String),
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
    /// Set when an inline marker or allowlist entry silenced the finding.
    pub suppression: Option<Suppression>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    | {}",
            self.path, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`crates/<c>/src/**`, not `src/bin`).
    Lib,
    /// Binary source (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Tests and benches (`tests/**`, `benches/**`).
    Test,
    /// `examples/**`.
    Example,
}

/// A classified workspace file.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// `chainlab`, `vendor/rand`, `tests`, `examples`, ...
    pub crate_name: String,
    /// Position-derived kind.
    pub kind: FileKind,
}

/// Classify a workspace-relative path.
pub fn classify(rel_path: &str) -> FileInfo {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = match parts.first().copied() {
        Some("crates") => parts.get(1).copied().unwrap_or("").to_string(),
        Some("vendor") => format!("vendor/{}", parts.get(1).copied().unwrap_or("")),
        Some(other) => other.to_string(),
        None => String::new(),
    };
    let tail: Vec<&str> = if matches!(parts.first().copied(), Some("crates" | "vendor")) {
        parts[2..].to_vec()
    } else {
        parts[1..].to_vec()
    };
    let kind = match tail.first().copied() {
        Some("tests") | Some("benches") => FileKind::Test,
        Some("examples") => FileKind::Example,
        Some("src") => {
            if tail.get(1).copied() == Some("bin") || tail.get(1).copied() == Some("main.rs") {
                FileKind::Bin
            } else {
                FileKind::Lib
            }
        }
        _ => FileKind::Lib,
    };
    // The workspace-level `examples/` member is all example code.
    let kind = if crate_name == "examples" {
        FileKind::Example
    } else {
        kind
    };
    FileInfo {
        path: rel_path.to_string(),
        crate_name,
        kind,
    }
}

/// Run every applicable rule over one file. Builds the file's
/// [`ScopeMap`] once; test code is whatever sits inside a
/// `#[cfg(test)]`/`#[test]` scope's actual brace range (the pre-scope
/// engine treated everything after the first `#[cfg(test)]` line as
/// test code, hiding real code after the test module).
pub fn scan_file(info: &FileInfo, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let scopes = ScopeMap::build(lines);

    if DET_CRATES.contains(&info.crate_name.as_str()) && info.kind == FileKind::Lib {
        det_unordered_iter(info, lines, &scopes, &mut findings);
    }
    if info.kind == FileKind::Lib
        && !WALLCLOCK_EXEMPT.contains(&info.crate_name.as_str())
        && info.path != WALLCLOCK_SANCTIONED_FILE
    {
        det_wallclock(info, lines, &scopes, &mut findings);
    }
    if info.kind == FileKind::Lib
        && info.crate_name != "bench"
        && !info.crate_name.starts_with("vendor/")
    {
        det_thread_sensitivity(info, lines, &scopes, &mut findings);
    }
    unsafe_needs_safety_comment(info, lines, &scopes, &mut findings);
    no_silent_allow(info, lines, &scopes, &mut findings);
    if DAEMON_FILES.contains(&info.path.as_str()) {
        no_panic_in_daemon(info, lines, &scopes, &mut findings);
    }
    if info.kind == FileKind::Lib
        && DURABILITY_PATHS
            .iter()
            .any(|p| info.path.starts_with(p) || info.path == *p)
    {
        durability_manifest_last(info, lines, &scopes, &mut findings);
    }
    if info.kind == FileKind::Lib && in_parser_paths(&info.path) {
        parser_checked_arith(info, lines, &scopes, &mut findings);
    }
    // Deterministic (line, rule) report order regardless of which rule
    // ran first.
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Whether a path is an untrusted-input parse path (under
/// [`PARSER_PATHS`], not a writer/builder/encoder file).
fn in_parser_paths(path: &str) -> bool {
    if !PARSER_PATHS.iter().any(|p| path.starts_with(p)) {
        return false;
    }
    let stem = path.rsplit('/').next().unwrap_or(path);
    !PARSER_EXEMPT_STEMS.iter().any(|s| stem.contains(s))
}

/// The iteration methods whose order follows the hasher, not the data.
const UNORDERED_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn det_unordered_iter(info: &FileInfo, lines: &[Line], scopes: &ScopeMap, out: &mut Vec<Finding>) {
    let types = hash_type_set(lines);
    // Names are resolved per scope: identifiers declared outside any
    // function (fields, consts, statics) are visible everywhere, while
    // a function's locals only track inside that function — the
    // pre-scope engine pooled every name file-wide, so `let m =
    // HashMap::new()` in one function flagged an unrelated `m` in
    // another.
    let global = hash_typed_names(
        lines
            .iter()
            .filter(|l| scopes.enclosing_fn(l.number).is_none()),
        &types,
    );
    let mut per_fn: std::collections::BTreeMap<usize, BTreeSet<String>> = Default::default();
    for (idx, line) in lines.iter().enumerate() {
        let names: &BTreeSet<String> = match scopes.enclosing_fn(line.number) {
            None => &global,
            Some(f) => {
                let start = f.start_line;
                per_fn.entry(start).or_insert_with(|| {
                    let mut names = hash_typed_names(
                        scopes.fn_lines(f, lines).iter().filter(|l| {
                            scopes
                                .enclosing_fn(l.number)
                                .is_some_and(|s| s.start_line == start)
                        }),
                        &types,
                    );
                    names.extend(global.iter().cloned());
                    names
                })
            }
        };
        if names.is_empty() {
            continue;
        }
        let mut hit: Option<String> = None;
        // `map.iter()`-style: an unordered method invoked on a tracked name.
        for m in UNORDERED_METHODS {
            for pos in find_method_calls(&line.code, m) {
                if let Some(recv) = ident_ending_at(&line.code, pos) {
                    if names.contains(recv) {
                        hit = Some(format!("`{recv}.{m}()`"));
                    }
                }
            }
        }
        // `for x in &map`-style: the for-expression ends in a tracked name.
        if hit.is_none() {
            if let Some(name) = for_loop_over(&line.code, names) {
                hit = Some(format!("`for .. in {name}`"));
            }
        }
        let Some(what) = hit else { continue };
        let suppression = (marker_near(lines, idx, "srclint: commutative", scopes))
            .then_some(Suppression::CommutativeMarker)
            .or_else(|| inline_allow_near(lines, idx, RuleId::DetUnorderedIter, scopes));
        out.push(Finding {
            rule: RuleId::DetUnorderedIter,
            path: info.path.clone(),
            line: line.number,
            snippet: snippet_of(line),
            message: format!(
                "{what} iterates a hash container in determinism-critical crate \
                 `{}`; iteration order follows the hasher. Sort first, use an \
                 ordered container, or justify with `// srclint: commutative`",
                info.crate_name
            ),
            suppression,
        });
    }
}

fn det_wallclock(info: &FileInfo, lines: &[Line], scopes: &ScopeMap, out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if scopes.in_test_scope(line.number) {
            continue;
        }
        for probe in ["Instant::now", "SystemTime::now"] {
            if contains_token_path(&line.code, probe) {
                out.push(Finding {
                    rule: RuleId::DetWallclock,
                    path: info.path.clone(),
                    line: line.number,
                    snippet: snippet_of(line),
                    message: format!(
                        "`{probe}()` in library code: analysis outputs must be \
                         reproducible from inputs alone; route timing through \
                         `certchain_obs::clock`, the single sanctioned site"
                    ),
                    suppression: inline_allow_near(lines, idx, RuleId::DetWallclock, scopes),
                });
            }
        }
    }
}

fn det_thread_sensitivity(
    info: &FileInfo,
    lines: &[Line],
    scopes: &ScopeMap,
    out: &mut Vec<Finding>,
) {
    for (idx, line) in lines.iter().enumerate() {
        if scopes.in_test_scope(line.number) {
            continue;
        }
        for probe in ["available_parallelism", "thread::current"] {
            if contains_token_path(&line.code, probe) {
                out.push(Finding {
                    rule: RuleId::DetThreadSensitivity,
                    path: info.path.clone(),
                    line: line.number,
                    snippet: snippet_of(line),
                    message: format!(
                        "`{probe}` makes behavior depend on the host's thread \
                         configuration; outputs must be identical across thread \
                         counts (justify knob-resolution sites inline)"
                    ),
                    suppression: inline_allow_near(
                        lines,
                        idx,
                        RuleId::DetThreadSensitivity,
                        scopes,
                    ),
                });
            }
        }
    }
}

fn unsafe_needs_safety_comment(
    info: &FileInfo,
    lines: &[Line],
    scopes: &ScopeMap,
    out: &mut Vec<Finding>,
) {
    for (idx, line) in lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        // A SAFETY comment on the same line, or anywhere in the contiguous
        // block of comment/attribute lines directly above (multi-line
        // SAFETY comments and interposed `#[cfg(...)]` attributes are
        // idiomatic), covers this `unsafe`.
        let mut covered = line.comment.contains("SAFETY:");
        for j in (0..idx).rev() {
            if covered {
                break;
            }
            let above = &lines[j];
            let code = above.code.trim();
            if !code.is_empty() && !code.starts_with("#[") {
                break;
            }
            covered = above.comment.contains("SAFETY:");
        }
        if covered {
            continue;
        }
        out.push(Finding {
            rule: RuleId::UnsafeNeedsSafetyComment,
            path: info.path.clone(),
            line: line.number,
            snippet: snippet_of(line),
            message: "`unsafe` without a `// SAFETY:` comment on the same or a \
                      nearby preceding line"
                .to_string(),
            suppression: inline_allow_near(lines, idx, RuleId::UnsafeNeedsSafetyComment, scopes),
        });
    }
}

fn no_silent_allow(info: &FileInfo, lines: &[Line], scopes: &ScopeMap, out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if !(code.contains("#[allow(") || code.contains("#![allow(")) {
            continue;
        }
        if !line.comment.trim_start_matches('/').trim().is_empty() {
            continue;
        }
        out.push(Finding {
            rule: RuleId::NoSilentAllow,
            path: info.path.clone(),
            line: line.number,
            snippet: snippet_of(line),
            message: "silent `#[allow(...)]`: add a same-line `// reason` comment".to_string(),
            suppression: inline_allow_near(lines, idx, RuleId::NoSilentAllow, scopes),
        });
    }
}

/// The macro invocations and method calls that abort a daemon thread.
const PANIC_MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];

/// Keywords before `[` that mean "pattern or type syntax", not indexing.
const INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "box", "as", "dyn", "impl",
];

fn no_panic_in_daemon(info: &FileInfo, lines: &[Line], scopes: &ScopeMap, out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if scopes.in_test_scope(line.number) {
            continue;
        }
        let code = &line.code;
        let mut what: Option<String> = None;
        if code.contains(".unwrap()") {
            what = Some("`.unwrap()`".to_string());
        } else if code.contains(".expect(") {
            what = Some("`.expect(..)`".to_string());
        } else {
            for m in PANIC_MACROS {
                if contains_token_path(code, m) {
                    what = Some(format!("`{m}(..)`"));
                    break;
                }
            }
            if what.is_none() {
                if let Some(recv) = slice_index_receiver(code) {
                    what = Some(format!("`{recv}[..]` indexing"));
                }
            }
        }
        let Some(what) = what else { continue };
        let suppression = panic_ok_near(lines, idx, scopes)
            .or_else(|| inline_allow_near(lines, idx, RuleId::NoPanicInDaemon, scopes));
        let in_fn = scopes
            .enclosing_fn(line.number)
            .map(|f| format!(" in `{}`", f.qual_name))
            .unwrap_or_default();
        out.push(Finding {
            rule: RuleId::NoPanicInDaemon,
            path: info.path.clone(),
            line: line.number,
            snippet: snippet_of(line),
            message: format!(
                "{what}{in_fn} can abort the long-lived daemon mid-request; \
                 return an error / use `get`/`unwrap_or_else`, or justify \
                 with `// PANIC-OK: reason`"
            ),
            suppression,
        });
    }
}

/// `// PANIC-OK: reason` on the same or previous line, same function.
/// An empty reason does not suppress — the justification is the point.
fn panic_ok_near(lines: &[Line], idx: usize, scopes: &ScopeMap) -> Option<Suppression> {
    for j in [Some(idx), idx.checked_sub(1)].into_iter().flatten() {
        if !scopes.same_fn(lines[j].number, lines[idx].number) {
            continue;
        }
        if let Some(pos) = lines[j].comment.find("PANIC-OK:") {
            let reason = lines[j].comment[pos + "PANIC-OK:".len()..].trim();
            if !reason.is_empty() {
                return Some(Suppression::PanicOk(reason.to_string()));
            }
        }
    }
    None
}

/// The receiver identifier of a slice-indexing `recv[..]` expression on
/// this line, if any. `#[attr]`, `vec![..]`, and pattern/type positions
/// (`let [a, b] = ..`, `[u8; 4]`) do not count.
fn slice_index_receiver(code: &str) -> Option<&str> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let before = code[..i].trim_end();
        let Some(last) = before.chars().last() else {
            continue;
        };
        if !(last.is_ascii_alphanumeric() || last == '_' || last == ')' || last == ']') {
            continue;
        }
        if let Some(recv) = ident_ending_at(code, i) {
            if INDEX_KEYWORDS.contains(&recv) {
                continue;
            }
            return Some(recv);
        }
        // `)[`/`][`: chained indexing off a call or another index.
        return Some("expr");
    }
    None
}

/// Line-level event probes for durability-manifest-last.
fn is_write_line(code: &str) -> bool {
    code.contains("File::create")
        || code.contains("fs::write(")
        || code.contains(".write_all(")
        || code.contains(".store(")
}

fn is_sync_line(code: &str) -> bool {
    code.contains(".sync_all(") || code.contains(".sync_data(")
}

/// Whether the write on this line delegates to another function (e.g.
/// `manifest.store(dir)`) rather than writing bytes here; such lines
/// are exempt from the "manifest itself must be fsync'd" leg, which
/// fires inside the delegate instead.
fn is_delegated_write(code: &str) -> bool {
    code.contains(".store(") && !code.contains("fs::write(") && !code.contains("File::create")
}

/// Whether a line mentions a manifest: an identifier containing
/// `manifest` (the workspace routes manifest paths through named
/// consts/locals, e.g. `MANIFEST_FILE`, `manifest_path`) or one of the
/// function's tainted locals.
fn mentions_manifest(code: &str, tainted: &BTreeSet<String>) -> bool {
    idents_of(code).any(|w| w.to_ascii_lowercase().contains("manifest") || tainted.contains(w))
}

fn durability_manifest_last(
    info: &FileInfo,
    lines: &[Line],
    scopes: &ScopeMap,
    out: &mut Vec<Finding>,
) {
    for scope in scopes.functions() {
        if scope.is_test {
            continue;
        }
        let body: Vec<&Line> = scopes
            .fn_lines(scope, lines)
            .iter()
            .filter(|l| {
                scopes
                    .enclosing_fn(l.number)
                    .is_some_and(|f| f.start_line == scope.start_line)
            })
            .collect();
        // Pass 1: forward taint — locals initialized from a manifest
        // name carry manifest-ness (`let path = dir.join(MANIFEST_FILE)`,
        // `let file = File::create(&path)`). The rhs may wrap onto
        // following lines; extend it until the statement's `;`.
        let mut tainted: BTreeSet<String> = BTreeSet::new();
        for (i, line) in body.iter().enumerate() {
            if let Some(name) = let_binding_name(&line.code) {
                let mut rhs = line.code.split('=').skip(1).collect::<Vec<_>>().join("=");
                let mut j = i;
                while !rhs.contains(';') && j + 1 < body.len() {
                    j += 1;
                    rhs.push(' ');
                    rhs.push_str(&body[j].code);
                }
                if mentions_manifest(&rhs, &tainted) {
                    tainted.insert(name.to_string());
                }
            }
        }
        // Pass 2: classify write/sync events in line order.
        struct Ev {
            line: usize,
            idx: usize,
            manifest: bool,
            delegated: bool,
        }
        let mut writes: Vec<Ev> = Vec::new();
        let mut syncs: Vec<usize> = Vec::new();
        for (i, line) in body.iter().enumerate() {
            if is_sync_line(&line.code) {
                syncs.push(line.number);
            }
            if is_write_line(&line.code) {
                writes.push(Ev {
                    line: line.number,
                    idx: i,
                    manifest: mentions_manifest(&line.code, &tainted),
                    delegated: is_delegated_write(&line.code),
                });
            }
        }
        let Some(first_manifest) = writes.iter().find(|w| w.manifest) else {
            continue;
        };
        let first_manifest_line = first_manifest.line;
        let last_manifest = writes.iter().rev().find(|w| w.manifest).expect("exists");
        let (last_manifest_line, last_manifest_delegated) =
            (last_manifest.line, last_manifest.delegated);
        let mut flagged: BTreeSet<usize> = BTreeSet::new();
        let mut push = |line: usize, body_idx: usize, message: String| {
            if flagged.insert(line) {
                let suppression = inline_allow_near(
                    lines,
                    lines_idx(lines, line),
                    RuleId::DurabilityManifestLast,
                    scopes,
                );
                out.push(Finding {
                    rule: RuleId::DurabilityManifestLast,
                    path: info.path.clone(),
                    line,
                    snippet: snippet_of(body[body_idx]),
                    message,
                    suppression,
                });
            }
        };
        // (a) Data written after the manifest commit: the manifest now
        // points at files whose bytes may never land.
        for w in writes.iter().filter(|w| !w.manifest) {
            if w.line > last_manifest_line {
                push(
                    w.line,
                    w.idx,
                    format!(
                        "`{}` writes a data file after the manifest commit \
                         (line {last_manifest_line}); the manifest must be \
                         written last",
                        scope.qual_name
                    ),
                );
            }
        }
        // (b) Data written before the manifest with no fsync in between:
        // a crash can persist the manifest but not the data it names.
        let first_data_before = writes
            .iter()
            .find(|w| !w.manifest && w.line < first_manifest_line);
        if let Some(data) = first_data_before {
            let synced = syncs
                .iter()
                .any(|&s| s >= data.line && s <= first_manifest_line);
            if !synced {
                let fm_idx = first_manifest.idx;
                push(
                    first_manifest_line,
                    fm_idx,
                    format!(
                        "`{}` commits the manifest without fsyncing the data \
                         file written at line {}; call sync_all/sync_data on \
                         data files before the manifest write",
                        scope.qual_name, data.line
                    ),
                );
            }
        }
        // (c) The manifest itself never fsync'd (delegated writes are
        // checked inside the delegate).
        if !last_manifest_delegated {
            let synced_after = syncs.iter().any(|&s| s >= last_manifest_line);
            if !synced_after {
                let lm_idx = writes
                    .iter()
                    .rev()
                    .find(|w| w.manifest)
                    .map(|w| w.idx)
                    .unwrap_or(0);
                push(
                    last_manifest_line,
                    lm_idx,
                    format!(
                        "`{}` writes the manifest but never fsyncs it; a crash \
                         can leave a torn or unpersisted manifest",
                        scope.qual_name
                    ),
                );
            }
        }
    }
}

/// Index into `lines` of the 1-based line number (lines are contiguous
/// from 1, so this is a direct offset).
fn lines_idx(lines: &[Line], number: usize) -> usize {
    number.saturating_sub(1).min(lines.len().saturating_sub(1))
}

/// `let [mut] name = ...` binding name on this line, if any.
fn let_binding_name(code: &str) -> Option<&str> {
    let let_pos = find_word(code, "let")?;
    let rest = code[let_pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name_len = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let name = &rest[..name_len];
    let after = rest[name_len..].trim_start();
    (is_ident(name) && after.starts_with('=') && !after.starts_with("==")).then_some(name)
}

/// Identifier tokens of a blanked code line.
fn idents_of(code: &str) -> impl Iterator<Item = &str> {
    let bytes = code.as_bytes();
    let mut i = 0usize;
    std::iter::from_fn(move || {
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                return Some(&code[start..i]);
            } else if b.is_ascii_digit() {
                // Skip numeric literals whole (incl. type suffixes).
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        None
    })
}

/// Identifier fragments that mark a value as length/offset-flavored.
const LENGTH_FLAVORS: &[&str] = &["len", "offset", "pos", "size", "count", "idx"];

/// Guard markers an earlier line must carry (together with one of the
/// involved identifiers) to vouch for unchecked arithmetic; an explicit
/// `<`/`>` comparison ([`has_comparison`]) also counts.
const GUARD_MARKERS: &[&str] = &[
    ".get(",
    "is_empty",
    ".min(",
    ".max(",
    ".find(",
    ".rfind(",
    ".position(",
    "checked_",
    "saturating_",
];

/// Whether a line contains a `<`/`>` comparison once arrows and shifts
/// are stripped (so `-> usize` and `<<` do not read as bounds checks).
fn has_comparison(code: &str) -> bool {
    let stripped = code
        .replace("->", "")
        .replace("=>", "")
        .replace("<<", "")
        .replace(">>", "");
    stripped.contains('<') || stripped.contains('>')
}

/// Identifiers that look flavored or guarded but carry no value
/// information: primitive type names and ubiquitous keywords.
const ARITH_NOISE_IDENTS: &[&str] = &[
    "usize", "isize", "as", "self", "let", "mut", "ref", "Some", "None", "Ok", "Err",
];

fn is_length_flavored(ident: &str) -> bool {
    if ARITH_NOISE_IDENTS.contains(&ident) {
        return false;
    }
    let lower = ident.to_ascii_lowercase();
    LENGTH_FLAVORS.iter().any(|f| lower.contains(f))
}

fn parser_checked_arith(
    info: &FileInfo,
    lines: &[Line],
    scopes: &ScopeMap,
    out: &mut Vec<Finding>,
) {
    for (idx, line) in lines.iter().enumerate() {
        if scopes.in_test_scope(line.number) {
            continue;
        }
        let Some(scope) = scopes.enclosing_fn(line.number) else {
            continue;
        };
        let code = &line.code;
        if code.contains("checked_") || code.contains("saturating_") || code.contains("wrapping_") {
            continue;
        }
        let Some((op, operands)) = unchecked_arith_on(code) else {
            continue;
        };
        let involved: Vec<&str> = idents_of(&operands)
            .filter(|w| is_length_flavored(w))
            .collect();
        if involved.is_empty() {
            continue;
        }
        // Same-line bounds comparison vouches for the arithmetic.
        if has_comparison(code) {
            continue;
        }
        // Earlier-line guard in the same function mentioning any operand
        // identifier (not just the flavored ones: `rest.find(begin)`
        // vouches for `b + begin.len()` through `b`).
        let operand_idents: Vec<&str> = idents_of(&operands)
            .filter(|w| !ARITH_NOISE_IDENTS.contains(w))
            .collect();
        let guarded = lines[..idx]
            .iter()
            .filter(|l| {
                l.number >= scope.start_line
                    && scopes
                        .enclosing_fn(l.number)
                        .is_some_and(|f| f.start_line == scope.start_line)
            })
            .any(|l| {
                operand_idents.iter().any(|w| has_word(&l.code, w))
                    && (has_comparison(&l.code) || GUARD_MARKERS.iter().any(|g| l.code.contains(g)))
            });
        if guarded {
            continue;
        }
        out.push(Finding {
            rule: RuleId::ParserCheckedArith,
            path: info.path.clone(),
            line: line.number,
            snippet: snippet_of(line),
            message: format!(
                "unchecked `{op}` on length/offset value(s) {} in parse path \
                 `{}`: untrusted input can overflow/underflow; use \
                 checked_*/saturating_* or bounds-check first",
                involved
                    .iter()
                    .map(|w| format!("`{w}`"))
                    .collect::<Vec<_>>()
                    .join(", "),
                scope.qual_name
            ),
            suppression: inline_allow_near(lines, idx, RuleId::ParserCheckedArith, scopes),
        });
    }
}

/// First binary `+`/`-`/`*` on the line whose left side ends in a value
/// (identifier, `)`, `]`), with the surrounding operand text. Returns
/// `(operator, operand_text)`.
fn unchecked_arith_on(code: &str) -> Option<(char, String)> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if !(b == b'+' || b == b'-' || b == b'*') {
            continue;
        }
        let next = bytes.get(i + 1).copied();
        // Compound assignment, arrows, and doubled operators are not
        // binary arithmetic.
        if next == Some(b'=') || (b == b'-' && next == Some(b'>')) {
            continue;
        }
        let before = code[..i].trim_end();
        let Some(last) = before.chars().last() else {
            continue;
        };
        if !(last.is_ascii_alphanumeric() || last == '_' || last == ')' || last == ']') {
            continue;
        }
        // Operand window: the expression fragments on both sides, cut at
        // separators that end an expression.
        let seps: &[char] = &[',', ';', '{', '}', '=', '&', '|'];
        let left_start = before.rfind(seps).map(|p| p + 1).unwrap_or(0);
        let right = &code[i + 1..];
        let right_end = right.find(seps).unwrap_or(right.len());
        let operands = format!("{} {}", &before[left_start..], &right[..right_end]);
        return Some((b as char, operands));
    }
    None
}

fn snippet_of(line: &Line) -> String {
    line.code.trim().chars().take(120).collect()
}

/// `// srclint: <marker>` on the flagged line or the line above, in the
/// same function (a marker at the bottom of one function must not leak
/// onto the first line of the next — the pre-scope engine allowed that).
fn marker_near(lines: &[Line], idx: usize, marker: &str, scopes: &ScopeMap) -> bool {
    for j in [Some(idx), idx.checked_sub(1)].into_iter().flatten() {
        if scopes.same_fn(lines[j].number, lines[idx].number) && lines[j].comment.contains(marker) {
            return true;
        }
    }
    false
}

/// `// srclint: allow(<rule>) -- reason` on the flagged line or the line
/// above, in the same function. The reason text is captured for
/// `list-suppressions`.
fn inline_allow_near(
    lines: &[Line],
    idx: usize,
    rule: RuleId,
    scopes: &ScopeMap,
) -> Option<Suppression> {
    let needle = format!("srclint: allow({})", rule.name());
    for j in [Some(idx), idx.checked_sub(1)].into_iter().flatten() {
        if !scopes.same_fn(lines[j].number, lines[idx].number) {
            continue;
        }
        if let Some(pos) = lines[j].comment.find(&needle) {
            let rest = lines[j].comment[pos + needle.len()..].trim();
            let reason = rest.trim_start_matches("--").trim().to_string();
            return Some(Suppression::InlineAllow(reason));
        }
    }
    None
}

/// The set of hash container type names in this file: `HashMap`,
/// `HashSet`, and local `type Alias = HashMap<..>` declarations.
fn hash_type_set(lines: &[Line]) -> BTreeSet<String> {
    let mut hash_types: BTreeSet<String> = ["HashMap", "HashSet"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    for line in lines {
        let code = &line.code;
        if let Some(tpos) = find_word(code, "type") {
            let rest = &code[tpos + 4..];
            if let Some(eq) = rest.find('=') {
                let alias = rest[..eq].trim();
                let rhs = rest[eq + 1..].trim_start();
                if is_hash_type_head(rhs, &hash_types) && is_ident(alias_head(alias)) {
                    hash_types.insert(alias_head(alias).to_string());
                }
            }
        }
    }
    hash_types
}

/// Identifiers among `lines` whose type is one of `hash_types`:
/// `name: HashMap<..>` annotations (params, fields, lets) and
/// `let name = HashMap::new()`-style initializations.
fn hash_typed_names<'l>(
    lines: impl Iterator<Item = &'l Line>,
    hash_types: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in lines {
        collect_annotated(&line.code, hash_types, &mut names);
        collect_let_inits(&line.code, hash_types, &mut names);
    }
    names
}

/// Strip generics from an alias head: `FieldMap` from `FieldMap` (aliases
/// with parameters are not tracked).
fn alias_head(alias: &str) -> &str {
    alias.split('<').next().unwrap_or(alias).trim()
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// Does a type expression start with one of the hash types (after `&`,
/// `mut`, and any `path::` qualifiers)?
fn is_hash_type_head(mut ty: &str, hash_types: &BTreeSet<String>) -> bool {
    ty = ty.trim_start();
    ty = ty.strip_prefix('&').unwrap_or(ty).trim_start();
    ty = ty.strip_prefix("mut ").unwrap_or(ty).trim_start();
    loop {
        let head_len = ty
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(ty.len());
        let head = &ty[..head_len];
        let rest = &ty[head_len..];
        if let Some(stripped) = rest.strip_prefix("::") {
            ty = stripped;
            continue;
        }
        if !hash_types.contains(head) {
            return false;
        }
        // The base types are always written with generics; a bare head is
        // some unrelated item. Local aliases are complete types as-is.
        return if head == "HashMap" || head == "HashSet" {
            rest.trim_start().starts_with('<')
        } else {
            true
        };
    }
}

/// `name: <hash type>` annotations (fn params, struct fields, lets).
fn collect_annotated(code: &str, hash_types: &BTreeSet<String>, out: &mut BTreeSet<String>) {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b':' {
            continue;
        }
        // Skip `::` path separators.
        if i + 1 < bytes.len() && bytes[i + 1] == b':' {
            continue;
        }
        if i > 0 && bytes[i - 1] == b':' {
            continue;
        }
        if !is_hash_type_head(&code[i + 1..], hash_types) {
            continue;
        }
        // Identifier immediately before the `:`.
        if let Some(name) = ident_ending_at(code, i) {
            if is_ident(name) {
                out.insert(name.to_string());
            }
        }
    }
}

/// `let [mut] name = HashMap::new()` / `..with_capacity(..)` /
/// `..collect::<HashMap<..>>()` initializations.
fn collect_let_inits(code: &str, hash_types: &BTreeSet<String>, out: &mut BTreeSet<String>) {
    let Some(let_pos) = find_word(code, "let") else {
        return;
    };
    let rest = &code[let_pos + 3..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name_len = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let name = &rest[..name_len];
    let after = rest[name_len..].trim_start();
    if !is_ident(name) || !after.starts_with('=') {
        return;
    }
    let rhs = &after[1..];
    let init = hash_types.iter().any(|t| {
        rhs.contains(&format!("{t}::new()"))
            || rhs.contains(&format!("{t}::with_capacity"))
            || rhs.contains(&format!("{t}::from"))
            || rhs.contains(&format!("collect::<{t}"))
    });
    if init {
        out.insert(name.to_string());
    }
}

/// Positions of `.method(` calls (returns the index of the `.`).
fn find_method_calls(code: &str, method: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let pat = format!(".{method}(");
    let mut start = 0;
    while let Some(pos) = code[start..].find(&pat) {
        let at = start + pos;
        // Reject longer method names ending with ours (`.retain(` vs `.in(`).
        out.push(at);
        start = at + pat.len();
    }
    out
}

/// The identifier ending right before byte `end` (skipping trailing
/// spaces), or `None`.
fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let head = code[..end].trim_end();
    let mut start = head.len();
    for (pos, c) in head.char_indices().rev() {
        if c.is_ascii_alphanumeric() || c == '_' {
            start = pos;
        } else {
            break;
        }
    }
    (start < head.len()).then(|| &head[start..])
}

/// `for .. in <expr>` where the expression's trailing identifier is a
/// tracked name (covers `&map`, `&mut map`, `self.map`).
fn for_loop_over<'n>(code: &str, names: &'n BTreeSet<String>) -> Option<&'n str> {
    let for_pos = find_word(code, "for")?;
    let in_pos = for_pos + find_word(&code[for_pos..], "in")?;
    // The loop body may share the line; a for-expression cannot contain an
    // unparenthesized `{`, so everything from the first brace is body.
    let expr = code[in_pos + 2..].split('{').next().unwrap_or("").trim();
    let tail_start = expr
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|p| p + expr[p..].chars().next().map_or(1, char::len_utf8))
        .unwrap_or(0);
    let tail = &expr[tail_start..];
    names.get(tail).map(|s| s.as_str())
}

/// Whole-word occurrence of `word` in `code` (identifier boundaries).
fn find_word(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let c = bytes[at - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let end = at + word.len();
        let after_ok = end >= code.len() || {
            let c = bytes[end] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + word.len().max(1);
    }
    None
}

fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word).is_some()
}

/// `Foo::bar`-style probe with an identifier boundary on each side.
fn contains_token_path(code: &str, path: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(path) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let c = code.as_bytes()[at - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let end = at + path.len();
        let after_ok = end >= code.len() || {
            let c = code.as_bytes()[end] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + path.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        scan_file(&classify(path), &lex(src))
    }

    fn rules_of(findings: &[Finding]) -> Vec<(RuleId, usize, bool)> {
        findings
            .iter()
            .map(|f| (f.rule, f.line, f.suppression.is_some()))
            .collect()
    }

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/chainlab/src/usage.rs").crate_name,
            "chainlab"
        );
        assert_eq!(classify("crates/chainlab/src/usage.rs").kind, FileKind::Lib);
        assert_eq!(
            classify("crates/cli/src/bin/certchain.rs").kind,
            FileKind::Bin
        );
        assert_eq!(classify("crates/srclint/src/main.rs").kind, FileKind::Bin);
        assert_eq!(
            classify("crates/netsim/tests/zeek_stream.rs").kind,
            FileKind::Test
        );
        assert_eq!(
            classify("crates/bench/benches/pipeline.rs").kind,
            FileKind::Test
        );
        assert_eq!(classify("vendor/rand/src/lib.rs").crate_name, "vendor/rand");
        assert_eq!(classify("examples/src/lib.rs").kind, FileKind::Example);
        assert_eq!(classify("tests/tests/end_to_end.rs").kind, FileKind::Test);
    }

    #[test]
    fn unordered_iter_flags_map_methods() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) {\n\
                   for (k, v) in m.iter() { println!(\"{k}{v}\"); }\n\
                   }\n";
        let got = scan("crates/chainlab/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetUnorderedIter, 3, false)]);
    }

    #[test]
    fn unordered_iter_flags_for_over_ref() {
        let src = "fn f() {\n\
                   let mut m = std::collections::HashSet::new();\n\
                   m.insert(1);\n\
                   for v in &m { drop(v); }\n\
                   }\n";
        let got = scan("crates/report/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetUnorderedIter, 4, false)]);
    }

    #[test]
    fn unordered_iter_honors_commutative_marker() {
        let src = "fn f(m: std::collections::HashMap<u8, u8>) -> u32 {\n\
                   // srclint: commutative -- order-insensitive sum\n\
                   m.values().map(|&v| v as u32).sum()\n\
                   }\n";
        let got = scan("crates/workload/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetUnorderedIter, 3, true)]);
    }

    #[test]
    fn unordered_iter_ignores_vec_and_btree() {
        let src = "fn f(v: Vec<u32>, b: std::collections::BTreeMap<u8, u8>) {\n\
                   for x in v.iter() { drop(x); }\n\
                   for (k, _) in b.iter() { drop(k); }\n\
                   }\n";
        assert!(scan("crates/chainlab/src/x.rs", src).is_empty());
    }

    #[test]
    fn unordered_iter_only_in_det_crates() {
        let src = "fn f(m: &std::collections::HashMap<u8, u8>) {\n\
                   for k in m.keys() { drop(k); }\n\
                   }\n";
        assert!(scan("crates/trust/src/x.rs", src).is_empty());
        assert!(!scan("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn unordered_iter_tracks_type_aliases() {
        let src = "type FieldMap = HashMap<String, usize>;\n\
                   fn f(fields: &FieldMap) {\n\
                   for k in fields.keys() { drop(k); }\n\
                   }\n";
        let got = scan("crates/netsim/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetUnorderedIter, 3, false)]);
    }

    #[test]
    fn patterns_inside_strings_do_not_fire() {
        let src = "fn f() { let s = \"HashMap::new() Instant::now() unsafe\"; drop(s); }\n";
        assert!(scan("crates/chainlab/src/x.rs", src).is_empty());
    }

    #[test]
    fn wallclock_flags_lib_not_tests() {
        let src = "fn now() -> u64 { let t = std::time::Instant::now(); 0 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { let _ = std::time::SystemTime::now(); }\n\
                   }\n";
        let got = scan("crates/cli/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetWallclock, 1, false)]);
    }

    #[test]
    fn wallclock_exempts_bins_and_criterion() {
        let src = "fn main() { let _ = std::time::Instant::now(); }\n";
        assert!(scan("crates/cli/src/bin/certchain.rs", src).is_empty());
        assert!(scan("vendor/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn wallclock_sanctions_exactly_obs_clock() {
        let src = "pub fn start() { let _ = std::time::Instant::now(); }\n";
        assert!(scan(WALLCLOCK_SANCTIONED_FILE, src).is_empty());
        // Any other file in obs — or anywhere else — still fires.
        let got = scan("crates/obs/src/metrics.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetWallclock, 1, false)]);
    }

    #[test]
    fn unordered_iter_applies_to_obs() {
        let src = "fn f(m: &std::collections::HashMap<u8, u8>) {\n\
                   for k in m.keys() { drop(k); }\n\
                   }\n";
        let got = scan("crates/obs/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetUnorderedIter, 2, false)]);
    }

    #[test]
    fn thread_sensitivity_flags_and_allows_inline() {
        let src = "fn threads() -> usize {\n\
                   // srclint: allow(det-thread-sensitivity) -- resolves a knob; output invariant\n\
                   std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n\
                   }\n\
                   fn bad() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n";
        let got = scan("crates/chainlab/src/x.rs", src);
        assert_eq!(
            rules_of(&got),
            vec![
                (RuleId::DetThreadSensitivity, 3, true),
                (RuleId::DetThreadSensitivity, 5, false)
            ]
        );
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let src = "fn f() {\n\
                   let x = unsafe { std::mem::zeroed::<u8>() };\n\
                   // SAFETY: zeroed u8 is valid.\n\
                   let y = unsafe { std::mem::zeroed::<u8>() };\n\
                   drop((x, y));\n\
                   }\n";
        let got = scan("crates/asn1/src/x.rs", src);
        assert_eq!(
            rules_of(&got),
            vec![(RuleId::UnsafeNeedsSafetyComment, 2, false)]
        );
    }

    #[test]
    fn multi_line_safety_comment_with_cfg_attribute_covers() {
        // The SAFETY: token several comment lines up, with a cfg attribute
        // between the comment block and the `unsafe`, still counts; a code
        // line breaks the block.
        let src = "// SAFETY: the mapping is read-only and lives as long as\n\
                   // the struct, so sharing it across threads is the same\n\
                   // as sharing a shared slice.\n\
                   #[cfg(unix)]\n\
                   unsafe impl Send for M {}\n\
                   fn gap() {}\n\
                   unsafe impl Sync for M {}\n";
        let got = scan("crates/asn1/src/x.rs", src);
        assert_eq!(
            rules_of(&got),
            vec![(RuleId::UnsafeNeedsSafetyComment, 7, false)]
        );
    }

    #[test]
    fn unsafe_code_lint_name_is_not_the_keyword() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(scan("crates/asn1/src/x.rs", src).is_empty());
    }

    #[test]
    fn silent_allow_flagged_commented_allow_ok() {
        let src = "#[allow(dead_code)]\n\
                   fn a() {}\n\
                   #[allow(clippy::too_many_arguments)] // mirrors the paper's table layout\n\
                   fn b() {}\n";
        let got = scan("crates/x509/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::NoSilentAllow, 1, false)]);
    }

    #[test]
    fn markers_do_not_leak_across_function_boundaries() {
        // The marker rides the closing brace of `a`, directly above the
        // one-line `b` whose iteration fires. Pre-scope srclint matched
        // "same or previous line" with no function check, so this
        // adjacency suppressed `b`'s finding — it must not.
        let src = "fn a(m: &std::collections::HashMap<u8, u8>) -> usize {\n\
                   m.len()\n\
                   } // srclint: commutative -- marker in a, not b\n\
                   fn b(m: &std::collections::HashMap<u8, u8>) { for k in m.keys() { drop(k); } }\n";
        let got = scan("crates/chainlab/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetUnorderedIter, 4, false)]);
    }

    #[test]
    fn hash_names_are_scoped_per_function() {
        // `m` is a HashMap only inside `a` (flagged there); the
        // unrelated Vec `m` in `b` must not inherit the tracked name
        // (pre-scope pooled names file-wide and flagged it).
        let src = "fn a() {\n\
                   let m = std::collections::HashMap::new();\n\
                   for k in m.keys() { drop(k); }\n\
                   }\n\
                   fn b(m: &Vec<u8>) {\n\
                   for k in m.iter() { drop(k); }\n\
                   }\n";
        let got = scan("crates/chainlab/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetUnorderedIter, 3, false)]);
    }

    #[test]
    fn code_after_test_module_is_scanned_again() {
        // Pre-scope srclint treated everything after the first
        // `#[cfg(test)]` line as test code; the scope walk bounds the
        // test region at its closing brace.
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { let _ = std::time::Instant::now(); }\n\
                   }\n\
                   fn lib() -> u64 { let _ = std::time::Instant::now(); 0 }\n";
        let got = scan("crates/report/src/x.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::DetWallclock, 5, false)]);
    }

    #[test]
    fn no_panic_flags_daemon_files_only() {
        let src = "pub fn poll(v: Option<u8>) -> u8 { v.unwrap() }\n";
        let got = scan("crates/cli/src/serve.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::NoPanicInDaemon, 1, false)]);
        // The same construct elsewhere is out of scope for this rule.
        assert!(scan("crates/cli/src/analyze.rs", src).is_empty());
    }

    #[test]
    fn no_panic_probes_cover_expect_macros_and_indexing() {
        let src = "pub fn h(buf: &[u8], v: Option<u8>) -> u8 {\n\
                   let a = v.expect(\"set\");\n\
                   if buf.is_empty() { panic!(\"empty\"); }\n\
                   let b = buf[0];\n\
                   a + b\n\
                   }\n";
        let got = scan("crates/obs/src/http.rs", src);
        assert_eq!(
            rules_of(&got),
            vec![
                (RuleId::NoPanicInDaemon, 2, false),
                (RuleId::NoPanicInDaemon, 3, false),
                (RuleId::NoPanicInDaemon, 4, false),
            ]
        );
        assert!(got[2].message.contains("`buf[..]` indexing"));
    }

    #[test]
    fn no_panic_ignores_non_panicking_lookalikes() {
        let src = "pub fn h(v: Option<u8>, m: &[u8]) -> u8 {\n\
                   let a = v.unwrap_or(0);\n\
                   let b = v.unwrap_or_else(|| 1);\n\
                   let c = m.get(0).copied().unwrap_or(2);\n\
                   let [x, y] = [a, b];\n\
                   let v2 = vec![x, y, c];\n\
                   v2.first().copied().unwrap_or(0)\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   #[test]\n\
                   fn t() { assert_eq!(super::h(None, &[]).checked_add(1).unwrap(), 1); }\n\
                   }\n";
        assert!(scan("crates/obs/src/http.rs", src).is_empty());
    }

    #[test]
    fn panic_ok_marker_needs_a_reason_and_same_fn() {
        let src = "pub fn a(v: Option<u8>) -> u8 {\n\
                   // PANIC-OK: startup-only path; a poisoned lock means a bug upstream\n\
                   v.unwrap()\n\
                   }\n\
                   pub fn b(v: Option<u8>) -> u8 {\n\
                   // PANIC-OK:\n\
                   v.unwrap()\n\
                   }\n";
        let got = scan("crates/cli/src/serve.rs", src);
        assert_eq!(
            rules_of(&got),
            vec![
                (RuleId::NoPanicInDaemon, 3, true),
                (RuleId::NoPanicInDaemon, 7, false),
            ]
        );
        assert!(matches!(
            got[0].suppression,
            Some(Suppression::PanicOk(ref r)) if r.contains("startup-only")
        ));
    }

    #[test]
    fn durability_flags_unsynced_and_reordered_commits() {
        let src = "const MANIFEST_FILE: &str = \"manifest.json\";\n\
                   pub fn unsynced(dir: &std::path::Path, data: &[u8]) -> std::io::Result<()> {\n\
                   std::fs::write(dir.join(\"column.dat\"), data)?;\n\
                   let manifest_path = dir.join(MANIFEST_FILE);\n\
                   std::fs::write(manifest_path, b\"{}\")?;\n\
                   Ok(())\n\
                   }\n\
                   pub fn reordered(dir: &std::path::Path, data: &[u8]) -> std::io::Result<()> {\n\
                   let manifest_path = dir.join(MANIFEST_FILE);\n\
                   let mut file = std::fs::File::create(manifest_path)?;\n\
                   use std::io::Write;\n\
                   file.write_all(b\"{}\")?;\n\
                   file.sync_all()?;\n\
                   std::fs::write(dir.join(\"column.dat\"), data)?;\n\
                   Ok(())\n\
                   }\n";
        let got = scan("crates/colstore/src/x.rs", src);
        assert_eq!(
            rules_of(&got),
            vec![
                (RuleId::DurabilityManifestLast, 5, false),
                (RuleId::DurabilityManifestLast, 14, false),
            ]
        );
        assert!(
            got[0].message.contains("without fsyncing"),
            "{}",
            got[0].message
        );
        assert!(
            got[1].message.contains("after the manifest commit"),
            "{}",
            got[1].message
        );
    }

    #[test]
    fn durability_accepts_manifest_last_with_fsyncs() {
        // The checkpoint.rs convention: data written and fsync'd, then
        // the manifest (taint flows through the File handle), then the
        // manifest's own fsync.
        let src = "use std::io::Write;\n\
                   const MANIFEST_FILE: &str = \"manifest.json\";\n\
                   pub fn commit(dir: &std::path::Path, data: &[u8]) -> std::io::Result<()> {\n\
                   let mut column = std::fs::File::create(dir.join(\"column.dat\"))?;\n\
                   column.write_all(data)?;\n\
                   column.sync_all()?;\n\
                   let manifest_path = dir.join(MANIFEST_FILE);\n\
                   let mut file = std::fs::File::create(&manifest_path)?;\n\
                   file.write_all(b\"{}\")?;\n\
                   file.sync_all()?;\n\
                   Ok(())\n\
                   }\n";
        assert!(scan("crates/colstore/src/x.rs", src).is_empty());
    }

    #[test]
    fn durability_delegated_store_checks_ordering_not_fsync() {
        // `manifest.store(dir)` delegates the write; the delegate owns
        // the fsync obligation, but ordering still holds here.
        let src = "pub fn finish(dir: &std::path::Path, data: &[u8], manifest: &M) -> std::io::Result<()> {\n\
                   let mut col = std::fs::File::create(dir.join(\"col.dat\"))?;\n\
                   use std::io::Write;\n\
                   col.write_all(data)?;\n\
                   col.sync_all()?;\n\
                   manifest.store(dir)?;\n\
                   Ok(())\n\
                   }\n";
        assert!(scan("crates/colstore/src/x.rs", src).is_empty());
    }

    #[test]
    fn checked_arith_flags_unguarded_length_math() {
        let src = "pub fn content_end(input: &[u8], pos: usize) -> usize {\n\
                   let len = input.len();\n\
                   pos + len\n\
                   }\n";
        let got = scan("crates/asn1/src/reader.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::ParserCheckedArith, 3, false)]);
        assert!(got[0].message.contains("`pos`"), "{}", got[0].message);
    }

    #[test]
    fn checked_arith_accepts_checked_guarded_and_plain_math() {
        let src = "pub fn a(pos: usize, len: usize) -> Option<usize> {\n\
                   pos.checked_add(len)\n\
                   }\n\
                   pub fn b(input: &[u8], offset: usize) -> usize {\n\
                   if offset > input.len() { return 0; }\n\
                   input.len() - offset\n\
                   }\n\
                   pub fn c(x: u32, y: u32) -> u32 {\n\
                   x + y\n\
                   }\n";
        assert!(scan("crates/asn1/src/reader.rs", src).is_empty());
    }

    #[test]
    fn checked_arith_skips_writer_files_and_other_crates() {
        let src = "pub fn f(len: usize, pos: usize) -> usize { len + pos }\n";
        assert!(!scan("crates/x509/src/dn.rs", src).is_empty());
        assert!(scan("crates/x509/src/builder.rs", src).is_empty());
        assert!(scan("crates/chainlab/src/graph.rs", src).is_empty());
    }

    #[test]
    fn checked_arith_same_line_bound_vouches() {
        let src = "pub fn f(input: &[u8], pos: usize, count: usize) -> bool {\n\
                   pos + count <= input.len()\n\
                   }\n";
        assert!(scan("crates/asn1/src/length.rs", src).is_empty());
    }

    #[test]
    fn new_rules_honor_inline_allow() {
        let src = "pub fn f(len: usize, pos: usize) -> usize {\n\
                   // srclint: allow(parser-checked-arith) -- diagnostic offset only\n\
                   len + pos\n\
                   }\n";
        let got = scan("crates/asn1/src/oid.rs", src);
        assert_eq!(rules_of(&got), vec![(RuleId::ParserCheckedArith, 3, true)]);
    }

    #[test]
    fn rule_names_round_trip_and_are_unique() {
        let mut seen = BTreeSet::new();
        for rule in RuleId::ALL {
            assert!(seen.insert(rule.name()), "duplicate name {}", rule.name());
            assert_eq!(RuleId::parse(rule.name()), Some(rule));
            assert!(!rule.description().is_empty());
        }
        assert_eq!(RuleId::parse("nope"), None);
    }
}
