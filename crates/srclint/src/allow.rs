//! The allowlist file (`srclint.allow` at the workspace root).
//!
//! Each entry suppresses one rule in one file and must carry a reason and
//! an expiry note, so suppressions stay auditable and time-bounded:
//!
//! ```text
//! # comment
//! det-wallclock crates/cli/src/validate.rs -- reason text (expires: revisit note)
//! ```
//!
//! Entries that suppress nothing are reported by `check` as stale — an
//! allowlist only stays trustworthy if it shrinks when the code heals.

use crate::rules::RuleId;
use std::fmt;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// The rule being suppressed.
    pub rule: RuleId,
    /// Workspace-relative file the suppression applies to.
    pub path: String,
    /// Why the finding is acceptable.
    pub reason: String,
    /// When/under what condition the entry should be removed.
    pub expires: String,
    /// 1-based line in the allowlist file.
    pub line: usize,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} -- {} (expires: {})",
            self.rule, self.path, self.reason, self.expires
        )
    }
}

/// A malformed allowlist line.
#[derive(Debug, Clone)]
pub struct AllowParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srclint.allow:{}: {}", self.line, self.message)
    }
}

/// Parse the allowlist file contents.
pub fn parse(contents: &str) -> Result<Vec<AllowEntry>, AllowParseError> {
    let mut entries = Vec::new();
    for (idx, raw) in contents.lines().enumerate() {
        let line = idx + 1;
        let text = raw.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let err = |message: String| AllowParseError { line, message };
        let (head, rest) = text
            .split_once(" -- ")
            .ok_or_else(|| err("missing ` -- reason` separator".into()))?;
        let mut fields = head.split_whitespace();
        let rule_name = fields
            .next()
            .ok_or_else(|| err("missing rule name".into()))?;
        let rule =
            RuleId::parse(rule_name).ok_or_else(|| err(format!("unknown rule `{rule_name}`")))?;
        let path = fields
            .next()
            .ok_or_else(|| err("missing file path".into()))?
            .to_string();
        if fields.next().is_some() {
            return Err(err("unexpected extra field before ` -- `".into()));
        }
        let Some(open) = rest.rfind("(expires:") else {
            return Err(err(
                "entry must end with an `(expires: <note>)` expiry note".into(),
            ));
        };
        let reason = rest[..open].trim().to_string();
        let note = rest[open + "(expires:".len()..].trim();
        let expires = note
            .strip_suffix(')')
            .ok_or_else(|| err("unterminated `(expires: ...)` note".into()))?
            .trim()
            .to_string();
        if reason.is_empty() {
            return Err(err("empty reason".into()));
        }
        if expires.is_empty() {
            return Err(err("empty expiry note".into()));
        }
        entries.push(AllowEntry {
            rule,
            path,
            reason,
            expires,
            line,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let src = "# header\n\
                   \n\
                   det-wallclock crates/cli/src/validate.rs -- CLI lints real chains (expires: when --now is required)\n";
        let got = parse(src).expect("parses");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, RuleId::DetWallclock);
        assert_eq!(got[0].path, "crates/cli/src/validate.rs");
        assert_eq!(got[0].reason, "CLI lints real chains");
        assert_eq!(got[0].expires, "when --now is required");
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn rejects_missing_expiry() {
        let e = parse("det-wallclock a.rs -- just because\n").unwrap_err();
        assert!(e.message.contains("expires"));
    }

    #[test]
    fn rejects_unknown_rule() {
        let e = parse("not-a-rule a.rs -- x (expires: y)\n").unwrap_err();
        assert!(e.message.contains("unknown rule"));
    }

    #[test]
    fn rejects_missing_separator() {
        let e = parse("det-wallclock a.rs reason (expires: y)\n").unwrap_err();
        assert!(e.message.contains("separator"));
    }
}
