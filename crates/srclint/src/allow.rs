//! The allowlist file (`srclint.allow` at the workspace root).
//!
//! Each entry suppresses one rule in one file and must carry a reason and
//! an expiry note, so suppressions stay auditable and time-bounded:
//!
//! ```text
//! # comment
//! # srclint-budget: 17
//! det-wallclock crates/cli/src/validate.rs -- reason text (expires: revisit note)
//! ```
//!
//! Entries that suppress nothing are reported by `check` as stale — an
//! allowlist only stays trustworthy if it shrinks when the code heals.
//! The optional `# srclint-budget: N` line declares the total number of
//! suppressed findings the workspace is allowed to carry (inline markers
//! included); `check` fails when the actual count drifts from it, so a
//! new suppression anywhere forces a reviewed diff of this file.

use crate::rules::RuleId;
use std::fmt;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// The rule being suppressed.
    pub rule: RuleId,
    /// Workspace-relative file the suppression applies to.
    pub path: String,
    /// Why the finding is acceptable.
    pub reason: String,
    /// When/under what condition the entry should be removed.
    pub expires: String,
    /// 1-based line in the allowlist file.
    pub line: usize,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} -- {} (expires: {})",
            self.rule, self.path, self.reason, self.expires
        )
    }
}

/// A malformed allowlist line.
#[derive(Debug, Clone)]
pub struct AllowParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srclint.allow:{}: {}", self.line, self.message)
    }
}

/// The parsed allowlist: entries plus the optional suppression budget.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// File-level suppressions, in file order.
    pub entries: Vec<AllowEntry>,
    /// `# srclint-budget: N` declaration, if present.
    pub budget: Option<usize>,
}

/// The budget declaration prefix (a `#` comment, so older parsers skip it).
const BUDGET_PREFIX: &str = "# srclint-budget:";

/// Parse the allowlist file contents.
pub fn parse(contents: &str) -> Result<Allowlist, AllowParseError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut budget: Option<usize> = None;
    for (idx, raw) in contents.lines().enumerate() {
        let line = idx + 1;
        let text = raw.trim();
        let err = |message: String| AllowParseError { line, message };
        if let Some(rest) = text.strip_prefix(BUDGET_PREFIX) {
            if budget.is_some() {
                return Err(err("duplicate `# srclint-budget:` line".into()));
            }
            let value: usize = rest.trim().parse().map_err(|_| {
                err(format!(
                    "invalid budget `{}`: expected a number",
                    rest.trim()
                ))
            })?;
            budget = Some(value);
            continue;
        }
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let (head, rest) = text
            .split_once(" -- ")
            .ok_or_else(|| err("missing ` -- reason` separator".into()))?;
        let mut fields = head.split_whitespace();
        let rule_name = fields
            .next()
            .ok_or_else(|| err("missing rule name".into()))?;
        let rule =
            RuleId::parse(rule_name).ok_or_else(|| err(format!("unknown rule `{rule_name}`")))?;
        let path = fields
            .next()
            .ok_or_else(|| err("missing file path".into()))?
            .to_string();
        if fields.next().is_some() {
            return Err(err("unexpected extra field before ` -- `".into()));
        }
        let Some(open) = rest.rfind("(expires:") else {
            return Err(err(
                "entry must end with an `(expires: <note>)` expiry note".into(),
            ));
        };
        let reason = rest[..open].trim().to_string();
        let note = rest[open + "(expires:".len()..].trim();
        let expires = note
            .strip_suffix(')')
            .ok_or_else(|| err("unterminated `(expires: ...)` note".into()))?
            .trim()
            .to_string();
        if reason.is_empty() {
            return Err(err("empty reason".into()));
        }
        if expires.is_empty() {
            return Err(err("empty expiry note".into()));
        }
        if let Some(dup) = entries.iter().find(|e| e.rule == rule && e.path == path) {
            return Err(err(format!(
                "duplicate entry for `{} {}` (first on line {})",
                rule, path, dup.line
            )));
        }
        entries.push(AllowEntry {
            rule,
            path,
            reason,
            expires,
            line,
        });
    }
    Ok(Allowlist { entries, budget })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let src = "# header\n\
                   \n\
                   det-wallclock crates/cli/src/validate.rs -- CLI lints real chains (expires: when --now is required)\n";
        let got = parse(src).expect("parses").entries;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, RuleId::DetWallclock);
        assert_eq!(got[0].path, "crates/cli/src/validate.rs");
        assert_eq!(got[0].reason, "CLI lints real chains");
        assert_eq!(got[0].expires, "when --now is required");
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn rejects_missing_expiry() {
        let e = parse("det-wallclock a.rs -- just because\n").unwrap_err();
        assert!(e.message.contains("expires"));
    }

    #[test]
    fn rejects_unknown_rule() {
        let e = parse("not-a-rule a.rs -- x (expires: y)\n").unwrap_err();
        assert!(e.message.contains("unknown rule"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_missing_separator() {
        let e = parse("det-wallclock a.rs reason (expires: y)\n").unwrap_err();
        assert!(e.message.contains("separator"));
    }

    #[test]
    fn rejects_duplicate_rule_path_pairs() {
        let src = "det-wallclock a.rs -- first (expires: x)\n\
                   no-silent-allow a.rs -- different rule is fine (expires: x)\n\
                   det-wallclock a.rs -- second (expires: y)\n";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate entry"), "{}", e.message);
        assert!(e.message.contains("first on line 1"), "{}", e.message);
    }

    #[test]
    fn parses_budget_line() {
        let src = "# srclint-budget: 17\n\
                   det-wallclock a.rs -- reason (expires: x)\n";
        let got = parse(src).expect("parses");
        assert_eq!(got.budget, Some(17));
        assert_eq!(got.entries.len(), 1);
        assert_eq!(parse("").expect("empty").budget, None);
    }

    #[test]
    fn rejects_bad_budget_lines() {
        let e = parse("# srclint-budget: many\n").unwrap_err();
        assert!(e.message.contains("expected a number"), "{}", e.message);
        let e = parse("# srclint-budget: 1\n# srclint-budget: 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"), "{}", e.message);
    }

    #[test]
    fn error_display_names_file_and_line() {
        let e = parse("\n\nbroken\n").unwrap_err();
        assert_eq!(
            e.to_string(),
            "srclint.allow:3: missing ` -- reason` separator"
        );
    }
}
