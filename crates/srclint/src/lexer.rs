//! A comment- and string-literal-aware line scanner for Rust source.
//!
//! The rules in this crate match on *code text*, never on text inside
//! string literals or comments, and separately on *comment text* (for
//! `// SAFETY:` and `// srclint:` markers). This module produces that
//! split without a full parser: a character-level state machine that
//! understands line comments, (nested) block comments, string literals
//! (plain, byte, raw with any hash count), char/byte-char literals, and
//! the `'lifetime` ambiguity.
//!
//! String and char literal *contents* are blanked to spaces in the code
//! view — the surrounding quotes stay, so token shapes survive — which is
//! what lets srclint scan its own rule tables (full of `"HashMap"`-like
//! pattern strings) without flagging itself.

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// Code text with comments removed and literal contents blanked.
    pub code: String,
    /// Comment text on this line (markers `//`, `/*`, `*/` included).
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment at the given depth.
    BlockComment(usize),
    /// Plain or byte string literal.
    Str,
    /// Raw (byte) string literal closed by `"` plus this many `#`s.
    RawStr(usize),
}

/// Split `source` into per-line code/comment views.
pub fn lex(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut number = 1usize;
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {
            lines.push(Line {
                number,
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
            });
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            number += 1;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let rest = &chars[i..];
                if rest.starts_with(&['/', '/']) {
                    state = State::LineComment;
                    comment.push_str("//");
                    i += 2;
                } else if rest.starts_with(&['/', '*']) {
                    state = State::BlockComment(1);
                    comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if let Some(consumed) = raw_str_open(rest, prev_is_ident(&chars, i)) {
                    let hashes = consumed.hashes;
                    for _ in 0..consumed.len {
                        code.push(chars[i]);
                        i += 1;
                    }
                    state = if consumed.raw {
                        State::RawStr(hashes)
                    } else {
                        State::Str
                    };
                } else if c == '\'' {
                    i = consume_quote(&chars, i, &mut code);
                } else if c == 'b' && !prev_is_ident(&chars, i) && rest.get(1) == Some(&'\'') {
                    code.push('b');
                    i = consume_quote(&chars, i + 1, &mut code);
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let rest = &chars[i..];
                if rest.starts_with(&['*', '/']) {
                    comment.push_str("*/");
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if rest.starts_with(&['/', '*']) {
                    comment.push_str("/*");
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    if i + 1 < chars.len() && chars[i + 1] != '\n' {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"'
                    && chars[i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&h| h == '#')
                        .count()
                        == hashes
                {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() || lines.is_empty() {
        flush_line!();
    }
    lines
}

/// Is `chars[i - 1]` an identifier character? Guards the `r"`/`b"`
/// prefixes against matching the tail of a longer identifier.
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

struct RawOpen {
    /// Characters in the opening sequence (`r`/`b` prefix, hashes, quote).
    len: usize,
    hashes: usize,
    raw: bool,
}

/// Match a raw/byte string opener (`r"`, `r#"`, `br##"`, `b"`, ...) at the
/// head of `rest`.
fn raw_str_open(rest: &[char], prev_ident: bool) -> Option<RawOpen> {
    if prev_ident {
        return None;
    }
    let mut j = 0usize;
    let mut raw = false;
    if rest.get(j) == Some(&'b') {
        j += 1;
    }
    if rest.get(j) == Some(&'r') {
        raw = true;
        j += 1;
    }
    if j == 0 {
        return None;
    }
    let mut hashes = 0usize;
    if raw {
        while rest.get(j + hashes) == Some(&'#') {
            hashes += 1;
        }
    }
    (rest.get(j + hashes) == Some(&'"')).then_some(RawOpen {
        len: j + hashes + 1,
        hashes,
        raw,
    })
}

/// Consume a `'` at `chars[i]`: either a char literal (contents blanked)
/// or a lifetime/label (left in the code as-is). Returns the next index.
fn consume_quote(chars: &[char], i: usize, code: &mut String) -> usize {
    debug_assert_eq!(chars[i], '\'');
    let next = chars.get(i + 1).copied();
    match next {
        // Escape sequence: consume through the closing quote.
        Some('\\') => {
            code.push('\'');
            let mut j = i + 2;
            // Skip the escaped char; `\u{...}` runs to its brace.
            if chars.get(j) == Some(&'u') && chars.get(j + 1) == Some(&'{') {
                while j < chars.len() && chars[j] != '}' {
                    j += 1;
                }
            }
            j += 1;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            code.push(' ');
            code.push('\'');
            j + 1
        }
        // `'x'` — a one-char literal.
        Some(_) if chars.get(i + 2) == Some(&'\'') => {
            code.push('\'');
            code.push(' ');
            code.push('\'');
            i + 3
        }
        // A lifetime (`'a`) or loop label (`'outer:`).
        _ => {
            code.push('\'');
            i + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn comments_are_split_out() {
        let lines = lex("let x = 1; // trailing\n/* block */ let y = 2;\n");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, "// trailing");
        assert_eq!(lines[1].code, " let y = 2;");
        assert_eq!(lines[1].comment, "/* block */");
    }

    #[test]
    fn strings_are_blanked_but_quoted() {
        let got = code_of("let s = \"HashMap.iter()\";\n");
        assert_eq!(got[0], "let s = \"              \";");
    }

    #[test]
    fn raw_and_byte_strings() {
        let got = code_of("let a = r#\"x \" y\"#; let b = b\"q\"; let c = br##\"z\"##;\n");
        assert!(!got[0].contains('x'));
        assert!(!got[0].contains('q'));
        assert!(!got[0].contains('z'));
        assert!(got[0].ends_with("\"##;"));
    }

    #[test]
    fn comment_markers_inside_strings_are_ignored() {
        let lines = lex("let u = \"https://e.org/*x*/\"; let v = 3;\n");
        assert_eq!(lines[0].comment, "");
        assert!(lines[0].code.contains("let v = 3;"));
    }

    #[test]
    fn strings_inside_comments_are_ignored() {
        let lines = lex("// has \"quotes\" inside\nlet w = 4;\n");
        assert_eq!(lines[0].code, "");
        assert_eq!(lines[1].code, "let w = 4;");
    }

    #[test]
    fn nested_block_comments() {
        let lines = lex("/* outer /* inner */ still */ let z = 5;\n");
        assert_eq!(lines[0].code.trim(), "let z = 5;");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let got = code_of("fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\''; let e = 'x'; }\n");
        assert!(got[0].contains("fn f<'a>(x: &'a str)"));
        // No stray quote state: everything after the literals survives.
        assert!(got[0].ends_with('}'));
    }

    #[test]
    fn multi_line_block_comment_spans_lines() {
        let lines = lex("a();\n/* one\ntwo */ b();\n");
        assert_eq!(lines[1].code, "");
        assert_eq!(lines[1].comment, "/* one");
        assert!(lines[2].code.contains("b();"));
        assert!(lines[2].comment.contains("two */"));
    }

    #[test]
    fn multi_line_raw_string_spans_lines() {
        // Rule probes inside a raw string body must never fire, even
        // lines later; the closing delimiter restores code state.
        let lines = lex("let s = r#\"line one unwrap()\nInstant::now()\"#;\nlet t = 1;\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(!lines[1].code.contains("Instant"));
        assert!(lines[1].code.ends_with("\"#;"));
        assert_eq!(lines[2].code, "let t = 1;");
    }

    #[test]
    fn raw_string_hash_count_must_match_to_close() {
        // `"#` inside an r##-string is content, not a terminator: the
        // whole body blanks and code resumes exactly at the `"##`.
        let got = code_of("let s = r##\"a \"# b\"##; let after = 2;\n");
        assert_eq!(got[0], "let s = r##\"      \"##; let after = 2;");
    }

    #[test]
    fn raw_prefix_requires_nonident_boundary() {
        // `attr#` / `br#`-like sequences inside identifiers are not raw
        // string openers: `catr#` is ident `catr` then `#`.
        let got = code_of("let catr = 1; catr#tag;\nlet x = 2;\n");
        assert!(got[0].contains("catr#tag"));
        assert_eq!(got[1], "let x = 2;");
    }

    #[test]
    fn doubly_nested_block_comment_counts_depth() {
        let lines = lex("/* a /* b /* c */ b */ a */ live();\n");
        assert_eq!(lines[0].code.trim(), "live();");
        // An unbalanced close after the comment ends is ordinary code.
        let lines = lex("/* x */ */ y();\n");
        assert!(lines[0].code.contains("*/ y();"));
    }

    #[test]
    fn line_comment_markers_inside_block_comment_do_not_escape() {
        // `//` inside a block comment must not eat the `*/`.
        let lines = lex("/* see // note */ z();\n");
        assert!(lines[0].code.contains("z();"));
        assert_eq!(lines[0].comment, "/* see // note */");
    }
}
