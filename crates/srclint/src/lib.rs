#![forbid(unsafe_code)]
//! `certchain-srclint`: a workspace determinism-and-safety static
//! analysis pass.
//!
//! The workspace's headline guarantee is that Tables 2/3/7 render
//! byte-identical across thread counts and across the batch/streaming
//! paths. That guarantee is pinned by regression tests, but the hazards
//! that can silently break it — hash-ordered iteration feeding ordered
//! output, wall-clock reads, thread-count-dependent logic — live in
//! dozens of files. This crate scans the workspace's own Rust source
//! with a hand-rolled comment/string-aware lexer ([`lexer`]) and enforces
//! the rule catalog in [`rules`] as a CI gate:
//!
//! ```text
//! cargo run -p certchain-srclint -- check
//! cargo run -p certchain-srclint -- list-suppressions
//! ```
//!
//! Suppressions are explicit and auditable: `// srclint: commutative`
//! justifies an order-insensitive hash iteration at the site,
//! `// srclint: allow(<rule>) -- reason` silences any rule at the site,
//! and `srclint.allow` ([`allow`]) holds file-level suppressions with
//! mandatory expiry notes. `list-suppressions` prints all three kinds.

pub mod allow;
pub mod lexer;
pub mod rules;

use allow::AllowEntry;
use certchain_obs::json::JsonValue;
use rules::{Finding, RuleId, Suppression};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories (workspace-relative) never scanned: build output, VCS
/// metadata, and srclint's own intentionally-bad fixture corpus.
const SKIP_DIRS: &[&str] = &["target", ".git", "crates/srclint/tests/fixtures"];

/// Name of the allowlist file at the scan root.
pub const ALLOWLIST_FILE: &str = "srclint.allow";

/// The result of a full workspace scan.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Findings not silenced by any marker or allowlist entry, in
    /// (path, line) order.
    pub findings: Vec<Finding>,
    /// Findings silenced by an inline marker or allowlist entry.
    pub suppressed: Vec<Finding>,
    /// Allowlist entries that matched no finding (stale — remove them).
    pub stale_allows: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl CheckReport {
    /// Render as a JSON document (machine-readable CI output).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "files_scanned".into(),
                JsonValue::Num(self.files_scanned as f64),
            ),
            (
                "findings".into(),
                JsonValue::Arr(self.findings.iter().map(finding_json).collect()),
            ),
            (
                "suppressed".into(),
                JsonValue::Arr(self.suppressed.iter().map(finding_json).collect()),
            ),
            (
                "stale_allowlist_entries".into(),
                JsonValue::Arr(self.stale_allows.iter().map(allow_json).collect()),
            ),
        ])
    }
}

fn finding_json(f: &Finding) -> JsonValue {
    let mut obj = vec![
        ("rule".into(), JsonValue::Str(f.rule.name().into())),
        ("path".into(), JsonValue::Str(f.path.clone())),
        ("line".into(), JsonValue::Num(f.line as f64)),
        ("message".into(), JsonValue::Str(f.message.clone())),
        ("snippet".into(), JsonValue::Str(f.snippet.clone())),
    ];
    if let Some(s) = &f.suppression {
        let (kind, detail) = match s {
            Suppression::CommutativeMarker => ("commutative-marker", String::new()),
            Suppression::InlineAllow(reason) => ("inline-allow", reason.clone()),
            Suppression::Allowlist(reason) => ("allowlist", reason.clone()),
        };
        obj.push(("suppressed_by".into(), JsonValue::Str(kind.into())));
        if !detail.is_empty() {
            obj.push(("suppression_reason".into(), JsonValue::Str(detail)));
        }
    }
    JsonValue::Obj(obj)
}

fn allow_json(e: &AllowEntry) -> JsonValue {
    JsonValue::Obj(vec![
        ("rule".into(), JsonValue::Str(e.rule.name().into())),
        ("path".into(), JsonValue::Str(e.path.clone())),
        ("reason".into(), JsonValue::Str(e.reason.clone())),
        ("expires".into(), JsonValue::Str(e.expires.clone())),
        ("allowlist_line".into(), JsonValue::Num(e.line as f64)),
    ])
}

/// A scan error: IO or a malformed allowlist.
#[derive(Debug)]
pub enum Error {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed `srclint.allow`.
    Allowlist(allow::AllowParseError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Allowlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::Io(e)
    }
}

/// Walk `root` for `.rs` files, skipping [`SKIP_DIRS`]. Returns
/// workspace-relative paths (forward slashes), sorted for deterministic
/// report order.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_path(root, &path);
            if SKIP_DIRS.iter().any(|s| rel == *s) || rel.ends_with("/target") {
                continue;
            }
            let ty = entry.file_type()?;
            if ty.is_dir() {
                stack.push(path);
            } else if ty.is_file() && rel.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Load the allowlist at `root`, if present.
pub fn load_allowlist(root: &Path) -> Result<Vec<AllowEntry>, Error> {
    let path = root.join(ALLOWLIST_FILE);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let contents = fs::read_to_string(path)?;
    allow::parse(&contents).map_err(Error::Allowlist)
}

/// Scan the workspace rooted at `root` and apply suppressions.
pub fn check(root: &Path) -> Result<CheckReport, Error> {
    let allows = load_allowlist(root)?;
    let mut allow_hits = vec![0usize; allows.len()];
    let mut report = CheckReport::default();
    for rel in collect_rs_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        let lines = lexer::lex(&source);
        let info = rules::classify(&rel);
        report.files_scanned += 1;
        for mut finding in rules::scan_file(&info, &lines) {
            if finding.suppression.is_none() {
                if let Some(i) = allows
                    .iter()
                    .position(|e| e.rule == finding.rule && e.path == finding.path)
                {
                    allow_hits[i] += 1;
                    finding.suppression = Some(Suppression::Allowlist(allows[i].reason.clone()));
                }
            }
            if finding.suppression.is_some() {
                report.suppressed.push(finding);
            } else {
                report.findings.push(finding);
            }
        }
    }
    report.stale_allows = allows
        .into_iter()
        .zip(allow_hits)
        .filter_map(|(e, hits)| (hits == 0).then_some(e))
        .collect();
    Ok(report)
}

/// One entry in the suppression audit (`list-suppressions`).
#[derive(Debug, Clone)]
pub struct SuppressionSite {
    /// `commutative-marker`, `inline-allow`, or `allowlist`.
    pub kind: &'static str,
    /// Where the suppression lives (`path:line`; the allowlist file for
    /// allowlist entries).
    pub path: String,
    /// 1-based line of the marker / allowlist entry.
    pub line: usize,
    /// Rule suppressed (`det-unordered-iter` for commutative markers;
    /// best-effort parse for inline allows).
    pub rule: String,
    /// Reason / justification text.
    pub reason: String,
    /// Whether the suppression currently silences at least one finding.
    pub active: bool,
}

/// Audit every suppression in the workspace: inline markers (found by
/// scanning comments) and allowlist entries, each tagged with whether it
/// currently matches a finding.
pub fn list_suppressions(root: &Path) -> Result<Vec<SuppressionSite>, Error> {
    let report = check(root)?;
    let active_key = |f: &Finding| (f.path.clone(), f.rule);
    let active: std::collections::BTreeSet<(String, RuleId)> =
        report.suppressed.iter().map(active_key).collect();
    let mut out = Vec::new();
    for rel in collect_rs_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        for line in lexer::lex(&source) {
            let Some(pos) = line.comment.find("srclint:") else {
                continue;
            };
            let body = line.comment[pos + "srclint:".len()..].trim();
            let (kind, rule, reason) = if let Some(rest) = body.strip_prefix("commutative") {
                let reason = rest.trim().trim_start_matches("--").trim();
                (
                    "commutative-marker",
                    RuleId::DetUnorderedIter.name().to_string(),
                    reason.to_string(),
                )
            } else if let Some(rest) = body.strip_prefix("allow(") {
                let (rule, tail) = rest.split_once(')').unwrap_or((rest, ""));
                (
                    "inline-allow",
                    rule.trim().to_string(),
                    tail.trim().trim_start_matches("--").trim().to_string(),
                )
            } else {
                continue;
            };
            let is_active =
                RuleId::parse(&rule).is_some_and(|r| active.contains(&(rel.clone(), r)));
            out.push(SuppressionSite {
                kind,
                path: rel.clone(),
                line: line.number,
                rule,
                reason,
                active: is_active,
            });
        }
    }
    for entry in load_allowlist(root)? {
        let is_active = !report.stale_allows.iter().any(|s| s.line == entry.line);
        out.push(SuppressionSite {
            kind: "allowlist",
            path: ALLOWLIST_FILE.to_string(),
            line: entry.line,
            rule: entry.rule.name().to_string(),
            reason: format!("{} (expires: {})", entry.reason, entry.expires),
            active: is_active,
        });
    }
    Ok(out)
}

/// Render the suppression audit as JSON.
pub fn suppressions_json(sites: &[SuppressionSite]) -> JsonValue {
    JsonValue::Arr(
        sites
            .iter()
            .map(|s| {
                JsonValue::Obj(vec![
                    ("kind".into(), JsonValue::Str(s.kind.into())),
                    ("path".into(), JsonValue::Str(s.path.clone())),
                    ("line".into(), JsonValue::Num(s.line as f64)),
                    ("rule".into(), JsonValue::Str(s.rule.clone())),
                    ("reason".into(), JsonValue::Str(s.reason.clone())),
                    ("active".into(), JsonValue::Bool(s.active)),
                ])
            })
            .collect(),
    )
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
