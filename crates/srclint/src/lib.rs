#![forbid(unsafe_code)]
//! `certchain-srclint`: a workspace determinism-and-safety static
//! analysis pass.
//!
//! The workspace's headline guarantee is that Tables 2/3/7 render
//! byte-identical across thread counts and across the batch/streaming
//! paths. That guarantee is pinned by regression tests, but the hazards
//! that can silently break it — hash-ordered iteration feeding ordered
//! output, wall-clock reads, thread-count-dependent logic — live in
//! dozens of files. This crate scans the workspace's own Rust source
//! with a hand-rolled comment/string-aware lexer ([`lexer`]) and enforces
//! the rule catalog in [`rules`] as a CI gate:
//!
//! ```text
//! cargo run -p certchain-srclint -- check
//! cargo run -p certchain-srclint -- list-suppressions
//! ```
//!
//! Suppressions are explicit and auditable: `// srclint: commutative`
//! justifies an order-insensitive hash iteration at the site,
//! `// srclint: allow(<rule>) -- reason` silences any rule at the site,
//! and `srclint.allow` ([`allow`]) holds file-level suppressions with
//! mandatory expiry notes. `list-suppressions` prints all three kinds.

pub mod allow;
pub mod lexer;
pub mod rules;
pub mod scope;

use allow::{AllowEntry, Allowlist};
use certchain_obs::json::JsonValue;
use rules::{Finding, RuleId, Suppression};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never scanned at any depth: build output (including
/// per-crate `target/` dirs from standalone `cargo` runs) and VCS
/// metadata.
const SKIP_DIR_NAMES: &[&str] = &["target", ".git"];

/// Root-relative directories never scanned: the vendored dependency
/// tree (third-party code is not ours to lint) and srclint's own
/// intentionally-bad fixture corpus — both spelled from the workspace
/// root and from a crate root (`--root crates/srclint` self-scans).
const SKIP_DIR_ROOTS: &[&str] = &["vendor", "crates/srclint/tests/fixtures", "tests/fixtures"];

/// Name of the allowlist file at the scan root.
pub const ALLOWLIST_FILE: &str = "srclint.allow";

/// The result of a full workspace scan.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Findings not silenced by any marker or allowlist entry, in
    /// (path, line) order.
    pub findings: Vec<Finding>,
    /// Findings silenced by an inline marker or allowlist entry.
    pub suppressed: Vec<Finding>,
    /// Allowlist entries that matched no finding (stale — remove them).
    pub stale_allows: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Declared suppression budget (`# srclint-budget: N` in
    /// `srclint.allow`), if any.
    pub suppression_budget: Option<usize>,
}

impl CheckReport {
    /// The regression-guard verdict: with a budget declared, the number
    /// of suppressed findings must match it exactly, so any growth (or
    /// shrink) in suppressions forces a visible `srclint.allow` diff.
    pub fn budget_violation(&self) -> Option<String> {
        let budget = self.suppression_budget?;
        let actual = self.suppressed.len();
        (actual != budget).then(|| {
            format!(
                "suppression count {actual} != declared budget {budget}; \
                 update the `# srclint-budget: {actual}` line in srclint.allow \
                 (and justify any new suppression in the same diff)"
            )
        })
    }
    /// Render as a JSON document (machine-readable CI output).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "files_scanned".into(),
                JsonValue::Num(self.files_scanned as f64),
            ),
            (
                "suppression_count".into(),
                JsonValue::Num(self.suppressed.len() as f64),
            ),
            (
                "suppression_budget".into(),
                match self.suppression_budget {
                    Some(b) => JsonValue::Num(b as f64),
                    None => JsonValue::Null,
                },
            ),
            (
                "findings".into(),
                JsonValue::Arr(self.findings.iter().map(finding_json).collect()),
            ),
            (
                "suppressed".into(),
                JsonValue::Arr(self.suppressed.iter().map(finding_json).collect()),
            ),
            (
                "stale_allowlist_entries".into(),
                JsonValue::Arr(self.stale_allows.iter().map(allow_json).collect()),
            ),
        ])
    }
}

fn finding_json(f: &Finding) -> JsonValue {
    let mut obj = vec![
        ("rule".into(), JsonValue::Str(f.rule.name().into())),
        ("path".into(), JsonValue::Str(f.path.clone())),
        ("line".into(), JsonValue::Num(f.line as f64)),
        ("message".into(), JsonValue::Str(f.message.clone())),
        ("snippet".into(), JsonValue::Str(f.snippet.clone())),
    ];
    if let Some(s) = &f.suppression {
        let (kind, detail) = match s {
            Suppression::CommutativeMarker => ("commutative-marker", String::new()),
            Suppression::InlineAllow(reason) => ("inline-allow", reason.clone()),
            Suppression::Allowlist(reason) => ("allowlist", reason.clone()),
            Suppression::PanicOk(reason) => ("panic-ok-marker", reason.clone()),
        };
        obj.push(("suppressed_by".into(), JsonValue::Str(kind.into())));
        if !detail.is_empty() {
            obj.push(("suppression_reason".into(), JsonValue::Str(detail)));
        }
    }
    JsonValue::Obj(obj)
}

fn allow_json(e: &AllowEntry) -> JsonValue {
    JsonValue::Obj(vec![
        ("rule".into(), JsonValue::Str(e.rule.name().into())),
        ("path".into(), JsonValue::Str(e.path.clone())),
        ("reason".into(), JsonValue::Str(e.reason.clone())),
        ("expires".into(), JsonValue::Str(e.expires.clone())),
        ("allowlist_line".into(), JsonValue::Num(e.line as f64)),
    ])
}

/// A scan error: IO or a malformed allowlist.
#[derive(Debug)]
pub enum Error {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed `srclint.allow`.
    Allowlist(allow::AllowParseError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Allowlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::Io(e)
    }
}

/// Walk `root` for `.rs` files. Skips [`SKIP_DIR_NAMES`] directories at
/// any depth and [`SKIP_DIR_ROOTS`] at the workspace root. Returns
/// workspace-relative paths (forward slashes), sorted for deterministic
/// report order.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_path(root, &path);
            let ty = entry.file_type()?;
            if ty.is_dir() {
                let name = entry.file_name().to_string_lossy().into_owned();
                let skip_anywhere = SKIP_DIR_NAMES.contains(&name.as_str());
                let skip_at_root = SKIP_DIR_ROOTS.iter().any(|s| rel == *s);
                if !(skip_anywhere || skip_at_root) {
                    stack.push(path);
                }
            } else if ty.is_file() && rel.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Load the allowlist at `root`, if present.
pub fn load_allowlist(root: &Path) -> Result<Allowlist, Error> {
    let path = root.join(ALLOWLIST_FILE);
    if !path.exists() {
        return Ok(Allowlist::default());
    }
    let contents = fs::read_to_string(path)?;
    allow::parse(&contents).map_err(Error::Allowlist)
}

/// Scan the workspace rooted at `root` and apply suppressions.
pub fn check(root: &Path) -> Result<CheckReport, Error> {
    let allowlist = load_allowlist(root)?;
    let allows = allowlist.entries;
    let mut allow_hits = vec![0usize; allows.len()];
    let mut report = CheckReport {
        suppression_budget: allowlist.budget,
        ..CheckReport::default()
    };
    for rel in collect_rs_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        let lines = lexer::lex(&source);
        let info = rules::classify(&rel);
        report.files_scanned += 1;
        for mut finding in rules::scan_file(&info, &lines) {
            if finding.suppression.is_none() {
                if let Some(i) = allows
                    .iter()
                    .position(|e| e.rule == finding.rule && e.path == finding.path)
                {
                    allow_hits[i] += 1;
                    finding.suppression = Some(Suppression::Allowlist(allows[i].reason.clone()));
                }
            }
            if finding.suppression.is_some() {
                report.suppressed.push(finding);
            } else {
                report.findings.push(finding);
            }
        }
    }
    report.stale_allows = allows
        .into_iter()
        .zip(allow_hits)
        .filter_map(|(e, hits)| (hits == 0).then_some(e))
        .collect();
    Ok(report)
}

/// One entry in the suppression audit (`list-suppressions`).
#[derive(Debug, Clone)]
pub struct SuppressionSite {
    /// `commutative-marker`, `inline-allow`, or `allowlist`.
    pub kind: &'static str,
    /// Where the suppression lives (`path:line`; the allowlist file for
    /// allowlist entries).
    pub path: String,
    /// 1-based line of the marker / allowlist entry.
    pub line: usize,
    /// Rule suppressed (`det-unordered-iter` for commutative markers;
    /// best-effort parse for inline allows).
    pub rule: String,
    /// Reason / justification text.
    pub reason: String,
    /// Whether the suppression currently silences at least one finding.
    pub active: bool,
}

/// Audit every suppression in the workspace: inline markers (found by
/// scanning comments) and allowlist entries, each tagged with whether it
/// currently matches a finding.
pub fn list_suppressions(root: &Path) -> Result<Vec<SuppressionSite>, Error> {
    let report = check(root)?;
    let active_key = |f: &Finding| (f.path.clone(), f.rule);
    let active: std::collections::BTreeSet<(String, RuleId)> =
        report.suppressed.iter().map(active_key).collect();
    let mut out = Vec::new();
    for rel in collect_rs_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        for line in lexer::lex(&source) {
            if let Some(pos) = line.comment.find("PANIC-OK:") {
                let reason = line.comment[pos + "PANIC-OK:".len()..].trim().to_string();
                let rule = RuleId::NoPanicInDaemon;
                out.push(SuppressionSite {
                    kind: "panic-ok-marker",
                    path: rel.clone(),
                    line: line.number,
                    rule: rule.name().to_string(),
                    reason,
                    active: active.contains(&(rel.clone(), rule)),
                });
            }
            let Some(pos) = line.comment.find("srclint:") else {
                continue;
            };
            let body = line.comment[pos + "srclint:".len()..].trim();
            let (kind, rule, reason) = if let Some(rest) = body.strip_prefix("commutative") {
                let reason = rest.trim().trim_start_matches("--").trim();
                (
                    "commutative-marker",
                    RuleId::DetUnorderedIter.name().to_string(),
                    reason.to_string(),
                )
            } else if let Some(rest) = body.strip_prefix("allow(") {
                let (rule, tail) = rest.split_once(')').unwrap_or((rest, ""));
                (
                    "inline-allow",
                    rule.trim().to_string(),
                    tail.trim().trim_start_matches("--").trim().to_string(),
                )
            } else {
                continue;
            };
            let is_active =
                RuleId::parse(&rule).is_some_and(|r| active.contains(&(rel.clone(), r)));
            out.push(SuppressionSite {
                kind,
                path: rel.clone(),
                line: line.number,
                rule,
                reason,
                active: is_active,
            });
        }
    }
    for entry in load_allowlist(root)?.entries {
        let is_active = !report.stale_allows.iter().any(|s| s.line == entry.line);
        out.push(SuppressionSite {
            kind: "allowlist",
            path: ALLOWLIST_FILE.to_string(),
            line: entry.line,
            rule: entry.rule.name().to_string(),
            reason: format!("{} (expires: {})", entry.reason, entry.expires),
            active: is_active,
        });
    }
    Ok(out)
}

/// Render the suppression audit as JSON.
pub fn suppressions_json(sites: &[SuppressionSite]) -> JsonValue {
    JsonValue::Arr(
        sites
            .iter()
            .map(|s| {
                JsonValue::Obj(vec![
                    ("kind".into(), JsonValue::Str(s.kind.into())),
                    ("path".into(), JsonValue::Str(s.path.clone())),
                    ("line".into(), JsonValue::Num(s.line as f64)),
                    ("rule".into(), JsonValue::Str(s.rule.clone())),
                    ("reason".into(), JsonValue::Str(s.reason.clone())),
                    ("active".into(), JsonValue::Bool(s.active)),
                ])
            })
            .collect(),
    )
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a throwaway tree under the OS temp dir; removed on drop.
    struct TempTree(PathBuf);

    impl TempTree {
        fn new(tag: &str) -> TempTree {
            let dir = std::env::temp_dir().join(format!(
                "srclint-{tag}-{}-{:p}",
                std::process::id(),
                &tag
            ));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).expect("temp tree");
            TempTree(dir)
        }

        fn write(&self, rel: &str, contents: &str) {
            let path = self.0.join(rel);
            fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            fs::write(path, contents).expect("write");
        }
    }

    impl Drop for TempTree {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn collect_skips_target_vendor_and_fixtures() {
        let t = TempTree::new("walk");
        // Scanned:
        t.write("crates/a/src/lib.rs", "fn a() {}\n");
        t.write("tests/e2e.rs", "fn t() {}\n");
        // Skipped: top-level target, nested per-crate target, the vendor
        // tree, VCS metadata, and the fixture corpus.
        t.write("target/debug/build/gen.rs", "fn g() {}\n");
        t.write("crates/a/target/debug/gen.rs", "fn g() {}\n");
        t.write("vendor/dep/src/lib.rs", "fn v() {}\n");
        t.write(".git/hooks/h.rs", "fn h() {}\n");
        t.write(
            "crates/srclint/tests/fixtures/crates/x/src/bad.rs",
            "fn b() {}\n",
        );
        // Crate-rooted self-scans see the fixture corpus as
        // `tests/fixtures`; that spelling is skipped too.
        t.write("tests/fixtures/crates/y/src/bad.rs", "fn b() {}\n");
        // A directory merely *named like* vendor below the root is still
        // scanned — only the root-level vendor tree is third-party.
        t.write("crates/a/vendor_notes.rs", "fn n() {}\n");
        let got = collect_rs_files(&t.0).expect("walk");
        assert_eq!(
            got,
            vec![
                "crates/a/src/lib.rs".to_string(),
                "crates/a/vendor_notes.rs".to_string(),
                "tests/e2e.rs".to_string(),
            ]
        );
    }

    #[test]
    fn budget_violation_requires_exact_match() {
        let mut report = CheckReport {
            suppression_budget: Some(1),
            ..CheckReport::default()
        };
        let finding = rules::Finding {
            rule: RuleId::DetWallclock,
            path: "crates/x/src/lib.rs".into(),
            line: 1,
            snippet: String::new(),
            message: String::new(),
            suppression: Some(Suppression::InlineAllow("why".into())),
        };
        report.suppressed.push(finding.clone());
        assert_eq!(report.budget_violation(), None);
        // One more suppression than declared: the guard fires.
        report.suppressed.push(finding);
        let msg = report.budget_violation().expect("violation");
        assert!(msg.contains("2 != declared budget 1"), "{msg}");
        // No declared budget: never fires.
        report.suppression_budget = None;
        assert_eq!(report.budget_violation(), None);
    }
}
