//! CLI for the srclint workspace analysis pass.
//!
//! ```text
//! certchain-srclint check [--json] [--root DIR]
//! certchain-srclint list-suppressions [--json] [--root DIR]
//! certchain-srclint rules
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings (or stale allowlist
//! entries), 2 usage/IO error.

use certchain_srclint::rules::RuleId;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: certchain-srclint <command> [options]

commands:
  check               scan the workspace; exit 1 on unsuppressed findings
  list-suppressions   audit every suppression marker and allowlist entry
  rules               print the rule catalog

options:
  --json              machine-readable output
  --root DIR          scan root (default: nearest ancestor workspace)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match rest.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match certchain_srclint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    match command.as_str() {
        "check" => run_check(&root, json),
        "list-suppressions" => run_list(&root, json),
        "rules" => run_rules(),
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(root: &std::path::Path, json: bool) -> ExitCode {
    let report = match certchain_srclint::check(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("srclint: {e}");
            return ExitCode::from(2);
        }
    };
    let budget_violation = report.budget_violation();
    if json {
        println!("{}", report.to_json().to_pretty());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        for stale in &report.stale_allows {
            println!(
                "srclint.allow:{}: stale entry (matched no finding): {stale}",
                stale.line
            );
        }
        if let Some(v) = &budget_violation {
            println!("srclint.allow: {v}");
        }
        eprintln!(
            "srclint: {} file(s), {} finding(s), {} suppressed, {} stale allowlist entr(ies)",
            report.files_scanned,
            report.findings.len(),
            report.suppressed.len(),
            report.stale_allows.len(),
        );
    }
    if report.findings.is_empty() && report.stale_allows.is_empty() && budget_violation.is_none() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_list(root: &std::path::Path, json: bool) -> ExitCode {
    let sites = match certchain_srclint::list_suppressions(root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("srclint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!(
            "{}",
            certchain_srclint::suppressions_json(&sites).to_pretty()
        );
    } else {
        for s in &sites {
            let status = if s.active { "active" } else { "inactive" };
            println!(
                "{}:{}: [{}] {} ({}) {}",
                s.path, s.line, s.rule, s.kind, status, s.reason
            );
        }
        eprintln!("srclint: {} suppression site(s)", sites.len());
    }
    ExitCode::SUCCESS
}

fn run_rules() -> ExitCode {
    for rule in RuleId::ALL {
        println!("{:28} {}", rule.name(), rule.description());
    }
    ExitCode::SUCCESS
}
