//! Scope attribution: a brace-balanced layer over the [`crate::lexer`]
//! line view.
//!
//! PR 3's rules matched single lines, which made whole-function
//! properties (no panics in the serve loop, manifest-last durability
//! ordering, checked arithmetic in parsers) unenforceable and let
//! suppression markers leak across function boundaries. This module
//! closes that gap without a full parser: a token walk over the blanked
//! code view (strings and comments are already gone, so every `{`/`}`
//! is structural) reconstructs the `fn`/`impl`/`mod`/`trait` nesting
//! and attributes every line to its innermost enclosing function.
//!
//! Rules consume the result through [`ScopeMap`]:
//!
//! - [`ScopeMap::functions`] iterates every function with its qualified
//!   name and line range — the per-function "token stream" whole-
//!   function rules fold over ([`ScopeMap::fn_lines`] slices the lexer
//!   view down to one function's lines);
//! - [`ScopeMap::enclosing_fn`] / [`ScopeMap::same_fn`] let marker
//!   lookups refuse suppressions that live in a *different* function
//!   than the finding they would silence;
//! - [`ScopeMap::in_test_scope`] replaces the old "everything after the
//!   first `#[cfg(test)]` line" heuristic with the attribute's actual
//!   brace range, so code after a test module is no longer invisible.

use crate::lexer::Line;

/// What kind of named scope a brace pair belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// A `fn` item (free function, method, or nested fn).
    Fn,
    /// An `impl` block; `name` is the implementing type's last segment.
    Impl,
    /// A `mod` block.
    Mod,
    /// A `trait` definition block.
    Trait,
}

/// One named scope: a `fn`/`impl`/`mod`/`trait` and its brace range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scope {
    /// The scope kind.
    pub kind: ScopeKind,
    /// The item's own name (`commit`, `CheckpointWriter`, `tests`).
    pub name: String,
    /// Dot-free qualified name built from enclosing named scopes
    /// (`CheckpointWriter::commit`, `tests::roundtrip`).
    pub qual_name: String,
    /// 1-based line of the header keyword (`fn`, `impl`, ...). For a
    /// function this includes the whole signature, so parameter
    /// annotations on the header line(s) belong to the function.
    pub start_line: usize,
    /// 1-based line of the opening `{`.
    pub body_start: usize,
    /// 1-based line of the closing `}` (last line of the file when the
    /// source is truncated mid-scope).
    pub end_line: usize,
    /// Whether the header carried `#[cfg(test)]`/`#[test]` or sits
    /// inside a scope that does.
    pub is_test: bool,
}

/// Per-file scope attribution. Build once per file with
/// [`ScopeMap::build`], then answer line-level queries.
#[derive(Debug)]
pub struct ScopeMap {
    scopes: Vec<Scope>,
    /// Innermost enclosing `Fn` scope per 1-based line (index 0 unused).
    line_fn: Vec<Option<usize>>,
    /// Whether the line sits inside a test-marked scope.
    line_test: Vec<bool>,
}

/// A header seen but whose `{` has not arrived yet.
struct Pending {
    kind: ScopeKind,
    start_line: usize,
    is_test: bool,
    /// `fn`/`mod`/`trait`: the single item name (empty until seen).
    name: String,
    /// `impl` only: last path segment seen before `for`/`where`/`{`.
    pre_for: String,
    /// `impl` only: last path segment seen after a `for` keyword.
    post_for: String,
    seen_for: bool,
    seen_where: bool,
    /// Depth of `<...>` generic brackets inside the header.
    angle_depth: usize,
}

/// One open brace on the walk stack.
struct Open {
    /// Index into `scopes` when the brace belongs to a named scope.
    scope: Option<usize>,
    /// Test-scope state inherited by everything inside this brace.
    in_test: bool,
}

impl ScopeMap {
    /// Walk the blanked code view and reconstruct the scope tree.
    pub fn build(lines: &[Line]) -> ScopeMap {
        let mut scopes: Vec<Scope> = Vec::new();
        let mut stack: Vec<Open> = Vec::new();
        let mut pending: Option<Pending> = None;
        let mut pending_test = false;
        let mut paren_depth = 0usize;
        let last_line = lines.last().map_or(1, |l| l.number);

        for line in lines {
            if line.code.contains("#[cfg(test)]") || line.code.contains("#[test]") {
                pending_test = true;
            }
            let mut prev_sym = ' ';
            for tok in tokens(&line.code) {
                match tok {
                    Token::Ident(word) => {
                        let in_header_angles = pending.as_ref().is_some_and(|p| p.angle_depth > 0);
                        if paren_depth == 0 && !in_header_angles {
                            ident_step(&mut pending, &mut pending_test, word, line.number, &stack);
                        }
                        prev_sym = ' ';
                    }
                    Token::Sym(c) => {
                        match c {
                            '(' | '[' => paren_depth += 1,
                            ')' | ']' => paren_depth = paren_depth.saturating_sub(1),
                            '<' if paren_depth == 0 => {
                                if let Some(p) = pending.as_mut() {
                                    p.angle_depth += 1;
                                }
                            }
                            '>' if paren_depth == 0 && prev_sym != '-' && prev_sym != '=' => {
                                if let Some(p) = pending.as_mut() {
                                    p.angle_depth = p.angle_depth.saturating_sub(1);
                                }
                            }
                            ';' if paren_depth == 0 => {
                                // `mod x;`, trait method declarations,
                                // and attribute-carrying non-scope items
                                // all end without a body.
                                pending = None;
                                pending_test = false;
                            }
                            '{' if paren_depth == 0 => {
                                let inherited = stack.last().is_some_and(|o| o.in_test);
                                let opened = pending.take().map(|p| {
                                    let name = p.resolved_name();
                                    let qual = qual_name(&scopes, &stack, &name);
                                    scopes.push(Scope {
                                        kind: p.kind,
                                        name,
                                        qual_name: qual,
                                        start_line: p.start_line,
                                        body_start: line.number,
                                        end_line: last_line,
                                        is_test: p.is_test || inherited,
                                    });
                                    scopes.len() - 1
                                });
                                let in_test = opened
                                    .map(|i| scopes[i].is_test)
                                    .unwrap_or(inherited || pending_test);
                                stack.push(Open {
                                    scope: opened,
                                    in_test,
                                });
                                // Whatever item owned this brace consumed
                                // any pending test attribute.
                                pending_test = false;
                            }
                            '}' if paren_depth == 0 => {
                                if let Some(open) = stack.pop() {
                                    if let Some(i) = open.scope {
                                        scopes[i].end_line = line.number;
                                    }
                                }
                            }
                            _ => {}
                        }
                        prev_sym = c;
                    }
                }
            }
        }

        let mut line_fn = vec![None; last_line + 1];
        let mut line_test = vec![false; last_line + 1];
        // Outer scopes were pushed first; nested ones overwrite their
        // sub-range, leaving the innermost attribution per line.
        for (i, s) in scopes.iter().enumerate() {
            for l in s.start_line..=s.end_line.min(last_line) {
                if s.kind == ScopeKind::Fn {
                    line_fn[l] = Some(i);
                }
                if s.is_test {
                    line_test[l] = true;
                }
            }
        }
        ScopeMap {
            scopes,
            line_fn,
            line_test,
        }
    }

    /// The innermost function enclosing `line_number`, if any. Header
    /// and signature lines count as inside their function.
    pub fn enclosing_fn(&self, line_number: usize) -> Option<&Scope> {
        self.line_fn
            .get(line_number)
            .copied()
            .flatten()
            .map(|i| &self.scopes[i])
    }

    /// Whether two lines share the same innermost function (both being
    /// outside any function also counts as "same").
    pub fn same_fn(&self, a: usize, b: usize) -> bool {
        let of = |n: usize| self.line_fn.get(n).copied().flatten();
        of(a) == of(b)
    }

    /// Whether the line sits inside a `#[cfg(test)]`/`#[test]` scope.
    pub fn in_test_scope(&self, line_number: usize) -> bool {
        self.line_test.get(line_number).copied().unwrap_or(false)
    }

    /// Every function scope, in source order.
    pub fn functions(&self) -> impl Iterator<Item = &Scope> {
        self.scopes.iter().filter(|s| s.kind == ScopeKind::Fn)
    }

    /// All named scopes (for diagnostics and tests).
    pub fn scopes(&self) -> &[Scope] {
        &self.scopes
    }

    /// The slice of `lines` belonging to one scope: header through
    /// closing brace. `lines` must be the same lexer view the map was
    /// built from.
    pub fn fn_lines<'l>(&self, scope: &Scope, lines: &'l [Line]) -> &'l [Line] {
        let start = scope.start_line.saturating_sub(1).min(lines.len());
        let end = scope.end_line.min(lines.len());
        &lines[start..end]
    }
}

/// Advance the pending-header state machine by one identifier.
fn ident_step(
    pending: &mut Option<Pending>,
    pending_test: &mut bool,
    word: &str,
    line_number: usize,
    stack: &[Open],
) {
    let header_kind = match word {
        "fn" => Some(ScopeKind::Fn),
        "impl" => Some(ScopeKind::Impl),
        "mod" => Some(ScopeKind::Mod),
        "trait" => Some(ScopeKind::Trait),
        _ => None,
    };
    if let Some(kind) = header_kind {
        // `trait` may precede `impl` tokens (`impl Trait for T` keeps the
        // impl pending; `unsafe impl` etc. reach here with pending None).
        if kind == ScopeKind::Impl || pending.is_none() {
            let inherited = stack.last().is_some_and(|o| o.in_test);
            *pending = Some(Pending {
                kind,
                start_line: line_number,
                is_test: *pending_test || inherited,
                name: String::new(),
                pre_for: String::new(),
                post_for: String::new(),
                seen_for: false,
                seen_where: false,
                angle_depth: 0,
            });
        }
        return;
    }
    let Some(p) = pending.as_mut() else { return };
    match p.kind {
        ScopeKind::Impl => {
            if p.seen_where {
                return;
            }
            match word {
                "for" => p.seen_for = true,
                "where" => p.seen_where = true,
                "dyn" | "mut" | "const" | "unsafe" | "async" => {}
                _ => {
                    // Keep the last path segment: `fmt::Display` resolves
                    // to `Display`, `Trait for Type` to `Type`.
                    if p.seen_for {
                        p.post_for = word.to_string();
                    } else {
                        p.pre_for = word.to_string();
                    }
                }
            }
        }
        _ => {
            if p.name.is_empty() && !is_decl_modifier(word) {
                p.name = word.to_string();
            }
        }
    }
}

/// Keywords that may sit between a header keyword and the item name.
fn is_decl_modifier(word: &str) -> bool {
    matches!(
        word,
        "pub" | "const" | "unsafe" | "async" | "extern" | "crate" | "in" | "where"
    )
}

impl Pending {
    fn resolved_name(&self) -> String {
        match self.kind {
            ScopeKind::Impl => {
                let n = if self.seen_for && !self.post_for.is_empty() {
                    &self.post_for
                } else {
                    &self.pre_for
                };
                if n.is_empty() {
                    "impl".to_string()
                } else {
                    n.clone()
                }
            }
            _ => {
                if self.name.is_empty() {
                    "_".to_string()
                } else {
                    self.name.clone()
                }
            }
        }
    }
}

/// Qualified name from the enclosing named scopes on the stack.
fn qual_name(scopes: &[Scope], stack: &[Open], name: &str) -> String {
    let mut parts: Vec<&str> = stack
        .iter()
        .filter_map(|o| o.scope.map(|i| scopes[i].name.as_str()))
        .collect();
    parts.push(name);
    parts.join("::")
}

/// The tokens the scope walk cares about.
enum Token<'a> {
    Ident(&'a str),
    Sym(char),
}

/// Tokenize one line of blanked code: identifiers, single symbol chars;
/// whitespace and numeric literals are skipped.
fn tokens(code: &str) -> impl Iterator<Item = Token<'_>> {
    let bytes = code.as_bytes();
    let mut i = 0usize;
    std::iter::from_fn(move || {
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_whitespace() {
                i += 1;
            } else if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                return Some(Token::Ident(&code[start..i]));
            } else if b.is_ascii_digit() {
                // Numeric literal (possibly with a type suffix): skip
                // whole so `0x80` does not produce an `x80` identifier.
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
            } else if b.is_ascii() {
                i += 1;
                return Some(Token::Sym(b as char));
            } else {
                // Multi-byte char (only survives blanking outside
                // literals in pathological sources): skip it.
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] & 0xc0 == 0x80 {
                    j += 1;
                }
                i = j;
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn map_of(src: &str) -> ScopeMap {
        ScopeMap::build(&lex(src))
    }

    #[test]
    fn free_functions_get_ranges() {
        let m = map_of("fn a() {\n    body();\n}\n\nfn b() { one_liner(); }\n");
        let fns: Vec<_> = m.functions().collect();
        assert_eq!(fns.len(), 2);
        assert_eq!(
            (fns[0].name.as_str(), fns[0].start_line, fns[0].end_line),
            ("a", 1, 3)
        );
        assert_eq!(
            (fns[1].name.as_str(), fns[1].start_line, fns[1].end_line),
            ("b", 5, 5)
        );
        assert_eq!(m.enclosing_fn(2).map(|s| s.name.as_str()), Some("a"));
        assert_eq!(m.enclosing_fn(4), None);
    }

    #[test]
    fn impl_methods_get_qualified_names() {
        let src = "impl CheckpointWriter {\n\
                   fn commit(self) {\n\
                   seal();\n\
                   }\n\
                   }\n\
                   impl fmt::Display for RuleId {\n\
                   fn fmt(&self) {}\n\
                   }\n";
        let m = map_of(src);
        let quals: Vec<&str> = m.functions().map(|f| f.qual_name.as_str()).collect();
        assert_eq!(quals, ["CheckpointWriter::commit", "RuleId::fmt"]);
    }

    #[test]
    fn impl_generics_do_not_shadow_the_type_name() {
        let m = map_of("impl<'a, T: Clone> Decoder<'a, T> {\n    fn any(&mut self) {}\n}\n");
        assert_eq!(
            m.functions().next().map(|f| f.qual_name.as_str()),
            Some("Decoder::any")
        );
    }

    #[test]
    fn multi_line_signature_belongs_to_the_fn() {
        let src = "fn f(\n    m: HashMap<u8, u8>,\n) -> usize {\n    m.len()\n}\n";
        let m = map_of(src);
        let f = m.enclosing_fn(2).expect("param line is inside f");
        assert_eq!(f.name, "f");
        assert_eq!((f.start_line, f.body_start, f.end_line), (1, 3, 5));
    }

    #[test]
    fn same_fn_refuses_cross_function_pairs() {
        let src = "fn a() {\n    x();\n}\nfn b() {\n    y();\n}\n";
        let m = map_of(src);
        assert!(m.same_fn(1, 2));
        assert!(!m.same_fn(3, 4)); // a's close brace vs b's header
        assert!(!m.same_fn(2, 5));
    }

    #[test]
    fn cfg_test_module_is_a_bounded_region() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { helper(); }\n\
                   }\n\
                   fn after_tests() { real(); }\n";
        let m = map_of(src);
        assert!(!m.in_test_scope(1));
        assert!(m.in_test_scope(4));
        // The old heuristic treated everything after `#[cfg(test)]` as
        // test code; the scope walk bounds it at the closing brace.
        assert!(!m.in_test_scope(6));
        let t = m.enclosing_fn(4).expect("t");
        assert!(t.is_test);
        assert_eq!(t.qual_name, "tests::t");
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "#[test]\nfn t() { x(); }\nfn lib() { y(); }\n";
        let m = map_of(src);
        assert!(m.in_test_scope(2));
        assert!(!m.in_test_scope(3));
    }

    #[test]
    fn closures_and_match_braces_stay_anonymous() {
        let src = "fn f(v: Vec<u8>) {\n\
                   let g = |x: u8| { x + 1 };\n\
                   match v.len() {\n\
                   0 => {}\n\
                   _ => { g(1); }\n\
                   }\n\
                   }\n";
        let m = map_of(src);
        assert_eq!(m.functions().count(), 1);
        for l in 1..=7 {
            assert_eq!(
                m.enclosing_fn(l).map(|s| s.name.as_str()),
                Some("f"),
                "line {l}"
            );
        }
    }

    #[test]
    fn fn_pointer_types_and_trait_bounds_are_not_headers() {
        let src = "fn apply(cb: fn(usize) -> usize, f: impl Fn() -> bool) -> usize {\n\
                   cb(0)\n\
                   }\n";
        let m = map_of(src);
        let fns: Vec<_> = m.functions().collect();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "apply");
    }

    #[test]
    fn trait_decls_without_bodies_open_no_scope() {
        let src = "trait T {\n\
                   fn required(&self) -> usize;\n\
                   fn provided(&self) -> usize { 1 }\n\
                   }\n";
        let m = map_of(src);
        let fns: Vec<_> = m.functions().collect();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].qual_name, "T::provided");
    }

    #[test]
    fn nested_fn_wins_innermost_attribution() {
        let src = "fn outer() {\n\
                   fn inner() {\n\
                   deep();\n\
                   }\n\
                   shallow();\n\
                   }\n";
        let m = map_of(src);
        assert_eq!(m.enclosing_fn(3).map(|s| s.name.as_str()), Some("inner"));
        assert_eq!(m.enclosing_fn(5).map(|s| s.name.as_str()), Some("outer"));
    }

    #[test]
    fn struct_braces_are_anonymous_and_fields_stay_outside_fns() {
        let src = "struct S {\n    map: HashMap<u8, u8>,\n}\nfn f() {}\n";
        let m = map_of(src);
        assert_eq!(m.enclosing_fn(2), None);
        assert_eq!(m.functions().count(), 1);
    }

    #[test]
    fn mod_decl_without_body_cancels_pending() {
        let src = "mod imported;\nfn f() { x(); }\n";
        let m = map_of(src);
        assert_eq!(m.scopes().len(), 1);
        assert_eq!(m.scopes()[0].name, "f");
    }
}
