//! Fixture-corpus and self-application tests for srclint.
//!
//! The corpus under `tests/fixtures/` is a miniature workspace of
//! known-bad (and known-good) snippets; these tests pin exactly which
//! findings the pass produces there. The final test turns the acceptance
//! criterion into a regression test: the real workspace must scan clean.

use certchain_srclint::rules::RuleId;
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn fixture_corpus_produces_expected_findings() {
    let report = certchain_srclint::check(&fixtures_root()).expect("scan fixtures");
    let got: Vec<(String, String, usize)> = report
        .findings
        .iter()
        .map(|f| (f.rule.name().to_string(), f.path.clone(), f.line))
        .collect();
    let want: Vec<(String, String, usize)> = [
        // Unguarded `pos + 1 + len`; the checked and guarded twins in
        // the same file stay silent.
        (
            RuleId::ParserCheckedArith,
            "crates/asn1/src/bad_length.rs",
            5,
        ),
        (
            RuleId::DetUnorderedIter,
            "crates/chainlab/src/bad_iter.rs",
            7,
        ),
        (
            RuleId::DetUnorderedIter,
            "crates/chainlab/src/bad_iter.rs",
            14,
        ),
        (RuleId::DetWallclock, "crates/cli/src/bad_serve_loop.rs", 9),
        // `.unwrap()` and `parts[0]` in the daemon surface; the
        // PANIC-OK'd `.expect(..)` at line 24 suppresses instead.
        (RuleId::NoPanicInDaemon, "crates/cli/src/serve.rs", 9),
        (RuleId::NoPanicInDaemon, "crates/cli/src/serve.rs", 14),
        // The three durability legs: manifest never fsynced, data after
        // the manifest commit, data unsynced before the commit.
        (
            RuleId::DurabilityManifestLast,
            "crates/colstore/src/bad_manifest.rs",
            14,
        ),
        (
            RuleId::DurabilityManifestLast,
            "crates/colstore/src/bad_manifest.rs",
            25,
        ),
        (
            RuleId::DurabilityManifestLast,
            "crates/colstore/src/bad_manifest.rs",
            34,
        ),
        (
            RuleId::DetThreadSensitivity,
            "crates/netsim/src/bad_threads.rs",
            4,
        ),
        // `panic!` in the HTTP surface; the unwrap inside the file's
        // `#[cfg(test)]` module stays silent.
        (RuleId::NoPanicInDaemon, "crates/obs/src/http.rs", 6),
        (RuleId::DetWallclock, "crates/report/src/bad_clock.rs", 4),
        (
            RuleId::UnsafeNeedsSafetyComment,
            "crates/trust/src/bad_unsafe.rs",
            4,
        ),
        (RuleId::NoSilentAllow, "crates/x509/src/bad_allow.rs", 3),
    ]
    .into_iter()
    .map(|(r, p, l)| (r.name().to_string(), p.to_string(), l))
    .collect();
    assert_eq!(got, want, "fixture corpus findings drifted");
    // The good twins (clean manifest protocols, vendored code skipped by
    // collection) contribute nothing.
    assert!(
        !got.iter()
            .any(|(_, p, _)| p.contains("good_manifest") || p.starts_with("vendor/")),
        "negative fixtures produced findings: {got:?}"
    );
}

#[test]
fn fixture_corpus_suppressions_are_honored_and_audited() {
    let report = certchain_srclint::check(&fixtures_root()).expect("scan fixtures");
    let suppressed: Vec<(String, usize)> = report
        .suppressed
        .iter()
        .map(|f| (f.path.clone(), f.line))
        .collect();
    assert!(
        suppressed.contains(&("crates/chainlab/src/ok_iter.rs".to_string(), 7)),
        "commutative marker must suppress the values() fold: {suppressed:?}"
    );
    assert!(
        suppressed.contains(&("crates/report/src/allowed_clock.rs".to_string(), 4)),
        "allowlist must suppress the SystemTime read: {suppressed:?}"
    );
    assert!(
        suppressed.contains(&("crates/cli/src/serve.rs".to_string(), 24)),
        "PANIC-OK marker must suppress the justified expect: {suppressed:?}"
    );
    // The deliberately-stale entry (rule already marker-suppressed) is
    // reported so dead allowlist weight cannot accumulate.
    assert_eq!(report.stale_allows.len(), 1);
    assert_eq!(report.stale_allows[0].rule, RuleId::DetUnorderedIter);
    // The fixture allowlist declares `# srclint-budget: 3`, matching the
    // three suppressed findings above exactly.
    assert_eq!(report.suppression_budget, Some(3));
    assert_eq!(report.budget_violation(), None);
}

#[test]
fn fixture_corpus_suppression_audit_lists_all_kinds() {
    let sites = certchain_srclint::list_suppressions(&fixtures_root()).expect("audit fixtures");
    let kinds: Vec<&str> = sites.iter().map(|s| s.kind).collect();
    assert!(kinds.contains(&"commutative-marker"));
    assert!(kinds.contains(&"allowlist"));
    assert!(kinds.contains(&"panic-ok-marker"));
    let panic_ok = sites
        .iter()
        .find(|s| s.kind == "panic-ok-marker")
        .expect("panic-ok site");
    assert_eq!(panic_ok.path, "crates/cli/src/serve.rs");
    assert_eq!(panic_ok.rule, "no-panic-in-daemon");
    assert!(panic_ok.active, "marker suppresses a live finding");
    let marker = sites
        .iter()
        .find(|s| s.kind == "commutative-marker")
        .expect("marker site");
    assert_eq!(marker.path, "crates/chainlab/src/ok_iter.rs");
    assert_eq!(marker.line, 6);
    assert!(marker.active, "marker suppresses a live finding");
    let stale = sites
        .iter()
        .find(|s| s.kind == "allowlist" && s.rule == "det-unordered-iter")
        .expect("stale allowlist site");
    assert!(!stale.active, "stale entries audit as inactive");
}

#[test]
fn fixture_corpus_json_report_round_trips() {
    let report = certchain_srclint::check(&fixtures_root()).expect("scan fixtures");
    let printed = report.to_json().to_pretty();
    let parsed = certchain_obs::json::parse(&printed).expect("valid JSON");
    let findings = parsed.get("findings").expect("findings array");
    match findings {
        certchain_obs::json::JsonValue::Arr(items) => {
            assert_eq!(items.len(), report.findings.len());
        }
        other => panic!("findings is not an array: {other:?}"),
    }
}

#[test]
fn real_workspace_scans_clean() {
    let report = certchain_srclint::check(&workspace_root()).expect("scan workspace");
    assert!(
        report.findings.is_empty(),
        "unsuppressed srclint findings in the workspace:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale srclint.allow entries: {:?}",
        report.stale_allows
    );
    assert_eq!(
        report.budget_violation(),
        None,
        "suppression count drifted from the declared srclint-budget; \
         update srclint.allow in the same change that adds/removes a \
         suppression"
    );
    // Sanity: the walk really covered the workspace.
    assert!(
        report.files_scanned > 100,
        "only {} files",
        report.files_scanned
    );
}
