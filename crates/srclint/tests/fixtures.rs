//! Fixture-corpus and self-application tests for srclint.
//!
//! The corpus under `tests/fixtures/` is a miniature workspace of
//! known-bad (and known-good) snippets; these tests pin exactly which
//! findings the pass produces there. The final test turns the acceptance
//! criterion into a regression test: the real workspace must scan clean.

use certchain_srclint::rules::RuleId;
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn fixture_corpus_produces_expected_findings() {
    let report = certchain_srclint::check(&fixtures_root()).expect("scan fixtures");
    let got: Vec<(String, String, usize)> = report
        .findings
        .iter()
        .map(|f| (f.rule.name().to_string(), f.path.clone(), f.line))
        .collect();
    let want: Vec<(String, String, usize)> = [
        (
            RuleId::DetUnorderedIter,
            "crates/chainlab/src/bad_iter.rs",
            7,
        ),
        (
            RuleId::DetUnorderedIter,
            "crates/chainlab/src/bad_iter.rs",
            14,
        ),
        (RuleId::DetWallclock, "crates/cli/src/bad_serve_loop.rs", 9),
        (
            RuleId::DetThreadSensitivity,
            "crates/netsim/src/bad_threads.rs",
            4,
        ),
        (RuleId::DetWallclock, "crates/report/src/bad_clock.rs", 4),
        (
            RuleId::UnsafeNeedsSafetyComment,
            "crates/trust/src/bad_unsafe.rs",
            4,
        ),
        (RuleId::NoSilentAllow, "crates/x509/src/bad_allow.rs", 3),
        (
            RuleId::UnsafeNeedsSafetyComment,
            "vendor/shim/src/lib.rs",
            11,
        ),
    ]
    .into_iter()
    .map(|(r, p, l)| (r.name().to_string(), p.to_string(), l))
    .collect();
    assert_eq!(got, want, "fixture corpus findings drifted");
}

#[test]
fn fixture_corpus_suppressions_are_honored_and_audited() {
    let report = certchain_srclint::check(&fixtures_root()).expect("scan fixtures");
    let suppressed: Vec<(String, usize)> = report
        .suppressed
        .iter()
        .map(|f| (f.path.clone(), f.line))
        .collect();
    assert!(
        suppressed.contains(&("crates/chainlab/src/ok_iter.rs".to_string(), 7)),
        "commutative marker must suppress the values() fold: {suppressed:?}"
    );
    assert!(
        suppressed.contains(&("crates/report/src/allowed_clock.rs".to_string(), 4)),
        "allowlist must suppress the SystemTime read: {suppressed:?}"
    );
    // The deliberately-stale entry (rule already marker-suppressed) is
    // reported so dead allowlist weight cannot accumulate.
    assert_eq!(report.stale_allows.len(), 1);
    assert_eq!(report.stale_allows[0].rule, RuleId::DetUnorderedIter);
}

#[test]
fn fixture_corpus_suppression_audit_lists_all_kinds() {
    let sites = certchain_srclint::list_suppressions(&fixtures_root()).expect("audit fixtures");
    let kinds: Vec<&str> = sites.iter().map(|s| s.kind).collect();
    assert!(kinds.contains(&"commutative-marker"));
    assert!(kinds.contains(&"allowlist"));
    let marker = sites
        .iter()
        .find(|s| s.kind == "commutative-marker")
        .expect("marker site");
    assert_eq!(marker.path, "crates/chainlab/src/ok_iter.rs");
    assert_eq!(marker.line, 6);
    assert!(marker.active, "marker suppresses a live finding");
    let stale = sites
        .iter()
        .find(|s| s.kind == "allowlist" && s.rule == "det-unordered-iter")
        .expect("stale allowlist site");
    assert!(!stale.active, "stale entries audit as inactive");
}

#[test]
fn fixture_corpus_json_report_round_trips() {
    let report = certchain_srclint::check(&fixtures_root()).expect("scan fixtures");
    let printed = report.to_json().to_pretty();
    let parsed = certchain_obs::json::parse(&printed).expect("valid JSON");
    let findings = parsed.get("findings").expect("findings array");
    match findings {
        certchain_obs::json::JsonValue::Arr(items) => {
            assert_eq!(items.len(), report.findings.len());
        }
        other => panic!("findings is not an array: {other:?}"),
    }
}

#[test]
fn real_workspace_scans_clean() {
    let report = certchain_srclint::check(&workspace_root()).expect("scan workspace");
    assert!(
        report.findings.is_empty(),
        "unsuppressed srclint findings in the workspace:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale srclint.allow entries: {:?}",
        report.stale_allows
    );
    // Sanity: the walk really covered the workspace.
    assert!(
        report.files_scanned > 100,
        "only {} files",
        report.files_scanned
    );
}
