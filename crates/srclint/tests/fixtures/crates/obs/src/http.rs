//! Fixture: `panic!` in the HTTP surface; test scopes are exempt.

pub fn parse_verb(request: &str) -> &str {
    match request.split(' ').next() {
        Some(verb) => verb,
        None => panic!("empty request line"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let verb: Option<&str> = Some("GET");
        assert_eq!(verb.unwrap(), "GET");
    }
}
