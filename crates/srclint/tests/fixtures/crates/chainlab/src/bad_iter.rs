//! Fixture: unordered iteration feeding ordered output (known-bad).

use std::collections::{HashMap, HashSet};

pub fn render(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in counts.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

pub fn first(set: &HashSet<u32>) -> Option<u32> {
    for v in set {
        return Some(*v);
    }
    None
}
