//! Fixture: justified / ordered iteration (known-good).

use std::collections::{BTreeMap, HashMap};

pub fn total(counts: &HashMap<String, u64>) -> u64 {
    // srclint: commutative -- order-insensitive sum
    counts.values().sum()
}

pub fn render(ordered: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in ordered.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
