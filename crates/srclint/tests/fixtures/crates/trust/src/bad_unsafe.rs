//! Fixture: unsafe with and without SAFETY comments.

pub fn undocumented(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}

pub fn documented(xs: &[u8]) -> u8 {
    // SAFETY: fixture callers always pass a non-empty slice.
    unsafe { *xs.get_unchecked(0) }
}
