//! Fixture: panic probes inside the serve daemon surface.
//!
//! The path matches `DAEMON_FILES`, so `no-panic-in-daemon` scans every
//! non-test line here.

use std::sync::Mutex;

pub fn handle_request(published: &Mutex<String>) -> String {
    let p = published.lock().unwrap();
    p.clone()
}

pub fn route(parts: &[&str]) -> &'static str {
    let head = parts[0];
    if head.is_empty() {
        "index"
    } else {
        "other"
    }
}

pub fn drain_queue(buf: &mut Vec<u8>) -> u8 {
    // PANIC-OK: callers only drain after a non-empty check; an empty pop is a programming error.
    buf.pop().expect("non-empty queue")
}

pub fn respond(code: u16) -> String {
    match code {
        200 => "ok".to_string(),
        _ => format!("error {code}"),
    }
}
