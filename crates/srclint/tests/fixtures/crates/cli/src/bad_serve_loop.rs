//! Known-bad fixture: a serve-style poll loop that times its cycles
//! with a raw `Instant::now` instead of going through the sanctioned
//! `certchain-obs` clock. The det-wallclock rule applies to CLI library
//! files too — `crates/obs/src/clock.rs` is the only site allowed to
//! read the wall clock.

pub fn watch_spool_forever() {
    loop {
        let cycle_started = std::time::Instant::now();
        fold_everything_new();
        let elapsed = cycle_started.elapsed();
        let _ = elapsed;
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}

fn fold_everything_new() {}
