//! Fixture: thread-count probe influencing output (known-bad).

pub fn shard_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
