//! Fixture: wall-clock read in library code (known-bad).

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
