//! Fixture: wall-clock read suppressed by the allowlist.

pub fn stamp_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
