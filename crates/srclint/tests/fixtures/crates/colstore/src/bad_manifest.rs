//! Fixture: durability ordering violations around the dataset manifest.
//!
//! Each function commits a manifest wrong in one of the three ways the
//! rule distinguishes; `good_manifest.rs` holds the clean twins.

use std::io::Write;
use std::path::Path;

const MANIFEST_FILE: &str = "dataset.json";

/// Manifest written but never fsynced.
pub fn commit_unsynced(dir: &Path, body: &[u8]) -> std::io::Result<()> {
    let manifest_path = dir.join(MANIFEST_FILE);
    std::fs::write(&manifest_path, body)?;
    Ok(())
}

/// Data file written after the manifest commit.
pub fn commit_reordered(dir: &Path, body: &[u8]) -> std::io::Result<()> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let mut file = std::fs::File::create(&manifest_path)?;
    file.write_all(body)?;
    file.sync_all()?;
    let data_path = dir.join("rows.dat");
    std::fs::write(&data_path, body)?;
    Ok(())
}

/// Data file not fsynced before the manifest commit.
pub fn commit_data_unsynced(dir: &Path, body: &[u8]) -> std::io::Result<()> {
    let data_path = dir.join("rows.dat");
    std::fs::write(&data_path, body)?;
    let manifest_path = dir.join(MANIFEST_FILE);
    let mut file = std::fs::File::create(&manifest_path)?;
    file.write_all(body)?;
    file.sync_all()?;
    Ok(())
}
