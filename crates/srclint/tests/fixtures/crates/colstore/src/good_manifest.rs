//! Fixture: manifest commit orderings the durability rule accepts.

use std::io::Write;
use std::path::Path;

const MANIFEST_FILE: &str = "dataset.json";

/// Data fsynced, then manifest written and fsynced: the full protocol.
pub fn commit(dir: &Path, body: &[u8]) -> std::io::Result<()> {
    let data_path = dir.join("rows.dat");
    let mut data = std::fs::File::create(&data_path)?;
    data.write_all(body)?;
    data.sync_all()?;
    let manifest_path = dir.join(MANIFEST_FILE);
    let mut file = std::fs::File::create(&manifest_path)?;
    file.write_all(body)?;
    file.sync_all()?;
    Ok(())
}

/// Delegated manifest store: ordering is checked here, the fsync of the
/// manifest itself is the delegate's job.
pub fn commit_delegated(
    dir: &Path,
    manifest: &dyn ManifestLike,
    body: &[u8],
) -> std::io::Result<()> {
    let data_path = dir.join("rows.dat");
    let mut data = std::fs::File::create(&data_path)?;
    data.write_all(body)?;
    data.sync_all()?;
    manifest.store(dir)?;
    Ok(())
}

pub trait ManifestLike {
    fn store(&self, dir: &Path) -> std::io::Result<()>;
}
