//! Fixture: silent allow attribute.

#[allow(dead_code)]
fn helper() {}

#[allow(dead_code)] // fixture: reason comment present
fn documented_helper() {}
