//! Fixture: length arithmetic on an untrusted parse path.

/// Attacker-controlled `len` folded into the cursor with no check.
pub fn tlv_end(pos: usize, len: usize) -> usize {
    pos + 1 + len
}

/// Checked arithmetic is the sanctioned form.
pub fn tlv_end_checked(pos: usize, len: usize) -> Option<usize> {
    pos.checked_add(1)?.checked_add(len)
}

/// An explicit bounds comparison earlier in the function vouches.
pub fn tlv_end_guarded(input: &[u8], pos: usize, len: usize) -> usize {
    if len > input.len() || pos > input.len() {
        return 0;
    }
    pos + len
}
