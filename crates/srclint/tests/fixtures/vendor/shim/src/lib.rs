//! Fixture: vendor crates are exempt from det-* rules but not from the
//! safety rules.

use std::collections::HashMap;

pub fn join(m: &HashMap<u32, u32>) -> u32 {
    m.keys().sum()
}

pub fn raw(p: *const u8) -> u8 {
    unsafe { *p }
}
