//! v2 segmented-format integrity: codec round-trips under arbitrary
//! values (empty, single-row, and full max-row segments included), zone
//! maps that never exclude a present value, the append-segment protocol
//! (tail-only shared-table growth, stable dictionary codes), and the
//! error suite mirroring the v1 reader tests — truncation, manifest
//! corruption, and unknown versions all fail `open` or decode with a
//! structured error.

use certchain_asn1::Asn1Time;
use certchain_colstore::codec::{self, Encoding};
use certchain_colstore::zonemap::ZoneMap;
use certchain_colstore::{
    Category, CategoryDigest, ColError, DatasetReader, DatasetWriter, MapMode, WriterOptions,
    MANIFEST_FILE, NONE_IDX, VERSION_V1,
};
use certchain_netsim::{SslRecord, TlsVersion, X509Record};
use certchain_x509::Fingerprint;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "certchain-segments-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ssl_row(i: u64) -> SslRecord {
    SslRecord {
        ts: Asn1Time::from_unix(1_700_000_000 + i),
        uid: format!("Cseg{i}"),
        orig_h: Ipv4Addr::new(10, 1, (i / 256) as u8, (i % 256) as u8),
        orig_p: 40_000 + (i % 1000) as u16,
        resp_h: Ipv4Addr::new(93, 184, 216, 34),
        resp_p: if i % 5 == 0 { 8443 } else { 443 },
        version: TlsVersion::Tls13,
        server_name: (i % 3 != 0).then(|| format!("host{}.example.edu", i % 7)),
        established: i % 4 != 0,
        cert_chain_fps: vec![Fingerprint([(i % 11) as u8; 32])],
    }
}

fn x509_row(i: u64) -> X509Record {
    X509Record {
        ts: Asn1Time::from_unix(1_700_000_000 + i),
        fingerprint: Fingerprint([(i % 11) as u8; 32]),
        cert_version: 3,
        serial: format!("{i:04X}"),
        subject: format!("CN=leaf {}", i % 11),
        issuer: "CN=Campus Issuing CA".into(),
        not_before: Asn1Time::from_unix(1_690_000_000),
        not_after: Asn1Time::from_unix(1_790_000_000),
        basic_constraints_ca: Some(false),
        path_len: None,
        san_dns: vec![format!("host{}.example.edu", i % 7)],
    }
}

fn write_v2(dir: &Path, ssl_rows: u64, x509_rows: u64, segment_rows: u64) {
    let mut writer = DatasetWriter::create_with(
        dir,
        WriterOptions {
            segment_rows,
            ..WriterOptions::default()
        },
    )
    .expect("create v2 store");
    for i in 0..x509_rows {
        writer.append_x509(&x509_row(i)).expect("append x509");
    }
    for i in 0..ssl_rows {
        writer.append_ssl(&ssl_row(i)).expect("append ssl");
    }
    writer.finish().expect("finish store");
}

proptest! {
    /// Arbitrary u64 segments round-trip through whatever encoding the
    /// deterministic selector picks, at every column width.
    #[test]
    fn codec_round_trips_arbitrary_segments(
        raw in proptest::collection::vec(any::<u64>(), 0..300),
        width_pick in 0usize..4,
    ) {
        let width = [1u8, 2, 4, 8][width_pick];
        let mask = if width == 8 { u64::MAX } else { (1u64 << (8 * width as u32)) - 1 };
        let values: Vec<u64> = raw.iter().map(|v| v & mask).collect();
        let (enc, param, bytes) = codec::encode(&values, width);
        let mut out = Vec::new();
        codec::decode_into(enc, param, width, values.len(), &bytes, &mut out).expect("decode");
        prop_assert_eq!(out, values);
    }

    /// Sorted segments (the delta candidate) and low-cardinality
    /// segments (the RLE candidate) round-trip and never beat plain by
    /// accident — encoded size is at most the plain size.
    #[test]
    fn codec_round_trips_sorted_and_repetitive_segments(
        deltas in proptest::collection::vec(0u64..1000, 1..200),
        runs in proptest::collection::vec((0u64..4, 1usize..20), 1..20),
    ) {
        let mut sorted = Vec::with_capacity(deltas.len());
        let mut cur = 1_700_000_000u64;
        for d in &deltas {
            cur += d;
            sorted.push(cur);
        }
        let (enc, param, bytes) = codec::encode(&sorted, 8);
        prop_assert!(bytes.len() <= sorted.len() * 8);
        let mut out = Vec::new();
        codec::decode_into(enc, param, 8, sorted.len(), &bytes, &mut out).expect("decode sorted");
        prop_assert_eq!(&out, &sorted);

        let mut repetitive = Vec::new();
        for (v, n) in &runs {
            repetitive.extend(std::iter::repeat_n(*v, *n));
        }
        let (enc, param, bytes) = codec::encode(&repetitive, 4);
        prop_assert!(bytes.len() <= repetitive.len() * 4);
        out.clear();
        codec::decode_into(enc, param, 4, repetitive.len(), &bytes, &mut out)
            .expect("decode repetitive");
        prop_assert_eq!(&out, &repetitive);
    }

    /// Dictionary-code segments (u32 codes with the NONE sentinel mixed
    /// in) round-trip and their presence bitmap never reports a present
    /// code as absent — the zone-map skip rule's one-sided guarantee.
    #[test]
    fn dictionary_code_segments_and_presence_bitmaps(
        raw in proptest::collection::vec(0u32..625, 0..300),
    ) {
        // Roughly one in five codes is the NONE sentinel.
        let codes: Vec<u32> = raw
            .iter()
            .map(|&c| if c >= 500 { NONE_IDX } else { c })
            .collect();
        let values: Vec<u64> = codes.iter().map(|&c| u64::from(c)).collect();
        let (enc, param, bytes) = codec::encode(&values, 4);
        let mut out = Vec::new();
        codec::decode_into(enc, param, 4, values.len(), &bytes, &mut out).expect("decode");
        prop_assert_eq!(&out, &values);
        let zone = ZoneMap::with_presence(&values);
        for &code in &codes {
            if code != NONE_IDX {
                prop_assert!(zone.may_contain_code(code), "present code {code} excluded");
            }
        }
    }
}

#[test]
fn single_and_max_row_segments_round_trip() {
    // segment_rows = 4: row counts straddling the band boundary exercise
    // empty tails, exactly-full bands, and single-row ragged tails.
    for rows in [1u64, 3, 4, 5, 8, 9] {
        let dir = scratch("bands");
        write_v2(&dir, rows, rows.min(5), 4);
        let reader = DatasetReader::open(&dir, MapMode::Auto).expect("open");
        assert_eq!(reader.format_version(), 2);
        let ssl: Vec<SslRecord> = reader
            .ssl_iter()
            .expect("iter")
            .collect::<Result<_, _>>()
            .expect("decode");
        assert_eq!(ssl.len(), rows as usize);
        for (i, rec) in ssl.iter().enumerate() {
            assert_eq!(rec, &ssl_row(i as u64), "row {i}");
        }
        let segs = reader.ssl_segments().expect("segments");
        assert_eq!(segs.segment_count() as u64, rows.div_ceil(4));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn zone_maps_match_segment_contents() {
    let dir = scratch("zones");
    write_v2(&dir, 40, 10, 8);
    let reader = DatasetReader::open(&dir, MapMode::Auto).expect("open");
    let segs = reader.ssl_segments().expect("segments");
    let mut scratch_buf = Vec::new();
    for seg in 0..segs.segment_count() {
        segs.resp_p
            .decode_into(seg, &mut scratch_buf)
            .expect("decode resp_p");
        let zone = &segs.resp_p.meta(seg).zone;
        assert_eq!(zone.min, *scratch_buf.iter().min().unwrap());
        assert_eq!(zone.max, *scratch_buf.iter().max().unwrap());
        segs.sni
            .decode_into(seg, &mut scratch_buf)
            .expect("decode sni");
        let zone = &segs.sni.meta(seg).zone;
        assert!(zone.bitmap.is_some(), "ssl.sni segments carry a bitmap");
        for &code in scratch_buf.iter().filter(|&&c| c != u64::from(NONE_IDX)) {
            assert!(zone.may_contain_code(code as u32));
        }
        // Timestamps are sorted and the band is wide: delta must win.
        assert_eq!(segs.ts.meta(seg).encoding, Encoding::Delta);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn append_open_extends_a_store_in_place() {
    let dir = scratch("append");
    write_v2(&dir, 10, 6, 8);
    let before_idx = std::fs::read(dir.join("strings.idx")).unwrap();
    let before_dat = std::fs::read(dir.join("strings.dat")).unwrap();

    let mut writer = DatasetWriter::append_open(&dir).expect("append_open");
    assert_eq!(writer.rows(), (10, 6));
    for i in 6..9 {
        writer.append_x509(&x509_row(i)).expect("append x509");
    }
    for i in 10..25 {
        writer.append_ssl(&ssl_row(i)).expect("append ssl");
    }
    let manifest = writer.finish().expect("finish append");
    assert_eq!((manifest.ssl_rows, manifest.x509_rows), (25, 9));

    // The pre-existing shared-table bytes are a strict prefix: appending
    // never rewrites what earlier readers already addressed.
    let after_idx = std::fs::read(dir.join("strings.idx")).unwrap();
    let after_dat = std::fs::read(dir.join("strings.dat")).unwrap();
    assert_eq!(&after_idx[..before_idx.len()], &before_idx[..]);
    assert_eq!(&after_dat[..before_dat.len()], &before_dat[..]);

    let reader = DatasetReader::open(&dir, MapMode::Auto).expect("open appended");
    let ssl: Vec<SslRecord> = reader
        .ssl_iter()
        .expect("iter")
        .collect::<Result<_, _>>()
        .expect("decode");
    let want: Vec<SslRecord> = (0..25).map(ssl_row).collect();
    assert_eq!(ssl, want);
    let x509: Vec<X509Record> = reader
        .x509_iter()
        .expect("iter")
        .collect::<Result<_, _>>()
        .expect("decode");
    let want: Vec<X509Record> = (0..9).map(x509_row).collect();
    assert_eq!(x509, want);

    // New rows start fresh segments: 10 rows at band 8 gave [8, 2]; the
    // append added [8, 7], never rewriting the ragged band in between.
    let bands: Vec<u64> = reader
        .manifest()
        .segments
        .get("ssl.ts")
        .unwrap()
        .iter()
        .map(|m| m.rows)
        .collect();
    assert_eq!(bands, vec![8, 2, 8, 7]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn append_open_refuses_v1_stores() {
    let dir = scratch("append-v1");
    let mut writer = DatasetWriter::create_with(
        &dir,
        WriterOptions {
            version: VERSION_V1,
            ..WriterOptions::default()
        },
    )
    .expect("create v1 store");
    writer.append_ssl(&ssl_row(0)).expect("append");
    writer.finish().expect("finish");
    let msg = match DatasetWriter::append_open(&dir) {
        Ok(_) => panic!("append_open must refuse a v1 store"),
        Err(e) => e.to_string(),
    };
    assert!(msg.contains("certchain compact"), "{msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_version_is_a_hard_error() {
    let dir = scratch("unknown");
    write_v2(&dir, 4, 2, 8);
    let path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&path).unwrap();
    let bumped = text.replace("\"version\": 2", "\"version\": 7");
    assert_ne!(text, bumped);
    std::fs::write(&path, bumped).unwrap();
    let msg = DatasetReader::open(&dir, MapMode::Auto)
        .unwrap_err()
        .to_string();
    assert!(msg.contains("expected 1 or 2"), "{msg}");
    assert!(msg.contains("found 7"), "{msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_encoded_column_fails_open() {
    let dir = scratch("trunc");
    write_v2(&dir, 20, 5, 8);
    let victim = dir.join("ssl.sni");
    let len = std::fs::metadata(&victim).unwrap().len();
    assert!(len > 1);
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&victim)
        .unwrap();
    f.set_len(len - 1).unwrap();
    drop(f);
    match DatasetReader::open(&dir, MapMode::Auto).unwrap_err() {
        ColError::Truncated {
            file,
            expected,
            found,
        } => {
            assert_eq!(file, "ssl.sni");
            assert_eq!(expected, len);
            assert_eq!(found, len - 1);
        }
        other => panic!("expected Truncated, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_segment_metadata_is_rejected() {
    // An unknown encoding name in any segment entry fails manifest parse.
    let dir = scratch("bad-enc");
    write_v2(&dir, 20, 5, 8);
    let path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&path).unwrap();
    let bad = text.replacen("\"enc\": \"delta\"", "\"enc\": \"bogus\"", 1);
    assert_ne!(
        text, bad,
        "a v2 store of sorted timestamps has a delta segment"
    );
    std::fs::write(&path, bad).unwrap();
    let msg = DatasetReader::open(&dir, MapMode::Auto)
        .unwrap_err()
        .to_string();
    assert!(msg.contains("bogus"), "{msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_segment_payload_fails_decode_not_panics() {
    let dir = scratch("bad-payload");
    write_v2(&dir, 20, 5, 8);
    // Flip bytes inside ssl.chain.idx: decoded end offsets go wild, and
    // either the final-offset validation at open or the bounds-checked
    // slicing at decode must reject them — never a panic, never silently
    // wrong rows.
    let victim = dir.join("ssl.chain.idx");
    let mut bytes = std::fs::read(&victim).unwrap();
    for b in bytes.iter_mut() {
        *b ^= 0xA5;
    }
    std::fs::write(&victim, bytes).unwrap();
    let outcome = DatasetReader::open(&dir, MapMode::Auto)
        .and_then(|r| r.ssl_iter()?.collect::<Result<Vec<_>, _>>());
    assert!(outcome.is_err(), "corrupted offsets must surface an error");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic per-record category: a pure function of the chain's
/// first fingerprint byte, so the same row always lands in the same
/// category regardless of which writer digested it.
fn cat_provider() -> certchain_colstore::write::CategoryProvider {
    Box::new(|rec: &SslRecord| {
        let idx = rec
            .cert_chain_fps
            .first()
            .map(|fp| fp.0[0] as usize % Category::all().len())
            .unwrap_or(0);
        Category::all()[idx]
    })
}

/// Digest the same rows the way a manifest digest would, for comparing
/// against what the store actually recorded.
fn digest_rows(rows: impl Iterator<Item = u64>) -> CategoryDigest {
    let provider = cat_provider();
    let mut f = provider;
    let mut digest = CategoryDigest::default();
    for i in rows {
        digest.add(f(&ssl_row(i)));
    }
    digest
}

#[test]
fn append_open_redigests_tail_bands_and_preserves_existing_digests() {
    let dir = scratch("append-digest");
    // Digest-bearing base store: 10 ssl rows at band 8 → digests [0..8), [8..10).
    let mut writer = DatasetWriter::create_with(
        &dir,
        WriterOptions {
            segment_rows: 8,
            ..WriterOptions::default()
        },
    )
    .expect("create store")
    .with_category_provider(cat_provider());
    for i in 0..6 {
        writer.append_x509(&x509_row(i)).expect("append x509");
    }
    for i in 0..10 {
        writer.append_ssl(&ssl_row(i)).expect("append ssl");
    }
    writer.finish().expect("finish base");
    let base = DatasetReader::open(&dir, MapMode::Auto).expect("open base");
    let base_digests = base.category_digests().expect("base is digested").to_vec();
    assert_eq!(base_digests.len(), 2);
    assert_eq!(base_digests[0], digest_rows(0..8));
    assert_eq!(base_digests[1], digest_rows(8..10));
    drop(base);

    // Append with a provider: the new tail bands [10..18), [18..25) get
    // fresh digests and the base bands' digests survive byte-for-byte.
    let mut writer = DatasetWriter::append_open(&dir)
        .expect("append_open")
        .with_category_provider(cat_provider());
    for i in 10..25 {
        writer.append_ssl(&ssl_row(i)).expect("append ssl");
    }
    writer.finish().expect("finish append");
    let reader = DatasetReader::open(&dir, MapMode::Auto).expect("open appended");
    let digests = reader
        .category_digests()
        .expect("appended store keeps digests");
    assert_eq!(digests.len(), 4, "one digest per ssl band");
    assert_eq!(
        &digests[..2],
        &base_digests[..],
        "existing digests preserved"
    );
    assert_eq!(digests[2], digest_rows(10..18));
    assert_eq!(digests[3], digest_rows(18..25));
    let rows: u64 = digests.iter().map(|d| d.rows()).sum();
    assert_eq!(rows, reader.ssl_rows(), "digests cover every ssl row");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn append_without_provider_drops_digest_coverage_atomically() {
    let dir = scratch("append-poison");
    let mut writer = DatasetWriter::create_with(
        &dir,
        WriterOptions {
            segment_rows: 8,
            ..WriterOptions::default()
        },
    )
    .expect("create store")
    .with_category_provider(cat_provider());
    for i in 0..10 {
        writer.append_ssl(&ssl_row(i)).expect("append ssl");
    }
    writer.finish().expect("finish base");
    assert!(DatasetReader::open(&dir, MapMode::Auto)
        .expect("open base")
        .category_digests()
        .is_some());

    // Appending a band without a provider poisons coverage: digests are
    // all-or-nothing, so the manifest must drop every digest rather than
    // keep a partial set the skip rule could misread.
    let mut writer = DatasetWriter::append_open(&dir).expect("append_open");
    for i in 10..12 {
        writer.append_ssl(&ssl_row(i)).expect("append ssl");
    }
    writer.finish().expect("finish append");
    assert!(
        DatasetReader::open(&dir, MapMode::Auto)
            .expect("open appended")
            .category_digests()
            .is_none(),
        "partial digest coverage must not survive"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn append_with_provider_never_repairs_a_digestless_store() {
    let dir = scratch("append-norepair");
    // Base store written without a provider: digest-less.
    write_v2(&dir, 10, 6, 8);
    assert!(DatasetReader::open(&dir, MapMode::Auto)
        .expect("open base")
        .category_digests()
        .is_none());

    // Appending with a provider cannot digest the bands already on disk,
    // so coverage stays absent — only `certchain compact` backfills.
    let mut writer = DatasetWriter::append_open(&dir)
        .expect("append_open")
        .with_category_provider(cat_provider());
    for i in 10..20 {
        writer.append_ssl(&ssl_row(i)).expect("append ssl");
    }
    writer.finish().expect("finish append");
    assert!(
        DatasetReader::open(&dir, MapMode::Auto)
            .expect("open appended")
            .category_digests()
            .is_none(),
        "appends must not fabricate digests for undigested bands"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
