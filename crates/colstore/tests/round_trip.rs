//! Columnar store integrity: arbitrary records must round-trip through
//! the on-disk format exactly (under both the mmap and the plain-read
//! mapping mode), and a damaged store — wrong manifest version, truncated
//! column file, corrupted dictionary — must fail `open` with a structured
//! error, never a panic and never silently wrong rows.

use certchain_asn1::Asn1Time;
use certchain_colstore::{
    ColError, DatasetReader, DatasetWriter, Manifest, MapMode, WriterOptions, MANIFEST_FILE,
    VERSION_V1,
};
use certchain_netsim::{SslRecord, TlsVersion, X509Record};
use certchain_x509::Fingerprint;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per call; callers clean up on success so
/// proptest shrink iterations don't collide or accumulate.
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "certchain-colstore-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn arb_ssl_record() -> impl Strategy<Value = SslRecord> {
    (
        0u64..2_000_000_000,
        "[A-Za-z0-9]{1,12}",
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<bool>(),
        proptest::option::of("[a-z0-9.-]{1,32}"),
        any::<bool>(),
        proptest::collection::vec(any::<[u8; 32]>(), 0..4),
    )
        .prop_map(
            |(ts, uid, orig, orig_p, resp, resp_p, v13, sni, established, fps)| SslRecord {
                ts: Asn1Time::from_unix(ts),
                uid: format!("C{uid}"),
                orig_h: Ipv4Addr::from(orig),
                orig_p,
                resp_h: Ipv4Addr::from(resp),
                resp_p,
                version: if v13 {
                    TlsVersion::Tls13
                } else {
                    TlsVersion::Tls12
                },
                server_name: sni,
                established,
                cert_chain_fps: fps.into_iter().map(Fingerprint).collect(),
            },
        )
}

fn arb_x509_record() -> impl Strategy<Value = X509Record> {
    (
        0u64..2_000_000_000,
        any::<[u8; 32]>(),
        1u64..4,
        "[0-9A-F]{2,16}",
        "CN=[a-zA-Z0-9 .\\-\u{e0}-\u{ff}]{1,24}",
        "CN=[a-zA-Z0-9 .\\-\u{e0}-\u{ff}]{1,24}",
        proptest::option::of(any::<bool>()),
        proptest::option::of(0u64..8),
        proptest::collection::vec("[a-z0-9.-]{1,24}", 0..3),
    )
        .prop_map(
            |(ts, fp, version, serial, subject, issuer, bc, path_len, san)| X509Record {
                ts: Asn1Time::from_unix(ts),
                fingerprint: Fingerprint(fp),
                cert_version: version,
                serial,
                subject,
                issuer,
                not_before: Asn1Time::from_unix(ts),
                not_after: Asn1Time::from_unix(ts + 86_400),
                basic_constraints_ca: bc,
                // pathLen only makes sense alongside basicConstraints.
                path_len: bc.and(path_len),
                san_dns: san,
            },
        )
}

/// Write both record kinds with the default (v2) format.
fn write_store(dir: &Path, ssl: &[SslRecord], x509: &[X509Record]) -> Manifest {
    write_store_with(dir, ssl, x509, WriterOptions::default())
}

/// Write both record kinds with explicit format options.
fn write_store_with(
    dir: &Path,
    ssl: &[SslRecord],
    x509: &[X509Record],
    opts: WriterOptions,
) -> Manifest {
    let mut writer = DatasetWriter::create_with(dir, opts).expect("create store");
    for rec in x509 {
        writer.append_x509(rec).expect("append x509");
    }
    for rec in ssl {
        writer.append_ssl(rec).expect("append ssl");
    }
    writer.finish().expect("finish store")
}

fn read_back(dir: &Path, mode: MapMode) -> (Vec<SslRecord>, Vec<X509Record>) {
    let reader = DatasetReader::open(dir, mode).expect("open store");
    let ssl = reader
        .ssl_iter()
        .expect("ssl columns")
        .collect::<Result<Vec<_>, _>>()
        .expect("ssl rows decode");
    let x509 = reader
        .x509_iter()
        .expect("x509 columns")
        .collect::<Result<Vec<_>, _>>()
        .expect("x509 rows decode");
    (ssl, x509)
}

proptest! {
    /// Arbitrary records survive the store byte-for-byte, whichever
    /// mapping mode serves the reads.
    #[test]
    fn records_round_trip(
        ssl in proptest::collection::vec(arb_ssl_record(), 0..16),
        x509 in proptest::collection::vec(arb_x509_record(), 0..16),
    ) {
        // Default v2, v2 with row bands small enough to force multiple
        // ragged segments, and legacy v1 all round-trip identically.
        for opts in [
            WriterOptions::default(),
            WriterOptions { segment_rows: 3, ..WriterOptions::default() },
            WriterOptions { version: VERSION_V1, ..WriterOptions::default() },
        ] {
            let dir = scratch("rt");
            let manifest = write_store_with(&dir, &ssl, &x509, opts);
            prop_assert_eq!(manifest.version, opts.version);
            prop_assert_eq!(manifest.ssl_rows, ssl.len() as u64);
            prop_assert_eq!(manifest.x509_rows, x509.len() as u64);
            for mode in [MapMode::Auto, MapMode::Read] {
                let (got_ssl, got_x509) = read_back(&dir, mode);
                prop_assert_eq!(&got_ssl, &ssl);
                prop_assert_eq!(&got_x509, &x509);
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Truncating any column file to any shorter length is caught at
    /// `open` — no decode path ever sees a short buffer.
    #[test]
    fn any_truncated_column_fails_open(
        ssl in proptest::collection::vec(arb_ssl_record(), 1..6),
        x509 in proptest::collection::vec(arb_x509_record(), 1..6),
        pick in any::<proptest::sample::Index>(),
        cut in any::<proptest::sample::Index>(),
    ) {
        let dir = scratch("trunc");
        write_store(&dir, &ssl, &x509);
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.file_name().is_some_and(|n| n != MANIFEST_FILE)
                    && std::fs::metadata(p).unwrap().len() > 0
            })
            .collect();
        files.sort();
        if !files.is_empty() {
            let victim = &files[pick.index(files.len())];
            let len = std::fs::metadata(victim).unwrap().len();
            let keep = cut.index(len as usize) as u64;
            let f = std::fs::OpenOptions::new().write(true).open(victim).unwrap();
            f.set_len(keep).unwrap();
            drop(f);
            let err = DatasetReader::open(&dir, MapMode::Auto).unwrap_err();
            let name = victim.file_name().unwrap().to_str().unwrap();
            prop_assert!(
                err.to_string().contains(name),
                "error should name {name}: {err}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn version_mismatch_is_a_clear_error() {
    let dir = scratch("version");
    write_store(&dir, &[], &[]);
    let manifest_path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&manifest_path).unwrap();
    let bumped = text.replace("\"version\": 2", "\"version\": 99");
    assert_ne!(text, bumped, "manifest must contain the version field");
    std::fs::write(&manifest_path, bumped).unwrap();
    let err = DatasetReader::open(&dir, MapMode::Auto).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("expected 1"), "{msg}");
    assert!(msg.contains("found 99"), "{msg}");
    assert!(msg.contains("certchain convert"), "{msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_fixed_width_column_reports_expected_and_found() {
    let dir = scratch("trunc-fixed");
    let ssl: Vec<SslRecord> = (0..4)
        .map(|i| SslRecord {
            ts: Asn1Time::from_unix(1_700_000_000 + i),
            uid: format!("Cuid{i}"),
            orig_h: Ipv4Addr::new(10, 0, 0, i as u8),
            orig_p: 40000 + i as u16,
            resp_h: Ipv4Addr::new(93, 184, 216, 34),
            resp_p: 443,
            version: TlsVersion::Tls13,
            server_name: Some("example.edu".into()),
            established: true,
            cert_chain_fps: vec![Fingerprint([i as u8; 32])],
        })
        .collect();
    // v1 stores raw fixed-width columns, so the truncation arithmetic
    // below (rows x width) only holds there; v2 length mismatches are
    // caught by the same manifest length check under `Truncated` too,
    // which `any_truncated_column_fails_open` exercises.
    let opts = WriterOptions {
        version: VERSION_V1,
        ..WriterOptions::default()
    };
    write_store_with(&dir, &ssl, &[], opts);
    // 4 rows x 8 bytes; keep only 3 rows' worth.
    let ts = dir.join("ssl.ts");
    let f = std::fs::OpenOptions::new().write(true).open(&ts).unwrap();
    f.set_len(24).unwrap();
    drop(f);
    match DatasetReader::open(&dir, MapMode::Auto).unwrap_err() {
        ColError::Truncated {
            file,
            expected,
            found,
        } => {
            assert!(file.contains("ssl.ts"), "{file}");
            assert_eq!(expected, 32);
            assert_eq!(found, 24);
        }
        other => panic!("expected Truncated, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_dictionary_offsets_fail_validation() {
    let dir = scratch("dict");
    let x509: Vec<X509Record> = (0..3)
        .map(|i| X509Record {
            ts: Asn1Time::from_unix(1_700_000_000),
            fingerprint: Fingerprint([i; 32]),
            cert_version: 3,
            serial: format!("{i:02X}"),
            subject: format!("CN=leaf {i}"),
            issuer: "CN=Issuer".into(),
            not_before: Asn1Time::from_unix(1_690_000_000),
            not_after: Asn1Time::from_unix(1_790_000_000),
            basic_constraints_ca: Some(false),
            path_len: None,
            san_dns: vec![format!("host{i}.example.edu")],
        })
        .collect();
    write_store(&dir, &[], &x509);
    // Make the first end-offset larger than the last: offsets must be
    // monotonically non-decreasing, so validation has to reject this.
    let idx_path = dir.join("strings.idx");
    let mut idx = std::fs::read(&idx_path).unwrap();
    assert!(idx.len() >= 16, "dictionary has at least two entries");
    idx[..8].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&idx_path, idx).unwrap();
    let err = DatasetReader::open(&dir, MapMode::Auto).unwrap_err();
    assert!(
        matches!(err, ColError::Corrupt(_) | ColError::Format(_)),
        "expected structured corruption error, got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_manifest_is_not_a_store() {
    let dir = scratch("missing");
    std::fs::create_dir_all(&dir).unwrap();
    let err = DatasetReader::open(&dir, MapMode::Auto).unwrap_err();
    assert!(err.to_string().contains(MANIFEST_FILE), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
