//! Read-only file mappings: real `mmap` on 64-bit unix, a positioned-read
//! (`pread`) fallback everywhere else.
//!
//! This module is the workspace's only sanctioned home for `unsafe`
//! (every block carries a `SAFETY:` comment, enforced by srclint's
//! `unsafe-needs-safety-comment` rule). The raw `mmap`/`munmap` symbols
//! come straight from the platform libc that std already links — no
//! external crate is involved.
//!
//! Soundness caveat, stated once here: a memory map observes the file as
//! it is *now*. If another process truncates a mapped column file, reads
//! can fault (`SIGBUS`) — the same exposure every mmap consumer accepts.
//! [`DatasetReader`](crate::DatasetReader) narrows the window by
//! validating every file's length against the manifest at open time, and
//! the store's writer never rewrites files in place (the manifest is
//! written last, after all columns are closed).

use crate::{io_ctx, ColResult};
use std::fs::File;
use std::path::Path;

/// How to bring a column file into memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapMode {
    /// `mmap` where supported (64-bit unix), otherwise positioned reads.
    #[default]
    Auto,
    /// Positioned-read fallback: the file is loaded into an owned buffer
    /// with `pread` (unix) or a plain sequential read (elsewhere). Works
    /// on every platform and never exposes the process to `SIGBUS`.
    Read,
}

/// One read-only mapped (or loaded) file.
pub struct Mapping {
    inner: Inner,
}

enum Inner {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mmap {
        ptr: *const u8,
        len: usize,
    },
    Owned(Vec<u8>),
}

// SAFETY: the mmap variant is a read-only, private mapping owned solely
// by this struct; the pointer is never handed out mutably and the pages
// are immutable for the mapping's lifetime, so sharing across threads is
// no different from sharing a `&[u8]`.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Send for Mapping {}
// SAFETY: as above — all access is through `&self` returning `&[u8]`.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Sync for Mapping {}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    // The platform libc is already linked by std on every unix target;
    // these declarations only name two of its exported symbols. `off_t`
    // is 64-bit on every `target_pointer_width = "64"` unix platform,
    // which the surrounding cfg guarantees.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl Mapping {
    /// Map (or load) `path` read-only.
    pub fn open(path: &Path, mode: MapMode) -> ColResult<Mapping> {
        let file =
            File::open(path).map_err(io_ctx(format!("opening column {}", path.display())))?;
        let len = file
            .metadata()
            .map_err(io_ctx(format!("stat {}", path.display())))?
            .len();
        let len = usize::try_from(len).map_err(|_| {
            crate::ColError::Corrupt(format!("column {} exceeds address space", path.display()))
        })?;
        match mode {
            MapMode::Auto => Self::mmap_or_read(path, &file, len),
            MapMode::Read => Ok(Mapping {
                inner: Inner::Owned(read_all(path, &file, len)?),
            }),
        }
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    fn mmap_or_read(path: &Path, file: &File, len: usize) -> ColResult<Mapping> {
        use std::os::fd::AsRawFd;
        if len == 0 {
            // mmap rejects zero-length maps; an empty column needs no map.
            return Ok(Mapping {
                inner: Inner::Owned(Vec::new()),
            });
        }
        // SAFETY: a fresh PROT_READ + MAP_PRIVATE mapping of `len` bytes
        // over a file descriptor we own and verified to be `len` bytes
        // long; no existing Rust memory is aliased (addr hint is null, so
        // the kernel picks unused address space).
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            // e.g. a filesystem without mmap support: fall back to pread.
            return Ok(Mapping {
                inner: Inner::Owned(read_all(path, file, len)?),
            });
        }
        Ok(Mapping {
            inner: Inner::Mmap {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    #[cfg(not(all(unix, target_pointer_width = "64")))]
    fn mmap_or_read(path: &Path, file: &File, len: usize) -> ColResult<Mapping> {
        Ok(Mapping {
            inner: Inner::Owned(read_all(path, file, len)?),
        })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            // SAFETY: `ptr` points at a live PROT_READ mapping of exactly
            // `len` bytes that is only unmapped in `Drop`, so the slice is
            // valid, initialized (file-backed pages), and immutable for
            // the lifetime of `&self`.
            Inner::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Owned(buf) => buf,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mmap { len, .. } => *len,
            Inner::Owned(buf) => buf.len(),
        }
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this mapping is a real `mmap` (false for the read
    /// fallback) — surfaced so metrics can report truly mapped bytes.
    pub fn is_mmap(&self) -> bool {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mmap { .. } => true,
            Inner::Owned(_) => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            // SAFETY: `ptr`/`len` describe exactly the region `mmap`
            // returned in `open`, unmapped exactly once (Drop runs once
            // and nothing else calls munmap).
            Inner::Mmap { ptr, len } => unsafe {
                sys::munmap(*ptr as *mut std::ffi::c_void, *len);
            },
            Inner::Owned(_) => {}
        }
    }
}

/// The portable loader: `pread` the whole file on unix (no seek-state
/// races, mirrors how the mmap path addresses the file), plain buffered
/// read elsewhere.
fn read_all(path: &Path, file: &File, len: usize) -> ColResult<Vec<u8>> {
    let mut buf = vec![0u8; len];
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(&mut buf, 0)
            .map_err(io_ctx(format!("pread {}", path.display())))?;
    }
    #[cfg(not(unix))]
    {
        use std::io::Read;
        let mut file = file;
        file.read_exact(&mut buf)
            .map_err(io_ctx(format!("reading {}", path.display())))?;
    }
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("colstore-map-{name}-{}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn mmap_and_read_agree() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = tmpfile("agree", &payload);
        let mapped = Mapping::open(&path, MapMode::Auto).unwrap();
        let read = Mapping::open(&path, MapMode::Read).unwrap();
        assert_eq!(mapped.bytes(), &payload[..]);
        assert_eq!(read.bytes(), &payload[..]);
        assert!(!read.is_mmap());
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(mapped.is_mmap());
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmpfile("empty", b"");
        for mode in [MapMode::Auto, MapMode::Read] {
            let m = Mapping::open(&path, mode).unwrap();
            assert!(m.is_empty());
            assert_eq!(m.bytes(), b"");
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = std::env::temp_dir().join("colstore-map-definitely-missing");
        assert!(matches!(
            Mapping::open(&path, MapMode::Auto),
            Err(crate::ColError::Io(_, _))
        ));
    }
}
