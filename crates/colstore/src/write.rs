//! Streaming columnar writer.
//!
//! Rows are appended one at a time. In v1 mode each fixed-width field
//! streams raw little-endian bytes to its own buffered column file; in
//! v2 mode (the default) fixed-width fields buffer logical values until a
//! whole row band of `segment_rows` rows is complete, then the band is
//! encoded ([`crate::codec`]), zone-mapped ([`crate::zonemap`]), and
//! flushed as one segment. Var-length data files (`*.dat`) stream raw in
//! both modes, so writer memory stays O(distinct strings + distinct
//! fingerprints + segment_rows) regardless of row count.
//!
//! The shared tables (`strings.*`, `fps.dat`) and the manifest are
//! written by [`DatasetWriter::finish`] — the manifest last, so a crashed
//! write never leaves a manifest pointing at incomplete columns.
//!
//! [`DatasetWriter::append_open`] reopens an existing v2 store for
//! appending: new rows start a fresh segment, the dictionary and
//! fingerprint tables grow by their tails only (both are append-only by
//! construction), and the cost of an append is O(new data), not O(store).

use crate::category::{Category, CategoryDigest};
use crate::codec;
use crate::dict::{Dict, DictBuilder};
use crate::manifest::{Manifest, VERSION_V1};
use crate::segment::{SegmentMeta, DEFAULT_SEGMENT_ROWS};
use crate::zonemap::ZoneMap;
use crate::{io_ctx, ColError, ColResult, COLUMNS, VERSION};
use certchain_netsim::handshake::TlsVersion;
use certchain_netsim::zeek::record::{SslRecord, X509Record};
use certchain_x509::Fingerprint;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Wire encoding of [`TlsVersion`] in the `ssl.version` column.
pub fn encode_tls_version(v: TlsVersion) -> u8 {
    match v {
        TlsVersion::Tls12 => 0,
        TlsVersion::Tls13 => 1,
    }
}

/// Decode the `ssl.version` column byte.
pub fn decode_tls_version(b: u8) -> ColResult<TlsVersion> {
    match b {
        0 => Ok(TlsVersion::Tls12),
        1 => Ok(TlsVersion::Tls13),
        other => Err(ColError::Corrupt(format!(
            "unknown ssl.version byte {other}"
        ))),
    }
}

/// basicConstraints flag bits in the `x509.flags` column.
pub const FLAG_BC_PRESENT: u8 = 1 << 0;
/// CA bit (meaningful only when [`FLAG_BC_PRESENT`] is set).
pub const FLAG_BC_CA: u8 = 1 << 1;
/// pathLen-present bit.
pub const FLAG_PATH_LEN: u8 = 1 << 2;

/// Zone-map statistics ride in the JSON manifest, whose numbers are
/// IEEE f64 — values at or past 2^53 would round. Nothing the writer
/// stores gets near that (epoch seconds, byte offsets, u32 codes), but
/// the invariant is enforced, not assumed.
const JSON_SAFE_MAX: u64 = 1 << 53;

struct Col {
    name: &'static str,
    file: BufWriter<File>,
    bytes: u64,
}

impl Col {
    fn put(&mut self, bytes: &[u8]) -> ColResult<()> {
        self.file
            .write_all(bytes)
            .map_err(io_ctx(format!("writing column {}", self.name)))?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }
}

// Streamed-column indices into `DatasetWriter::cols`, in STREAMED order.
const SSL_TS: usize = 0;
const SSL_UID_IDX: usize = 1;
const SSL_UID_DAT: usize = 2;
const SSL_ORIG_H: usize = 3;
const SSL_ORIG_P: usize = 4;
const SSL_RESP_H: usize = 5;
const SSL_RESP_P: usize = 6;
const SSL_VERSION: usize = 7;
const SSL_SNI: usize = 8;
const SSL_ESTABLISHED: usize = 9;
const SSL_CHAIN_IDX: usize = 10;
const SSL_CHAIN_DAT: usize = 11;
const X509_TS: usize = 12;
const X509_FP: usize = 13;
const X509_VERSION: usize = 14;
const X509_SERIAL: usize = 15;
const X509_SUBJECT: usize = 16;
const X509_ISSUER: usize = 17;
const X509_NOT_BEFORE: usize = 18;
const X509_NOT_AFTER: usize = 19;
const X509_FLAGS: usize = 20;
const X509_PATH_LEN: usize = 21;
const X509_SAN_IDX: usize = 22;
const X509_SAN_DAT: usize = 23;

/// Every per-row column, streamed to disk as rows arrive. The shared
/// tables (`strings.*`, `fps.dat`) are not in this list — they are
/// buffered in memory and written at finish.
const STREAMED: &[&str] = &[
    "ssl.ts",
    "ssl.uid.idx",
    "ssl.uid.dat",
    "ssl.orig_h",
    "ssl.orig_p",
    "ssl.resp_h",
    "ssl.resp_p",
    "ssl.version",
    "ssl.sni",
    "ssl.established",
    "ssl.chain.idx",
    "ssl.chain.dat",
    "x509.ts",
    "x509.fp",
    "x509.version",
    "x509.serial",
    "x509.subject",
    "x509.issuer",
    "x509.not_before",
    "x509.not_after",
    "x509.flags",
    "x509.path_len",
    "x509.san.idx",
    "x509.san.dat",
];

/// Fixed-width members of the ssl table, flushed together as one segment
/// band so every ssl column shares identical row banding.
const SSL_FIXED: &[usize] = &[
    SSL_TS,
    SSL_UID_IDX,
    SSL_ORIG_H,
    SSL_ORIG_P,
    SSL_RESP_H,
    SSL_RESP_P,
    SSL_VERSION,
    SSL_SNI,
    SSL_ESTABLISHED,
    SSL_CHAIN_IDX,
];

/// Fixed-width members of the x509 table.
const X509_FIXED: &[usize] = &[
    X509_TS,
    X509_FP,
    X509_VERSION,
    X509_SERIAL,
    X509_SUBJECT,
    X509_ISSUER,
    X509_NOT_BEFORE,
    X509_NOT_AFTER,
    X509_FLAGS,
    X509_PATH_LEN,
    X509_SAN_IDX,
];

/// Format options for [`DatasetWriter::create_with`].
#[derive(Debug, Clone, Copy)]
pub struct WriterOptions {
    /// Store format version: [`VERSION`] (segmented, default) or
    /// [`VERSION_V1`] (legacy raw columns).
    pub version: u64,
    /// Rows per segment in v2 stores (ignored for v1).
    pub segment_rows: u64,
}

impl Default for WriterOptions {
    fn default() -> WriterOptions {
        WriterOptions {
            version: VERSION,
            segment_rows: DEFAULT_SEGMENT_ROWS,
        }
    }
}

/// State restored by [`DatasetWriter::append_open`]: how much of each
/// shared table already exists on disk, so finish writes only tails.
struct AppendBase {
    dict_entries: usize,
    dict_bytes: u64,
    fp_entries: usize,
}

/// Computes one ssl row's structural chain [`Category`]. Classification
/// needs trust material colstore does not hold, so the closure comes
/// from the caller (see `certchain-chainlab`'s category oracle).
pub type CategoryProvider = Box<dyn FnMut(&SslRecord) -> Category>;

/// Streaming writer for one columnar store directory.
pub struct DatasetWriter {
    dir: PathBuf,
    version: u64,
    segment_rows: u64,
    cols: Vec<Col>,
    widths: Vec<Option<u64>>,
    pending: Vec<Vec<u64>>,
    metas: Vec<Vec<SegmentMeta>>,
    dict: DictBuilder,
    fp_lookup: HashMap<Fingerprint, u32>,
    fp_order: Vec<Fingerprint>,
    ssl_rows: u64,
    x509_rows: u64,
    append_base: Option<AppendBase>,
    /// Per-row category hook; when attached (and the store is v2), every
    /// flushed ssl band gets a [`CategoryDigest`] in the manifest.
    category_provider: Option<CategoryProvider>,
    /// Categories of the ssl rows buffered in the current band.
    cat_pending: Vec<Category>,
    /// Digests of the ssl bands flushed so far (carried ones first).
    cat_digests: Vec<CategoryDigest>,
    /// Whether digest coverage is still complete. Digests are
    /// all-or-nothing per store: one ssl band flushed without a provider
    /// poisons coverage and `finish` drops the digests entirely, so the
    /// reader never sees partially digested stores.
    digests_live: bool,
    /// Whether `append_open` found digests to carry forward.
    carried_digests: bool,
}

fn width_of(name: &str) -> Option<u64> {
    COLUMNS
        .iter()
        .find(|(n, _)| *n == name)
        .and_then(|(_, w)| *w)
}

impl DatasetWriter {
    /// Create `store_dir` (and parents) and open every column file,
    /// using the current default format ([`WriterOptions::default`]).
    pub fn create(store_dir: &Path) -> ColResult<DatasetWriter> {
        DatasetWriter::create_with(store_dir, WriterOptions::default())
    }

    /// Create a store with explicit format options — the v1 escape hatch
    /// for fixtures and migration tests, and the knob for segment sizing.
    pub fn create_with(store_dir: &Path, opts: WriterOptions) -> ColResult<DatasetWriter> {
        if opts.version != VERSION_V1 && opts.version != VERSION {
            return Err(ColError::Format(format!(
                "cannot write store version {} (supported: {VERSION_V1} and {VERSION})",
                opts.version
            )));
        }
        if opts.version == VERSION && opts.segment_rows == 0 {
            return Err(ColError::Format(
                "segment_rows must be at least 1 for a v2 store".into(),
            ));
        }
        std::fs::create_dir_all(store_dir)
            .map_err(io_ctx(format!("creating {}", store_dir.display())))?;
        let mut cols = Vec::with_capacity(STREAMED.len());
        for name in STREAMED {
            let path = store_dir.join(name);
            let file = File::create(&path)
                .map_err(io_ctx(format!("creating column {}", path.display())))?;
            cols.push(Col {
                name,
                file: BufWriter::new(file),
                bytes: 0,
            });
        }
        Ok(DatasetWriter {
            dir: store_dir.to_path_buf(),
            version: opts.version,
            segment_rows: opts.segment_rows,
            cols,
            widths: STREAMED.iter().map(|n| width_of(n)).collect(),
            pending: vec![Vec::new(); STREAMED.len()],
            metas: vec![Vec::new(); STREAMED.len()],
            dict: DictBuilder::new(),
            fp_lookup: HashMap::new(),
            fp_order: Vec::new(),
            ssl_rows: 0,
            x509_rows: 0,
            append_base: None,
            category_provider: None,
            cat_pending: Vec::new(),
            cat_digests: Vec::new(),
            digests_live: true,
            carried_digests: false,
        })
    }

    /// Attach a per-row category provider: every ssl band this writer
    /// flushes from here on gets a per-segment [`CategoryDigest`] in the
    /// manifest, which the analyze fold uses to skip whole segments
    /// under `--filter-category`. Attach it before the first ssl row —
    /// coverage is all-or-nothing, so a band appended earlier without a
    /// provider makes `finish` drop every digest. No-op on v1 stores.
    pub fn with_category_provider(mut self, provider: CategoryProvider) -> DatasetWriter {
        self.category_provider = Some(provider);
        self
    }

    /// Reopen an existing **v2** store for appending. New rows begin a
    /// fresh segment (earlier bands are never rewritten, so the last
    /// band of each table may be ragged), the dictionary and fingerprint
    /// tables are extended in place, and `finish` rewrites only the
    /// manifest plus the appended bytes — O(new data).
    ///
    /// v1 stores cannot be appended to; run `certchain compact` first.
    pub fn append_open(store_dir: &Path) -> ColResult<DatasetWriter> {
        let manifest = Manifest::load(store_dir)?;
        if manifest.version != VERSION {
            return Err(ColError::Format(format!(
                "append requires a v{VERSION} segmented store, found v{} \
                 (run `certchain compact` to migrate it first)",
                manifest.version
            )));
        }
        // A crashed previous append leaves column files longer than the
        // manifest records; refuse to stack more data on top of that.
        for (name, _) in COLUMNS {
            let path = store_dir.join(name);
            let found = std::fs::metadata(&path)
                .map_err(io_ctx(format!("reading {}", path.display())))?
                .len();
            let expected = *manifest.columns.get(*name).expect("manifest is complete");
            if found != expected {
                return Err(ColError::Truncated {
                    file: name.to_string(),
                    expected,
                    found,
                });
            }
        }
        // Rebuild the in-memory dictionary and fingerprint tables from
        // disk; both assign indices in first-seen order and are
        // append-only, so existing codes stay stable.
        let idx_bytes =
            std::fs::read(store_dir.join("strings.idx")).map_err(io_ctx("reading strings.idx"))?;
        let dat_bytes =
            std::fs::read(store_dir.join("strings.dat")).map_err(io_ctx("reading strings.dat"))?;
        let existing = Dict::new(&idx_bytes, &dat_bytes)?;
        let mut dict = DictBuilder::new();
        for i in 0..existing.len() {
            dict.intern(existing.get(i as u32)?)?;
        }
        let fp_bytes =
            std::fs::read(store_dir.join("fps.dat")).map_err(io_ctx("reading fps.dat"))?;
        if fp_bytes.len() % 32 != 0 {
            return Err(ColError::Corrupt(format!(
                "fps.dat length {} is not a multiple of 32",
                fp_bytes.len()
            )));
        }
        let mut fp_lookup = HashMap::new();
        let mut fp_order = Vec::with_capacity(fp_bytes.len() / 32);
        for chunk in fp_bytes.chunks_exact(32) {
            let fp = Fingerprint(chunk.try_into().expect("32-byte chunk"));
            fp_lookup.insert(fp, fp_order.len() as u32);
            fp_order.push(fp);
        }
        let mut cols = Vec::with_capacity(STREAMED.len());
        for name in STREAMED {
            let path = store_dir.join(name);
            let file = OpenOptions::new()
                .append(true)
                .open(&path)
                .map_err(io_ctx(format!("opening column {}", path.display())))?;
            cols.push(Col {
                name,
                file: BufWriter::new(file),
                bytes: *manifest.columns.get(*name).expect("manifest is complete"),
            });
        }
        let metas: Vec<Vec<SegmentMeta>> = STREAMED
            .iter()
            .map(|name| manifest.segments.get(*name).cloned().unwrap_or_default())
            .collect();
        // Digest coverage carries across an append only if the existing
        // store was fully digested (or holds no ssl bands yet): appends
        // can extend complete coverage but never repair a gap.
        let ssl_bands = metas[SSL_TS].len();
        let carried_digests = manifest.category_digests.is_some();
        Ok(DatasetWriter {
            category_provider: None,
            cat_pending: Vec::new(),
            cat_digests: manifest.category_digests.clone().unwrap_or_default(),
            digests_live: carried_digests || ssl_bands == 0,
            carried_digests,
            dir: store_dir.to_path_buf(),
            version: VERSION,
            segment_rows: manifest.segment_rows,
            cols,
            widths: STREAMED.iter().map(|n| width_of(n)).collect(),
            pending: vec![Vec::new(); STREAMED.len()],
            metas,
            append_base: Some(AppendBase {
                dict_entries: dict.len() as usize,
                dict_bytes: dat_bytes.len() as u64,
                fp_entries: fp_order.len(),
            }),
            dict,
            fp_lookup,
            fp_order,
            ssl_rows: manifest.ssl_rows,
            x509_rows: manifest.x509_rows,
        })
    }

    fn fp_index(&mut self, fp: &Fingerprint) -> ColResult<u32> {
        if let Some(&idx) = self.fp_lookup.get(fp) {
            return Ok(idx);
        }
        let idx = u32::try_from(self.fp_order.len())
            .map_err(|_| ColError::Corrupt("fingerprint table exceeds u32 index space".into()))?;
        self.fp_lookup.insert(*fp, idx);
        self.fp_order.push(*fp);
        Ok(idx)
    }

    /// Route one fixed-width value: raw bytes in v1, pending buffer in v2.
    fn put_fixed(&mut self, i: usize, v: u64) -> ColResult<()> {
        let width = self.widths[i].expect("fixed-width column") as usize;
        if self.version == VERSION_V1 {
            let bytes = v.to_le_bytes();
            self.cols[i].put(&bytes[..width])
        } else {
            self.pending[i].push(v);
            Ok(())
        }
    }

    /// Encode and flush one whole row band of `group`'s pending values.
    fn flush_band(&mut self, group: &[usize]) -> ColResult<()> {
        for &i in group {
            let values = std::mem::take(&mut self.pending[i]);
            let width = self.widths[i].expect("fixed-width column") as u8;
            let (encoding, param, payload) = codec::encode(&values, width);
            let zone = if self.cols[i].name == "ssl.sni" {
                ZoneMap::with_presence(&values)
            } else {
                ZoneMap::of(&values)
            };
            if zone.max >= JSON_SAFE_MAX {
                return Err(ColError::Corrupt(format!(
                    "column {}: value {} exceeds the JSON-safe integer range",
                    self.cols[i].name, zone.max
                )));
            }
            self.cols[i].put(&payload)?;
            self.metas[i].push(SegmentMeta {
                rows: values.len() as u64,
                bytes: payload.len() as u64,
                encoding,
                param,
                zone,
            });
        }
        Ok(())
    }

    /// Flush one ssl row band and settle its category digest: digested
    /// when a provider is attached, coverage poisoned when not.
    fn flush_ssl_band(&mut self) -> ColResult<()> {
        let rows = self.pending[SSL_TS].len();
        self.flush_band(SSL_FIXED)?;
        if self.category_provider.is_some() {
            debug_assert_eq!(self.cat_pending.len(), rows);
            let mut digest = CategoryDigest::default();
            for &cat in &self.cat_pending {
                digest.add(cat);
            }
            self.cat_pending.clear();
            if self.digests_live {
                self.cat_digests.push(digest);
            }
        } else {
            self.digests_live = false;
            self.cat_digests.clear();
        }
        Ok(())
    }

    /// Append one `ssl.log` row.
    pub fn append_ssl(&mut self, rec: &SslRecord) -> ColResult<()> {
        if self.version == VERSION {
            if let Some(provider) = self.category_provider.as_mut() {
                let cat = provider(rec);
                self.cat_pending.push(cat);
            }
        }
        let sni = self.dict.intern_opt(rec.server_name.as_deref())?;
        let mut chain = Vec::with_capacity(rec.cert_chain_fps.len() * 4);
        for fp in &rec.cert_chain_fps {
            chain.extend_from_slice(&self.fp_index(fp)?.to_le_bytes());
        }
        self.put_fixed(SSL_TS, rec.ts.unix_secs())?;
        self.cols[SSL_UID_DAT].put(rec.uid.as_bytes())?;
        let uid_end = self.cols[SSL_UID_DAT].bytes;
        self.put_fixed(SSL_UID_IDX, uid_end)?;
        self.put_fixed(SSL_ORIG_H, u64::from(u32::from(rec.orig_h)))?;
        self.put_fixed(SSL_ORIG_P, u64::from(rec.orig_p))?;
        self.put_fixed(SSL_RESP_H, u64::from(u32::from(rec.resp_h)))?;
        self.put_fixed(SSL_RESP_P, u64::from(rec.resp_p))?;
        self.put_fixed(SSL_VERSION, u64::from(encode_tls_version(rec.version)))?;
        self.put_fixed(SSL_SNI, u64::from(sni))?;
        self.put_fixed(SSL_ESTABLISHED, u64::from(rec.established))?;
        self.cols[SSL_CHAIN_DAT].put(&chain)?;
        let chain_end = self.cols[SSL_CHAIN_DAT].bytes;
        self.put_fixed(SSL_CHAIN_IDX, chain_end)?;
        self.ssl_rows += 1;
        if self.version == VERSION && self.pending[SSL_TS].len() as u64 == self.segment_rows {
            self.flush_ssl_band()?;
        }
        Ok(())
    }

    /// Append one `x509.log` row.
    pub fn append_x509(&mut self, rec: &X509Record) -> ColResult<()> {
        let fp = self.fp_index(&rec.fingerprint)?;
        let serial = self.dict.intern(&rec.serial)?;
        let subject = self.dict.intern(&rec.subject)?;
        let issuer = self.dict.intern(&rec.issuer)?;
        let mut san = Vec::with_capacity(rec.san_dns.len() * 4);
        for name in &rec.san_dns {
            san.extend_from_slice(&self.dict.intern(name)?.to_le_bytes());
        }
        let mut flags = 0u8;
        if let Some(ca) = rec.basic_constraints_ca {
            flags |= FLAG_BC_PRESENT;
            if ca {
                flags |= FLAG_BC_CA;
            }
        }
        if rec.path_len.is_some() {
            flags |= FLAG_PATH_LEN;
        }
        self.put_fixed(X509_TS, rec.ts.unix_secs())?;
        self.put_fixed(X509_FP, u64::from(fp))?;
        self.put_fixed(X509_VERSION, rec.cert_version)?;
        self.put_fixed(X509_SERIAL, u64::from(serial))?;
        self.put_fixed(X509_SUBJECT, u64::from(subject))?;
        self.put_fixed(X509_ISSUER, u64::from(issuer))?;
        self.put_fixed(X509_NOT_BEFORE, rec.not_before.unix_secs())?;
        self.put_fixed(X509_NOT_AFTER, rec.not_after.unix_secs())?;
        self.put_fixed(X509_FLAGS, u64::from(flags))?;
        self.put_fixed(X509_PATH_LEN, rec.path_len.unwrap_or(0))?;
        self.cols[X509_SAN_DAT].put(&san)?;
        let san_end = self.cols[X509_SAN_DAT].bytes;
        self.put_fixed(X509_SAN_IDX, san_end)?;
        self.x509_rows += 1;
        if self.version == VERSION && self.pending[X509_TS].len() as u64 == self.segment_rows {
            self.flush_band(X509_FIXED)?;
        }
        Ok(())
    }

    /// Rows appended so far, `(ssl, x509)`.
    pub fn rows(&self) -> (u64, u64) {
        (self.ssl_rows, self.x509_rows)
    }

    /// Flush all columns, write the shared tables, then the manifest.
    pub fn finish(mut self) -> ColResult<Manifest> {
        if self.version == VERSION {
            if !self.pending[SSL_TS].is_empty() {
                self.flush_ssl_band()?;
            }
            if !self.pending[X509_TS].is_empty() {
                self.flush_band(X509_FIXED)?;
            }
        }
        let mut columns = std::collections::BTreeMap::new();
        for col in &mut self.cols {
            col.file
                .flush()
                .map_err(io_ctx(format!("flushing column {}", col.name)))?;
            col.file
                .get_ref()
                .sync_all()
                .map_err(io_ctx(format!("syncing column {}", col.name)))?;
            columns.insert(col.name.to_string(), col.bytes);
        }
        match &self.append_base {
            None => {
                let (idx, dat) = self.dict.to_files();
                let mut fps = Vec::with_capacity(self.fp_order.len() * 32);
                for fp in &self.fp_order {
                    fps.extend_from_slice(&fp.0);
                }
                for (name, bytes) in [
                    ("strings.idx", &idx),
                    ("strings.dat", &dat),
                    ("fps.dat", &fps),
                ] {
                    let path = self.dir.join(name);
                    write_durable(&path, bytes)?;
                    columns.insert(name.to_string(), bytes.len() as u64);
                }
            }
            Some(base) => {
                let (idx_tail, dat_tail) =
                    self.dict.to_files_from(base.dict_entries, base.dict_bytes);
                let mut fps_tail = Vec::new();
                for fp in &self.fp_order[base.fp_entries..] {
                    fps_tail.extend_from_slice(&fp.0);
                }
                for (name, tail) in [
                    ("strings.idx", &idx_tail),
                    ("strings.dat", &dat_tail),
                    ("fps.dat", &fps_tail),
                ] {
                    let path = self.dir.join(name);
                    let mut file = OpenOptions::new()
                        .append(true)
                        .open(&path)
                        .map_err(io_ctx(format!("opening {}", path.display())))?;
                    file.write_all(tail)
                        .map_err(io_ctx(format!("appending to {}", path.display())))?;
                    file.sync_all()
                        .map_err(io_ctx(format!("syncing {}", path.display())))?;
                }
                columns.insert("strings.idx".into(), self.dict.len() * 8);
                columns.insert(
                    "strings.dat".into(),
                    base.dict_bytes + dat_tail.len() as u64,
                );
                columns.insert("fps.dat".into(), self.fp_order.len() as u64 * 32);
            }
        }
        debug_assert_eq!(columns.len(), COLUMNS.len());
        let mut segments = std::collections::BTreeMap::new();
        if self.version == VERSION {
            for (i, name) in STREAMED.iter().enumerate() {
                if self.widths[i].is_some() {
                    segments.insert(name.to_string(), std::mem::take(&mut self.metas[i]));
                }
            }
        }
        // Digests ship only when coverage is complete AND something
        // asked for them (a provider, or digests carried from the store
        // being appended to). A digest-less store stays digest-less.
        let category_digests = (self.version == VERSION
            && self.digests_live
            && (self.category_provider.is_some() || self.carried_digests))
            .then(|| std::mem::take(&mut self.cat_digests));
        let manifest = Manifest {
            version: self.version,
            ssl_rows: self.ssl_rows,
            x509_rows: self.x509_rows,
            dict_entries: self.dict.len(),
            fp_entries: self.fp_order.len() as u64,
            columns,
            segment_rows: if self.version == VERSION {
                self.segment_rows
            } else {
                0
            },
            segments,
            category_digests,
        };
        manifest.store(&self.dir)?;
        Ok(manifest)
    }
}

/// Create `path` with `bytes` and fsync it before returning, so the data
/// is on disk before the manifest that references it is committed.
fn write_durable(path: &std::path::Path, bytes: &[u8]) -> ColResult<()> {
    let mut file = File::create(path).map_err(io_ctx(format!("creating {}", path.display())))?;
    file.write_all(bytes)
        .map_err(io_ctx(format!("writing {}", path.display())))?;
    file.sync_all()
        .map_err(io_ctx(format!("syncing {}", path.display())))?;
    Ok(())
}
