//! Streaming columnar writer.
//!
//! Rows are appended one at a time and each field streams to its own
//! buffered column file, so writer memory stays O(distinct strings +
//! distinct fingerprints) regardless of row count. The shared tables
//! (`strings.*`, `fps.dat`) and the manifest are written by
//! [`DatasetWriter::finish`] — the manifest last, so a crashed write
//! never leaves a manifest pointing at incomplete columns.

use crate::dict::DictBuilder;
use crate::manifest::Manifest;
use crate::{io_ctx, ColError, ColResult, COLUMNS, VERSION};
use certchain_netsim::handshake::TlsVersion;
use certchain_netsim::zeek::record::{SslRecord, X509Record};
use certchain_x509::Fingerprint;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Wire encoding of [`TlsVersion`] in the `ssl.version` column.
pub fn encode_tls_version(v: TlsVersion) -> u8 {
    match v {
        TlsVersion::Tls12 => 0,
        TlsVersion::Tls13 => 1,
    }
}

/// Decode the `ssl.version` column byte.
pub fn decode_tls_version(b: u8) -> ColResult<TlsVersion> {
    match b {
        0 => Ok(TlsVersion::Tls12),
        1 => Ok(TlsVersion::Tls13),
        other => Err(ColError::Corrupt(format!(
            "unknown ssl.version byte {other}"
        ))),
    }
}

/// basicConstraints flag bits in the `x509.flags` column.
pub const FLAG_BC_PRESENT: u8 = 1 << 0;
/// CA bit (meaningful only when [`FLAG_BC_PRESENT`] is set).
pub const FLAG_BC_CA: u8 = 1 << 1;
/// pathLen-present bit.
pub const FLAG_PATH_LEN: u8 = 1 << 2;

struct Col {
    name: &'static str,
    file: BufWriter<File>,
    bytes: u64,
}

impl Col {
    fn put(&mut self, bytes: &[u8]) -> ColResult<()> {
        self.file
            .write_all(bytes)
            .map_err(io_ctx(format!("writing column {}", self.name)))?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }
}

// Streamed-column indices into `DatasetWriter::cols`, in STREAMED order.
const SSL_TS: usize = 0;
const SSL_UID_IDX: usize = 1;
const SSL_UID_DAT: usize = 2;
const SSL_ORIG_H: usize = 3;
const SSL_ORIG_P: usize = 4;
const SSL_RESP_H: usize = 5;
const SSL_RESP_P: usize = 6;
const SSL_VERSION: usize = 7;
const SSL_SNI: usize = 8;
const SSL_ESTABLISHED: usize = 9;
const SSL_CHAIN_IDX: usize = 10;
const SSL_CHAIN_DAT: usize = 11;
const X509_TS: usize = 12;
const X509_FP: usize = 13;
const X509_VERSION: usize = 14;
const X509_SERIAL: usize = 15;
const X509_SUBJECT: usize = 16;
const X509_ISSUER: usize = 17;
const X509_NOT_BEFORE: usize = 18;
const X509_NOT_AFTER: usize = 19;
const X509_FLAGS: usize = 20;
const X509_PATH_LEN: usize = 21;
const X509_SAN_IDX: usize = 22;
const X509_SAN_DAT: usize = 23;

/// Every per-row column, streamed to disk as rows arrive. The shared
/// tables (`strings.*`, `fps.dat`) are not in this list — they are
/// buffered in memory and written at finish.
const STREAMED: &[&str] = &[
    "ssl.ts",
    "ssl.uid.idx",
    "ssl.uid.dat",
    "ssl.orig_h",
    "ssl.orig_p",
    "ssl.resp_h",
    "ssl.resp_p",
    "ssl.version",
    "ssl.sni",
    "ssl.established",
    "ssl.chain.idx",
    "ssl.chain.dat",
    "x509.ts",
    "x509.fp",
    "x509.version",
    "x509.serial",
    "x509.subject",
    "x509.issuer",
    "x509.not_before",
    "x509.not_after",
    "x509.flags",
    "x509.path_len",
    "x509.san.idx",
    "x509.san.dat",
];

/// Streaming writer for one columnar store directory.
pub struct DatasetWriter {
    dir: PathBuf,
    cols: Vec<Col>,
    dict: DictBuilder,
    fp_lookup: HashMap<Fingerprint, u32>,
    fp_order: Vec<Fingerprint>,
    ssl_rows: u64,
    x509_rows: u64,
}

impl DatasetWriter {
    /// Create `store_dir` (and parents) and open every column file.
    pub fn create(store_dir: &Path) -> ColResult<DatasetWriter> {
        std::fs::create_dir_all(store_dir)
            .map_err(io_ctx(format!("creating {}", store_dir.display())))?;
        let mut cols = Vec::with_capacity(STREAMED.len());
        for name in STREAMED {
            let path = store_dir.join(name);
            let file = File::create(&path)
                .map_err(io_ctx(format!("creating column {}", path.display())))?;
            cols.push(Col {
                name,
                file: BufWriter::new(file),
                bytes: 0,
            });
        }
        Ok(DatasetWriter {
            dir: store_dir.to_path_buf(),
            cols,
            dict: DictBuilder::new(),
            fp_lookup: HashMap::new(),
            fp_order: Vec::new(),
            ssl_rows: 0,
            x509_rows: 0,
        })
    }

    fn fp_index(&mut self, fp: &Fingerprint) -> ColResult<u32> {
        if let Some(&idx) = self.fp_lookup.get(fp) {
            return Ok(idx);
        }
        let idx = u32::try_from(self.fp_order.len())
            .map_err(|_| ColError::Corrupt("fingerprint table exceeds u32 index space".into()))?;
        self.fp_lookup.insert(*fp, idx);
        self.fp_order.push(*fp);
        Ok(idx)
    }

    /// Append one `ssl.log` row.
    pub fn append_ssl(&mut self, rec: &SslRecord) -> ColResult<()> {
        let sni = self.dict.intern_opt(rec.server_name.as_deref())?;
        let mut chain = Vec::with_capacity(rec.cert_chain_fps.len() * 4);
        for fp in &rec.cert_chain_fps {
            chain.extend_from_slice(&self.fp_index(fp)?.to_le_bytes());
        }
        let c = &mut self.cols;
        c[SSL_TS].put(&rec.ts.unix_secs().to_le_bytes())?;
        c[SSL_UID_DAT].put(rec.uid.as_bytes())?;
        let uid_end = c[SSL_UID_DAT].bytes;
        c[SSL_UID_IDX].put(&uid_end.to_le_bytes())?;
        c[SSL_ORIG_H].put(&u32::from(rec.orig_h).to_le_bytes())?;
        c[SSL_ORIG_P].put(&rec.orig_p.to_le_bytes())?;
        c[SSL_RESP_H].put(&u32::from(rec.resp_h).to_le_bytes())?;
        c[SSL_RESP_P].put(&rec.resp_p.to_le_bytes())?;
        c[SSL_VERSION].put(&[encode_tls_version(rec.version)])?;
        c[SSL_SNI].put(&sni.to_le_bytes())?;
        c[SSL_ESTABLISHED].put(&[u8::from(rec.established)])?;
        c[SSL_CHAIN_DAT].put(&chain)?;
        let chain_end = c[SSL_CHAIN_DAT].bytes;
        c[SSL_CHAIN_IDX].put(&chain_end.to_le_bytes())?;
        self.ssl_rows += 1;
        Ok(())
    }

    /// Append one `x509.log` row.
    pub fn append_x509(&mut self, rec: &X509Record) -> ColResult<()> {
        let fp = self.fp_index(&rec.fingerprint)?;
        let serial = self.dict.intern(&rec.serial)?;
        let subject = self.dict.intern(&rec.subject)?;
        let issuer = self.dict.intern(&rec.issuer)?;
        let mut san = Vec::with_capacity(rec.san_dns.len() * 4);
        for name in &rec.san_dns {
            san.extend_from_slice(&self.dict.intern(name)?.to_le_bytes());
        }
        let mut flags = 0u8;
        if let Some(ca) = rec.basic_constraints_ca {
            flags |= FLAG_BC_PRESENT;
            if ca {
                flags |= FLAG_BC_CA;
            }
        }
        if rec.path_len.is_some() {
            flags |= FLAG_PATH_LEN;
        }
        let c = &mut self.cols;
        c[X509_TS].put(&rec.ts.unix_secs().to_le_bytes())?;
        c[X509_FP].put(&fp.to_le_bytes())?;
        c[X509_VERSION].put(&rec.cert_version.to_le_bytes())?;
        c[X509_SERIAL].put(&serial.to_le_bytes())?;
        c[X509_SUBJECT].put(&subject.to_le_bytes())?;
        c[X509_ISSUER].put(&issuer.to_le_bytes())?;
        c[X509_NOT_BEFORE].put(&rec.not_before.unix_secs().to_le_bytes())?;
        c[X509_NOT_AFTER].put(&rec.not_after.unix_secs().to_le_bytes())?;
        c[X509_FLAGS].put(&[flags])?;
        c[X509_PATH_LEN].put(&rec.path_len.unwrap_or(0).to_le_bytes())?;
        c[X509_SAN_DAT].put(&san)?;
        let san_end = c[X509_SAN_DAT].bytes;
        c[X509_SAN_IDX].put(&san_end.to_le_bytes())?;
        self.x509_rows += 1;
        Ok(())
    }

    /// Rows appended so far, `(ssl, x509)`.
    pub fn rows(&self) -> (u64, u64) {
        (self.ssl_rows, self.x509_rows)
    }

    /// Flush all columns, write the shared tables, then the manifest.
    pub fn finish(mut self) -> ColResult<Manifest> {
        let mut columns = std::collections::BTreeMap::new();
        for col in &mut self.cols {
            col.file
                .flush()
                .map_err(io_ctx(format!("flushing column {}", col.name)))?;
            columns.insert(col.name.to_string(), col.bytes);
        }
        let (idx, dat) = self.dict.to_files();
        let mut fps = Vec::with_capacity(self.fp_order.len() * 32);
        for fp in &self.fp_order {
            fps.extend_from_slice(&fp.0);
        }
        for (name, bytes) in [
            ("strings.idx", &idx),
            ("strings.dat", &dat),
            ("fps.dat", &fps),
        ] {
            let path = self.dir.join(name);
            std::fs::write(&path, bytes).map_err(io_ctx(format!("writing {}", path.display())))?;
            columns.insert(name.to_string(), bytes.len() as u64);
        }
        debug_assert_eq!(columns.len(), COLUMNS.len());
        let manifest = Manifest {
            version: VERSION,
            ssl_rows: self.ssl_rows,
            x509_rows: self.x509_rows,
            dict_entries: self.dict.len(),
            fp_entries: self.fp_order.len() as u64,
            columns,
        };
        manifest.store(&self.dir)?;
        Ok(manifest)
    }
}
