//! The mmap-backed dataset reader.
//!
//! [`DatasetReader::open`] validates the manifest and then checks, for
//! every column file, that the on-disk byte length is exactly what the
//! manifest recorded (and consistent with the row counts for fixed-width
//! columns) — truncation is diagnosed up front, before any row is
//! decoded.
//!
//! Both format versions are served transparently: v1 stores expose the
//! zero-copy [`SslColumns`]/[`X509Columns`] views, v2 stores the
//! segmented [`SslSegments`]/[`X509Segments`] views (whole-segment
//! decode into caller-owned scratch buffers, zone maps for skipping).
//! The record iterators ([`DatasetReader::ssl_iter`] /
//! [`DatasetReader::x509_iter`]) work on either version, so stream-based
//! consumers and the v1→v2 `certchain compact` migration never care
//! which layout is underneath. Only *unknown* versions are an error, and
//! that error comes from the manifest check before any column is mapped.

use crate::dict::Dict;
use crate::manifest::{Manifest, VERSION_V1};
use crate::map::{MapMode, Mapping};
use crate::segment::SegmentMeta;
use crate::write::{decode_tls_version, FLAG_BC_CA, FLAG_BC_PRESENT, FLAG_PATH_LEN};
use crate::{ColError, ColResult, COLUMNS, VERSION};
use certchain_asn1::Asn1Time;
use certchain_netsim::handshake::TlsVersion;
use certchain_netsim::zeek::record::{SslRecord, X509Record};
use certchain_x509::Fingerprint;
use std::net::Ipv4Addr;
use std::path::Path;

// Indices into `DatasetReader::maps`, in `COLUMNS` order.
const STRINGS_IDX: usize = 0;
const STRINGS_DAT: usize = 1;
const FPS_DAT: usize = 2;
const SSL_TS: usize = 3;
const SSL_UID_IDX: usize = 4;
const SSL_UID_DAT: usize = 5;
const SSL_ORIG_H: usize = 6;
const SSL_ORIG_P: usize = 7;
const SSL_RESP_H: usize = 8;
const SSL_RESP_P: usize = 9;
const SSL_VERSION: usize = 10;
const SSL_SNI: usize = 11;
const SSL_ESTABLISHED: usize = 12;
const SSL_CHAIN_IDX: usize = 13;
const SSL_CHAIN_DAT: usize = 14;
const X509_TS: usize = 15;
const X509_FP: usize = 16;
const X509_VERSION: usize = 17;
const X509_SERIAL: usize = 18;
const X509_SUBJECT: usize = 19;
const X509_ISSUER: usize = 20;
const X509_NOT_BEFORE: usize = 21;
const X509_NOT_AFTER: usize = 22;
const X509_FLAGS: usize = 23;
const X509_PATH_LEN: usize = 24;
const X509_SAN_IDX: usize = 25;
const X509_SAN_DAT: usize = 26;

/// Precomputed byte/row start of one segment within its column.
#[derive(Debug, Clone, Copy)]
struct SegStart {
    byte: u64,
    row: u64,
}

/// An open, validated columnar store.
pub struct DatasetReader {
    manifest: Manifest,
    maps: Vec<Mapping>,
    /// Per-column segment starts (parallel to `maps`); empty for v1
    /// stores, var-length data files, and shared tables.
    seg_starts: Vec<Vec<SegStart>>,
}

impl std::fmt::Debug for DatasetReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatasetReader")
            .field("version", &self.manifest.version)
            .field("ssl_rows", &self.manifest.ssl_rows)
            .field("x509_rows", &self.manifest.x509_rows)
            .field("bytes_mapped", &self.bytes_mapped())
            .finish_non_exhaustive()
    }
}

impl DatasetReader {
    /// Open `store_dir`, validating manifest and column lengths.
    pub fn open(store_dir: &Path, mode: MapMode) -> ColResult<DatasetReader> {
        let manifest = Manifest::load(store_dir)?;
        let mut maps = Vec::with_capacity(COLUMNS.len());
        let mut seg_starts = vec![Vec::new(); COLUMNS.len()];
        for (at, (name, width)) in COLUMNS.iter().enumerate() {
            let expected = *manifest
                .columns
                .get(*name)
                .expect("from_json checked every column is present");
            let map = Mapping::open(&store_dir.join(name), mode)?;
            let found = map.len() as u64;
            if found != expected {
                return Err(ColError::Truncated {
                    file: name.to_string(),
                    expected,
                    found,
                });
            }
            if let Some(width) = width {
                if manifest.version == VERSION_V1 {
                    let rows = crate::rows_for(name, manifest.ssl_rows, manifest.x509_rows)
                        .expect("fixed-width columns are table columns");
                    if found != rows * width {
                        return Err(ColError::Corrupt(format!(
                            "column {name}: {found} bytes is not {rows} rows x {width} bytes"
                        )));
                    }
                } else {
                    // Segment byte/row sums were validated against the
                    // file length at manifest parse; record each
                    // segment's start for O(1) addressing here.
                    let metas = manifest
                        .segments
                        .get(*name)
                        .expect("validated in from_json");
                    let mut byte = 0u64;
                    let mut row = 0u64;
                    let starts = &mut seg_starts[at];
                    starts.reserve(metas.len());
                    for meta in metas {
                        starts.push(SegStart { byte, row });
                        byte += meta.bytes;
                        row += meta.rows;
                    }
                }
            }
            maps.push(map);
        }
        let reader = DatasetReader {
            manifest,
            maps,
            seg_starts,
        };
        reader.validate_tables()?;
        Ok(reader)
    }

    /// Cross-file consistency checks that the per-file length check
    /// cannot see: shared-table sizes and var-length final offsets.
    fn validate_tables(&self) -> ColResult<()> {
        let m = &self.manifest;
        let checks: &[(&str, u64, u64)] = &[
            (
                "strings.idx",
                self.maps[STRINGS_IDX].len() as u64,
                m.dict_entries * 8,
            ),
            (
                "fps.dat",
                self.maps[FPS_DAT].len() as u64,
                m.fp_entries * 32,
            ),
        ];
        for (name, found, want) in checks {
            if found != want {
                return Err(ColError::Corrupt(format!(
                    "table {name}: {found} bytes, expected {want}"
                )));
            }
        }
        // Dictionary offsets must be monotonic and end at the data length;
        // `Dict::new` checks all of that, so a corrupted index is rejected
        // here instead of surfacing mid-scan from a row accessor.
        Dict::new(
            self.maps[STRINGS_IDX].bytes(),
            self.maps[STRINGS_DAT].bytes(),
        )?;
        // Each var-length pair: the last index entry must equal the data
        // length (and an empty table implies an empty data file). In a v2
        // store the index column is encoded, so the final offset comes
        // from the last segment's zone max (end offsets are
        // non-decreasing, so the max is the last entry).
        for (idx, dat, unit) in [
            (SSL_UID_IDX, SSL_UID_DAT, 1u64),
            (SSL_CHAIN_IDX, SSL_CHAIN_DAT, 4),
            (X509_SAN_IDX, X509_SAN_DAT, 4),
        ] {
            let dat_len = self.maps[dat].len() as u64;
            let end = if m.version == VERSION_V1 {
                let idx_bytes = self.maps[idx].bytes();
                match idx_bytes.len() {
                    0 => 0,
                    n => u64::from_le_bytes(idx_bytes[n - 8..].try_into().expect("8-byte slice")),
                }
            } else {
                m.segments
                    .get(COLUMNS[idx].0)
                    .expect("validated in from_json")
                    .last()
                    .map_or(0, |meta| meta.zone.max)
            };
            if end != dat_len {
                return Err(ColError::Corrupt(format!(
                    "column {}: final offset {end} != data length {dat_len}",
                    COLUMNS[idx].0
                )));
            }
            if dat_len % unit != 0 {
                return Err(ColError::Corrupt(format!(
                    "column {}: length {dat_len} is not a multiple of {unit}",
                    COLUMNS[dat].0
                )));
            }
        }
        Ok(())
    }

    /// The validated manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// On-disk format version (1 or 2).
    pub fn format_version(&self) -> u64 {
        self.manifest.version
    }

    /// Rows in the ssl table.
    pub fn ssl_rows(&self) -> u64 {
        self.manifest.ssl_rows
    }

    /// Rows in the x509 table.
    pub fn x509_rows(&self) -> u64 {
        self.manifest.x509_rows
    }

    /// Per-ssl-segment chain-category digests, when the store carries
    /// them (`None` on v1 stores and on v2 stores written without a
    /// category provider — those segments are simply never skipped by a
    /// category filter).
    pub fn category_digests(&self) -> Option<&[crate::category::CategoryDigest]> {
        self.manifest.category_digests.as_deref()
    }

    /// Total bytes brought into memory across all columns (mapped or
    /// loaded, depending on [`MapMode`]).
    pub fn bytes_mapped(&self) -> u64 {
        self.maps.iter().map(|m| m.len() as u64).sum()
    }

    /// Find a string's dictionary code, if the store interned it.
    /// Linear in dictionary size — meant for resolving a predicate once
    /// per analysis, not for per-row use.
    pub fn dict_lookup(&self, s: &str) -> ColResult<Option<u32>> {
        let dict = self.dict()?;
        for i in 0..dict.len() {
            let i = i as u32;
            if dict.get(i)? == s {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    fn require_version(&self, want: u64, view: &str) -> ColResult<()> {
        if self.manifest.version == want {
            Ok(())
        } else {
            Err(ColError::Format(format!(
                "{view} requires a v{want} store, this one is v{} \
                 (dispatch on DatasetReader::format_version)",
                self.manifest.version
            )))
        }
    }

    /// Zero-copy column view over a **v1** ssl table.
    pub fn ssl(&self) -> ColResult<SslColumns<'_>> {
        self.require_version(VERSION_V1, "SslColumns")?;
        Ok(SslColumns {
            rows: self.manifest.ssl_rows,
            ts: self.maps[SSL_TS].bytes(),
            uid_idx: self.maps[SSL_UID_IDX].bytes(),
            uid_dat: self.maps[SSL_UID_DAT].bytes(),
            orig_h: self.maps[SSL_ORIG_H].bytes(),
            orig_p: self.maps[SSL_ORIG_P].bytes(),
            resp_h: self.maps[SSL_RESP_H].bytes(),
            resp_p: self.maps[SSL_RESP_P].bytes(),
            version: self.maps[SSL_VERSION].bytes(),
            sni: self.maps[SSL_SNI].bytes(),
            established: self.maps[SSL_ESTABLISHED].bytes(),
            chain_idx: self.maps[SSL_CHAIN_IDX].bytes(),
            chain_dat: self.maps[SSL_CHAIN_DAT].bytes(),
            dict: self.dict()?,
            fps: self.maps[FPS_DAT].bytes(),
        })
    }

    /// Zero-copy column view over a **v1** x509 table.
    pub fn x509(&self) -> ColResult<X509Columns<'_>> {
        self.require_version(VERSION_V1, "X509Columns")?;
        Ok(X509Columns {
            rows: self.manifest.x509_rows,
            ts: self.maps[X509_TS].bytes(),
            fp: self.maps[X509_FP].bytes(),
            version: self.maps[X509_VERSION].bytes(),
            serial: self.maps[X509_SERIAL].bytes(),
            subject: self.maps[X509_SUBJECT].bytes(),
            issuer: self.maps[X509_ISSUER].bytes(),
            not_before: self.maps[X509_NOT_BEFORE].bytes(),
            not_after: self.maps[X509_NOT_AFTER].bytes(),
            flags: self.maps[X509_FLAGS].bytes(),
            path_len: self.maps[X509_PATH_LEN].bytes(),
            san_idx: self.maps[X509_SAN_IDX].bytes(),
            san_dat: self.maps[X509_SAN_DAT].bytes(),
            dict: self.dict()?,
            fps: self.maps[FPS_DAT].bytes(),
        })
    }

    fn seg_col(&self, at: usize) -> SegmentedColumn<'_> {
        let (name, width) = COLUMNS[at];
        SegmentedColumn {
            name,
            width: width.expect("segmented columns are fixed-width") as u8,
            data: self.maps[at].bytes(),
            metas: self.manifest.segments.get(name).expect("v2 manifest"),
            starts: &self.seg_starts[at],
        }
    }

    /// Segmented view over a **v2** ssl table.
    pub fn ssl_segments(&self) -> ColResult<SslSegments<'_>> {
        self.require_version(VERSION, "SslSegments")?;
        Ok(SslSegments {
            rows: self.manifest.ssl_rows,
            ts: self.seg_col(SSL_TS),
            uid_idx: self.seg_col(SSL_UID_IDX),
            orig_h: self.seg_col(SSL_ORIG_H),
            orig_p: self.seg_col(SSL_ORIG_P),
            resp_h: self.seg_col(SSL_RESP_H),
            resp_p: self.seg_col(SSL_RESP_P),
            version: self.seg_col(SSL_VERSION),
            sni: self.seg_col(SSL_SNI),
            established: self.seg_col(SSL_ESTABLISHED),
            chain_idx: self.seg_col(SSL_CHAIN_IDX),
            uid_dat: self.maps[SSL_UID_DAT].bytes(),
            chain_dat: self.maps[SSL_CHAIN_DAT].bytes(),
            dict: self.dict()?,
            fps: self.maps[FPS_DAT].bytes(),
        })
    }

    /// Segmented view over a **v2** x509 table.
    pub fn x509_segments(&self) -> ColResult<X509Segments<'_>> {
        self.require_version(VERSION, "X509Segments")?;
        Ok(X509Segments {
            rows: self.manifest.x509_rows,
            ts: self.seg_col(X509_TS),
            fp: self.seg_col(X509_FP),
            version: self.seg_col(X509_VERSION),
            serial: self.seg_col(X509_SERIAL),
            subject: self.seg_col(X509_SUBJECT),
            issuer: self.seg_col(X509_ISSUER),
            not_before: self.seg_col(X509_NOT_BEFORE),
            not_after: self.seg_col(X509_NOT_AFTER),
            flags: self.seg_col(X509_FLAGS),
            path_len: self.seg_col(X509_PATH_LEN),
            san_idx: self.seg_col(X509_SAN_IDX),
            san_dat: self.maps[X509_SAN_DAT].bytes(),
            dict: self.dict()?,
            fps: self.maps[FPS_DAT].bytes(),
        })
    }

    fn dict(&self) -> ColResult<Dict<'_>> {
        Dict::new(
            self.maps[STRINGS_IDX].bytes(),
            self.maps[STRINGS_DAT].bytes(),
        )
    }

    /// Iterate ssl rows as [`SslRecord`]s — the same item shape as
    /// `SslLogStream`, so stream-based consumers run unchanged on either
    /// format version.
    pub fn ssl_iter(&self) -> ColResult<Box<dyn Iterator<Item = ColResult<SslRecord>> + '_>> {
        if self.manifest.version == VERSION_V1 {
            let cols = self.ssl()?;
            Ok(Box::new((0..cols.rows).map(move |row| cols.record(row))))
        } else {
            Ok(Box::new(SslV2Iter::new(self.ssl_segments()?)))
        }
    }

    /// Iterate x509 rows as [`X509Record`]s, mirroring `X509LogStream`.
    pub fn x509_iter(&self) -> ColResult<Box<dyn Iterator<Item = ColResult<X509Record>> + '_>> {
        if self.manifest.version == VERSION_V1 {
            let cols = self.x509()?;
            Ok(Box::new((0..cols.rows).map(move |row| cols.record(row))))
        } else {
            Ok(Box::new(X509V2Iter::new(self.x509_segments()?)))
        }
    }
}

fn u64_at(col: &[u8], row: u64) -> u64 {
    let at = (row as usize) * 8;
    u64::from_le_bytes(col[at..at + 8].try_into().expect("8-byte slice"))
}

fn u32_at(col: &[u8], row: u64) -> u32 {
    let at = (row as usize) * 4;
    u32::from_le_bytes(col[at..at + 4].try_into().expect("4-byte slice"))
}

fn u16_at(col: &[u8], row: u64) -> u16 {
    let at = (row as usize) * 2;
    u16::from_le_bytes(col[at..at + 2].try_into().expect("2-byte slice"))
}

fn var_range(idx: &[u8], row: u64, dat_len: usize, what: &str) -> ColResult<(usize, usize)> {
    let start = if row == 0 { 0 } else { u64_at(idx, row - 1) } as usize;
    let end = u64_at(idx, row) as usize;
    if start > end || end > dat_len {
        return Err(ColError::Corrupt(format!(
            "{what} row {row}: offsets {start}..{end} out of bounds (data length {dat_len})"
        )));
    }
    Ok((start, end))
}

/// Bounds-check a decoded `start..end` offset pair against `dat`.
fn var_slice<'a>(dat: &'a [u8], start: u64, end: u64, what: &str, row: u64) -> ColResult<&'a [u8]> {
    if start > end || end > dat.len() as u64 {
        return Err(ColError::Corrupt(format!(
            "{what} row {row}: offsets {start}..{end} out of bounds (data length {})",
            dat.len()
        )));
    }
    Ok(&dat[start as usize..end as usize])
}

fn fp_at(fps: &[u8], idx: u32, what: &str) -> ColResult<Fingerprint> {
    let at = (idx as usize) * 32;
    let Some(bytes) = fps.get(at..at + 32) else {
        return Err(ColError::Corrupt(format!(
            "{what}: fingerprint index {idx} out of range ({} entries)",
            fps.len() / 32
        )));
    };
    Ok(Fingerprint(bytes.try_into().expect("32-byte slice")))
}

/// One encoded column of a v2 store: segment metadata plus the
/// concatenated payload bytes, with O(1) segment addressing.
#[derive(Clone, Copy)]
pub struct SegmentedColumn<'a> {
    name: &'static str,
    width: u8,
    data: &'a [u8],
    metas: &'a [SegmentMeta],
    starts: &'a [SegStart],
}

impl<'a> SegmentedColumn<'a> {
    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.metas.len()
    }

    /// Metadata (rows, encoding, zone map) of segment `seg`.
    pub fn meta(&self, seg: usize) -> &'a SegmentMeta {
        &self.metas[seg]
    }

    /// `(first_row, rows)` of segment `seg`.
    pub fn row_range(&self, seg: usize) -> (u64, u64) {
        (self.starts[seg].row, self.metas[seg].rows)
    }

    /// Decode segment `seg` into `out` (cleared first). `out` ends up
    /// holding exactly `meta(seg).rows` widened values — the scratch
    /// buffer the caller reuses across segments.
    pub fn decode_into(&self, seg: usize, out: &mut Vec<u64>) -> ColResult<()> {
        let meta = &self.metas[seg];
        let start = self.starts[seg].byte as usize;
        let bytes = &self.data[start..start + meta.bytes as usize];
        out.clear();
        crate::codec::decode_into(
            meta.encoding,
            meta.param,
            self.width,
            meta.rows as usize,
            bytes,
            out,
        )
        .map_err(|e| ColError::Corrupt(format!("column {} segment {seg}: {e}", self.name)))
    }
}

/// Segmented view over the ssl table of a v2 store. Fixed-width columns
/// decode segment-at-a-time; the var-length data files and shared
/// tables are raw slices, exactly as in v1.
#[derive(Clone, Copy)]
pub struct SslSegments<'a> {
    /// Row count.
    pub rows: u64,
    /// Connection timestamps (epoch seconds).
    pub ts: SegmentedColumn<'a>,
    /// End offsets into `uid_dat`.
    pub uid_idx: SegmentedColumn<'a>,
    /// Originator addresses as packed u32s.
    pub orig_h: SegmentedColumn<'a>,
    /// Originator ports.
    pub orig_p: SegmentedColumn<'a>,
    /// Responder addresses as packed u32s.
    pub resp_h: SegmentedColumn<'a>,
    /// Responder ports.
    pub resp_p: SegmentedColumn<'a>,
    /// TLS version bytes.
    pub version: SegmentedColumn<'a>,
    /// SNI dictionary codes ([`crate::NONE_IDX`] = unset).
    pub sni: SegmentedColumn<'a>,
    /// Established flags (0/1).
    pub established: SegmentedColumn<'a>,
    /// End offsets into `chain_dat`.
    pub chain_idx: SegmentedColumn<'a>,
    /// Raw uid bytes.
    pub uid_dat: &'a [u8],
    /// u32 LE fingerprint-table indices per chain entry.
    pub chain_dat: &'a [u8],
    /// The shared string dictionary.
    pub dict: Dict<'a>,
    /// The raw fingerprint table (32 bytes per entry).
    pub fps: &'a [u8],
}

impl<'a> SslSegments<'a> {
    /// Number of row-band segments in the table.
    pub fn segment_count(&self) -> usize {
        self.ts.segments()
    }

    /// First chain-data byte offset of segment `seg`: the previous
    /// segment's final end offset (end offsets are non-decreasing, so
    /// that is its zone max), or 0 for the first segment.
    pub fn chain_start(&self, seg: usize) -> u64 {
        if seg == 0 {
            0
        } else {
            self.chain_idx.meta(seg - 1).zone.max
        }
    }

    /// Resolve a fingerprint-table code.
    pub fn fp(&self, code: u32) -> ColResult<Fingerprint> {
        fp_at(self.fps, code, "ssl.chain")
    }

    /// Fingerprint-table entries.
    pub fn fp_count(&self) -> usize {
        self.fps.len() / 32
    }
}

/// Segmented view over the x509 table of a v2 store.
#[derive(Clone, Copy)]
pub struct X509Segments<'a> {
    /// Row count.
    pub rows: u64,
    /// Log timestamps.
    pub ts: SegmentedColumn<'a>,
    /// Fingerprint-table codes.
    pub fp: SegmentedColumn<'a>,
    /// Certificate versions.
    pub version: SegmentedColumn<'a>,
    /// Serial dictionary codes.
    pub serial: SegmentedColumn<'a>,
    /// Subject dictionary codes.
    pub subject: SegmentedColumn<'a>,
    /// Issuer dictionary codes.
    pub issuer: SegmentedColumn<'a>,
    /// notBefore epoch seconds.
    pub not_before: SegmentedColumn<'a>,
    /// notAfter epoch seconds.
    pub not_after: SegmentedColumn<'a>,
    /// basicConstraints flag bytes.
    pub flags: SegmentedColumn<'a>,
    /// pathLen values (0 when absent).
    pub path_len: SegmentedColumn<'a>,
    /// End offsets into `san_dat`.
    pub san_idx: SegmentedColumn<'a>,
    /// u32 LE dictionary codes per SAN entry.
    pub san_dat: &'a [u8],
    /// The shared string dictionary.
    pub dict: Dict<'a>,
    /// The raw fingerprint table.
    pub fps: &'a [u8],
}

impl<'a> X509Segments<'a> {
    /// Number of row-band segments in the table.
    pub fn segment_count(&self) -> usize {
        self.ts.segments()
    }

    /// First SAN-data byte offset of segment `seg` (see
    /// [`SslSegments::chain_start`]).
    pub fn san_start(&self, seg: usize) -> u64 {
        if seg == 0 {
            0
        } else {
            self.san_idx.meta(seg - 1).zone.max
        }
    }

    /// Resolve a fingerprint-table code.
    pub fn fp(&self, code: u32) -> ColResult<Fingerprint> {
        fp_at(self.fps, code, "x509.fp")
    }
}

/// Record iterator over a v2 ssl table: decodes one segment's columns at
/// a time, materialises its records, then moves on.
struct SslV2Iter<'a> {
    cols: SslSegments<'a>,
    seg: usize,
    buf: std::vec::IntoIter<SslRecord>,
    uid_prev: u64,
    chain_prev: u64,
    failed: bool,
}

impl<'a> SslV2Iter<'a> {
    fn new(cols: SslSegments<'a>) -> SslV2Iter<'a> {
        SslV2Iter {
            cols,
            seg: 0,
            buf: Vec::new().into_iter(),
            uid_prev: 0,
            chain_prev: 0,
            failed: false,
        }
    }

    fn decode_segment(&mut self) -> ColResult<Vec<SslRecord>> {
        let c = &self.cols;
        let seg = self.seg;
        let mut ts = Vec::new();
        let mut uid_idx = Vec::new();
        let mut orig_h = Vec::new();
        let mut orig_p = Vec::new();
        let mut resp_h = Vec::new();
        let mut resp_p = Vec::new();
        let mut version = Vec::new();
        let mut sni = Vec::new();
        let mut established = Vec::new();
        let mut chain_idx = Vec::new();
        c.ts.decode_into(seg, &mut ts)?;
        c.uid_idx.decode_into(seg, &mut uid_idx)?;
        c.orig_h.decode_into(seg, &mut orig_h)?;
        c.orig_p.decode_into(seg, &mut orig_p)?;
        c.resp_h.decode_into(seg, &mut resp_h)?;
        c.resp_p.decode_into(seg, &mut resp_p)?;
        c.version.decode_into(seg, &mut version)?;
        c.sni.decode_into(seg, &mut sni)?;
        c.established.decode_into(seg, &mut established)?;
        c.chain_idx.decode_into(seg, &mut chain_idx)?;
        let (row_start, rows) = c.ts.row_range(seg);
        let mut out = Vec::with_capacity(rows as usize);
        for i in 0..rows as usize {
            let row = row_start + i as u64;
            let uid_bytes = var_slice(c.uid_dat, self.uid_prev, uid_idx[i], "ssl.uid", row)?;
            self.uid_prev = uid_idx[i];
            let uid = std::str::from_utf8(uid_bytes)
                .map_err(|_| ColError::Corrupt(format!("ssl.uid row {row} is not valid UTF-8")))?
                .to_string();
            let chain_bytes =
                var_slice(c.chain_dat, self.chain_prev, chain_idx[i], "ssl.chain", row)?;
            self.chain_prev = chain_idx[i];
            if chain_bytes.len() % 4 != 0 {
                return Err(ColError::Corrupt(format!(
                    "ssl.chain row {row}: {} bytes is not a whole number of entries",
                    chain_bytes.len()
                )));
            }
            let mut chain = Vec::with_capacity(chain_bytes.len() / 4);
            for entry in chain_bytes.chunks_exact(4) {
                let code = u32::from_le_bytes(entry.try_into().expect("4-byte slice"));
                chain.push(c.fp(code)?);
            }
            out.push(SslRecord {
                ts: Asn1Time::from_unix(ts[i]),
                uid,
                orig_h: Ipv4Addr::from(orig_h[i] as u32),
                orig_p: orig_p[i] as u16,
                resp_h: Ipv4Addr::from(resp_h[i] as u32),
                resp_p: resp_p[i] as u16,
                version: decode_tls_version(version[i] as u8)?,
                server_name: c.dict.get_opt(sni[i] as u32)?.map(str::to_string),
                established: established[i] != 0,
                cert_chain_fps: chain,
            });
        }
        Ok(out)
    }
}

impl Iterator for SslV2Iter<'_> {
    type Item = ColResult<SslRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.failed {
                return None;
            }
            if let Some(rec) = self.buf.next() {
                return Some(Ok(rec));
            }
            if self.seg >= self.cols.segment_count() {
                return None;
            }
            match self.decode_segment() {
                Ok(records) => {
                    self.seg += 1;
                    self.buf = records.into_iter();
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Record iterator over a v2 x509 table.
struct X509V2Iter<'a> {
    cols: X509Segments<'a>,
    seg: usize,
    buf: std::vec::IntoIter<X509Record>,
    san_prev: u64,
    failed: bool,
}

impl<'a> X509V2Iter<'a> {
    fn new(cols: X509Segments<'a>) -> X509V2Iter<'a> {
        X509V2Iter {
            cols,
            seg: 0,
            buf: Vec::new().into_iter(),
            san_prev: 0,
            failed: false,
        }
    }

    fn decode_segment(&mut self) -> ColResult<Vec<X509Record>> {
        let c = &self.cols;
        let seg = self.seg;
        let mut ts = Vec::new();
        let mut fp = Vec::new();
        let mut version = Vec::new();
        let mut serial = Vec::new();
        let mut subject = Vec::new();
        let mut issuer = Vec::new();
        let mut not_before = Vec::new();
        let mut not_after = Vec::new();
        let mut flags = Vec::new();
        let mut path_len = Vec::new();
        let mut san_idx = Vec::new();
        c.ts.decode_into(seg, &mut ts)?;
        c.fp.decode_into(seg, &mut fp)?;
        c.version.decode_into(seg, &mut version)?;
        c.serial.decode_into(seg, &mut serial)?;
        c.subject.decode_into(seg, &mut subject)?;
        c.issuer.decode_into(seg, &mut issuer)?;
        c.not_before.decode_into(seg, &mut not_before)?;
        c.not_after.decode_into(seg, &mut not_after)?;
        c.flags.decode_into(seg, &mut flags)?;
        c.path_len.decode_into(seg, &mut path_len)?;
        c.san_idx.decode_into(seg, &mut san_idx)?;
        let (row_start, rows) = c.ts.row_range(seg);
        let mut out = Vec::with_capacity(rows as usize);
        for i in 0..rows as usize {
            let row = row_start + i as u64;
            let san_bytes = var_slice(c.san_dat, self.san_prev, san_idx[i], "x509.san", row)?;
            self.san_prev = san_idx[i];
            if san_bytes.len() % 4 != 0 {
                return Err(ColError::Corrupt(format!(
                    "x509.san row {row}: {} bytes is not a whole number of entries",
                    san_bytes.len()
                )));
            }
            let mut san_dns = Vec::with_capacity(san_bytes.len() / 4);
            for entry in san_bytes.chunks_exact(4) {
                let code = u32::from_le_bytes(entry.try_into().expect("4-byte slice"));
                san_dns.push(c.dict.get(code)?.to_string());
            }
            let fl = flags[i] as u8;
            out.push(X509Record {
                ts: Asn1Time::from_unix(ts[i]),
                fingerprint: c.fp(fp[i] as u32)?,
                cert_version: version[i],
                serial: c.dict.get(serial[i] as u32)?.to_string(),
                subject: c.dict.get(subject[i] as u32)?.to_string(),
                issuer: c.dict.get(issuer[i] as u32)?.to_string(),
                not_before: Asn1Time::from_unix(not_before[i]),
                not_after: Asn1Time::from_unix(not_after[i]),
                basic_constraints_ca: (fl & FLAG_BC_PRESENT != 0).then_some(fl & FLAG_BC_CA != 0),
                path_len: (fl & FLAG_PATH_LEN != 0).then(|| path_len[i]),
                san_dns,
            });
        }
        Ok(out)
    }
}

impl Iterator for X509V2Iter<'_> {
    type Item = ColResult<X509Record>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.failed {
                return None;
            }
            if let Some(rec) = self.buf.next() {
                return Some(Ok(rec));
            }
            if self.seg >= self.cols.segment_count() {
                return None;
            }
            match self.decode_segment() {
                Ok(records) => {
                    self.seg += 1;
                    self.buf = records.into_iter();
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Borrowed, zero-copy accessors over the ssl table. All row arguments
/// must be `< rows` (fixed-width reads panic past the end, like slice
/// indexing); var-length and table lookups return [`ColError::Corrupt`]
/// on inconsistent data.
#[derive(Clone, Copy)]
pub struct SslColumns<'a> {
    /// Row count.
    pub rows: u64,
    ts: &'a [u8],
    uid_idx: &'a [u8],
    uid_dat: &'a [u8],
    orig_h: &'a [u8],
    orig_p: &'a [u8],
    resp_h: &'a [u8],
    resp_p: &'a [u8],
    version: &'a [u8],
    sni: &'a [u8],
    established: &'a [u8],
    chain_idx: &'a [u8],
    chain_dat: &'a [u8],
    dict: Dict<'a>,
    fps: &'a [u8],
}

impl<'a> SslColumns<'a> {
    /// Connection timestamp (epoch seconds).
    pub fn ts(&self, row: u64) -> u64 {
        u64_at(self.ts, row)
    }

    /// Connection uid.
    pub fn uid(&self, row: u64) -> ColResult<&'a str> {
        let (start, end) = var_range(self.uid_idx, row, self.uid_dat.len(), "ssl.uid")?;
        std::str::from_utf8(&self.uid_dat[start..end])
            .map_err(|_| ColError::Corrupt(format!("ssl.uid row {row} is not valid UTF-8")))
    }

    /// Originator (client) address.
    pub fn orig_h(&self, row: u64) -> Ipv4Addr {
        Ipv4Addr::from(u32_at(self.orig_h, row))
    }

    /// Originator port.
    pub fn orig_p(&self, row: u64) -> u16 {
        u16_at(self.orig_p, row)
    }

    /// Responder (server) address.
    pub fn resp_h(&self, row: u64) -> Ipv4Addr {
        Ipv4Addr::from(u32_at(self.resp_h, row))
    }

    /// Responder port.
    pub fn resp_p(&self, row: u64) -> u16 {
        u16_at(self.resp_p, row)
    }

    /// Negotiated TLS version.
    pub fn version(&self, row: u64) -> ColResult<TlsVersion> {
        decode_tls_version(self.version[row as usize])
    }

    /// SNI dictionary code ([`crate::NONE_IDX`] = unset), for
    /// code-level predicate comparison without string resolution.
    pub fn sni_code(&self, row: u64) -> u32 {
        u32_at(self.sni, row)
    }

    /// SNI, when the client sent one.
    pub fn sni(&self, row: u64) -> ColResult<Option<&'a str>> {
        self.dict.get_opt(u32_at(self.sni, row))
    }

    /// Whether the handshake completed.
    pub fn established(&self, row: u64) -> bool {
        self.established[row as usize] != 0
    }

    /// Number of fingerprints in the row's delivered chain.
    pub fn chain_len(&self, row: u64) -> ColResult<usize> {
        let (start, end) = var_range(self.chain_idx, row, self.chain_dat.len(), "ssl.chain")?;
        Ok((end - start) / 4)
    }

    /// Append the row's chain fingerprints to `out` (cleared first) —
    /// lets the analyze hot path reuse one buffer across rows.
    pub fn chain_fps_into(&self, row: u64, out: &mut Vec<Fingerprint>) -> ColResult<()> {
        out.clear();
        let (start, end) = var_range(self.chain_idx, row, self.chain_dat.len(), "ssl.chain")?;
        for at in (start..end).step_by(4) {
            let idx =
                u32::from_le_bytes(self.chain_dat[at..at + 4].try_into().expect("4-byte slice"));
            out.push(fp_at(self.fps, idx, "ssl.chain")?);
        }
        Ok(())
    }

    /// Materialise the full [`SslRecord`] for `row`.
    pub fn record(&self, row: u64) -> ColResult<SslRecord> {
        let mut chain = Vec::new();
        self.chain_fps_into(row, &mut chain)?;
        Ok(SslRecord {
            ts: Asn1Time::from_unix(self.ts(row)),
            uid: self.uid(row)?.to_string(),
            orig_h: self.orig_h(row),
            orig_p: self.orig_p(row),
            resp_h: self.resp_h(row),
            resp_p: self.resp_p(row),
            version: self.version(row)?,
            server_name: self.sni(row)?.map(str::to_string),
            established: self.established(row),
            cert_chain_fps: chain,
        })
    }
}

/// Borrowed, zero-copy accessors over the x509 table.
#[derive(Clone, Copy)]
pub struct X509Columns<'a> {
    /// Row count.
    pub rows: u64,
    ts: &'a [u8],
    fp: &'a [u8],
    version: &'a [u8],
    serial: &'a [u8],
    subject: &'a [u8],
    issuer: &'a [u8],
    not_before: &'a [u8],
    not_after: &'a [u8],
    flags: &'a [u8],
    path_len: &'a [u8],
    san_idx: &'a [u8],
    san_dat: &'a [u8],
    dict: Dict<'a>,
    fps: &'a [u8],
}

impl<'a> X509Columns<'a> {
    /// The row's fingerprint (the join key with the ssl table).
    pub fn fingerprint(&self, row: u64) -> ColResult<Fingerprint> {
        fp_at(self.fps, u32_at(self.fp, row), "x509.fp")
    }

    /// Materialise the full [`X509Record`] for `row`.
    pub fn record(&self, row: u64) -> ColResult<X509Record> {
        let flags = self.flags[row as usize];
        let (start, end) = var_range(self.san_idx, row, self.san_dat.len(), "x509.san")?;
        let mut san_dns = Vec::with_capacity((end - start) / 4);
        for at in (start..end).step_by(4) {
            let idx =
                u32::from_le_bytes(self.san_dat[at..at + 4].try_into().expect("4-byte slice"));
            san_dns.push(self.dict.get(idx)?.to_string());
        }
        Ok(X509Record {
            ts: Asn1Time::from_unix(u64_at(self.ts, row)),
            fingerprint: self.fingerprint(row)?,
            cert_version: u64_at(self.version, row),
            serial: self.dict.get(u32_at(self.serial, row))?.to_string(),
            subject: self.dict.get(u32_at(self.subject, row))?.to_string(),
            issuer: self.dict.get(u32_at(self.issuer, row))?.to_string(),
            not_before: Asn1Time::from_unix(u64_at(self.not_before, row)),
            not_after: Asn1Time::from_unix(u64_at(self.not_after, row)),
            basic_constraints_ca: (flags & FLAG_BC_PRESENT != 0).then_some(flags & FLAG_BC_CA != 0),
            path_len: (flags & FLAG_PATH_LEN != 0).then(|| u64_at(self.path_len, row)),
            san_dns,
        })
    }
}
