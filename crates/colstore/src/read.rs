//! The mmap-backed dataset reader.
//!
//! [`DatasetReader::open`] validates the manifest and then checks, for
//! every column file, that the on-disk byte length is exactly what the
//! manifest recorded (and consistent with the row counts for fixed-width
//! columns) — truncation is diagnosed up front, before any row is
//! decoded. Column views ([`SslColumns`] / [`X509Columns`]) then decode
//! fields with plain offset arithmetic off the mapped bytes, so analysis
//! workers can shard by row ranges without any parse stage.

use crate::dict::Dict;
use crate::manifest::Manifest;
use crate::map::{MapMode, Mapping};
use crate::write::{decode_tls_version, FLAG_BC_CA, FLAG_BC_PRESENT, FLAG_PATH_LEN};
use crate::{ColError, ColResult, COLUMNS};
use certchain_asn1::Asn1Time;
use certchain_netsim::handshake::TlsVersion;
use certchain_netsim::zeek::record::{SslRecord, X509Record};
use certchain_x509::Fingerprint;
use std::net::Ipv4Addr;
use std::path::Path;

// Indices into `DatasetReader::maps`, in `COLUMNS` order.
const STRINGS_IDX: usize = 0;
const STRINGS_DAT: usize = 1;
const FPS_DAT: usize = 2;
const SSL_TS: usize = 3;
const SSL_UID_IDX: usize = 4;
const SSL_UID_DAT: usize = 5;
const SSL_ORIG_H: usize = 6;
const SSL_ORIG_P: usize = 7;
const SSL_RESP_H: usize = 8;
const SSL_RESP_P: usize = 9;
const SSL_VERSION: usize = 10;
const SSL_SNI: usize = 11;
const SSL_ESTABLISHED: usize = 12;
const SSL_CHAIN_IDX: usize = 13;
const SSL_CHAIN_DAT: usize = 14;
const X509_TS: usize = 15;
const X509_FP: usize = 16;
const X509_VERSION: usize = 17;
const X509_SERIAL: usize = 18;
const X509_SUBJECT: usize = 19;
const X509_ISSUER: usize = 20;
const X509_NOT_BEFORE: usize = 21;
const X509_NOT_AFTER: usize = 22;
const X509_FLAGS: usize = 23;
const X509_PATH_LEN: usize = 24;
const X509_SAN_IDX: usize = 25;
const X509_SAN_DAT: usize = 26;

/// An open, validated columnar store.
pub struct DatasetReader {
    manifest: Manifest,
    maps: Vec<Mapping>,
}

impl std::fmt::Debug for DatasetReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatasetReader")
            .field("ssl_rows", &self.manifest.ssl_rows)
            .field("x509_rows", &self.manifest.x509_rows)
            .field("bytes_mapped", &self.bytes_mapped())
            .finish_non_exhaustive()
    }
}

impl DatasetReader {
    /// Open `store_dir`, validating manifest and column lengths.
    pub fn open(store_dir: &Path, mode: MapMode) -> ColResult<DatasetReader> {
        let manifest = Manifest::load(store_dir)?;
        let mut maps = Vec::with_capacity(COLUMNS.len());
        for (name, width) in COLUMNS {
            let expected = *manifest
                .columns
                .get(*name)
                .expect("from_json checked every column is present");
            let map = Mapping::open(&store_dir.join(name), mode)?;
            let found = map.len() as u64;
            if found != expected {
                return Err(ColError::Truncated {
                    file: name.to_string(),
                    expected,
                    found,
                });
            }
            if let Some(width) = width {
                let rows = crate::rows_for(name, manifest.ssl_rows, manifest.x509_rows)
                    .expect("fixed-width columns are table columns");
                if found != rows * width {
                    return Err(ColError::Corrupt(format!(
                        "column {name}: {found} bytes is not {rows} rows x {width} bytes"
                    )));
                }
            }
            maps.push(map);
        }
        let reader = DatasetReader { manifest, maps };
        reader.validate_tables()?;
        Ok(reader)
    }

    /// Cross-file consistency checks that the per-file length check
    /// cannot see: shared-table sizes and var-length final offsets.
    fn validate_tables(&self) -> ColResult<()> {
        let m = &self.manifest;
        let checks: &[(&str, u64, u64)] = &[
            (
                "strings.idx",
                self.maps[STRINGS_IDX].len() as u64,
                m.dict_entries * 8,
            ),
            (
                "fps.dat",
                self.maps[FPS_DAT].len() as u64,
                m.fp_entries * 32,
            ),
        ];
        for (name, found, want) in checks {
            if found != want {
                return Err(ColError::Corrupt(format!(
                    "table {name}: {found} bytes, expected {want}"
                )));
            }
        }
        // Dictionary offsets must be monotonic and end at the data length;
        // `Dict::new` checks all of that, so a corrupted index is rejected
        // here instead of surfacing mid-scan from a row accessor.
        Dict::new(
            self.maps[STRINGS_IDX].bytes(),
            self.maps[STRINGS_DAT].bytes(),
        )?;
        // Each var-length pair: the last index entry must equal the data
        // length (and an empty table implies an empty data file).
        for (idx, dat, unit) in [
            (SSL_UID_IDX, SSL_UID_DAT, 1u64),
            (SSL_CHAIN_IDX, SSL_CHAIN_DAT, 4),
            (X509_SAN_IDX, X509_SAN_DAT, 4),
        ] {
            let idx_bytes = self.maps[idx].bytes();
            let dat_len = self.maps[dat].len() as u64;
            let end = match idx_bytes.len() {
                0 => 0,
                n => u64::from_le_bytes(idx_bytes[n - 8..].try_into().expect("8-byte slice")),
            };
            if end != dat_len {
                return Err(ColError::Corrupt(format!(
                    "column {}: final offset {end} != data length {dat_len}",
                    COLUMNS[idx].0
                )));
            }
            if dat_len % unit != 0 {
                return Err(ColError::Corrupt(format!(
                    "column {}: length {dat_len} is not a multiple of {unit}",
                    COLUMNS[dat].0
                )));
            }
        }
        Ok(())
    }

    /// The validated manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Rows in the ssl table.
    pub fn ssl_rows(&self) -> u64 {
        self.manifest.ssl_rows
    }

    /// Rows in the x509 table.
    pub fn x509_rows(&self) -> u64 {
        self.manifest.x509_rows
    }

    /// Total bytes brought into memory across all columns (mapped or
    /// loaded, depending on [`MapMode`]).
    pub fn bytes_mapped(&self) -> u64 {
        self.maps.iter().map(|m| m.len() as u64).sum()
    }

    /// Column view over the ssl table.
    pub fn ssl(&self) -> ColResult<SslColumns<'_>> {
        Ok(SslColumns {
            rows: self.manifest.ssl_rows,
            ts: self.maps[SSL_TS].bytes(),
            uid_idx: self.maps[SSL_UID_IDX].bytes(),
            uid_dat: self.maps[SSL_UID_DAT].bytes(),
            orig_h: self.maps[SSL_ORIG_H].bytes(),
            orig_p: self.maps[SSL_ORIG_P].bytes(),
            resp_h: self.maps[SSL_RESP_H].bytes(),
            resp_p: self.maps[SSL_RESP_P].bytes(),
            version: self.maps[SSL_VERSION].bytes(),
            sni: self.maps[SSL_SNI].bytes(),
            established: self.maps[SSL_ESTABLISHED].bytes(),
            chain_idx: self.maps[SSL_CHAIN_IDX].bytes(),
            chain_dat: self.maps[SSL_CHAIN_DAT].bytes(),
            dict: self.dict()?,
            fps: self.maps[FPS_DAT].bytes(),
        })
    }

    /// Column view over the x509 table.
    pub fn x509(&self) -> ColResult<X509Columns<'_>> {
        Ok(X509Columns {
            rows: self.manifest.x509_rows,
            ts: self.maps[X509_TS].bytes(),
            fp: self.maps[X509_FP].bytes(),
            version: self.maps[X509_VERSION].bytes(),
            serial: self.maps[X509_SERIAL].bytes(),
            subject: self.maps[X509_SUBJECT].bytes(),
            issuer: self.maps[X509_ISSUER].bytes(),
            not_before: self.maps[X509_NOT_BEFORE].bytes(),
            not_after: self.maps[X509_NOT_AFTER].bytes(),
            flags: self.maps[X509_FLAGS].bytes(),
            path_len: self.maps[X509_PATH_LEN].bytes(),
            san_idx: self.maps[X509_SAN_IDX].bytes(),
            san_dat: self.maps[X509_SAN_DAT].bytes(),
            dict: self.dict()?,
            fps: self.maps[FPS_DAT].bytes(),
        })
    }

    fn dict(&self) -> ColResult<Dict<'_>> {
        Dict::new(
            self.maps[STRINGS_IDX].bytes(),
            self.maps[STRINGS_DAT].bytes(),
        )
    }

    /// Iterate ssl rows as [`SslRecord`]s — the same item shape as
    /// `SslLogStream`, so stream-based consumers run unchanged.
    pub fn ssl_iter(&self) -> ColResult<impl Iterator<Item = ColResult<SslRecord>> + '_> {
        let cols = self.ssl()?;
        Ok((0..cols.rows).map(move |row| cols.record(row)))
    }

    /// Iterate x509 rows as [`X509Record`]s, mirroring `X509LogStream`.
    pub fn x509_iter(&self) -> ColResult<impl Iterator<Item = ColResult<X509Record>> + '_> {
        let cols = self.x509()?;
        Ok((0..cols.rows).map(move |row| cols.record(row)))
    }
}

fn u64_at(col: &[u8], row: u64) -> u64 {
    let at = (row as usize) * 8;
    u64::from_le_bytes(col[at..at + 8].try_into().expect("8-byte slice"))
}

fn u32_at(col: &[u8], row: u64) -> u32 {
    let at = (row as usize) * 4;
    u32::from_le_bytes(col[at..at + 4].try_into().expect("4-byte slice"))
}

fn u16_at(col: &[u8], row: u64) -> u16 {
    let at = (row as usize) * 2;
    u16::from_le_bytes(col[at..at + 2].try_into().expect("2-byte slice"))
}

fn var_range(idx: &[u8], row: u64, dat_len: usize, what: &str) -> ColResult<(usize, usize)> {
    let start = if row == 0 { 0 } else { u64_at(idx, row - 1) } as usize;
    let end = u64_at(idx, row) as usize;
    if start > end || end > dat_len {
        return Err(ColError::Corrupt(format!(
            "{what} row {row}: offsets {start}..{end} out of bounds (data length {dat_len})"
        )));
    }
    Ok((start, end))
}

fn fp_at(fps: &[u8], idx: u32, what: &str) -> ColResult<Fingerprint> {
    let at = (idx as usize) * 32;
    let Some(bytes) = fps.get(at..at + 32) else {
        return Err(ColError::Corrupt(format!(
            "{what}: fingerprint index {idx} out of range ({} entries)",
            fps.len() / 32
        )));
    };
    Ok(Fingerprint(bytes.try_into().expect("32-byte slice")))
}

/// Borrowed, zero-copy accessors over the ssl table. All row arguments
/// must be `< rows` (fixed-width reads panic past the end, like slice
/// indexing); var-length and table lookups return [`ColError::Corrupt`]
/// on inconsistent data.
#[derive(Clone, Copy)]
pub struct SslColumns<'a> {
    /// Row count.
    pub rows: u64,
    ts: &'a [u8],
    uid_idx: &'a [u8],
    uid_dat: &'a [u8],
    orig_h: &'a [u8],
    orig_p: &'a [u8],
    resp_h: &'a [u8],
    resp_p: &'a [u8],
    version: &'a [u8],
    sni: &'a [u8],
    established: &'a [u8],
    chain_idx: &'a [u8],
    chain_dat: &'a [u8],
    dict: Dict<'a>,
    fps: &'a [u8],
}

impl<'a> SslColumns<'a> {
    /// Connection timestamp (epoch seconds).
    pub fn ts(&self, row: u64) -> u64 {
        u64_at(self.ts, row)
    }

    /// Connection uid.
    pub fn uid(&self, row: u64) -> ColResult<&'a str> {
        let (start, end) = var_range(self.uid_idx, row, self.uid_dat.len(), "ssl.uid")?;
        std::str::from_utf8(&self.uid_dat[start..end])
            .map_err(|_| ColError::Corrupt(format!("ssl.uid row {row} is not valid UTF-8")))
    }

    /// Originator (client) address.
    pub fn orig_h(&self, row: u64) -> Ipv4Addr {
        Ipv4Addr::from(u32_at(self.orig_h, row))
    }

    /// Originator port.
    pub fn orig_p(&self, row: u64) -> u16 {
        u16_at(self.orig_p, row)
    }

    /// Responder (server) address.
    pub fn resp_h(&self, row: u64) -> Ipv4Addr {
        Ipv4Addr::from(u32_at(self.resp_h, row))
    }

    /// Responder port.
    pub fn resp_p(&self, row: u64) -> u16 {
        u16_at(self.resp_p, row)
    }

    /// Negotiated TLS version.
    pub fn version(&self, row: u64) -> ColResult<TlsVersion> {
        decode_tls_version(self.version[row as usize])
    }

    /// SNI, when the client sent one.
    pub fn sni(&self, row: u64) -> ColResult<Option<&'a str>> {
        self.dict.get_opt(u32_at(self.sni, row))
    }

    /// Whether the handshake completed.
    pub fn established(&self, row: u64) -> bool {
        self.established[row as usize] != 0
    }

    /// Number of fingerprints in the row's delivered chain.
    pub fn chain_len(&self, row: u64) -> ColResult<usize> {
        let (start, end) = var_range(self.chain_idx, row, self.chain_dat.len(), "ssl.chain")?;
        Ok((end - start) / 4)
    }

    /// Append the row's chain fingerprints to `out` (cleared first) —
    /// lets the analyze hot path reuse one buffer across rows.
    pub fn chain_fps_into(&self, row: u64, out: &mut Vec<Fingerprint>) -> ColResult<()> {
        out.clear();
        let (start, end) = var_range(self.chain_idx, row, self.chain_dat.len(), "ssl.chain")?;
        for at in (start..end).step_by(4) {
            let idx =
                u32::from_le_bytes(self.chain_dat[at..at + 4].try_into().expect("4-byte slice"));
            out.push(fp_at(self.fps, idx, "ssl.chain")?);
        }
        Ok(())
    }

    /// Materialise the full [`SslRecord`] for `row`.
    pub fn record(&self, row: u64) -> ColResult<SslRecord> {
        let mut chain = Vec::new();
        self.chain_fps_into(row, &mut chain)?;
        Ok(SslRecord {
            ts: Asn1Time::from_unix(self.ts(row)),
            uid: self.uid(row)?.to_string(),
            orig_h: self.orig_h(row),
            orig_p: self.orig_p(row),
            resp_h: self.resp_h(row),
            resp_p: self.resp_p(row),
            version: self.version(row)?,
            server_name: self.sni(row)?.map(str::to_string),
            established: self.established(row),
            cert_chain_fps: chain,
        })
    }
}

/// Borrowed, zero-copy accessors over the x509 table.
#[derive(Clone, Copy)]
pub struct X509Columns<'a> {
    /// Row count.
    pub rows: u64,
    ts: &'a [u8],
    fp: &'a [u8],
    version: &'a [u8],
    serial: &'a [u8],
    subject: &'a [u8],
    issuer: &'a [u8],
    not_before: &'a [u8],
    not_after: &'a [u8],
    flags: &'a [u8],
    path_len: &'a [u8],
    san_idx: &'a [u8],
    san_dat: &'a [u8],
    dict: Dict<'a>,
    fps: &'a [u8],
}

impl<'a> X509Columns<'a> {
    /// The row's fingerprint (the join key with the ssl table).
    pub fn fingerprint(&self, row: u64) -> ColResult<Fingerprint> {
        fp_at(self.fps, u32_at(self.fp, row), "x509.fp")
    }

    /// Materialise the full [`X509Record`] for `row`.
    pub fn record(&self, row: u64) -> ColResult<X509Record> {
        let flags = self.flags[row as usize];
        let (start, end) = var_range(self.san_idx, row, self.san_dat.len(), "x509.san")?;
        let mut san_dns = Vec::with_capacity((end - start) / 4);
        for at in (start..end).step_by(4) {
            let idx =
                u32::from_le_bytes(self.san_dat[at..at + 4].try_into().expect("4-byte slice"));
            san_dns.push(self.dict.get(idx)?.to_string());
        }
        Ok(X509Record {
            ts: Asn1Time::from_unix(u64_at(self.ts, row)),
            fingerprint: self.fingerprint(row)?,
            cert_version: u64_at(self.version, row),
            serial: self.dict.get(u32_at(self.serial, row))?.to_string(),
            subject: self.dict.get(u32_at(self.subject, row))?.to_string(),
            issuer: self.dict.get(u32_at(self.issuer, row))?.to_string(),
            not_before: Asn1Time::from_unix(u64_at(self.not_before, row)),
            not_after: Asn1Time::from_unix(u64_at(self.not_after, row)),
            basic_constraints_ca: (flags & FLAG_BC_PRESENT != 0).then_some(flags & FLAG_BC_CA != 0),
            path_len: (flags & FLAG_PATH_LEN != 0).then(|| u64_at(self.path_len, row)),
            san_dns,
        })
    }
}
