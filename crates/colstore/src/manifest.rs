//! The versioned `dataset.json` manifest: the store's self-description,
//! written last (so a crashed writer never leaves a manifest pointing at
//! incomplete columns) and validated first.

use crate::{ColError, ColResult, COLUMNS};
use certchain_obs::json::{self, JsonValue};
use std::collections::BTreeMap;
use std::path::Path;

/// Schema identifier stamped into every manifest.
pub const SCHEMA: &str = "certchain-colstore/v1";

/// Current format version. Bump on any layout change.
pub const VERSION: u64 = 1;

/// Manifest file name inside the store directory.
pub const MANIFEST_FILE: &str = "dataset.json";

/// Store directory name inside a dataset directory.
pub const STORE_DIR: &str = "colstore";

/// Parsed and schema-checked `dataset.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Format version (always [`VERSION`] for manifests this code wrote).
    pub version: u64,
    /// Rows in the ssl table.
    pub ssl_rows: u64,
    /// Rows in the x509 table.
    pub x509_rows: u64,
    /// Entries in the string dictionary.
    pub dict_entries: u64,
    /// Entries in the fingerprint table.
    pub fp_entries: u64,
    /// Byte length of every column file, keyed by file name.
    pub columns: BTreeMap<String, u64>,
}

impl Manifest {
    /// Serialise to the on-disk JSON document.
    pub fn to_json(&self) -> JsonValue {
        let columns = self
            .columns
            .iter()
            .map(|(name, bytes)| (name.clone(), JsonValue::Num(*bytes as f64)))
            .collect();
        JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Str(SCHEMA.into())),
            ("version".into(), JsonValue::Num(self.version as f64)),
            ("ssl_rows".into(), JsonValue::Num(self.ssl_rows as f64)),
            ("x509_rows".into(), JsonValue::Num(self.x509_rows as f64)),
            (
                "dict_entries".into(),
                JsonValue::Num(self.dict_entries as f64),
            ),
            ("fp_entries".into(), JsonValue::Num(self.fp_entries as f64)),
            ("columns".into(), JsonValue::Obj(columns)),
        ])
    }

    /// Parse and schema-check a manifest document. Version mismatches are
    /// reported with expected vs found so `certchain analyze` can fail
    /// before touching any column bytes.
    pub fn from_json(doc: &JsonValue) -> ColResult<Manifest> {
        let schema = doc.get("schema").and_then(JsonValue::as_str);
        if schema != Some(SCHEMA) {
            return Err(ColError::Format(format!(
                "columnar dataset schema mismatch: expected {SCHEMA:?}, found {:?}",
                schema.unwrap_or("<missing>")
            )));
        }
        let version = doc
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ColError::Format("manifest missing numeric \"version\"".into()))?;
        if version != VERSION {
            return Err(ColError::Format(format!(
                "columnar dataset version mismatch: expected {VERSION}, found {version} \
                 (re-run `certchain convert` or regenerate the dataset)"
            )));
        }
        let field = |name: &str| {
            doc.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| ColError::Format(format!("manifest missing numeric {name:?}")))
        };
        let mut columns = BTreeMap::new();
        let cols = doc
            .get("columns")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| ColError::Format("manifest missing \"columns\" object".into()))?;
        for (name, bytes) in cols {
            let bytes = bytes.as_u64().ok_or_else(|| {
                ColError::Format(format!("manifest column {name:?} has a non-numeric length"))
            })?;
            columns.insert(name.clone(), bytes);
        }
        for (name, _) in COLUMNS {
            if !columns.contains_key(*name) {
                return Err(ColError::Format(format!(
                    "manifest is missing column {name:?}"
                )));
            }
        }
        Ok(Manifest {
            version,
            ssl_rows: field("ssl_rows")?,
            x509_rows: field("x509_rows")?,
            dict_entries: field("dict_entries")?,
            fp_entries: field("fp_entries")?,
            columns,
        })
    }

    /// Read and check `<store_dir>/dataset.json`.
    pub fn load(store_dir: &Path) -> ColResult<Manifest> {
        let path = store_dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(crate::io_ctx(format!("reading {}", path.display())))?;
        let doc = json::parse(&text)
            .map_err(|e| ColError::Format(format!("{}: invalid JSON: {e}", path.display())))?;
        Manifest::from_json(&doc)
    }

    /// Write `<store_dir>/dataset.json`.
    pub fn store(&self, store_dir: &Path) -> ColResult<()> {
        let path = store_dir.join(MANIFEST_FILE);
        let text = self.to_json().to_pretty() + "\n";
        std::fs::write(&path, text).map_err(crate::io_ctx(format!("writing {}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            version: VERSION,
            ssl_rows: 10,
            x509_rows: 4,
            dict_entries: 7,
            fp_entries: 3,
            columns: COLUMNS.iter().map(|(n, _)| (n.to_string(), 0)).collect(),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let m = sample();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn version_mismatch_names_expected_and_found() {
        let mut doc = sample().to_json();
        if let JsonValue::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "version" {
                    *v = JsonValue::Num(99.0);
                }
            }
        }
        let err = Manifest::from_json(&doc).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("expected 1"), "{msg}");
        assert!(msg.contains("found 99"), "{msg}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let doc = JsonValue::Obj(vec![(
            "schema".into(),
            JsonValue::Str("something-else/v9".into()),
        )]);
        let msg = Manifest::from_json(&doc).unwrap_err().to_string();
        assert!(msg.contains(SCHEMA), "{msg}");
        assert!(msg.contains("something-else/v9"), "{msg}");
    }

    #[test]
    fn missing_column_is_rejected() {
        let mut m = sample();
        m.columns.remove("ssl.ts");
        let msg = Manifest::from_json(&m.to_json()).unwrap_err().to_string();
        assert!(msg.contains("ssl.ts"), "{msg}");
    }
}
