//! The versioned `dataset.json` manifest: the store's self-description,
//! written last (so a crashed writer never leaves a manifest pointing at
//! incomplete columns) and validated first.
//!
//! Two format versions are readable. v1 records only per-file byte
//! lengths; v2 additionally records `segment_rows` and, for every
//! fixed-width column, the per-segment metadata (rows, encoded bytes,
//! encoding, zone map) that the segmented reader and the zone-map skip
//! rule consume. Unknown versions are a hard error — never a silent
//! fallback.

use crate::category::CategoryDigest;
use crate::codec;
use crate::segment::SegmentMeta;
use crate::{ColError, ColResult, COLUMNS};
use certchain_obs::json::{self, JsonValue};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Schema identifier stamped into every manifest.
pub const SCHEMA: &str = "certchain-colstore/v1";

/// Current format version. Bump on any layout change.
pub const VERSION: u64 = 2;

/// The legacy one-file-per-field format, still fully readable.
pub const VERSION_V1: u64 = 1;

/// Manifest file name inside the store directory.
pub const MANIFEST_FILE: &str = "dataset.json";

/// Store directory name inside a dataset directory.
pub const STORE_DIR: &str = "colstore";

/// Parsed and schema-checked `dataset.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Format version ([`VERSION_V1`] or [`VERSION`]).
    pub version: u64,
    /// Rows in the ssl table.
    pub ssl_rows: u64,
    /// Rows in the x509 table.
    pub x509_rows: u64,
    /// Entries in the string dictionary.
    pub dict_entries: u64,
    /// Entries in the fingerprint table.
    pub fp_entries: u64,
    /// Byte length of every column file, keyed by file name.
    pub columns: BTreeMap<String, u64>,
    /// Nominal rows per segment (v2 only; 0 in v1 manifests).
    pub segment_rows: u64,
    /// Per-segment metadata for every fixed-width column (v2 only;
    /// empty in v1 manifests).
    pub segments: BTreeMap<String, Vec<SegmentMeta>>,
    /// Optional per-ssl-segment chain-category digests (v2 only). When
    /// present, one digest per ssl row band, each covering exactly that
    /// band's rows — all-or-nothing: a store either digests every ssl
    /// segment or records none, so the skip rule never has to reason
    /// about partial coverage. `None` (old stores, or writers without a
    /// category provider) simply disables category segment-skipping.
    pub category_digests: Option<Vec<CategoryDigest>>,
}

impl Manifest {
    /// Serialise to the on-disk JSON document.
    pub fn to_json(&self) -> JsonValue {
        let columns = self
            .columns
            .iter()
            .map(|(name, bytes)| (name.clone(), JsonValue::Num(*bytes as f64)))
            .collect();
        let mut fields = vec![
            ("schema".into(), JsonValue::Str(SCHEMA.into())),
            ("version".into(), JsonValue::Num(self.version as f64)),
            ("ssl_rows".into(), JsonValue::Num(self.ssl_rows as f64)),
            ("x509_rows".into(), JsonValue::Num(self.x509_rows as f64)),
            (
                "dict_entries".into(),
                JsonValue::Num(self.dict_entries as f64),
            ),
            ("fp_entries".into(), JsonValue::Num(self.fp_entries as f64)),
            ("columns".into(), JsonValue::Obj(columns)),
        ];
        if self.version >= VERSION {
            fields.push((
                "segment_rows".into(),
                JsonValue::Num(self.segment_rows as f64),
            ));
            let segments = self
                .segments
                .iter()
                .map(|(name, metas)| {
                    (
                        name.clone(),
                        JsonValue::Arr(metas.iter().map(SegmentMeta::to_json).collect()),
                    )
                })
                .collect();
            fields.push(("segments".into(), JsonValue::Obj(segments)));
            if let Some(digests) = &self.category_digests {
                fields.push((
                    "category_digests".into(),
                    JsonValue::Arr(digests.iter().map(CategoryDigest::to_json).collect()),
                ));
            }
        }
        JsonValue::Obj(fields)
    }

    /// Parse and schema-check a manifest document. Version mismatches are
    /// reported with expected vs found so `certchain analyze` can fail
    /// before touching any column bytes.
    pub fn from_json(doc: &JsonValue) -> ColResult<Manifest> {
        let schema = doc.get("schema").and_then(JsonValue::as_str);
        if schema != Some(SCHEMA) {
            return Err(ColError::Format(format!(
                "columnar dataset schema mismatch: expected {SCHEMA:?}, found {:?}",
                schema.unwrap_or("<missing>")
            )));
        }
        let version = doc
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ColError::Format("manifest missing numeric \"version\"".into()))?;
        if version != VERSION_V1 && version != VERSION {
            return Err(ColError::Format(format!(
                "columnar dataset version mismatch: expected {VERSION_V1} or {VERSION}, \
                 found {version} (re-run `certchain convert` or regenerate the dataset)"
            )));
        }
        let field = |name: &str| {
            doc.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| ColError::Format(format!("manifest missing numeric {name:?}")))
        };
        let mut columns = BTreeMap::new();
        let cols = doc
            .get("columns")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| ColError::Format("manifest missing \"columns\" object".into()))?;
        for (name, bytes) in cols {
            let bytes = bytes.as_u64().ok_or_else(|| {
                ColError::Format(format!("manifest column {name:?} has a non-numeric length"))
            })?;
            columns.insert(name.clone(), bytes);
        }
        for (name, _) in COLUMNS {
            if !columns.contains_key(*name) {
                return Err(ColError::Format(format!(
                    "manifest is missing column {name:?}"
                )));
            }
        }
        let manifest = Manifest {
            version,
            ssl_rows: field("ssl_rows")?,
            x509_rows: field("x509_rows")?,
            dict_entries: field("dict_entries")?,
            fp_entries: field("fp_entries")?,
            columns,
            segment_rows: if version >= VERSION {
                field("segment_rows")?
            } else {
                0
            },
            segments: if version >= VERSION {
                parse_segments(doc)?
            } else {
                BTreeMap::new()
            },
            category_digests: if version >= VERSION {
                parse_category_digests(doc)?
            } else {
                None
            },
        };
        if manifest.version >= VERSION {
            manifest.validate_segments()?;
        }
        Ok(manifest)
    }

    /// Structural checks only a v2 manifest needs: every fixed-width
    /// column has a segment list whose rows and bytes sum to the table
    /// row count and the recorded file length, all columns of one table
    /// share identical row banding, and encodings are self-consistent.
    fn validate_segments(&self) -> ColResult<()> {
        if self.segment_rows == 0 {
            return Err(ColError::Format(
                "v2 manifest has segment_rows 0 (must be at least 1)".into(),
            ));
        }
        let mut ssl_bands: Option<Vec<u64>> = None;
        let mut x509_bands: Option<Vec<u64>> = None;
        for (name, width) in COLUMNS {
            let Some(width) = width else { continue };
            let metas = self.segments.get(*name).ok_or_else(|| {
                ColError::Format(format!(
                    "v2 manifest is missing segments for column {name:?}"
                ))
            })?;
            let rows = crate::rows_for(name, self.ssl_rows, self.x509_rows)
                .expect("fixed-width columns are table columns");
            let mut row_sum = 0u64;
            let mut byte_sum = 0u64;
            for meta in metas {
                if meta.rows == 0 || meta.rows > self.segment_rows {
                    return Err(ColError::Format(format!(
                        "column {name:?}: segment of {} rows outside 1..={}",
                        meta.rows, self.segment_rows
                    )));
                }
                codec::validate_param(meta.encoding, meta.param, *width as u8)
                    .map_err(|e| ColError::Format(format!("column {name:?}: {e}")))?;
                row_sum += meta.rows;
                byte_sum += meta.bytes;
            }
            if row_sum != rows {
                return Err(ColError::Format(format!(
                    "column {name:?}: segments cover {row_sum} rows, table has {rows}"
                )));
            }
            let file_len = *self.columns.get(*name).expect("checked above");
            if byte_sum != file_len {
                return Err(ColError::Format(format!(
                    "column {name:?}: segments cover {byte_sum} bytes, file has {file_len}"
                )));
            }
            let bands: Vec<u64> = metas.iter().map(|m| m.rows).collect();
            let slot = if name.starts_with("ssl.") {
                &mut ssl_bands
            } else {
                &mut x509_bands
            };
            match slot {
                None => *slot = Some(bands),
                Some(first) => {
                    if *first != bands {
                        return Err(ColError::Format(format!(
                            "column {name:?}: segment row banding disagrees with its table"
                        )));
                    }
                }
            }
        }
        if let Some(digests) = &self.category_digests {
            let bands = ssl_bands.as_deref().unwrap_or(&[]);
            if digests.len() != bands.len() {
                return Err(ColError::Format(format!(
                    "{} category digests for {} ssl segments",
                    digests.len(),
                    bands.len()
                )));
            }
            for (i, (digest, &rows)) in digests.iter().zip(bands).enumerate() {
                if digest.rows() != rows {
                    return Err(ColError::Format(format!(
                        "category digest {i} covers {} rows, ssl segment has {rows}",
                        digest.rows()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Read and check `<store_dir>/dataset.json`.
    pub fn load(store_dir: &Path) -> ColResult<Manifest> {
        let path = store_dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(crate::io_ctx(format!("reading {}", path.display())))?;
        let doc = json::parse(&text)
            .map_err(|e| ColError::Format(format!("{}: invalid JSON: {e}", path.display())))?;
        Manifest::from_json(&doc)
    }

    /// Write `<store_dir>/dataset.json`, fsynced before returning.
    ///
    /// The manifest is the commit point for a dataset: readers trust any
    /// files it names, so it must be durable itself before callers treat
    /// the store as published.
    pub fn store(&self, store_dir: &Path) -> ColResult<()> {
        let path = store_dir.join(MANIFEST_FILE);
        let text = self.to_json().to_pretty() + "\n";
        let mut file = std::fs::File::create(&path)
            .map_err(crate::io_ctx(format!("creating {}", path.display())))?;
        file.write_all(text.as_bytes())
            .map_err(crate::io_ctx(format!("writing {}", path.display())))?;
        file.sync_all()
            .map_err(crate::io_ctx(format!("syncing {}", path.display())))?;
        Ok(())
    }
}

fn parse_category_digests(doc: &JsonValue) -> ColResult<Option<Vec<CategoryDigest>>> {
    let Some(value) = doc.get("category_digests") else {
        return Ok(None);
    };
    let arr = value
        .as_arr()
        .ok_or_else(|| ColError::Format("manifest \"category_digests\" is not an array".into()))?;
    let mut digests = Vec::with_capacity(arr.len());
    for item in arr {
        digests.push(CategoryDigest::from_json(item)?);
    }
    Ok(Some(digests))
}

fn parse_segments(doc: &JsonValue) -> ColResult<BTreeMap<String, Vec<SegmentMeta>>> {
    let obj = doc
        .get("segments")
        .and_then(JsonValue::as_obj)
        .ok_or_else(|| ColError::Format("v2 manifest missing \"segments\" object".into()))?;
    let mut out = BTreeMap::new();
    for (name, value) in obj {
        let arr = value.as_arr().ok_or_else(|| {
            ColError::Format(format!("manifest segments for {name:?} is not an array"))
        })?;
        let mut metas = Vec::with_capacity(arr.len());
        for item in arr {
            metas.push(SegmentMeta::from_json(name, item)?);
        }
        out.insert(name.clone(), metas);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Encoding;
    use crate::zonemap::ZoneMap;

    fn sample_v1() -> Manifest {
        Manifest {
            version: VERSION_V1,
            ssl_rows: 10,
            x509_rows: 4,
            dict_entries: 7,
            fp_entries: 3,
            columns: COLUMNS.iter().map(|(n, _)| (n.to_string(), 0)).collect(),
            segment_rows: 0,
            segments: BTreeMap::new(),
            category_digests: None,
        }
    }

    fn sample_v2() -> Manifest {
        let mut m = sample_v1();
        m.version = VERSION;
        m.segment_rows = 16;
        for (name, width) in COLUMNS {
            let Some(width) = width else { continue };
            let rows = crate::rows_for(name, m.ssl_rows, m.x509_rows).unwrap();
            let bytes = rows * width;
            m.columns.insert(name.to_string(), bytes);
            let zone = if *name == "ssl.sni" {
                ZoneMap::with_presence(&[1, 2])
            } else {
                ZoneMap::of(&[1, 2])
            };
            m.segments.insert(
                name.to_string(),
                vec![SegmentMeta {
                    rows,
                    bytes,
                    encoding: Encoding::Plain,
                    param: *width as u8,
                    zone,
                }],
            );
        }
        m
    }

    #[test]
    fn v1_round_trips_through_json() {
        let m = sample_v1();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        let text = m.to_json().to_pretty();
        assert!(
            !text.contains("segments"),
            "v1 manifests must not grow v2 fields: {text}"
        );
    }

    #[test]
    fn v2_round_trips_through_json() {
        let m = sample_v2();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn version_mismatch_names_expected_and_found() {
        let mut doc = sample_v1().to_json();
        if let JsonValue::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "version" {
                    *v = JsonValue::Num(99.0);
                }
            }
        }
        let err = Manifest::from_json(&doc).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("expected 1"), "{msg}");
        assert!(msg.contains("found 99"), "{msg}");
        assert!(msg.contains("certchain convert"), "{msg}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let doc = JsonValue::Obj(vec![(
            "schema".into(),
            JsonValue::Str("something-else/v9".into()),
        )]);
        let msg = Manifest::from_json(&doc).unwrap_err().to_string();
        assert!(msg.contains(SCHEMA), "{msg}");
        assert!(msg.contains("something-else/v9"), "{msg}");
    }

    #[test]
    fn missing_column_is_rejected() {
        let mut m = sample_v1();
        m.columns.remove("ssl.ts");
        let msg = Manifest::from_json(&m.to_json()).unwrap_err().to_string();
        assert!(msg.contains("ssl.ts"), "{msg}");
    }

    #[test]
    fn v2_segment_row_sum_mismatch_is_rejected() {
        let mut m = sample_v2();
        m.segments.get_mut("ssl.ts").unwrap()[0].rows = 9;
        let msg = Manifest::from_json(&m.to_json()).unwrap_err().to_string();
        assert!(msg.contains("ssl.ts"), "{msg}");
        assert!(msg.contains("9 rows"), "{msg}");
    }

    #[test]
    fn v2_divergent_banding_is_rejected() {
        let mut m = sample_v2();
        let metas = m.segments.get_mut("ssl.sni").unwrap();
        let mut meta = metas[0].clone();
        metas[0].rows = 4;
        metas[0].bytes = 16;
        meta.rows = 6;
        meta.bytes = 24;
        metas.push(meta);
        let msg = Manifest::from_json(&m.to_json()).unwrap_err().to_string();
        assert!(msg.contains("banding"), "{msg}");
    }

    #[test]
    fn v2_missing_segments_object_is_rejected() {
        let mut doc = sample_v2().to_json();
        if let JsonValue::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "segments");
        }
        let msg = Manifest::from_json(&doc).unwrap_err().to_string();
        assert!(msg.contains("segments"), "{msg}");
    }

    #[test]
    fn v2_category_digests_round_trip() {
        let mut m = sample_v2();
        let mut digest = CategoryDigest::default();
        digest.counts[crate::category::Category::PublicOnly.index()] = m.ssl_rows;
        m.category_digests = Some(vec![digest]);
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        // A digest-less manifest stays digest-less (optional field).
        m.category_digests = None;
        let text = m.to_json().to_pretty();
        assert!(!text.contains("category_digests"), "{text}");
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn v2_category_digest_mismatches_are_rejected() {
        // Wrong digest count vs ssl segment count.
        let mut m = sample_v2();
        m.category_digests = Some(vec![]);
        let msg = Manifest::from_json(&m.to_json()).unwrap_err().to_string();
        assert!(msg.contains("category digests"), "{msg}");
        // Digest whose row total disagrees with its segment.
        let mut m = sample_v2();
        let mut digest = CategoryDigest::default();
        digest.counts[0] = m.ssl_rows + 1;
        m.category_digests = Some(vec![digest]);
        let msg = Manifest::from_json(&m.to_json()).unwrap_err().to_string();
        assert!(msg.contains("category digest 0"), "{msg}");
    }
}
