//! Generation-based checkpoint directories: crash-safe persistence for
//! resumable accumulator state.
//!
//! A checkpoint root holds numbered generation directories:
//!
//! ```text
//! checkpoint/
//!   gen-000001/
//!     checkpoint.json    manifest: schema, generation, file sizes, meta
//!     <field files>      one file per serialized state field
//!   gen-000002/
//!     ...
//! ```
//!
//! The container applies the same discipline as the columnar store's
//! [`crate::DatasetWriter`]: every data file is written (or carried over
//! from the previous generation) *before* the manifest, and the manifest
//! records each file's exact byte length. A writer that dies mid-way
//! leaves a directory without a valid manifest — never a manifest
//! pointing at incomplete data — and the loader skips such directories,
//! falling back to the newest generation whose manifest exists and whose
//! files all have exactly the recorded sizes.
//!
//! Growth stays O(new data) for append-only fields: a new generation
//! *carries* unchanged files from its predecessor via hard links (same
//! filesystem by construction; silent copy fallback otherwise), so only
//! genuinely new bytes are written. Mutable aggregate fields are
//! rewritten per generation, which costs O(state), not O(history).
//!
//! The container is generic: it stores named byte blobs plus a caller
//! metadata object. What the fields *mean* is the caller's business
//! (`certchain-chainlab` encodes its `PipelineState` through this).

use crate::{io_ctx, ColError, ColResult};
use certchain_obs::json::{self, JsonValue};
use certchain_obs::trace::Span;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Schema identifier stamped into every checkpoint manifest.
pub const CHECKPOINT_SCHEMA: &str = "certchain-checkpoint/v1";

/// Manifest file name inside a generation directory — written last.
pub const CHECKPOINT_MANIFEST_FILE: &str = "checkpoint.json";

/// Generation directory name for generation `n`.
fn gen_dir_name(generation: u64) -> String {
    format!("gen-{generation:06}")
}

/// Parse a generation number back out of a directory name.
fn parse_gen_dir(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("gen-")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// List the generation numbers present under `root` (any validity),
/// ascending. A missing root is an empty list, not an error.
fn list_generations(root: &Path) -> ColResult<Vec<u64>> {
    let mut gens = Vec::new();
    let entries = match std::fs::read_dir(root) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(gens),
        Err(e) => return Err(ColError::Io(format!("reading {}", root.display()), e)),
    };
    for entry in entries {
        let entry = entry.map_err(io_ctx(format!("reading {}", root.display())))?;
        if let Some(gen) = entry.file_name().to_str().and_then(parse_gen_dir) {
            gens.push(gen);
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// An in-progress checkpoint generation. Field files accumulate first;
/// [`CheckpointWriter::commit`] writes the manifest last, which is the
/// single action that makes the generation loadable.
pub struct CheckpointWriter {
    dir: PathBuf,
    generation: u64,
    files: BTreeMap<String, u64>,
    meta: Vec<(String, JsonValue)>,
    trace: Option<Span>,
}

impl CheckpointWriter {
    /// Start generation `generation` under `root`, creating the root as
    /// needed. Errors if that generation's directory already exists —
    /// pick a fresh number with [`next_generation`].
    pub fn begin(root: &Path, generation: u64) -> ColResult<CheckpointWriter> {
        std::fs::create_dir_all(root).map_err(io_ctx(format!("creating {}", root.display())))?;
        let dir = root.join(gen_dir_name(generation));
        std::fs::create_dir(&dir).map_err(io_ctx(format!("creating {}", dir.display())))?;
        Ok(CheckpointWriter {
            dir,
            generation,
            files: BTreeMap::new(),
            meta: Vec::new(),
            trace: None,
        })
    }

    /// Attach a trace span: field writes and the manifest commit then
    /// emit phase events (file name, bytes, fsync/hardlink mode) on it.
    /// The span ends when the writer commits or is dropped, so an
    /// aborted generation still closes its span.
    pub fn attach_trace(&mut self, span: Span) {
        self.trace = Some(span);
    }

    /// Write one field file.
    pub fn write_field(&mut self, name: &str, bytes: &[u8]) -> ColResult<()> {
        check_field_name(name)?;
        let path = self.dir.join(name);
        let mut file =
            std::fs::File::create(&path).map_err(io_ctx(format!("creating {}", path.display())))?;
        file.write_all(bytes)
            .map_err(io_ctx(format!("writing {}", path.display())))?;
        file.sync_all()
            .map_err(io_ctx(format!("syncing {}", path.display())))?;
        if let Some(t) = &self.trace {
            t.event(
                "checkpoint.field",
                &[
                    ("file", name.to_string()),
                    ("bytes", bytes.len().to_string()),
                    ("phase", "fsync".to_string()),
                ],
            );
        }
        self.files.insert(name.to_string(), bytes.len() as u64);
        Ok(())
    }

    /// Carry an unchanged field file over from a previous generation
    /// without rewriting its bytes: hard-link when the filesystem allows
    /// it, copy otherwise. The source must be exactly `expected` bytes —
    /// a mismatch means the previous generation is not what the caller
    /// thinks it is, and is reported as truncation rather than silently
    /// propagated.
    pub fn carry_field(&mut self, name: &str, from: &Path, expected: u64) -> ColResult<()> {
        check_field_name(name)?;
        let found = std::fs::metadata(from)
            .map_err(io_ctx(format!("stat {}", from.display())))?
            .len();
        if found != expected {
            return Err(ColError::Truncated {
                file: from.display().to_string(),
                expected,
                found,
            });
        }
        let to = self.dir.join(name);
        let linked = std::fs::hard_link(from, &to).is_ok();
        if !linked {
            std::fs::copy(from, &to).map_err(io_ctx(format!(
                "carrying {} to {}",
                from.display(),
                to.display()
            )))?;
        }
        if let Some(t) = &self.trace {
            t.event(
                "checkpoint.carry",
                &[
                    ("file", name.to_string()),
                    ("bytes", expected.to_string()),
                    ("mode", if linked { "hardlink" } else { "copy" }.to_string()),
                ],
            );
        }
        self.files.insert(name.to_string(), expected);
        Ok(())
    }

    /// Attach one caller-defined metadata entry (stored under `"meta"`
    /// in the manifest, returned verbatim by the loader).
    pub fn set_meta(&mut self, key: &str, value: JsonValue) {
        self.meta.push((key.to_string(), value));
    }

    /// Write the manifest and seal the generation. Until this returns,
    /// the generation is invisible to [`Checkpoint::load_latest`].
    pub fn commit(self) -> ColResult<Checkpoint> {
        let files_json = self
            .files
            .iter()
            .map(|(name, bytes)| (name.clone(), JsonValue::Num(*bytes as f64)))
            .collect();
        let doc = JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Str(CHECKPOINT_SCHEMA.into())),
            ("generation".into(), JsonValue::Num(self.generation as f64)),
            ("files".into(), JsonValue::Obj(files_json)),
            ("meta".into(), JsonValue::Obj(self.meta.clone())),
        ]);
        let path = self.dir.join(CHECKPOINT_MANIFEST_FILE);
        let text = doc.to_pretty() + "\n";
        let mut file =
            std::fs::File::create(&path).map_err(io_ctx(format!("creating {}", path.display())))?;
        file.write_all(text.as_bytes())
            .map_err(io_ctx(format!("writing {}", path.display())))?;
        file.sync_all()
            .map_err(io_ctx(format!("syncing {}", path.display())))?;
        if let Some(t) = &self.trace {
            t.event(
                "checkpoint.manifest",
                &[
                    ("generation", self.generation.to_string()),
                    ("bytes", text.len().to_string()),
                    ("phase", "fsync".to_string()),
                ],
            );
        }
        Ok(Checkpoint {
            dir: self.dir,
            generation: self.generation,
            files: self.files,
            meta: JsonValue::Obj(self.meta),
        })
    }

    /// The generation directory (for tests and diagnostics).
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Field names are plain file names — no path separators, no dot-files,
/// and not the manifest's own name.
fn check_field_name(name: &str) -> ColResult<()> {
    let ok = !name.is_empty()
        && name != CHECKPOINT_MANIFEST_FILE
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.');
    if ok {
        Ok(())
    } else {
        Err(ColError::Format(format!(
            "invalid checkpoint field name {name:?}"
        )))
    }
}

/// A validated, loadable checkpoint generation.
#[derive(Debug)]
pub struct Checkpoint {
    dir: PathBuf,
    /// The generation number.
    pub generation: u64,
    /// Byte length of every field file, keyed by field name.
    pub files: BTreeMap<String, u64>,
    /// The caller metadata object stored at commit time.
    pub meta: JsonValue,
}

impl Checkpoint {
    /// Open and validate one generation directory: the manifest must
    /// parse, carry the expected schema, and every listed field file
    /// must exist with exactly the recorded byte length. Any violation
    /// is an error — [`Checkpoint::load_latest`] turns it into fallback.
    pub fn open(dir: &Path) -> ColResult<Checkpoint> {
        let manifest_path = dir.join(CHECKPOINT_MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest_path)
            .map_err(io_ctx(format!("reading {}", manifest_path.display())))?;
        let doc = json::parse(&text).map_err(|e| {
            ColError::Format(format!("{}: invalid JSON: {e}", manifest_path.display()))
        })?;
        let schema = doc.get("schema").and_then(JsonValue::as_str);
        if schema != Some(CHECKPOINT_SCHEMA) {
            return Err(ColError::Format(format!(
                "checkpoint schema mismatch: expected {CHECKPOINT_SCHEMA:?}, found {:?}",
                schema.unwrap_or("<missing>")
            )));
        }
        let generation = doc
            .get("generation")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| {
                ColError::Format("checkpoint manifest missing numeric \"generation\"".into())
            })?;
        let mut files = BTreeMap::new();
        let listed = doc
            .get("files")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| ColError::Format("checkpoint manifest missing \"files\"".into()))?;
        for (name, size) in listed {
            let expected = size.as_u64().ok_or_else(|| {
                ColError::Format(format!(
                    "checkpoint file size for {name:?} is not an integer"
                ))
            })?;
            let path = dir.join(name);
            let found = std::fs::metadata(&path)
                .map_err(io_ctx(format!("stat {}", path.display())))?
                .len();
            if found != expected {
                return Err(ColError::Truncated {
                    file: name.clone(),
                    expected,
                    found,
                });
            }
            files.insert(name.clone(), expected);
        }
        let meta = doc
            .get("meta")
            .cloned()
            .unwrap_or(JsonValue::Obj(Vec::new()));
        Ok(Checkpoint {
            dir: dir.to_path_buf(),
            generation,
            files,
            meta,
        })
    }

    /// Load the newest valid generation under `root`, skipping (never
    /// deleting) directories that fail validation — a crash between the
    /// field files and the manifest leaves exactly such a directory, and
    /// resumption must fall back to the last complete state behind it.
    /// `Ok(None)` means no valid generation exists (fresh start).
    pub fn load_latest(root: &Path) -> ColResult<Option<Checkpoint>> {
        let gens = list_generations(root)?;
        for gen in gens.into_iter().rev() {
            let dir = root.join(gen_dir_name(gen));
            if let Ok(ckpt) = Checkpoint::open(&dir) {
                return Ok(Some(ckpt));
            }
        }
        Ok(None)
    }

    /// The first unused generation number under `root`: one past the
    /// highest existing directory, valid or not (a crashed writer's
    /// directory must never be reused).
    pub fn next_generation(root: &Path) -> ColResult<u64> {
        Ok(list_generations(root)?.last().copied().unwrap_or(0) + 1)
    }

    /// Delete generations older than the `keep` newest *valid* ones
    /// (invalid directories in that older range go too). Returns the
    /// number of directories removed. The newest valid generation is
    /// never removed; with fewer than `keep` valid generations nothing
    /// happens.
    pub fn prune(root: &Path, keep: usize) -> ColResult<usize> {
        if keep == 0 {
            return Err(ColError::Format(
                "checkpoint prune requires keep >= 1".into(),
            ));
        }
        let gens = list_generations(root)?;
        let valid: Vec<u64> = gens
            .iter()
            .copied()
            .filter(|&gen| Checkpoint::open(&root.join(gen_dir_name(gen))).is_ok())
            .collect();
        if valid.len() <= keep {
            return Ok(0);
        }
        let cutoff = valid[valid.len() - keep];
        let mut removed = 0;
        for gen in gens {
            if gen < cutoff {
                let dir = root.join(gen_dir_name(gen));
                std::fs::remove_dir_all(&dir)
                    .map_err(io_ctx(format!("removing {}", dir.display())))?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Read one field file fully into memory.
    pub fn read_field(&self, name: &str) -> ColResult<Vec<u8>> {
        let path = self
            .field_path(name)
            .ok_or_else(|| ColError::Format(format!("checkpoint has no field {name:?}")))?;
        std::fs::read(&path).map_err(io_ctx(format!("reading {}", path.display())))
    }

    /// Absolute path of a field file, if the manifest lists it.
    pub fn field_path(&self, name: &str) -> Option<PathBuf> {
        self.files.contains_key(name).then(|| self.dir.join(name))
    }

    /// The generation directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("certchain-checkpoint-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn write_gen(root: &Path, generation: u64, payload: &[u8]) -> Checkpoint {
        let mut w = CheckpointWriter::begin(root, generation).unwrap();
        w.write_field("data.dat", payload).unwrap();
        w.set_meta("records", JsonValue::Num(payload.len() as f64));
        w.commit().unwrap()
    }

    #[test]
    fn round_trips_fields_and_meta() {
        let root = tmp_root("round-trip");
        write_gen(&root, 1, b"hello");
        let ckpt = Checkpoint::load_latest(&root).unwrap().expect("one gen");
        assert_eq!(ckpt.generation, 1);
        assert_eq!(ckpt.read_field("data.dat").unwrap(), b"hello");
        assert_eq!(
            ckpt.meta.get("records").and_then(JsonValue::as_u64),
            Some(5)
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn latest_valid_generation_wins() {
        let root = tmp_root("latest");
        write_gen(&root, 1, b"old");
        write_gen(&root, 2, b"new");
        let ckpt = Checkpoint::load_latest(&root).unwrap().unwrap();
        assert_eq!(ckpt.generation, 2);
        assert_eq!(ckpt.read_field("data.dat").unwrap(), b"new");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn partial_generation_without_manifest_is_rejected_and_skipped() {
        let root = tmp_root("partial");
        write_gen(&root, 1, b"complete");
        // Simulate a crash after the field files but before the
        // manifest: a writer that is never committed.
        let mut w = CheckpointWriter::begin(&root, 2).unwrap();
        w.write_field("data.dat", b"incomplete").unwrap();
        let dir = w.dir().to_path_buf();
        drop(w); // no commit — no manifest
        assert!(Checkpoint::open(&dir).is_err(), "partial gen must not open");
        let ckpt = Checkpoint::load_latest(&root).unwrap().unwrap();
        assert_eq!(ckpt.generation, 1, "fallback to last complete generation");
        assert_eq!(ckpt.read_field("data.dat").unwrap(), b"complete");
        // And the crashed directory's number is never reused.
        assert_eq!(Checkpoint::next_generation(&root).unwrap(), 3);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncated_field_file_is_rejected_and_skipped() {
        let root = tmp_root("truncated");
        write_gen(&root, 1, b"complete");
        let sealed = write_gen(&root, 2, b"will-be-truncated");
        let path = sealed.field_path("data.dat").unwrap();
        std::fs::write(&path, b"short").unwrap();
        let err = Checkpoint::open(sealed.dir()).unwrap_err();
        assert!(matches!(err, ColError::Truncated { .. }), "got {err}");
        let ckpt = Checkpoint::load_latest(&root).unwrap().unwrap();
        assert_eq!(ckpt.generation, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn carry_links_previous_fields_without_rewriting() {
        let root = tmp_root("carry");
        let first = write_gen(&root, 1, b"carried bytes");
        let mut w = CheckpointWriter::begin(&root, 2).unwrap();
        w.carry_field(
            "data.dat",
            &first.field_path("data.dat").unwrap(),
            first.files["data.dat"],
        )
        .unwrap();
        w.write_field("extra.dat", b"new").unwrap();
        w.commit().unwrap();
        let ckpt = Checkpoint::load_latest(&root).unwrap().unwrap();
        assert_eq!(ckpt.generation, 2);
        assert_eq!(ckpt.read_field("data.dat").unwrap(), b"carried bytes");
        assert_eq!(ckpt.read_field("extra.dat").unwrap(), b"new");
        // Carrying with a wrong expected size is truncation, not silence.
        let mut w = CheckpointWriter::begin(&root, 3).unwrap();
        let err = w
            .carry_field("data.dat", &ckpt.field_path("data.dat").unwrap(), 999)
            .unwrap_err();
        assert!(matches!(err, ColError::Truncated { .. }));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn prune_keeps_newest_valid_generations() {
        let root = tmp_root("prune");
        for gen in 1..=4 {
            write_gen(&root, gen, format!("gen {gen}").as_bytes());
        }
        let removed = Checkpoint::prune(&root, 2).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(list_generations(&root).unwrap(), vec![3, 4]);
        // Fewer valid generations than `keep` is a no-op.
        assert_eq!(Checkpoint::prune(&root, 2).unwrap(), 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn trace_span_records_field_and_manifest_events() {
        use certchain_obs::{TraceJournal, TraceKind};
        use std::sync::Arc;
        let root = tmp_root("traced");
        let journal = Arc::new(TraceJournal::new(64));
        let first = write_gen(&root, 1, b"carried");
        let mut w = CheckpointWriter::begin(&root, 2).unwrap();
        w.attach_trace(journal.span("checkpoint.commit"));
        w.write_field("fresh.dat", b"abc").unwrap();
        w.carry_field(
            "data.dat",
            &first.field_path("data.dat").unwrap(),
            first.files["data.dat"],
        )
        .unwrap();
        w.commit().unwrap();
        let events = journal.snapshot();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"checkpoint.field"));
        assert!(names.contains(&"checkpoint.carry"));
        assert!(names.contains(&"checkpoint.manifest"));
        // The manifest event lands before the span closes (commit order).
        let manifest_seq = events
            .iter()
            .find(|e| e.name == "checkpoint.manifest")
            .map(|e| e.seq)
            .unwrap();
        let end_seq = events
            .iter()
            .find(|e| e.kind == TraceKind::SpanEnd)
            .map(|e| e.seq)
            .unwrap();
        assert!(manifest_seq < end_seq, "span must end after the manifest");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn empty_root_loads_none() {
        let root = tmp_root("empty");
        assert!(Checkpoint::load_latest(&root).unwrap().is_none());
        assert_eq!(Checkpoint::next_generation(&root).unwrap(), 1);
    }

    #[test]
    fn field_names_are_validated() {
        let root = tmp_root("names");
        let mut w = CheckpointWriter::begin(&root, 1).unwrap();
        for bad in ["", "../evil", "a/b", ".hidden", CHECKPOINT_MANIFEST_FILE] {
            assert!(
                w.write_field(bad, b"x").is_err(),
                "{bad:?} must be rejected"
            );
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}
