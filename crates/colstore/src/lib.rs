//! `certchain-colstore`: the versioned, mmap-backed columnar on-disk
//! dataset format — the binary representation `certchain analyze` reads
//! instead of re-parsing Zeek TSV on every run.
//!
//! # Layout
//!
//! A columnar store lives in a `colstore/` directory next to the dataset
//! sidecars. One file per field, fixed-width where the field is
//! fixed-width, plus three shared tables:
//!
//! ```text
//! colstore/
//!   dataset.json       manifest: schema/version, row counts, byte lengths
//!   strings.idx        u64 LE end offset per dictionary entry
//!   strings.dat        concatenated UTF-8 bytes of all dictionary entries
//!   fps.dat            32 bytes per distinct fingerprint
//!   ssl.ts             u64 LE epoch seconds per row
//!   ssl.uid.idx        u64 LE end offset per row into ssl.uid.dat
//!   ssl.uid.dat        raw UTF-8 uid bytes (uids never repeat: no dict)
//!   ssl.orig_h         u32 LE (IPv4, big-endian octets packed to u32)
//!   ssl.orig_p         u16 LE
//!   ssl.resp_h         u32 LE
//!   ssl.resp_p         u16 LE
//!   ssl.version        u8 (0 = TLSv12, 1 = TLSv13)
//!   ssl.sni            u32 LE dictionary index, u32::MAX = unset
//!   ssl.established    u8 (0/1)
//!   ssl.chain.idx      u64 LE end offset per row into ssl.chain.dat
//!   ssl.chain.dat      u32 LE fingerprint-table index per chain entry
//!   x509.ts            u64 LE
//!   x509.fp            u32 LE fingerprint-table index
//!   x509.version       u64 LE
//!   x509.serial        u32 LE dictionary index
//!   x509.subject       u32 LE dictionary index
//!   x509.issuer        u32 LE dictionary index
//!   x509.not_before    u64 LE
//!   x509.not_after     u64 LE
//!   x509.flags         u8 (bit0 bc present, bit1 bc value, bit2 pathLen present)
//!   x509.path_len      u64 LE (0 when absent)
//!   x509.san.idx       u64 LE end offset per row into x509.san.dat
//!   x509.san.dat       u32 LE dictionary index per SAN entry
//! ```
//!
//! Heavily repeated strings (SNI, issuer, subject, serial, SAN names) go
//! through one shared dictionary, so every data column is fixed-width and
//! `analyze` can shard workers by row ranges with plain offset arithmetic.
//! Connection uids never repeat, so they bypass the dictionary into a raw
//! var-length column — the writer's memory stays O(distinct strings +
//! distinct fingerprints), never O(rows).
//!
//! # Format versions
//!
//! The layout above is **v1**: every fixed-width column is raw
//! little-endian values. **v2** (the current default) keeps the same
//! file set but stores each fixed-width column as a sequence of encoded
//! *segments* — row bands of `segment_rows` rows (the last band of each
//! table may be shorter), each independently compressed
//! ([`codec::Encoding`]: plain / packed / delta / RLE, smallest wins
//! deterministically) and summarised by a [`zonemap::ZoneMap`] (min/max,
//! plus a 256-bit dictionary-presence bitmap for `ssl.sni`) recorded in
//! the manifest. All columns of one table share identical row banding,
//! so a consumer that decodes a band gets aligned scratch vectors. The
//! var-length `*.dat` files and the shared tables stay raw — segment
//! encoding applies to the fixed-width index/value columns only.
//!
//! Zone maps let `analyze` skip whole segments that cannot match an
//! active predicate, and the banding gives [`DatasetWriter::append_open`]
//! a natural append unit: new rows start a fresh segment and the shared
//! tables grow by their tails only, so appends cost O(new data).
//!
//! # Reading
//!
//! [`DatasetReader`] validates the manifest (schema/version, and that
//! every column file has exactly the byte length the manifest recorded —
//! truncation is caught before any row is decoded) and then maps each
//! column. On 64-bit unix the default is a real `mmap` (this crate is the
//! only workspace member permitted `unsafe`; every block carries a
//! `SAFETY:` comment enforced by srclint); everywhere else, and on
//! request, a positioned-read fallback loads each column with `pread`.
//!
//! Both versions are read transparently ([`DatasetReader::format_version`]
//! dispatches; only *unknown* versions are a hard error). The reader
//! exposes the same record iterators as the streaming Zeek readers
//! ([`DatasetReader::ssl_iter`] / [`DatasetReader::x509_iter`] yield
//! `Result<SslRecord, _>` / `Result<X509Record, _>`), so
//! `Pipeline::analyze_stream` runs unchanged — plus raw column accessors
//! ([`SslColumns`] / [`X509Columns`] on v1, [`SslSegments`] /
//! [`X509Segments`] on v2) so the analyze hot path can fold straight off
//! the mapped bytes without constructing records at all.

pub mod category;
pub mod checkpoint;
pub mod codec;
pub mod dict;
pub mod manifest;
pub mod map;
pub mod read;
pub mod segment;
pub mod write;
pub mod zonemap;

pub use category::{Category, CategoryDigest, CategorySet, CATEGORY_COUNT, CATEGORY_NAMES};
pub use checkpoint::{Checkpoint, CheckpointWriter, CHECKPOINT_MANIFEST_FILE, CHECKPOINT_SCHEMA};
pub use manifest::{Manifest, MANIFEST_FILE, SCHEMA, STORE_DIR, VERSION, VERSION_V1};
pub use map::{MapMode, Mapping};
pub use read::{
    DatasetReader, SegmentedColumn, SslColumns, SslSegments, X509Columns, X509Segments,
};
pub use segment::{SegmentMeta, DEFAULT_SEGMENT_ROWS};
pub use write::{DatasetWriter, WriterOptions};
pub use zonemap::ZoneMap;

use std::fmt;

/// Sentinel dictionary index for an unset optional string field.
pub const NONE_IDX: u32 = u32::MAX;

/// Columnar-store errors.
#[derive(Debug)]
pub enum ColError {
    /// I/O failure with context.
    Io(String, std::io::Error),
    /// Manifest problems: missing, unparseable, or wrong schema/version
    /// (the message spells out expected vs found).
    Format(String),
    /// A column file's on-disk size disagrees with the manifest.
    Truncated {
        /// Column file name.
        file: String,
        /// Byte length the manifest promised.
        expected: u64,
        /// Byte length found on disk.
        found: u64,
    },
    /// Internally inconsistent column data (bad offsets, out-of-range
    /// table indices, invalid UTF-8, unknown enum bytes).
    Corrupt(String),
}

impl fmt::Display for ColError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColError::Io(what, e) => write!(f, "{what}: {e}"),
            ColError::Format(msg) => write!(f, "{msg}"),
            ColError::Truncated {
                file,
                expected,
                found,
            } => write!(
                f,
                "column {file} truncated: manifest records {expected} bytes, found {found}"
            ),
            ColError::Corrupt(msg) => write!(f, "corrupt column data: {msg}"),
        }
    }
}

impl std::error::Error for ColError {}

/// Shorthand result.
pub type ColResult<T> = Result<T, ColError>;

pub(crate) fn io_ctx(what: impl Into<String>) -> impl FnOnce(std::io::Error) -> ColError {
    move |e| ColError::Io(what.into(), e)
}

/// Every column file, in canonical order, with its fixed row width
/// (`None` for var-length data files whose length the manifest pins).
///
/// The shared tables (`strings.*`, `fps.dat`) are listed here too so the
/// manifest covers every byte the reader will map.
pub const COLUMNS: &[(&str, Option<u64>)] = &[
    ("strings.idx", None),
    ("strings.dat", None),
    ("fps.dat", None),
    ("ssl.ts", Some(8)),
    ("ssl.uid.idx", Some(8)),
    ("ssl.uid.dat", None),
    ("ssl.orig_h", Some(4)),
    ("ssl.orig_p", Some(2)),
    ("ssl.resp_h", Some(4)),
    ("ssl.resp_p", Some(2)),
    ("ssl.version", Some(1)),
    ("ssl.sni", Some(4)),
    ("ssl.established", Some(1)),
    ("ssl.chain.idx", Some(8)),
    ("ssl.chain.dat", None),
    ("x509.ts", Some(8)),
    ("x509.fp", Some(4)),
    ("x509.version", Some(8)),
    ("x509.serial", Some(4)),
    ("x509.subject", Some(4)),
    ("x509.issuer", Some(4)),
    ("x509.not_before", Some(8)),
    ("x509.not_after", Some(8)),
    ("x509.flags", Some(1)),
    ("x509.path_len", Some(8)),
    ("x509.san.idx", Some(8)),
    ("x509.san.dat", None),
];

/// Whether a column's row count follows the ssl table (`ssl.*` fixed
/// columns) or the x509 table (`x509.*` fixed columns); shared tables and
/// var-length data files return `None`.
pub(crate) fn rows_for(name: &str, ssl_rows: u64, x509_rows: u64) -> Option<u64> {
    COLUMNS
        .iter()
        .find(|(n, _)| *n == name)
        .and_then(|(_, w)| *w)?;
    if name.starts_with("ssl.") {
        Some(ssl_rows)
    } else if name.starts_with("x509.") {
        Some(x509_rows)
    } else {
        None
    }
}
