//! The chain-category vocabulary for predicate pushdown.
//!
//! The report's headline tables slice by chain category, but the
//! report-level labels (public-only / non-public-only / hybrid /
//! interception) are *global* properties — interception needs a
//! dataset-wide entity-discovery pass — so they cannot gate a per-row
//! filter without changing results under composition. This module
//! defines the **structural** category vocabulary instead: six disjoint
//! classes computable from one ssl row's chain fingerprints plus the
//! certificate table and trust databases alone, stable under any record
//! order or thread count. Interception chains fall structurally under
//! `non_public_only` (a forged chain is non-public by construction), so
//! a `--filter-category non_public_only` pre-slice still contains every
//! interception candidate.
//!
//! colstore stores only the *vocabulary* and per-segment digests (which
//! categories occur in a row band, and how often); computing a row's
//! category requires trust material and lives in `certchain-chainlab`.

use crate::{ColError, ColResult};
use certchain_obs::json::JsonValue;

/// Number of structural categories; digests are `[u64; CATEGORY_COUNT]`.
pub const CATEGORY_COUNT: usize = 6;

/// Canonical category names, index-aligned with [`Category`] and digest
/// count arrays. These are the `--filter-category` spellings.
pub const CATEGORY_NAMES: [&str; CATEGORY_COUNT] = [
    "none",
    "incomplete",
    "self_signed",
    "public_only",
    "non_public_only",
    "hybrid",
];

/// One structural chain category. Disjoint and exhaustive over ssl rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Category {
    /// No certificate chain on the record (TLS 1.3 per the logs).
    NoChain = 0,
    /// At least one chain fingerprint has no parseable x509 row.
    Incomplete = 1,
    /// A single self-signed (issuer == subject) non-public certificate.
    SelfSigned = 2,
    /// Every certificate is public-DB issued.
    PublicOnly = 3,
    /// Every certificate is non-public (and not the self-signed case).
    NonPublicOnly = 4,
    /// Public and non-public certificates mixed in one chain.
    Hybrid = 5,
}

impl Category {
    /// Digest/count-array index of this category.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Canonical name (the `--filter-category` spelling).
    pub fn name(self) -> &'static str {
        CATEGORY_NAMES[self.index()]
    }

    /// All categories, in index order.
    pub fn all() -> [Category; CATEGORY_COUNT] {
        [
            Category::NoChain,
            Category::Incomplete,
            Category::SelfSigned,
            Category::PublicOnly,
            Category::NonPublicOnly,
            Category::Hybrid,
        ]
    }

    /// Parse a canonical name.
    pub fn parse(s: &str) -> ColResult<Category> {
        Category::all()
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| {
                ColError::Format(format!(
                    "unknown chain category {s:?} (expected one of {})",
                    CATEGORY_NAMES.join("/")
                ))
            })
    }
}

/// A set of [`Category`] values — the `categories` row-filter predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CategorySet(u8);

impl CategorySet {
    /// The empty set (matches nothing).
    pub fn empty() -> CategorySet {
        CategorySet(0)
    }

    /// Whether no category is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Add a category.
    pub fn insert(&mut self, cat: Category) {
        self.0 |= 1 << cat.index();
    }

    /// Membership test.
    pub fn contains(self, cat: Category) -> bool {
        self.0 & (1 << cat.index()) != 0
    }

    /// Parse a comma-separated list of category names.
    pub fn parse_list(s: &str) -> ColResult<CategorySet> {
        let mut set = CategorySet::empty();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            set.insert(Category::parse(part)?);
        }
        if set.is_empty() {
            return Err(ColError::Format(format!(
                "category list {s:?} names no category"
            )));
        }
        Ok(set)
    }

    /// The member categories, in index order.
    pub fn iter(self) -> impl Iterator<Item = Category> {
        Category::all()
            .into_iter()
            .filter(move |c| self.contains(*c))
    }
}

impl std::fmt::Display for CategorySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.iter().map(Category::name).collect();
        write!(f, "{}", names.join(","))
    }
}

/// Per-segment category digest: how many of the segment's rows fall in
/// each structural category. The occurrence *bitset* the skip rule needs
/// is derivable (`counts[i] > 0`), so only the counts are persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CategoryDigest {
    /// Row count per category, index-aligned with [`CATEGORY_NAMES`].
    pub counts: [u64; CATEGORY_COUNT],
}

impl CategoryDigest {
    /// Total rows covered by this digest.
    pub fn rows(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Tally one row of `cat`.
    pub fn add(&mut self, cat: Category) {
        self.counts[cat.index()] += 1;
    }

    /// Whether any row in the digested segment falls in a category from
    /// `set` — the segment-skip test: `false` proves the whole segment
    /// is invisible under the filter.
    pub fn intersects(&self, set: CategorySet) -> bool {
        set.iter().any(|c| self.counts[c.index()] > 0)
    }

    /// Manifest form: a JSON array of six counts.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Arr(
            self.counts
                .iter()
                .map(|&n| JsonValue::Num(n as f64))
                .collect(),
        )
    }

    /// Parse the manifest form, validating shape and count range.
    pub fn from_json(v: &JsonValue) -> ColResult<CategoryDigest> {
        let arr = v
            .as_arr()
            .ok_or_else(|| ColError::Format("category digest is not an array".into()))?;
        if arr.len() != CATEGORY_COUNT {
            return Err(ColError::Format(format!(
                "category digest has {} entries, expected {CATEGORY_COUNT}",
                arr.len()
            )));
        }
        let mut counts = [0u64; CATEGORY_COUNT];
        for (slot, v) in counts.iter_mut().zip(arr) {
            *slot = v.as_u64().ok_or_else(|| {
                ColError::Format("category digest count is not an unsigned integer".into())
            })?;
        }
        Ok(CategoryDigest { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_indices_align() {
        for (i, cat) in Category::all().into_iter().enumerate() {
            assert_eq!(cat.index(), i);
            assert_eq!(Category::parse(cat.name()).unwrap(), cat);
            assert_eq!(CATEGORY_NAMES[i], cat.name());
        }
        assert!(Category::parse("interception").is_err());
    }

    #[test]
    fn set_parse_and_membership() {
        let set = CategorySet::parse_list("non_public_only, self_signed").unwrap();
        assert!(set.contains(Category::NonPublicOnly));
        assert!(set.contains(Category::SelfSigned));
        assert!(!set.contains(Category::PublicOnly));
        assert_eq!(set.to_string(), "self_signed,non_public_only");
        assert!(CategorySet::parse_list("").is_err());
        assert!(CategorySet::parse_list("bogus").is_err());
    }

    #[test]
    fn digest_round_trip_and_intersection() {
        let mut digest = CategoryDigest::default();
        digest.add(Category::PublicOnly);
        digest.add(Category::PublicOnly);
        digest.add(Category::NoChain);
        assert_eq!(digest.rows(), 3);
        let back = CategoryDigest::from_json(&digest.to_json()).unwrap();
        assert_eq!(back, digest);
        let mut rare = CategorySet::empty();
        rare.insert(Category::Hybrid);
        assert!(!digest.intersects(rare));
        rare.insert(Category::NoChain);
        assert!(digest.intersects(rare));
    }

    #[test]
    fn digest_rejects_malformed_json() {
        assert!(CategoryDigest::from_json(&JsonValue::Num(3.0)).is_err());
        assert!(CategoryDigest::from_json(&JsonValue::Arr(vec![])).is_err());
        let bad = JsonValue::Arr(vec![JsonValue::Num(-1.0); CATEGORY_COUNT]);
        assert!(CategoryDigest::from_json(&bad).is_err());
    }
}
