//! Per-segment integer codecs for the v2 format.
//!
//! Every fixed-width column value is widened to `u64` before encoding, so
//! one codec set covers u8/u16/u32/u64 columns alike. Five encodings:
//!
//! * **Plain** — values at the column's native width, little-endian. The
//!   fallback; always representable.
//! * **Packed** — values at the minimal byte width that fits the segment
//!   maximum (`param` = that width). Pays off on u64 columns whose values
//!   are small (path lengths, cert versions).
//! * **Delta** — an 8-byte LE base followed by `rows - 1` successive
//!   differences packed at `param` bytes each. Only offered for
//!   non-decreasing segments (timestamps, end-offset columns).
//! * **Rle** — `(value: width bytes LE, run: u32 LE)` pairs. Wins on
//!   low-cardinality columns (ports, flags, established).
//! * **For** — frame-of-reference: an 8-byte LE base (the segment
//!   minimum) followed by `rows` offsets `v - base` packed at `param`
//!   bytes each. Wins on wide columns whose values cluster in a narrow
//!   range far from zero — `orig_h`, where a campus trace's client IPs
//!   share a prefix, so Packed (anchored at zero) cannot shrink them.
//!
//! Selection is deterministic: the smallest encoded size wins, ties
//! resolved by the fixed candidate order Plain, Packed, Delta, Rle, For —
//! so identical input always produces identical bytes, which the
//! workspace's byte-identity tests rely on. `For` was appended after the
//! original four, so segments those codecs already won stay byte-stable
//! across a re-encode.

use crate::{ColError, ColResult};

/// Segment encoding identifier, as recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Raw values at native column width.
    Plain,
    /// Values at a smaller fixed byte width (`param`).
    Packed,
    /// Base + packed non-negative deltas (`param` = delta width).
    Delta,
    /// (value, u32 run-length) pairs.
    Rle,
    /// Frame-of-reference: 8-byte base + packed `v - base` offsets.
    For,
}

impl Encoding {
    /// Manifest string form.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Plain => "plain",
            Encoding::Packed => "packed",
            Encoding::Delta => "delta",
            Encoding::Rle => "rle",
            Encoding::For => "for",
        }
    }

    /// Parse the manifest string form.
    pub fn parse(s: &str) -> ColResult<Encoding> {
        match s {
            "plain" => Ok(Encoding::Plain),
            "packed" => Ok(Encoding::Packed),
            "delta" => Ok(Encoding::Delta),
            "rle" => Ok(Encoding::Rle),
            "for" => Ok(Encoding::For),
            other => Err(ColError::Format(format!(
                "unknown segment encoding {other:?} (expected plain/packed/delta/rle/for)"
            ))),
        }
    }
}

/// Largest value representable at `width` bytes.
fn width_max(width: u8) -> u64 {
    if width >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * u32::from(width))) - 1
    }
}

/// Minimal byte width in {1, 2, 4, 8} that fits `v`.
fn byte_width(v: u64) -> u8 {
    if v <= 0xFF {
        1
    } else if v <= 0xFFFF {
        2
    } else if v <= 0xFFFF_FFFF {
        4
    } else {
        8
    }
}

/// Append `v`'s low `width` bytes, little-endian.
fn put_at(out: &mut Vec<u8>, v: u64, width: u8) {
    out.extend_from_slice(&v.to_le_bytes()[..width as usize]);
}

/// Read one `width`-byte little-endian value at `at`.
fn get_at(bytes: &[u8], at: usize, width: u8) -> u64 {
    let mut buf = [0u8; 8];
    buf[..width as usize].copy_from_slice(&bytes[at..at + width as usize]);
    u64::from_le_bytes(buf)
}

/// Encode one segment of logical values for a column of native `width`,
/// returning the chosen encoding, its parameter, and the payload bytes.
///
/// Every value must fit in `width` bytes (the writer only ever hands in
/// values it produced at that width).
pub fn encode(values: &[u64], width: u8) -> (Encoding, u8, Vec<u8>) {
    debug_assert!(matches!(width, 1 | 2 | 4 | 8));
    debug_assert!(values.iter().all(|&v| v <= width_max(width)));
    let rows = values.len();
    let mut best = (Encoding::Plain, width, rows * width as usize);

    let max = values.iter().copied().max().unwrap_or(0);
    let packed_w = byte_width(max);
    if packed_w < width {
        let size = rows * packed_w as usize;
        if size < best.2 {
            best = (Encoding::Packed, packed_w, size);
        }
    }

    let sorted = values.windows(2).all(|w| w[0] <= w[1]);
    let mut delta_w = 0u8;
    if sorted && rows > 0 {
        let max_delta = values.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        delta_w = byte_width(max_delta);
        let size = 8 + (rows - 1) * delta_w as usize;
        if size < best.2 {
            best = (Encoding::Delta, delta_w, size);
        }
    }

    let mut runs = 0usize;
    let mut i = 0usize;
    while i < rows {
        let mut j = i + 1;
        while j < rows && values[j] == values[i] {
            j += 1;
        }
        runs += 1;
        i = j;
    }
    let rle_size = runs * (width as usize + 4);
    if rows > 0 && rle_size < best.2 {
        best = (Encoding::Rle, width, rle_size);
    }

    // Frame-of-reference: values rebased to the segment minimum, packed
    // at the width of the (max - min) range. Only narrower-than-native
    // offsets can win, and the strict `<` keeps every segment the four
    // original codecs already encode at the same size byte-stable.
    let min = values.iter().copied().min().unwrap_or(0);
    let for_w = byte_width(max - min);
    if rows > 0 && for_w < width {
        let size = 8 + rows * for_w as usize;
        if size < best.2 {
            best = (Encoding::For, for_w, size);
        }
    }

    let (enc, param, size) = best;
    let mut out = Vec::with_capacity(size);
    match enc {
        Encoding::Plain => {
            for &v in values {
                put_at(&mut out, v, width);
            }
        }
        Encoding::Packed => {
            for &v in values {
                put_at(&mut out, v, param);
            }
        }
        Encoding::Delta => {
            out.extend_from_slice(&values[0].to_le_bytes());
            for w in values.windows(2) {
                put_at(&mut out, w[1] - w[0], delta_w);
            }
        }
        Encoding::Rle => {
            let mut i = 0usize;
            while i < rows {
                let mut j = i + 1;
                while j < rows && values[j] == values[i] {
                    j += 1;
                }
                put_at(&mut out, values[i], width);
                out.extend_from_slice(&u32::try_from(j - i).unwrap_or(u32::MAX).to_le_bytes());
                i = j;
            }
        }
        Encoding::For => {
            out.extend_from_slice(&min.to_le_bytes());
            for &v in values {
                put_at(&mut out, v - min, param);
            }
        }
    }
    debug_assert_eq!(out.len(), size);
    (enc, param, out)
}

/// Sanity-check an (encoding, param) pair against the column width,
/// without touching payload bytes — used at manifest parse time.
pub fn validate_param(enc: Encoding, param: u8, width: u8) -> ColResult<()> {
    let ok = match enc {
        Encoding::Plain | Encoding::Rle => param == width,
        Encoding::Packed => matches!(param, 1 | 2 | 4 | 8) && param < width,
        Encoding::Delta => matches!(param, 1 | 2 | 4 | 8),
        Encoding::For => matches!(param, 1 | 2 | 4) && param < width,
    };
    if ok {
        Ok(())
    } else {
        Err(ColError::Format(format!(
            "segment encoding {} has invalid param {param} for a {width}-byte column",
            enc.name()
        )))
    }
}

fn corrupt(what: &str, detail: impl std::fmt::Display) -> ColError {
    ColError::Corrupt(format!("{what}: {detail}"))
}

/// Decode one segment's payload, appending exactly `rows` values to
/// `out`. Validates payload length, run sums, value ranges, and delta
/// overflow; any mismatch is a structured [`ColError::Corrupt`].
pub fn decode_into(
    enc: Encoding,
    param: u8,
    width: u8,
    rows: usize,
    bytes: &[u8],
    out: &mut Vec<u64>,
) -> ColResult<()> {
    validate_param(enc, param, width).map_err(|e| corrupt("segment decode", e))?;
    let max = width_max(width);
    out.reserve(rows);
    match enc {
        Encoding::Plain | Encoding::Packed => {
            let w = param as usize;
            if bytes.len() != rows * w {
                return Err(corrupt(
                    "segment decode",
                    format!("{} payload bytes for {rows} rows at width {w}", bytes.len()),
                ));
            }
            match w {
                1 => out.extend(bytes.iter().map(|&b| u64::from(b))),
                2 => out.extend(
                    bytes
                        .chunks_exact(2)
                        .map(|c| u64::from(u16::from_le_bytes(c.try_into().expect("2 bytes")))),
                ),
                4 => out.extend(
                    bytes
                        .chunks_exact(4)
                        .map(|c| u64::from(u32::from_le_bytes(c.try_into().expect("4 bytes")))),
                ),
                _ => out.extend(
                    bytes
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))),
                ),
            }
        }
        Encoding::Delta => {
            let expected = if rows == 0 {
                0
            } else {
                8 + (rows - 1) * param as usize
            };
            if bytes.len() != expected {
                return Err(corrupt(
                    "segment decode",
                    format!(
                        "{} delta payload bytes, expected {expected} for {rows} rows",
                        bytes.len()
                    ),
                ));
            }
            if rows == 0 {
                return Ok(());
            }
            let mut cur = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
            if cur > max {
                return Err(corrupt(
                    "segment decode",
                    format!("delta base {cur} exceeds {width}-byte column range"),
                ));
            }
            out.push(cur);
            let mut at = 8usize;
            for _ in 1..rows {
                let d = get_at(bytes, at, param);
                at += param as usize;
                cur = cur.checked_add(d).filter(|&v| v <= max).ok_or_else(|| {
                    corrupt(
                        "segment decode",
                        format!("delta overflow past {width}-byte column range"),
                    )
                })?;
                out.push(cur);
            }
        }
        Encoding::Rle => {
            let pair = width as usize + 4;
            if bytes.len() % pair != 0 {
                return Err(corrupt(
                    "segment decode",
                    format!(
                        "{} rle payload bytes is not a multiple of {pair}",
                        bytes.len()
                    ),
                ));
            }
            let mut total = 0usize;
            for chunk in bytes.chunks_exact(pair) {
                let v = get_at(chunk, 0, width);
                let run = u32::from_le_bytes(chunk[width as usize..].try_into().expect("4 bytes"))
                    as usize;
                if run == 0 {
                    return Err(corrupt("segment decode", "rle run of length 0"));
                }
                total += run;
                if total > rows {
                    return Err(corrupt(
                        "segment decode",
                        format!("rle runs exceed segment rows {rows}"),
                    ));
                }
                for _ in 0..run {
                    out.push(v);
                }
            }
            if total != rows {
                return Err(corrupt(
                    "segment decode",
                    format!("rle runs cover {total} rows, segment has {rows}"),
                ));
            }
        }
        Encoding::For => {
            let expected = if rows == 0 {
                0
            } else {
                8 + rows * param as usize
            };
            if bytes.len() != expected {
                return Err(corrupt(
                    "segment decode",
                    format!(
                        "{} for payload bytes, expected {expected} for {rows} rows",
                        bytes.len()
                    ),
                ));
            }
            if rows == 0 {
                return Ok(());
            }
            let base = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
            if base > max {
                return Err(corrupt(
                    "segment decode",
                    format!("for base {base} exceeds {width}-byte column range"),
                ));
            }
            let mut at = 8usize;
            for _ in 0..rows {
                let off = get_at(bytes, at, param);
                at += param as usize;
                let v = base.checked_add(off).filter(|&v| v <= max).ok_or_else(|| {
                    corrupt(
                        "segment decode",
                        format!("for offset overflows {width}-byte column range"),
                    )
                })?;
                out.push(v);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[u64], width: u8) -> (Encoding, usize) {
        let (enc, param, bytes) = encode(values, width);
        let mut out = Vec::new();
        decode_into(enc, param, width, values.len(), &bytes, &mut out).expect("decode");
        assert_eq!(out, values);
        (enc, bytes.len())
    }

    #[test]
    fn sorted_wide_values_pick_delta() {
        let values: Vec<u64> = (0..64).map(|i| 1_700_000_000 + i * 3).collect();
        let (enc, size) = round_trip(&values, 8);
        assert_eq!(enc, Encoding::Delta);
        assert!(size < values.len() * 8);
    }

    #[test]
    fn constant_values_pick_rle() {
        let values = vec![443u64; 100];
        let (enc, size) = round_trip(&values, 2);
        assert_eq!(enc, Encoding::Rle);
        assert_eq!(size, 6);
    }

    #[test]
    fn small_u64_values_pick_packed() {
        let values: Vec<u64> = (0..32).map(|i| u64::from(i % 7 == 0)).rev().collect();
        let (enc, _) = round_trip(&values, 8);
        assert!(matches!(enc, Encoding::Packed | Encoding::Rle));
    }

    #[test]
    fn empty_and_single_row_segments() {
        assert_eq!(round_trip(&[], 4).0, Encoding::Plain);
        round_trip(&[0], 1);
        round_trip(&[u32::MAX as u64], 4);
        round_trip(&[u64::MAX], 8);
    }

    #[test]
    fn rle_rejects_short_and_overlong_runs() {
        let (enc, param, bytes) = encode(&[7u64; 10], 2);
        assert_eq!(enc, Encoding::Rle);
        let mut out = Vec::new();
        // Claiming fewer rows than the runs cover must fail.
        assert!(decode_into(enc, param, 2, 9, &bytes, &mut out).is_err());
        out.clear();
        // Claiming more rows than the runs cover must fail.
        assert!(decode_into(enc, param, 2, 11, &bytes, &mut out).is_err());
    }

    #[test]
    fn delta_overflow_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&250u64.to_le_bytes());
        bytes.push(10); // 250 + 10 exceeds a 1-byte column.
        let mut out = Vec::new();
        let err = decode_into(Encoding::Delta, 1, 1, 2, &bytes, &mut out).unwrap_err();
        assert!(err.to_string().contains("delta"), "{err}");
    }

    #[test]
    fn wrong_payload_length_is_rejected() {
        let mut out = Vec::new();
        assert!(decode_into(Encoding::Plain, 4, 4, 3, &[0u8; 11], &mut out).is_err());
        assert!(decode_into(Encoding::Packed, 9, 8, 1, &[0u8; 9], &mut out).is_err());
    }

    #[test]
    fn clustered_wide_values_pick_for() {
        // Campus-style client IPs: a /24 worth of spread, far from zero.
        // Packed cannot shrink a 4-byte value anchored at zero; FoR packs
        // the offsets at one byte each.
        let base = u64::from(u32::from_be_bytes([10, 11, 12, 0]));
        let values: Vec<u64> = (0..128).map(|i| base + (i * 37) % 251).collect();
        let (enc, size) = round_trip(&values, 4);
        assert_eq!(enc, Encoding::For);
        assert_eq!(size, 8 + values.len());
    }

    #[test]
    fn zero_anchored_values_prefer_packed_over_for() {
        // Same spread but anchored at zero: Packed wins (no 8-byte base),
        // pinning the tie-break order.
        let values: Vec<u64> = (0..128).map(|i| (i * 37) % 251).collect();
        let (enc, _) = round_trip(&values, 4);
        assert_eq!(enc, Encoding::Packed);
    }

    #[test]
    fn for_corruption_is_rejected() {
        let base = 0xFFFF_FFF0u64;
        // Unsorted so Delta is not offered and FoR wins.
        let values: Vec<u64> = (0..16).map(|i| base + (i * 7) % 16).collect();
        let (enc, param, bytes) = encode(&values, 4);
        assert_eq!(enc, Encoding::For);
        let mut out = Vec::new();
        // Truncated payload.
        assert!(decode_into(enc, param, 4, 16, &bytes[..bytes.len() - 1], &mut out).is_err());
        out.clear();
        // Base + offset overflowing the column range.
        let mut bad = bytes.clone();
        bad[8 + 15] = 0xFF; // last offset: 0xFFFF_FF00 + 0xFF overflows u32
        assert!(decode_into(enc, param, 4, 16, &bad, &mut out).is_err());
        out.clear();
        // Base alone out of range for the column width.
        let mut bad = bytes;
        bad[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_into(enc, param, 4, 16, &bad, &mut out).is_err());
    }

    #[test]
    fn for_name_round_trips() {
        assert_eq!(Encoding::parse("for").unwrap(), Encoding::For);
        assert_eq!(Encoding::For.name(), "for");
        // param must be narrower than the column for FoR to be valid.
        assert!(validate_param(Encoding::For, 4, 4).is_err());
        assert!(validate_param(Encoding::For, 2, 4).is_ok());
    }
}
