//! Segment metadata: the manifest-side description of one encoded row
//! band of one fixed-width column in a v2 store.

use crate::codec::Encoding;
use crate::zonemap::ZoneMap;
use crate::{ColError, ColResult};
use certchain_obs::json::JsonValue;

/// Default rows per segment for freshly written v2 stores. Small enough
/// that zone maps discriminate on campus-scale traces, large enough that
/// per-segment decode overhead stays negligible.
pub const DEFAULT_SEGMENT_ROWS: u64 = 4096;

/// One segment's manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Logical rows in the segment (always ≥ 1 on disk).
    pub rows: u64,
    /// Encoded payload bytes in the column file.
    pub bytes: u64,
    /// Payload encoding.
    pub encoding: Encoding,
    /// Encoding parameter (packed/delta byte width; native width
    /// otherwise).
    pub param: u8,
    /// Min/max (and optional presence bitmap) over the segment's values.
    pub zone: ZoneMap,
}

impl SegmentMeta {
    /// Serialise to the manifest JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("rows".to_string(), JsonValue::Num(self.rows as f64)),
            ("bytes".to_string(), JsonValue::Num(self.bytes as f64)),
            (
                "enc".to_string(),
                JsonValue::Str(self.encoding.name().to_string()),
            ),
            ("param".to_string(), JsonValue::Num(f64::from(self.param))),
            ("min".to_string(), JsonValue::Num(self.zone.min as f64)),
            ("max".to_string(), JsonValue::Num(self.zone.max as f64)),
        ];
        if let Some(hex) = self.zone.bitmap_hex() {
            fields.push(("bitmap".to_string(), JsonValue::Str(hex)));
        }
        JsonValue::Obj(fields)
    }

    /// Parse one manifest segment object (`col` names the column in
    /// error messages).
    pub fn from_json(col: &str, doc: &JsonValue) -> ColResult<SegmentMeta> {
        let num = |name: &str| {
            doc.get(name).and_then(JsonValue::as_u64).ok_or_else(|| {
                ColError::Format(format!("column {col:?}: segment missing numeric {name:?}"))
            })
        };
        let enc = doc
            .get("enc")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ColError::Format(format!("column {col:?}: segment missing \"enc\"")))?;
        let encoding =
            Encoding::parse(enc).map_err(|e| ColError::Format(format!("column {col:?}: {e}")))?;
        let param = u8::try_from(num("param")?)
            .map_err(|_| ColError::Format(format!("column {col:?}: segment param out of range")))?;
        let bitmap = match doc.get("bitmap") {
            None => None,
            Some(v) => {
                let hex = v.as_str().ok_or_else(|| {
                    ColError::Format(format!("column {col:?}: segment bitmap is not a string"))
                })?;
                Some(
                    ZoneMap::bitmap_from_hex(hex)
                        .map_err(|e| ColError::Format(format!("column {col:?}: {e}")))?,
                )
            }
        };
        let zone = ZoneMap {
            min: num("min")?,
            max: num("max")?,
            bitmap,
        };
        if zone.min > zone.max {
            return Err(ColError::Format(format!(
                "column {col:?}: segment min {} exceeds max {}",
                zone.min, zone.max
            )));
        }
        Ok(SegmentMeta {
            rows: num("rows")?,
            bytes: num("bytes")?,
            encoding,
            param,
            zone,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_meta_round_trips_through_json() {
        let meta = SegmentMeta {
            rows: 4096,
            bytes: 812,
            encoding: Encoding::Delta,
            param: 2,
            zone: ZoneMap::with_presence(&[3, 19, 200]),
        };
        let back = SegmentMeta::from_json("ssl.sni", &meta.to_json()).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn bad_encoding_and_inverted_bounds_are_rejected() {
        let meta = SegmentMeta {
            rows: 1,
            bytes: 8,
            encoding: Encoding::Plain,
            param: 8,
            zone: ZoneMap::of(&[7]),
        };
        let mut doc = meta.to_json();
        if let JsonValue::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "enc" {
                    *v = JsonValue::Str("bogus".into());
                }
            }
        }
        let msg = SegmentMeta::from_json("ssl.ts", &doc)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("bogus"), "{msg}");

        let mut doc = meta.to_json();
        if let JsonValue::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "min" {
                    *v = JsonValue::Num(9.0);
                }
            }
        }
        assert!(SegmentMeta::from_json("ssl.ts", &doc).is_err());
    }
}
