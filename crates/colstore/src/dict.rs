//! The shared string dictionary: heavily repeated strings (SNI, issuer,
//! subject, serial, SAN names) are stored once in `strings.dat` and
//! referenced everywhere else by a `u32` index.
//!
//! On disk the dictionary is two files: `strings.idx` holds one `u64`
//! little-endian *end* offset per entry (entry `i` spans
//! `idx[i-1]..idx[i]`, with an implicit 0 start), and `strings.dat` holds
//! the concatenated UTF-8 bytes. End offsets rather than (start, len)
//! pairs keep the index file at exactly 8 bytes per entry and make the
//! final offset double as the data-file length check.

use crate::{ColError, ColResult, NONE_IDX};
use std::collections::HashMap;
use std::sync::Arc;

/// Interns strings during a write, assigning dense `u32` indices in
/// first-seen order.
///
/// `Arc<str>` is shared between the lookup map and the ordered entry list
/// so each distinct string is stored once, keeping writer memory
/// O(distinct strings) rather than O(rows).
#[derive(Default)]
pub struct DictBuilder {
    lookup: HashMap<Arc<str>, u32>,
    entries: Vec<Arc<str>>,
}

impl DictBuilder {
    /// New, empty dictionary.
    pub fn new() -> DictBuilder {
        DictBuilder::default()
    }

    /// Intern `s`, returning its index.
    pub fn intern(&mut self, s: &str) -> ColResult<u32> {
        if let Some(&idx) = self.lookup.get(s) {
            return Ok(idx);
        }
        let idx = u32::try_from(self.entries.len())
            .map_err(|_| ColError::Corrupt("string dictionary exceeds u32 index space".into()))?;
        if idx == NONE_IDX {
            return Err(ColError::Corrupt(
                "string dictionary exceeds u32 index space".into(),
            ));
        }
        let entry: Arc<str> = Arc::from(s);
        self.lookup.insert(Arc::clone(&entry), idx);
        self.entries.push(entry);
        Ok(idx)
    }

    /// Intern an optional string; `None` becomes [`NONE_IDX`].
    pub fn intern_opt(&mut self, s: Option<&str>) -> ColResult<u32> {
        match s {
            Some(s) => self.intern(s),
            None => Ok(NONE_IDX),
        }
    }

    /// Number of distinct entries.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialise to `(strings.idx, strings.dat)` byte vectors.
    pub fn to_files(&self) -> (Vec<u8>, Vec<u8>) {
        self.to_files_from(0, 0)
    }

    /// Serialise only entries `from..`, with end offsets continuing from
    /// `base_bytes` — the tail an appending writer adds to an existing
    /// `strings.idx`/`strings.dat` pair. The dictionary assigns indices
    /// in first-seen order and never rewrites earlier entries, so the
    /// prefix on disk stays valid byte-for-byte.
    pub fn to_files_from(&self, from: usize, base_bytes: u64) -> (Vec<u8>, Vec<u8>) {
        let tail = &self.entries[from..];
        let mut idx = Vec::with_capacity(tail.len() * 8);
        let mut dat = Vec::new();
        for entry in tail {
            dat.extend_from_slice(entry.as_bytes());
            idx.extend_from_slice(&(base_bytes + dat.len() as u64).to_le_bytes());
        }
        (idx, dat)
    }
}

/// Read-side view over the mapped `strings.idx` / `strings.dat` pair.
///
/// Borrows the mapped bytes; resolution is two bounds-checked slice
/// reads, no allocation.
#[derive(Clone, Copy)]
pub struct Dict<'a> {
    idx: &'a [u8],
    dat: &'a [u8],
}

impl<'a> Dict<'a> {
    /// Wrap and structurally validate the two mapped files: the index
    /// must be a whole number of `u64`s, offsets must be monotonic, and
    /// the final offset must equal the data length.
    pub fn new(idx: &'a [u8], dat: &'a [u8]) -> ColResult<Dict<'a>> {
        if idx.len() % 8 != 0 {
            return Err(ColError::Corrupt(format!(
                "strings.idx length {} is not a multiple of 8",
                idx.len()
            )));
        }
        let dict = Dict { idx, dat };
        let mut prev = 0u64;
        for i in 0..dict.len() {
            let end = dict.end_offset(i);
            if end < prev {
                return Err(ColError::Corrupt(format!(
                    "strings.idx offsets not monotonic at entry {i}"
                )));
            }
            prev = end;
        }
        if prev != dat.len() as u64 {
            return Err(ColError::Corrupt(format!(
                "strings.idx final offset {prev} != strings.dat length {}",
                dat.len()
            )));
        }
        Ok(dict)
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        (self.idx.len() / 8) as u64
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    fn end_offset(&self, i: u64) -> u64 {
        let at = (i as usize) * 8;
        u64::from_le_bytes(self.idx[at..at + 8].try_into().expect("8-byte slice"))
    }

    /// Resolve index `i` to its string.
    pub fn get(&self, i: u32) -> ColResult<&'a str> {
        let i = u64::from(i);
        if i >= self.len() {
            return Err(ColError::Corrupt(format!(
                "string index {i} out of range (dictionary has {} entries)",
                self.len()
            )));
        }
        let start = if i == 0 { 0 } else { self.end_offset(i - 1) } as usize;
        let end = self.end_offset(i) as usize;
        std::str::from_utf8(&self.dat[start..end])
            .map_err(|_| ColError::Corrupt(format!("string entry {i} is not valid UTF-8")))
    }

    /// Resolve an optional index ([`NONE_IDX`] → `None`).
    pub fn get_opt(&self, i: u32) -> ColResult<Option<&'a str>> {
        if i == NONE_IDX {
            Ok(None)
        } else {
            self.get(i).map(Some)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes_and_round_trips() {
        let mut b = DictBuilder::new();
        let a = b.intern("alpha").unwrap();
        let bee = b.intern("beta").unwrap();
        assert_eq!(b.intern("alpha").unwrap(), a);
        assert_eq!((a, bee), (0, 1));
        assert_eq!(b.intern_opt(None).unwrap(), NONE_IDX);
        assert_eq!(b.len(), 2);

        let (idx, dat) = b.to_files();
        let d = Dict::new(&idx, &dat).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(0).unwrap(), "alpha");
        assert_eq!(d.get(1).unwrap(), "beta");
        assert_eq!(d.get_opt(NONE_IDX).unwrap(), None);
        assert!(d.get(2).is_err());
    }

    #[test]
    fn empty_strings_are_representable() {
        let mut b = DictBuilder::new();
        b.intern("").unwrap();
        b.intern("x").unwrap();
        b.intern("").unwrap();
        let (idx, dat) = b.to_files();
        let d = Dict::new(&idx, &dat).unwrap();
        assert_eq!(d.get(0).unwrap(), "");
        assert_eq!(d.get(1).unwrap(), "x");
    }

    #[test]
    fn tail_serialisation_extends_an_existing_pair() {
        let mut b = DictBuilder::new();
        b.intern("alpha").unwrap();
        b.intern("beta").unwrap();
        let (mut idx, mut dat) = b.to_files();
        let from = b.len() as usize;
        b.intern("gamma").unwrap();
        b.intern("alpha").unwrap(); // dedup: no new entry
        let (idx_tail, dat_tail) = b.to_files_from(from, dat.len() as u64);
        idx.extend_from_slice(&idx_tail);
        dat.extend_from_slice(&dat_tail);
        let (full_idx, full_dat) = b.to_files();
        assert_eq!((idx.clone(), dat.clone()), (full_idx, full_dat));
        let d = Dict::new(&idx, &dat).unwrap();
        assert_eq!(d.get(2).unwrap(), "gamma");
    }

    #[test]
    fn corrupt_index_is_rejected() {
        // Final offset exceeds data length.
        let idx = 5u64.to_le_bytes().to_vec();
        let dat = b"abc".to_vec();
        assert!(Dict::new(&idx, &dat).is_err());
        // Non-monotonic offsets.
        let mut idx = Vec::new();
        idx.extend_from_slice(&3u64.to_le_bytes());
        idx.extend_from_slice(&1u64.to_le_bytes());
        assert!(Dict::new(&idx, b"abc").is_err());
        // Ragged index length.
        assert!(Dict::new(&[0u8; 7], b"").is_err());
    }
}
