//! Per-segment zone maps: min/max bounds for every segmented column,
//! plus a 256-bit dictionary-presence bitmap for the `ssl.sni` column.
//!
//! The fold consults these before decoding a segment. The skip rule is
//! conservative in exactly one direction: a zone map may claim a value
//! *could* be present when it is not (bitmap collisions, min/max gaps),
//! but never the reverse — so skipping a segment whose zone map excludes
//! the predicate value is always exact.

use crate::{ColError, ColResult, NONE_IDX};

/// Bytes in the presence bitmap (256 bits).
pub const BITMAP_BYTES: usize = 32;

/// Min/max (and optional presence bitmap) summary of one segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneMap {
    /// Smallest value in the segment (0 for an empty segment).
    pub min: u64,
    /// Largest value in the segment (0 for an empty segment).
    pub max: u64,
    /// Dictionary-presence bitmap: bit `hash(code) % 256` is set for
    /// every non-[`NONE_IDX`] code in the segment. Only recorded for
    /// `ssl.sni`.
    pub bitmap: Option<Box<[u8; BITMAP_BYTES]>>,
}

/// Bit position for a dictionary code. A multiplicative scramble spreads
/// consecutive first-seen-order codes across the 256 bits.
fn bit_of(code: u32) -> usize {
    (code.wrapping_mul(0x9E37_79B9) >> 24) as usize
}

impl ZoneMap {
    /// Min/max summary of `values`, no bitmap.
    pub fn of(values: &[u64]) -> ZoneMap {
        ZoneMap {
            min: values.iter().copied().min().unwrap_or(0),
            max: values.iter().copied().max().unwrap_or(0),
            bitmap: None,
        }
    }

    /// Min/max plus a presence bitmap over every value except
    /// [`NONE_IDX`] (the unset-SNI sentinel carries no information).
    pub fn with_presence(values: &[u64]) -> ZoneMap {
        let mut zone = ZoneMap::of(values);
        let mut bits = Box::new([0u8; BITMAP_BYTES]);
        for &v in values {
            if v != u64::from(NONE_IDX) {
                let bit = bit_of(v as u32);
                bits[bit / 8] |= 1 << (bit % 8);
            }
        }
        zone.bitmap = Some(bits);
        zone
    }

    /// Whether `v` falls inside the min/max bounds.
    pub fn contains(&self, v: u64) -> bool {
        self.min <= v && v <= self.max
    }

    /// Whether dictionary code `code` may occur in the segment. Without
    /// a bitmap this is always true (no information, never skip).
    pub fn may_contain_code(&self, code: u32) -> bool {
        match &self.bitmap {
            None => true,
            Some(bits) => {
                let bit = bit_of(code);
                bits[bit / 8] & (1 << (bit % 8)) != 0
            }
        }
    }

    /// Hex form of the bitmap for the manifest, if present.
    pub fn bitmap_hex(&self) -> Option<String> {
        self.bitmap.as_ref().map(|bits| {
            let mut s = String::with_capacity(BITMAP_BYTES * 2);
            for b in bits.iter() {
                s.push_str(&format!("{b:02x}"));
            }
            s
        })
    }

    /// Parse the manifest hex form back into a bitmap.
    pub fn bitmap_from_hex(hex: &str) -> ColResult<Box<[u8; BITMAP_BYTES]>> {
        let bytes = hex.as_bytes();
        if bytes.len() != BITMAP_BYTES * 2 {
            return Err(ColError::Format(format!(
                "segment bitmap has {} hex digits, expected {}",
                bytes.len(),
                BITMAP_BYTES * 2
            )));
        }
        let mut bits = Box::new([0u8; BITMAP_BYTES]);
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            let s = std::str::from_utf8(pair)
                .map_err(|_| ColError::Format("segment bitmap is not ASCII hex".into()))?;
            bits[i] = u8::from_str_radix(s, 16)
                .map_err(|_| ColError::Format(format!("segment bitmap has non-hex digit {s:?}")))?;
        }
        Ok(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_and_containment() {
        let z = ZoneMap::of(&[5, 2, 9]);
        assert_eq!((z.min, z.max), (2, 9));
        assert!(z.contains(2) && z.contains(9) && z.contains(5));
        assert!(!z.contains(1) && !z.contains(10));
        assert!(z.may_contain_code(0), "no bitmap means never skip");
    }

    #[test]
    fn presence_bitmap_never_false_negative() {
        let codes: Vec<u64> = (0..40).map(|i| i * 13 + 1).collect();
        let z = ZoneMap::with_presence(&codes);
        for &c in &codes {
            assert!(z.may_contain_code(c as u32), "present code {c} must hit");
        }
    }

    #[test]
    fn none_idx_is_excluded_from_presence() {
        let z = ZoneMap::with_presence(&[u64::from(NONE_IDX)]);
        assert!(!z.may_contain_code(NONE_IDX));
    }

    #[test]
    fn bitmap_hex_round_trips() {
        let z = ZoneMap::with_presence(&[1, 77, 300]);
        let hex = z.bitmap_hex().expect("bitmap present");
        let back = ZoneMap::bitmap_from_hex(&hex).expect("parse");
        assert_eq!(back, *z.bitmap.as_ref().unwrap());
        assert!(ZoneMap::bitmap_from_hex("zz").is_err());
    }
}
