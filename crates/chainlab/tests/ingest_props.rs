//! Property test for the chunk-partition-dispatch ingestion invariant.
//!
//! `Pipeline::analyze` shards chains by a stable fingerprint hash and
//! partitions the record stream to workers in global order, so the fold
//! each chain sees is identical for every thread count. This test feeds
//! random batches — chains drawn from a small certificate pool, empty
//! chains (TLS 1.3), unresolvable fingerprints, duplicated chains with
//! distinct connection metadata, non-trivial weights — through the
//! pipeline at thread counts 2..=8 and requires the full `Analysis` to
//! be identical (f64 fields bit-for-bit) to the sequential fold. A
//! fixed deterministic case larger than one ingest chunk (8192 records)
//! exercises the multi-chunk dispatch path.
//!
//! Every run also attaches a fresh metrics registry and requires the
//! snapshot's *deterministic* section (counters, gauges, histograms —
//! not timing) to be byte-identical across thread counts: observability
//! must never observe the scheduler.

use certchain_asn1::Asn1Time;
use certchain_chainlab::{Analysis, CrossSignRegistry, Pipeline, PipelineOptions};
use certchain_ctlog::DomainIndex;
use certchain_netsim::{SslRecord, TlsVersion, X509Record};
use certchain_trust::TrustDb;
use certchain_x509::Fingerprint;
use proptest::prelude::*;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// The fixed certificate pool chains draw from: a root, an intermediate,
/// three leaves below the intermediate, and a self-signed odd one out.
fn cert_pool() -> Vec<X509Record> {
    let ts = Asn1Time::from_unix(1_600_000_000);
    let cert = |n: u8, subject: &str, issuer: &str, ca: Option<bool>, san: &[&str]| X509Record {
        ts,
        fingerprint: Fingerprint([n; 32]),
        cert_version: 3,
        serial: format!("{n:02X}"),
        subject: subject.to_string(),
        issuer: issuer.to_string(),
        not_before: ts,
        not_after: Asn1Time::from_unix(1_600_000_000 + 86_400 * 365),
        basic_constraints_ca: ca,
        path_len: None,
        san_dns: san.iter().map(|s| s.to_string()).collect(),
    };
    vec![
        cert(1, "CN=Pool Root CA", "CN=Pool Root CA", Some(true), &[]),
        cert(2, "CN=Pool Mid CA", "CN=Pool Root CA", Some(true), &[]),
        cert(
            3,
            "CN=svc0.example.org",
            "CN=Pool Mid CA",
            Some(false),
            &["svc0.example.org"],
        ),
        cert(
            4,
            "CN=svc1.example.org",
            "CN=Pool Mid CA",
            None,
            &["svc1.example.org"],
        ),
        cert(
            5,
            "CN=svc2.example.org",
            "CN=Pool Mid CA",
            Some(false),
            &["svc2.example.org"],
        ),
        cert(6, "CN=self.local", "CN=self.local", None, &["self.local"]),
    ]
}

/// Map a generated index to a fingerprint: indexes past the pool refer to
/// certificates absent from x509.log (unresolvable chains).
fn fp_of(index: u8) -> Fingerprint {
    let pool = cert_pool();
    if (index as usize) < pool.len() {
        pool[index as usize].fingerprint
    } else {
        Fingerprint([0xE0 + index; 32])
    }
}

/// One random connection: chain drawn from the pool (possibly empty or
/// unresolvable), metadata from small sets so chains repeat across
/// records with different usage contributions.
fn arb_conn() -> impl Strategy<Value = SslRecord> {
    (
        0u64..86_400,
        "[a-z0-9]{6,6}",
        0u8..16,
        any::<u16>(),
        0u8..4,
        0usize..3,
        any::<bool>(),
        proptest::option::of(prop_oneof![
            Just("svc0.example.org".to_string()),
            Just("svc1.example.org".to_string()),
            Just("proxy.internal".to_string()),
        ]),
        any::<bool>(),
        proptest::collection::vec(0u8..8, 0..4),
    )
        .prop_map(
            |(ts, uid, client, orig_p, resp, port_pick, v13, sni, established, chain)| SslRecord {
                ts: Asn1Time::from_unix(1_600_000_000 + ts),
                uid: format!("C{uid}"),
                orig_h: Ipv4Addr::new(10, 0, 0, client),
                orig_p,
                resp_h: Ipv4Addr::new(192, 168, 1, resp),
                resp_p: [443, 8443, 9000][port_pick],
                version: if v13 {
                    TlsVersion::Tls13
                } else {
                    TlsVersion::Tls12
                },
                server_name: sni,
                established,
                cert_chain_fps: chain.into_iter().map(fp_of).collect(),
            },
        )
}

/// Run the instrumented pipeline; the second value is the metrics
/// snapshot's deterministic fingerprint (pretty-printed counters, gauges,
/// and histograms — timing excluded).
fn run(
    ssl: &[SslRecord],
    x509: &[X509Record],
    weights: &[f64],
    threads: usize,
) -> (Analysis, String) {
    let trust = TrustDb::new();
    let ct = DomainIndex::new();
    let registry = std::sync::Arc::new(certchain_obs::Registry::new());
    let pipeline = Pipeline::with_options(
        &trust,
        &ct,
        CrossSignRegistry::new(),
        PipelineOptions {
            threads,
            ..PipelineOptions::default()
        },
    )
    .with_metrics(std::sync::Arc::clone(&registry));
    let analysis = pipeline.analyze(ssl, x509, Some(weights));
    (analysis, registry.snapshot().deterministic_fingerprint())
}

/// Canonical, fully ordered rendering of an `Analysis`. Float fields are
/// rendered as raw bits so "identical" means bit-for-bit, not
/// approximately equal; the two hash-ordered containers (`index`,
/// `client_ips`) are sorted before rendering.
fn canon(a: &Analysis) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "no_chain={} unresolvable={} distinct={} entities={:?}",
        a.no_chain_records,
        a.unresolvable_records,
        a.distinct_certificates,
        a.interception_entities
    )
    .unwrap();
    let mut index: Vec<(&certchain_chainlab::ChainKey, &usize)> = a.index.iter().collect();
    index.sort();
    writeln!(out, "index={index:?}").unwrap();
    for c in &a.chains {
        let mut ips: Vec<Ipv4Addr> = c.usage.client_ips.iter().copied().collect();
        ips.sort();
        let ports: Vec<(u16, u64)> = c
            .usage
            .ports
            .iter()
            .map(|(&p, w)| (p, w.to_bits()))
            .collect();
        writeln!(
            out,
            "chain key={:?} certs={:?} classes={:?} cat={:?} path={:?} hybrid={:?} \
             nolink56={} dga={} ct={:?} entity={:?} snis={:?} \
             conn={} est={} sni_w={} ports={ports:?} ips={ips:?} recs={}",
            c.key,
            c.certs.iter().map(|r| r.fingerprint).collect::<Vec<_>>(),
            c.classes,
            c.category,
            c.path,
            c.hybrid_category,
            c.pub_leaf_no_intermediate,
            c.is_dga,
            c.leaf_ct_logged,
            c.interception_entity,
            c.snis,
            c.usage.connections.to_bits(),
            c.usage.established.to_bits(),
            c.usage.with_sni.to_bits(),
            c.usage.records,
        )
        .unwrap();
    }
    out
}

/// Non-uniform but deterministic per-record weights, so dispatch-order
/// mistakes show up as f64 summation differences.
fn weights_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 7) + 1) as f64 * 0.5).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn analysis_is_thread_count_invariant(
        records in proptest::collection::vec(arb_conn(), 0..160),
        threads in 2usize..9,
    ) {
        let x509 = cert_pool();
        let weights = weights_for(records.len());
        let (seq_analysis, seq_metrics) = run(&records, &x509, &weights, 1);
        let (par_analysis, par_metrics) = run(&records, &x509, &weights, threads);
        prop_assert_eq!(
            canon(&seq_analysis),
            canon(&par_analysis),
            "threads = {} diverged",
            threads
        );
        prop_assert_eq!(
            seq_metrics,
            par_metrics,
            "metrics snapshot diverged at threads = {}",
            threads
        );
    }
}

/// The dispatch path splits work in `CHUNK = 8192`-record slices; a batch
/// spanning several chunks must still fold every chain in global record
/// order. 20k records cover three chunks with a partial tail.
#[test]
fn multi_chunk_batches_stay_invariant() {
    let x509 = cert_pool();
    let pool_chains: [&[u8]; 6] = [&[3, 2, 1], &[4, 2], &[5, 2, 1], &[6], &[9, 2], &[]];
    let records: Vec<SslRecord> = (0..20_000u32)
        .map(|i| {
            let chain = pool_chains[i as usize % pool_chains.len()];
            SslRecord {
                ts: Asn1Time::from_unix(1_600_000_000 + u64::from(i)),
                uid: format!("C{i:06}"),
                orig_h: Ipv4Addr::new(10, 0, (i / 256) as u8, (i % 256) as u8),
                orig_p: 40_000 + (i % 20_000) as u16,
                resp_h: Ipv4Addr::new(192, 168, 1, (i % 7) as u8),
                resp_p: if i % 3 == 0 { 443 } else { 8443 },
                version: if chain.is_empty() {
                    TlsVersion::Tls13
                } else {
                    TlsVersion::Tls12
                },
                server_name: (i % 5 != 0).then(|| format!("svc{}.example.org", i % 3)),
                established: i % 11 != 0,
                cert_chain_fps: chain.iter().copied().map(fp_of).collect(),
            }
        })
        .collect();
    let weights = weights_for(records.len());
    let (seq_analysis, seq_metrics) = run(&records, &x509, &weights, 1);
    let sequential = canon(&seq_analysis);
    for threads in [2, 5, 8] {
        let (par_analysis, par_metrics) = run(&records, &x509, &weights, threads);
        assert_eq!(
            sequential,
            canon(&par_analysis),
            "threads = {threads} diverged"
        );
        assert_eq!(
            seq_metrics, par_metrics,
            "metrics snapshot diverged at threads = {threads}"
        );
    }
}

/// Run the pipeline with a category filter attached, returning the
/// analysis and the deterministic metrics fingerprint.
fn run_filtered(
    ssl: &[SslRecord],
    x509: &[X509Record],
    weights: &[f64],
    threads: usize,
    set: certchain_colstore::CategorySet,
) -> (Analysis, String) {
    let trust = TrustDb::new();
    let ct = DomainIndex::new();
    let registry = std::sync::Arc::new(certchain_obs::Registry::new());
    let pipeline = Pipeline::with_options(
        &trust,
        &ct,
        CrossSignRegistry::new(),
        PipelineOptions {
            threads,
            filter: certchain_chainlab::RowFilter {
                categories: Some(set),
                ..certchain_chainlab::RowFilter::default()
            },
            ..PipelineOptions::default()
        },
    )
    .with_metrics(std::sync::Arc::clone(&registry));
    let analysis = pipeline.analyze(ssl, x509, Some(weights));
    (analysis, registry.snapshot().deterministic_fingerprint())
}

/// The oracle the filter must agree with: classify each record's chain
/// with the same `chain_category` fold the store digests use, computed
/// here directly from the certificate pool.
fn manual_category(rec: &SslRecord) -> certchain_colstore::Category {
    use certchain_chainlab::{chain_category, CertCat, CertRecord};
    let trust = TrustDb::new();
    let pool: std::collections::BTreeMap<Fingerprint, CertRecord> = cert_pool()
        .iter()
        .filter_map(|r| CertRecord::from_record(r).map(|c| (r.fingerprint, c)))
        .collect();
    chain_category(rec.cert_chain_fps.iter().map(|fp| {
        pool.get(fp)
            .map(|c| CertCat::of(c, &trust))
            .unwrap_or(CertCat::Unresolved)
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A `--filter-category` analysis must equal analyzing the manually
    /// pre-filtered record subset — the TSV post-filter oracle — at
    /// every thread count, with thread-invariant deterministic metrics.
    #[test]
    fn category_filter_matches_postfilter_oracle(
        records in proptest::collection::vec(arb_conn(), 0..160),
        mask in 1u8..63,
    ) {
        let x509 = cert_pool();
        let weights = weights_for(records.len());
        let mut set = certchain_colstore::CategorySet::empty();
        for cat in certchain_colstore::Category::all() {
            if mask & (1 << cat.index()) != 0 {
                set.insert(cat);
            }
        }
        // The TSV post-filter path: drop non-matching records (and their
        // weights) before the pipeline ever sees them.
        let (kept, kept_weights): (Vec<SslRecord>, Vec<f64>) = records
            .iter()
            .zip(&weights)
            .filter(|(rec, _)| set.contains(manual_category(rec)))
            .map(|(rec, w)| (rec.clone(), *w))
            .unzip();
        let (oracle_analysis, _) = run(&kept, &x509, &kept_weights, 1);
        let want = canon(&oracle_analysis);
        let (seq_analysis, seq_metrics) = run_filtered(&records, &x509, &weights, 1, set);
        prop_assert_eq!(&canon(&seq_analysis), &want, "sequential filter diverged");
        for threads in [2usize, 8] {
            let (par_analysis, par_metrics) =
                run_filtered(&records, &x509, &weights, threads, set);
            prop_assert_eq!(&canon(&par_analysis), &want, "threads = {} diverged", threads);
            prop_assert_eq!(
                &seq_metrics,
                &par_metrics,
                "metrics snapshot diverged at threads = {}",
                threads
            );
        }
    }
}
