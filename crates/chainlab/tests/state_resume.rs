//! The tentpole invariant of the checkpointable pipeline: folding a
//! record stream across N sessions — with checkpoint saves, process
//! "restarts" (state reloads), and arbitrary rotated-file interleaving
//! between them — produces an analysis bit-identical to one uninterrupted
//! batch run, at every thread count.

use certchain_asn1::Asn1Time;
use certchain_chainlab::{Analysis, CrossSignRegistry, Pipeline, PipelineOptions, PipelineState};
use certchain_ctlog::DomainIndex;
use certchain_netsim::{SslRecord, TlsVersion, X509Record};
use certchain_trust::TrustDb;
use certchain_x509::Fingerprint;
use std::fmt::Write as _;
use std::net::Ipv4Addr;
use std::path::PathBuf;

/// A small certificate pool: root, intermediate, three leaves, one
/// self-signed stray.
fn cert_pool() -> Vec<X509Record> {
    let ts = Asn1Time::from_unix(1_725_148_800); // 2024-09-01 00:00
    let cert = |n: u8, subject: &str, issuer: &str, ca: Option<bool>, san: &[&str]| X509Record {
        ts,
        fingerprint: Fingerprint([n; 32]),
        cert_version: 3,
        serial: format!("{n:02X}"),
        subject: subject.to_string(),
        issuer: issuer.to_string(),
        not_before: ts,
        not_after: Asn1Time::from_unix(1_725_148_800 + 86_400 * 365),
        basic_constraints_ca: ca,
        path_len: if ca == Some(true) { Some(1) } else { None },
        san_dns: san.iter().map(|s| s.to_string()).collect(),
    };
    vec![
        cert(1, "CN=Pool Root CA", "CN=Pool Root CA", Some(true), &[]),
        cert(2, "CN=Pool Mid CA", "CN=Pool Root CA", Some(true), &[]),
        cert(
            3,
            "CN=svc0.example.org",
            "CN=Pool Mid CA",
            Some(false),
            &["svc0.example.org"],
        ),
        cert(
            4,
            "CN=svc1.example.org",
            "CN=Pool Mid CA",
            None,
            &["svc1.example.org"],
        ),
        cert(
            5,
            "CN=svc2.example.org",
            "CN=Pool Mid CA",
            Some(false),
            &["svc2.example.org"],
        ),
        cert(6, "CN=self.local", "CN=self.local", None, &["self.local"]),
    ]
}

/// Deterministic pseudo-random connection stream: chains drawn from the
/// pool (some empty = TLS 1.3, some referencing a fingerprint absent
/// from every x509 file = unresolvable).
fn conn_stream(n: usize) -> Vec<SslRecord> {
    let mut seed = 0x5eed_cafe_u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    let chains: Vec<Vec<Fingerprint>> = vec![
        vec![], // TLS 1.3
        vec![
            Fingerprint([3; 32]),
            Fingerprint([2; 32]),
            Fingerprint([1; 32]),
        ],
        vec![Fingerprint([4; 32]), Fingerprint([2; 32])],
        vec![Fingerprint([5; 32])],
        vec![Fingerprint([6; 32])],
        vec![Fingerprint([0xEE; 32])], // unresolvable
        vec![Fingerprint([3; 32]), Fingerprint([0xEE; 32])], // partially logged
    ];
    let snis = [
        None,
        Some("svc0.example.org"),
        Some("svc1.example.org"),
        Some("svc2.example.org"),
    ];
    (0..n)
        .map(|i| {
            let r = next();
            let chain = chains[(r % chains.len() as u32) as usize].clone();
            SslRecord {
                ts: Asn1Time::from_unix(1_725_148_800 + i as u64),
                uid: format!("C{i:08x}"),
                orig_h: Ipv4Addr::new(10, 0, (next() % 4) as u8, (next() % 32) as u8),
                orig_p: 32_000 + (next() % 1000) as u16,
                resp_h: Ipv4Addr::new(192, 168, 1, (next() % 8) as u8),
                resp_p: [443u16, 8443, 9000][(next() % 3) as usize],
                version: if chain.is_empty() {
                    TlsVersion::Tls13
                } else {
                    TlsVersion::Tls12
                },
                server_name: snis[(next() % snis.len() as u32) as usize].map(str::to_string),
                established: next() % 4 != 0,
                cert_chain_fps: chain,
            }
        })
        .collect()
}

fn pipeline<'a>(trust: &'a TrustDb, ct: &'a DomainIndex, threads: usize) -> Pipeline<'a> {
    Pipeline::with_options(
        trust,
        ct,
        CrossSignRegistry::new(),
        PipelineOptions {
            threads,
            ..PipelineOptions::default()
        },
    )
}

/// Canonical, fully ordered rendering; floats as raw bits so identical
/// means bit-for-bit.
fn canon(a: &Analysis) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "no_chain={} unresolvable={} distinct={} entities={:?}",
        a.no_chain_records,
        a.unresolvable_records,
        a.distinct_certificates,
        a.interception_entities
    )
    .unwrap();
    for c in &a.chains {
        let mut ips: Vec<Ipv4Addr> = c.usage.client_ips.iter().copied().collect();
        ips.sort();
        let ports: Vec<(u16, u64)> = c
            .usage
            .ports
            .iter()
            .map(|(&p, w)| (p, w.to_bits()))
            .collect();
        writeln!(
            out,
            "chain key={:?} cat={:?} hybrid={:?} snis={:?} conn={} est={} sni_w={} \
             ports={ports:?} ips={ips:?} recs={}",
            c.key,
            c.category,
            c.hybrid_category,
            c.snis,
            c.usage.connections.to_bits(),
            c.usage.established.to_bits(),
            c.usage.with_sni.to_bits(),
            c.usage.records,
        )
        .unwrap();
    }
    out
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("certchain-state-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn resumed_fold_with_restarts_matches_one_shot_batch() {
    let trust = TrustDb::new();
    let ct = DomainIndex::new();
    let x509 = cert_pool();
    let ssl = conn_stream(4000);

    // Reference: one uninterrupted batch run.
    let reference = canon(&pipeline(&trust, &ct, 1).analyze(&ssl, &x509, None));

    for threads in [1usize, 2, 8] {
        let root = tmp_root(&format!("resume-{threads}"));
        // Session 1: first x509 "file", first third of the connections.
        {
            let pipe = pipeline(&trust, &ct, threads);
            let mut state = PipelineState::new();
            pipe.fold_x509_stream(&mut state, x509[..3].iter().cloned().map(Ok::<_, ()>))
                .unwrap();
            pipe.fold_ssl_stream(&mut state, ssl[..1500].iter().cloned().map(Ok::<_, ()>))
                .unwrap();
            state.save_checkpoint(&root).unwrap();
        }
        // Session 2 (fresh process): ssl rows arrive *before* the rest of
        // the x509 rows — deferred resolution must absorb that.
        {
            let pipe = pipeline(&trust, &ct, threads);
            let mut state = PipelineState::load_latest(&root)
                .unwrap()
                .expect("checkpoint");
            pipe.fold_ssl_stream(&mut state, ssl[1500..2900].iter().cloned().map(Ok::<_, ()>))
                .unwrap();
            pipe.fold_x509_stream(&mut state, x509[3..].iter().cloned().map(Ok::<_, ()>))
                .unwrap();
            state.save_checkpoint(&root).unwrap();
        }
        // Session 3: the tail, then finalize.
        {
            let pipe = pipeline(&trust, &ct, threads);
            let mut state = PipelineState::load_latest(&root)
                .unwrap()
                .expect("checkpoint");
            pipe.fold_ssl_stream(&mut state, ssl[2900..].iter().cloned().map(Ok::<_, ()>))
                .unwrap();
            let resumed = canon(&pipe.finalize_state(&state));
            assert_eq!(
                resumed, reference,
                "threads={threads}: resumed fold diverged from one-shot batch"
            );
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}

#[test]
fn finalize_is_pure_and_repeatable() {
    let trust = TrustDb::new();
    let ct = DomainIndex::new();
    let x509 = cert_pool();
    let ssl = conn_stream(800);
    let pipe = pipeline(&trust, &ct, 2);
    let mut state = PipelineState::new();
    pipe.fold_x509_stream(&mut state, x509.iter().cloned().map(Ok::<_, ()>))
        .unwrap();
    pipe.fold_ssl_stream(&mut state, ssl.iter().cloned().map(Ok::<_, ()>))
        .unwrap();
    let first = canon(&pipe.finalize_state(&state));
    let second = canon(&pipe.finalize_state(&state));
    assert_eq!(first, second, "finalize must not consume or mutate state");
    // And folding after a finalize still works (mid-stream reports).
    pipe.fold_ssl_stream(&mut state, ssl[..100].iter().cloned().map(Ok::<_, ()>))
        .unwrap();
    let third = pipe.finalize_state(&state);
    assert_eq!(third.chains.len(), pipe.finalize_state(&state).chains.len());
}

#[test]
fn unresolvable_chains_are_excluded_with_record_tally() {
    let trust = TrustDb::new();
    let ct = DomainIndex::new();
    let x509 = cert_pool();
    let ssl = conn_stream(1000);
    let analysis = pipeline(&trust, &ct, 1).analyze(&ssl, &x509, None);
    let expect_unresolvable = ssl
        .iter()
        .filter(|r| {
            !r.cert_chain_fps.is_empty() && r.cert_chain_fps.iter().any(|fp| fp.0 == [0xEE; 32])
        })
        .count() as u64;
    assert!(
        expect_unresolvable > 0,
        "stream must exercise unresolvable chains"
    );
    assert_eq!(analysis.unresolvable_records, expect_unresolvable);
    assert!(analysis
        .chains
        .iter()
        .all(|c| c.key.0.iter().all(|fp| fp.0 != [0xEE; 32])));
}

#[test]
fn interrupted_checkpoint_falls_back_and_refold_recovers() {
    let trust = TrustDb::new();
    let ct = DomainIndex::new();
    let x509 = cert_pool();
    let ssl = conn_stream(1200);
    let root = tmp_root("fallback");
    let pipe = pipeline(&trust, &ct, 2);

    let reference = canon(&pipe.finalize_state(&{
        let mut s = PipelineState::new();
        pipe.fold_x509_stream(&mut s, x509.iter().cloned().map(Ok::<_, ()>))
            .unwrap();
        pipe.fold_ssl_stream(&mut s, ssl.iter().cloned().map(Ok::<_, ()>))
            .unwrap();
        s
    }));

    // Session 1: complete checkpoint covering the first two "files".
    let mut state = PipelineState::new();
    pipe.fold_x509_stream(&mut state, x509.iter().cloned().map(Ok::<_, ()>))
        .unwrap();
    pipe.fold_ssl_stream(&mut state, ssl[..600].iter().cloned().map(Ok::<_, ()>))
        .unwrap();
    state.note_folded("ssl.2024-09-01-00.log");
    state.save_checkpoint(&root).unwrap();

    // Session continues: folds a third file and checkpoints — but the
    // write is "interrupted" between the field files and the manifest.
    pipe.fold_ssl_stream(&mut state, ssl[600..].iter().cloned().map(Ok::<_, ()>))
        .unwrap();
    state.note_folded("ssl.2024-09-01-01.log");
    let gen = state.save_checkpoint(&root).unwrap();
    let manifest = root
        .join(format!("gen-{gen:06}"))
        .join(certchain_colstore::CHECKPOINT_MANIFEST_FILE);
    std::fs::remove_file(&manifest).unwrap();

    // Restart: the partial generation is rejected, resume lands on the
    // last complete checkpoint, and the ledger says which file was lost.
    let mut resumed = PipelineState::load_latest(&root)
        .unwrap()
        .expect("fallback checkpoint");
    assert!(resumed.has_folded("ssl.2024-09-01-00.log"));
    assert!(
        !resumed.has_folded("ssl.2024-09-01-01.log"),
        "the interrupted session's file must not appear folded"
    );
    // Re-folding the lost file reproduces the uninterrupted analysis
    // exactly.
    pipe.fold_ssl_stream(&mut resumed, ssl[600..].iter().cloned().map(Ok::<_, ()>))
        .unwrap();
    resumed.note_folded("ssl.2024-09-01-01.log");
    assert_eq!(canon(&pipe.finalize_state(&resumed)), reference);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn checkpoint_growth_is_incremental_for_certs() {
    let trust = TrustDb::new();
    let ct = DomainIndex::new();
    let x509 = cert_pool();
    let root = tmp_root("chunks");
    let pipe = pipeline(&trust, &ct, 1);
    let mut state = PipelineState::new();
    pipe.fold_x509_stream(&mut state, x509[..3].iter().cloned().map(Ok::<_, ()>))
        .unwrap();
    state.save_checkpoint(&root).unwrap();
    pipe.fold_x509_stream(&mut state, x509[3..].iter().cloned().map(Ok::<_, ()>))
        .unwrap();
    let gen = state.save_checkpoint(&root).unwrap();
    // The second generation must carry the first cert chunk and add one.
    let dir = root.join(format!("gen-{gen:06}"));
    let chunks: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("certs-"))
        .collect();
    assert_eq!(
        chunks.len(),
        2,
        "expected carried + fresh chunk: {chunks:?}"
    );
    let reloaded = PipelineState::load_latest(&root).unwrap().unwrap();
    assert_eq!(reloaded.distinct_certificates(), x509.len());
    std::fs::remove_dir_all(&root).unwrap();
}
