//! The DGA single-certificate cluster detector (§4.3).
//!
//! The paper identified a cluster of single-certificate chains whose
//! issuer and subject both carry randomly generated domain names following
//! one pattern (`www[dot]randomstring[dot]com`), distinct from each other,
//! with validity periods between 4 and 365 days. This detector keys on the
//! same observable properties: a generated-looking label (fixed affixes,
//! pronounceable-random body, no dictionary hit) in *both* DN fields of a
//! single-certificate chain.

use crate::model::CertRecord;
use std::borrow::Borrow;

/// Tiny deny-list of common real-word labels so obviously human domains
/// never cluster (the real pipeline used manual inspection; this keeps the
/// detector honest on the public population's names).
const DICTIONARY: &[&str] = &[
    "news", "video", "cloud", "shop", "mail", "search", "social", "bank", "stream", "game",
    "learn", "travel", "forum", "music", "docs", "photo", "example", "google", "test",
];

fn is_vowel(b: u8) -> bool {
    matches!(b, b'a' | b'e' | b'i' | b'o' | b'u')
}

/// Whether a CN looks like a generated `www.<label>.com` domain.
pub fn looks_generated(cn: &str) -> bool {
    let Some(rest) = cn.strip_prefix("www.") else {
        return false;
    };
    let Some(label) = rest.strip_suffix(".com") else {
        return false;
    };
    if !(8..=16).contains(&label.len()) || label.contains('.') {
        return false;
    }
    if !label.bytes().all(|b| b.is_ascii_lowercase()) {
        return false;
    }
    if DICTIONARY.iter().any(|w| label.contains(w)) {
        return false;
    }
    // Pronounceable-random shape: strict consonant/vowel alternation —
    // the signature of the cluster's generator.
    label
        .bytes()
        .enumerate()
        .all(|(i, b)| is_vowel(b) == (i % 2 == 1))
}

/// Whether a single-certificate chain belongs to the DGA cluster.
pub fn is_dga_chain<C: Borrow<CertRecord>>(chain: &[C]) -> bool {
    if chain.len() != 1 {
        return false;
    }
    let cert = chain[0].borrow();
    if cert.is_self_signed() {
        return false; // cluster members have distinct issuer and subject
    }
    let (Some(issuer_cn), Some(subject_cn)) =
        (cert.issuer.common_name(), cert.subject.common_name())
    else {
        return false;
    };
    looks_generated(issuer_cn) && looks_generated(subject_cn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;
    use certchain_x509::{DistinguishedName, Fingerprint, Validity};

    fn single(issuer: &str, subject: &str) -> Vec<CertRecord> {
        vec![CertRecord {
            fingerprint: Fingerprint([1; 32]),
            issuer: DistinguishedName::cn(issuer),
            subject: DistinguishedName::cn(subject),
            validity: Validity::days_from(Asn1Time::from_unix(0), 100),
            bc_ca: None,
            san_dns: vec![],
        }]
    }

    #[test]
    fn cluster_members_detected() {
        assert!(is_dga_chain(&single(
            "www.bakelotifu.com",
            "www.rimatodesa.com"
        )));
    }

    #[test]
    fn self_signed_is_excluded() {
        assert!(!is_dga_chain(&single(
            "www.bakelotifu.com",
            "www.bakelotifu.com"
        )));
    }

    #[test]
    fn human_domains_are_excluded() {
        assert!(!is_dga_chain(&single(
            "www.mynewssite.com",
            "www.bakelotifu.com"
        )));
        assert!(!is_dga_chain(&single(
            "www.bakelotifu.com",
            "printer.local"
        )));
        assert!(!is_dga_chain(&single("Corp CA", "host.corp")));
    }

    #[test]
    fn multi_cert_chains_are_excluded() {
        let mut chain = single("www.bakelotifu.com", "www.rimatodesa.com");
        chain.push(chain[0].clone());
        assert!(!is_dga_chain(&chain));
    }

    #[test]
    fn label_shape_rules() {
        assert!(looks_generated("www.bakelotifu.com"));
        assert!(!looks_generated("www.ab.com")); // too short
        assert!(!looks_generated("www.bbkelotifu.com")); // alternation broken
        assert!(!looks_generated("www.bakelotifu.org")); // wrong suffix
        assert!(!looks_generated("bakelotifu.com")); // no www.
        assert!(!looks_generated("www.BAKELOTIFU.com")); // case
        assert!(!looks_generated("www.cloudyvideo.com")); // dictionary words
    }
}
