//! TLS-interception detection (§3.2.1, Appendix B).
//!
//! Method, exactly as the paper describes it: filter connections whose
//! first-presented certificate's issuer appears in no trust store, then
//! cross-reference CT for the SNI domain — if CT has recorded certificates
//! for the domain in an overlapping validity period and the observed
//! issuer is not among the recorded issuers, the connection was possibly
//! intercepted. (Interception of origins whose certificates never reached
//! CT is invisible to this method; the generator plants such chains and
//! integration tests confirm they evade detection.)

use crate::model::CertRecord;
use certchain_ctlog::DomainIndex;
use certchain_trust::TrustDb;
use certchain_x509::DistinguishedName;
use std::borrow::Borrow;

/// Verdict for one (chain, SNI) observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterceptionVerdict {
    /// The observed issuer conflicts with CT's records for the domain.
    LikelyIntercepted,
    /// CT agrees with the observed issuer (or the issuer is public).
    NotIntercepted,
    /// No evidence either way (no SNI, or CT does not know the domain).
    Unknown,
}

/// Detect interception for one chain observation.
pub fn detect<C: Borrow<CertRecord>>(
    chain: &[C],
    sni: Option<&str>,
    trust: &TrustDb,
    ct: &DomainIndex,
) -> InterceptionVerdict {
    let Some(leaf) = chain.first().map(Borrow::borrow) else {
        return InterceptionVerdict::Unknown;
    };
    // Step 1: the leaf's issuer must be outside the public databases.
    if trust.is_listed_subject(&leaf.issuer) {
        return InterceptionVerdict::NotIntercepted;
    }
    // Step 2: CT cross-reference needs a domain.
    let Some(domain) = sni else {
        return InterceptionVerdict::Unknown;
    };
    if !ct.knows_domain(domain) {
        return InterceptionVerdict::Unknown;
    }
    let recorded = ct.recorded_issuers_overlapping(domain, leaf.validity);
    if recorded.is_empty() {
        return InterceptionVerdict::Unknown;
    }
    if recorded.iter().any(|dn| **dn == leaf.issuer) {
        InterceptionVerdict::NotIntercepted
    } else {
        InterceptionVerdict::LikelyIntercepted
    }
}

/// The issuer identity an interception verdict attributes the middlebox
/// to: the leaf's issuer DN.
pub fn intercepting_issuer<C: Borrow<CertRecord>>(chain: &[C]) -> Option<&DistinguishedName> {
    chain.first().map(|leaf| &leaf.borrow().issuer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;
    use certchain_cryptosim::KeyPair;
    use certchain_x509::{CertificateBuilder, Fingerprint, Validity};
    use std::sync::Arc;

    struct Fixture {
        trust: TrustDb,
        ct: DomainIndex,
    }

    fn window() -> Validity {
        Validity::days_from(Asn1Time::from_ymd_hms(2020, 1, 1, 0, 0, 0).unwrap(), 3650)
    }

    fn fixture() -> Fixture {
        let kp = KeyPair::derive(1, "int:root");
        let root_dn = DistinguishedName::cn_o("Real Root", "Real CA");
        let root = CertificateBuilder::new()
            .issuer(root_dn.clone())
            .subject(root_dn.clone())
            .validity(window())
            .ca(None)
            .sign(&kp)
            .into_arc();
        let mut trust = TrustDb::new();
        trust.add_root_everywhere(Arc::clone(&root));
        // CT knows bank.example with its real issuer.
        let mut ct = DomainIndex::new();
        let leaf = CertificateBuilder::new()
            .issuer(root_dn)
            .subject(DistinguishedName::cn("bank.example"))
            .validity(window())
            .leaf_for("bank.example")
            .sign(&kp)
            .into_arc();
        ct.add(leaf);
        Fixture { trust, ct }
    }

    fn record(issuer: &DistinguishedName, subject: &str) -> CertRecord {
        CertRecord {
            fingerprint: Fingerprint([7; 32]),
            issuer: issuer.clone(),
            subject: DistinguishedName::cn(subject),
            validity: window(),
            bc_ca: Some(false),
            san_dns: vec![subject.to_string()],
        }
    }

    #[test]
    fn middlebox_forgery_is_detected() {
        let f = fixture();
        let mb = DistinguishedName::cn_o("Zscaler Intermediate CA", "Zscaler");
        let chain = [record(&mb, "bank.example")];
        assert_eq!(
            detect(&chain, Some("bank.example"), &f.trust, &f.ct),
            InterceptionVerdict::LikelyIntercepted
        );
        assert_eq!(intercepting_issuer(&chain), Some(&mb));
    }

    #[test]
    fn real_issuer_is_not_flagged() {
        let f = fixture();
        let real = DistinguishedName::cn_o("Real Root", "Real CA");
        let chain = [record(&real, "bank.example")];
        assert_eq!(
            detect(&chain, Some("bank.example"), &f.trust, &f.ct),
            InterceptionVerdict::NotIntercepted
        );
    }

    #[test]
    fn private_issuer_for_same_domain_recorded_in_ct_is_clean() {
        let f = fixture();
        // A non-public issuer that CT itself recorded for the domain — not
        // a mismatch (e.g. an anchored non-public issuer that CT-logs).
        let mb = DistinguishedName::cn("Ghost CA");
        let chain = [record(&mb, "unknown.example")];
        // CT does not know unknown.example at all → Unknown.
        assert_eq!(
            detect(&chain, Some("unknown.example"), &f.trust, &f.ct),
            InterceptionVerdict::Unknown
        );
    }

    #[test]
    fn no_sni_is_unknown() {
        let f = fixture();
        let mb = DistinguishedName::cn("AnyBox CA");
        let chain = [record(&mb, "bank.example")];
        assert_eq!(
            detect(&chain, None, &f.trust, &f.ct),
            InterceptionVerdict::Unknown
        );
    }

    #[test]
    fn non_overlapping_validity_is_unknown() {
        let f = fixture();
        let mb = DistinguishedName::cn("TimeShift CA");
        let mut rec = record(&mb, "bank.example");
        rec.validity =
            Validity::days_from(Asn1Time::from_ymd_hms(2035, 1, 1, 0, 0, 0).unwrap(), 10);
        assert_eq!(
            detect(&[rec], Some("bank.example"), &f.trust, &f.ct),
            InterceptionVerdict::Unknown
        );
    }

    #[test]
    fn empty_chain_is_unknown() {
        let f = fixture();
        assert_eq!(
            detect::<CertRecord>(&[], Some("bank.example"), &f.trust, &f.ct),
            InterceptionVerdict::Unknown
        );
        assert!(intercepting_issuer::<CertRecord>(&[]).is_none());
    }
}
