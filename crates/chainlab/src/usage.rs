//! Connection-usage aggregation: establishment rates, ports (Table 4),
//! SNI presence, client-IP counts.

use std::collections::{BTreeMap, HashSet};
use std::net::Ipv4Addr;

/// Weighted usage counters for one group of connections.
#[derive(Debug, Default, Clone)]
pub struct UsageStats {
    /// Weighted connection count.
    pub connections: f64,
    /// Weighted established connections.
    pub established: f64,
    /// Weighted connections that carried an SNI.
    pub with_sni: f64,
    /// Weighted connections per responder port.
    pub ports: BTreeMap<u16, f64>,
    /// Distinct client addresses observed (unweighted set).
    pub client_ips: HashSet<Ipv4Addr>,
    /// Raw (unweighted) record count.
    pub records: u64,
}

impl UsageStats {
    /// Fold in one connection observation.
    pub fn add(&mut self, established: bool, sni: bool, port: u16, client: Ipv4Addr, weight: f64) {
        self.connections += weight;
        if established {
            self.established += weight;
        }
        if sni {
            self.with_sni += weight;
        }
        *self.ports.entry(port).or_default() += weight;
        self.client_ips.insert(client);
        self.records += 1;
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &UsageStats) {
        self.connections += other.connections;
        self.established += other.established;
        self.with_sni += other.with_sni;
        for (&port, &w) in &other.ports {
            *self.ports.entry(port).or_default() += w;
        }
        // srclint: commutative -- set union; insertion order is invisible
        self.client_ips.extend(other.client_ips.iter().copied());
        self.records += other.records;
    }

    /// Establishment rate.
    pub fn established_rate(&self) -> f64 {
        if self.connections == 0.0 {
            0.0
        } else {
            self.established / self.connections
        }
    }

    /// Share of connections lacking SNI.
    pub fn no_sni_rate(&self) -> f64 {
        if self.connections == 0.0 {
            0.0
        } else {
            1.0 - self.with_sni / self.connections
        }
    }

    /// Port distribution as `(port, percent)` sorted by share descending.
    pub fn port_distribution(&self) -> Vec<(u16, f64)> {
        let mut out: Vec<(u16, f64)> = self
            .ports
            .iter()
            .map(|(&p, &w)| (p, 100.0 * w / self.connections.max(f64::MIN_POSITIVE)))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("shares are finite"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, d)
    }

    #[test]
    fn rates_and_ports() {
        let mut s = UsageStats::default();
        s.add(true, true, 443, ip(1), 1.0);
        s.add(true, false, 443, ip(2), 1.0);
        s.add(false, false, 8013, ip(1), 2.0);
        assert!((s.established_rate() - 0.5).abs() < 1e-9);
        assert!((s.no_sni_rate() - 0.75).abs() < 1e-9);
        let ports = s.port_distribution();
        assert_eq!(ports[0], (443, 50.0));
        assert_eq!(ports[1], (8013, 50.0));
        assert_eq!(s.client_ips.len(), 2);
        assert_eq!(s.records, 3);
    }

    #[test]
    fn merge_combines() {
        let mut a = UsageStats::default();
        a.add(true, true, 443, ip(1), 1.0);
        let mut b = UsageStats::default();
        b.add(false, false, 25, ip(2), 3.0);
        a.merge(&b);
        assert!((a.connections - 4.0).abs() < 1e-9);
        assert_eq!(a.client_ips.len(), 2);
        assert_eq!(a.ports.len(), 2);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = UsageStats::default();
        assert_eq!(s.established_rate(), 0.0);
        assert_eq!(s.no_sni_rate(), 0.0);
        assert!(s.port_distribution().is_empty());
    }
}
