//! Hybrid-chain structure taxonomy (§4.2, Tables 3/6/7, Figures 4/6).

use crate::classify::CertClass;
use crate::matchpath::{PathReport, PathVerdict};
use crate::model::CertRecord;
use std::borrow::Borrow;

/// Table 3 top-level categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HybridCategory {
    /// Chain is a complete matched path; the leaf is non-public-issued and
    /// the path anchors to a public issuer ("Non-pub chained to Pub").
    CompleteNonPubToPub,
    /// Chain is a complete matched path; a public prefix is continued by a
    /// private certificate ("Pub chained to Prv").
    CompletePubToPrv,
    /// Chain contains a complete matched path plus unnecessary certs.
    ContainsPath,
    /// No complete matched path (see [`NoPathCategory`]).
    NoPath(NoPathCategory),
}

/// Table 7 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoPathCategory {
    /// Non-public self-signed leaf followed by mismatched pairs.
    SelfSignedLeafMismatches,
    /// Non-public self-signed leaf followed by a valid sub-chain.
    SelfSignedLeafValidSubchain,
    /// Every issuer–subject pair mismatched.
    AllMismatched,
    /// Some pairs match, no complete path.
    PartialMismatched,
    /// Non-public root appended to a valid public-issued sub-chain.
    RootAppendedToValidSubchain,
    /// Non-public root present plus mismatched pairs.
    RootAndMismatches,
}

/// Categorize a hybrid chain given its per-cert classes and path report.
pub fn categorize<C: Borrow<CertRecord>>(
    chain: &[C],
    classes: &[CertClass],
    report: &PathReport,
) -> HybridCategory {
    debug_assert_eq!(chain.len(), classes.len());
    match report.verdict {
        PathVerdict::IsComplete => {
            // Leaf class decides the Table 3 sub-row.
            if classes[0] == CertClass::NonPublicDbIssued {
                HybridCategory::CompleteNonPubToPub
            } else {
                HybridCategory::CompletePubToPrv
            }
        }
        PathVerdict::ContainsComplete => HybridCategory::ContainsPath,
        PathVerdict::NoComplete => HybridCategory::NoPath(no_path_category(chain, classes, report)),
    }
}

fn no_path_category<C: Borrow<CertRecord>>(
    chain: &[C],
    classes: &[CertClass],
    report: &PathReport,
) -> NoPathCategory {
    let leaf_self_signed =
        chain[0].borrow().is_self_signed() && classes[0] == CertClass::NonPublicDbIssued;
    if leaf_self_signed {
        // Valid sub-chain: everything after the leaf forms one matched run.
        let rest_fully_matched =
            report.pair_matches.len() >= 2 && report.pair_matches[1..].iter().all(|&m| m);
        return if rest_fully_matched {
            NoPathCategory::SelfSignedLeafValidSubchain
        } else {
            NoPathCategory::SelfSignedLeafMismatches
        };
    }
    // A non-public *root* here means a self-signed non-public certificate
    // somewhere past the leaf position.
    let non_pub_root_at = chain
        .iter()
        .enumerate()
        .skip(1)
        .find(|(i, c)| {
            let cert: &CertRecord = (*c).borrow();
            cert.is_self_signed() && classes[*i] == CertClass::NonPublicDbIssued
        })
        .map(|(i, _)| i);
    if let Some(root_idx) = non_pub_root_at {
        // "Appended to a valid sub-chain": the root sits at the end, the
        // certificates between the leaf and the root form one matched
        // sequence (the leaf's own pair is broken — otherwise the chain
        // would contain a complete path), and that sub-chain involves a
        // public-DB issuer.
        let sub_chain_ok = root_idx >= 2 && report.pair_matches[1..root_idx - 1].iter().all(|&m| m);
        let prefix_has_public = classes[..root_idx].contains(&CertClass::PublicDbIssued);
        if root_idx == chain.len() - 1 && sub_chain_ok && prefix_has_public {
            return NoPathCategory::RootAppendedToValidSubchain;
        }
        return NoPathCategory::RootAndMismatches;
    }
    if report.mismatch_positions.len() == report.pair_matches.len() {
        NoPathCategory::AllMismatched
    } else {
        NoPathCategory::PartialMismatched
    }
}

/// §4.2's 56-chain subgroup: the chain includes a public-DB-issued leaf
/// but no certificate that issues it.
pub fn has_public_leaf_without_intermediate<C: Borrow<CertRecord>>(
    chain: &[C],
    classes: &[CertClass],
) -> bool {
    if chain.is_empty() || classes[0] != CertClass::PublicDbIssued {
        return false;
    }
    let leaf = chain[0].borrow();
    if leaf.is_self_signed() || !leaf.is_leaf_candidate() {
        return false;
    }
    !chain[1..].iter().any(|c| c.borrow().subject == leaf.issuer)
}

/// One cell of the Figure 4 structure matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig4Cell {
    /// Certificate belongs to the complete matched path; class of the cert.
    Complete(CertClass),
    /// Certificate belongs to a partial matched run.
    Partial(CertClass),
    /// Certificate matched nothing (single).
    Single(CertClass),
}

/// Figure 4: per-position cell classification for one chain.
pub fn structure_matrix_column<C: Borrow<CertRecord>>(
    chain: &[C],
    classes: &[CertClass],
    report: &PathReport,
) -> Vec<Fig4Cell> {
    let mut roles: Vec<Option<bool /* complete? */>> = vec![None; chain.len()];
    let mut complete_seen = false;
    for run in &report.runs {
        let complete = run.starts_at_leaf && !complete_seen;
        if complete {
            complete_seen = true;
        }
        for slot in roles.iter_mut().take(run.end + 1).skip(run.start) {
            *slot = Some(complete);
        }
    }
    roles
        .iter()
        .zip(classes)
        .map(|(role, &class)| match role {
            Some(true) => Fig4Cell::Complete(class),
            Some(false) => Fig4Cell::Partial(class),
            None => Fig4Cell::Single(class),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crosssign::CrossSignRegistry;
    use crate::matchpath::analyze;
    use certchain_asn1::Asn1Time;
    use certchain_x509::{DistinguishedName, Fingerprint, Validity};

    fn cert(n: u8, issuer: &str, subject: &str, ca: Option<bool>) -> CertRecord {
        CertRecord {
            fingerprint: Fingerprint([n; 32]),
            issuer: DistinguishedName::cn(issuer),
            subject: DistinguishedName::cn(subject),
            validity: Validity::days_from(Asn1Time::from_unix(0), 10),
            bc_ca: ca,
            san_dns: vec![],
        }
    }

    use CertClass::{NonPublicDbIssued as NP, PublicDbIssued as P};

    fn cat(chain: &[CertRecord], classes: &[CertClass]) -> HybridCategory {
        let report = analyze(chain, &CrossSignRegistry::new());
        categorize(chain, classes, &report)
    }

    #[test]
    fn complete_nonpub_to_pub() {
        // [leaf(np-issued), signing CA (pub-issued), public ICA (pub)].
        let chain = [
            cert(1, "VA CA B3", "va.gov", Some(false)),
            cert(2, "Verizon SSP", "VA CA B3", Some(true)),
            cert(3, "Entrust Root", "Verizon SSP", Some(true)),
        ];
        assert_eq!(
            cat(&chain, &[NP, P, P]),
            HybridCategory::CompleteNonPubToPub
        );
    }

    #[test]
    fn complete_pub_to_prv() {
        // The Scalyr shape: public leaf, matched all the way, trailing
        // private cert continuing the sequence.
        let chain = [
            cert(1, "DV ICA", "app.scalyr.com", Some(false)),
            cert(2, "USERTrust", "DV ICA", Some(true)),
            cert(3, "AAA Root", "USERTrust", Some(true)),
            cert(4, "Scalyr", "AAA Root", None),
        ];
        assert_eq!(
            cat(&chain, &[P, P, P, NP]),
            HybridCategory::CompletePubToPrv
        );
    }

    #[test]
    fn contains_path() {
        let chain = [
            cert(1, "ICA", "site.org", Some(false)),
            cert(2, "Root", "ICA", Some(true)),
            cert(3, "tester", "tester", None), // appended junk
        ];
        assert_eq!(cat(&chain, &[P, P, NP]), HybridCategory::ContainsPath);
    }

    #[test]
    fn no_path_self_signed_mismatches() {
        let chain = [
            cert(1, "localhost", "localhost", None),
            cert(2, "X", "Y", Some(true)),
        ];
        assert_eq!(
            cat(&chain, &[NP, P]),
            HybridCategory::NoPath(NoPathCategory::SelfSignedLeafMismatches)
        );
    }

    #[test]
    fn no_path_self_signed_valid_subchain() {
        let chain = [
            cert(1, "localhost", "localhost", None),
            cert(2, "Mid", "Inner", Some(true)),
            cert(3, "Root", "Mid", Some(true)),
            cert(4, "Root", "Root", Some(true)),
        ];
        assert_eq!(
            cat(&chain, &[NP, P, P, P]),
            HybridCategory::NoPath(NoPathCategory::SelfSignedLeafValidSubchain)
        );
    }

    #[test]
    fn no_path_all_mismatched() {
        let chain = [
            cert(1, "GhostCA", "x.org", None),
            cert(2, "A", "B", Some(true)),
            cert(3, "C", "D", Some(true)),
        ];
        assert_eq!(
            cat(&chain, &[NP, P, P]),
            HybridCategory::NoPath(NoPathCategory::AllMismatched)
        );
    }

    #[test]
    fn no_path_partial() {
        // X ✓ ✓ with a CA-starting run.
        let chain = [
            cert(1, "Phantom", "y.org", None),
            cert(2, "C2", "C1", Some(true)),
            cert(3, "C3", "C2", Some(true)),
            cert(4, "C4", "C3", Some(true)),
        ];
        assert_eq!(
            cat(&chain, &[NP, NP, NP, P]),
            HybridCategory::NoPath(NoPathCategory::PartialMismatched)
        );
    }

    #[test]
    fn no_path_root_appended() {
        // The workload's row-5 shape: the leaf's issuing intermediate is
        // missing (pair 0 mismatches), the remaining sub-chain matches
        // (I1 ← I2), and a private root is appended: X ✓ X.
        let chain = [
            cert(1, "Missing I1", "site.org", Some(false)),
            cert(2, "I2", "I1", Some(true)),
            cert(3, "Public ICA", "I2", Some(true)),
            cert(4, "Shadow Root", "Shadow Root", Some(true)),
        ];
        assert_eq!(
            cat(&chain, &[NP, NP, P, NP]),
            HybridCategory::NoPath(NoPathCategory::RootAppendedToValidSubchain)
        );
    }

    #[test]
    fn no_path_root_and_mismatches() {
        let chain = [
            cert(1, "Lost", "z.org", None),
            cert(2, "Rogue Root", "Rogue Root", Some(true)),
            cert(3, "Pub Root", "Pub Root", Some(true)),
        ];
        assert_eq!(
            cat(&chain, &[NP, NP, P]),
            HybridCategory::NoPath(NoPathCategory::RootAndMismatches)
        );
    }

    #[test]
    fn fifty_six_group_detection() {
        // Public leaf, nothing issues it.
        let chain = [
            cert(1, "Public ICA", "site.org", Some(false)),
            cert(2, "A", "B", None),
        ];
        assert!(has_public_leaf_without_intermediate(&chain, &[P, NP]));

        // Issuing intermediate present → not in the group.
        let chain = [
            cert(1, "Public ICA", "site.org", Some(false)),
            cert(2, "Root", "Public ICA", Some(true)),
        ];
        assert!(!has_public_leaf_without_intermediate(&chain, &[P, P]));

        // Non-public leaf → not in the group.
        let chain = [cert(1, "Ghost", "site.org", None), cert(2, "A", "B", None)];
        assert!(!has_public_leaf_without_intermediate(&chain, &[NP, NP]));
    }

    #[test]
    fn fig4_matrix_cells() {
        let chain = [
            cert(1, "ICA", "site.org", Some(false)),
            cert(2, "Root", "ICA", Some(true)),
            cert(3, "tester", "tester", None),
        ];
        let classes = [P, P, NP];
        let report = analyze(&chain, &CrossSignRegistry::new());
        let cells = structure_matrix_column(&chain, &classes, &report);
        assert_eq!(
            cells,
            vec![
                Fig4Cell::Complete(P),
                Fig4Cell::Complete(P),
                Fig4Cell::Single(NP),
            ]
        );
    }
}
