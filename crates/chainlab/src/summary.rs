//! A serializable roll-up of an [`Analysis`] — the machine-readable output
//! surface (`certchain analyze --json`).

use crate::hybrid::{HybridCategory, NoPathCategory};
use crate::json::{JsonError, JsonValue};
use crate::matchpath::{path_verdict_leaf_agnostic, PathVerdict};
use crate::pipeline::{Analysis, ChainCategoryLabel};
use std::collections::BTreeMap;

/// Usage numbers for one group of chains.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupSummary {
    /// Distinct chains.
    pub chains: u64,
    /// (Weighted) connections.
    pub connections: f64,
    /// Establishment rate.
    pub established_rate: f64,
    /// Share of connections without SNI.
    pub no_sni_rate: f64,
    /// Distinct client addresses observed.
    pub client_ips: u64,
}

/// Path statistics for multi-certificate chains of one category
/// (the Table 8 shape).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathSummary {
    /// Multi-certificate chains that are one matched path.
    pub is_matched: u64,
    /// Chains containing a matched path plus extras.
    pub contains_matched: u64,
    /// Chains with no matching pair at all.
    pub no_match: u64,
    /// Single-certificate chains.
    pub single: u64,
    /// Self-signed single-certificate chains.
    pub single_self_signed: u64,
}

/// The complete machine-readable summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisSummary {
    /// Per-category usage (`public`, `non_public`, `hybrid`,
    /// `interception`).
    pub categories: BTreeMap<String, GroupSummary>,
    /// Hybrid taxonomy counts keyed by Table 3/7 row names.
    pub hybrid_taxonomy: BTreeMap<String, u64>,
    /// §4.2's public-leaf-without-intermediate subgroup size.
    pub pub_leaf_no_intermediate: u64,
    /// Path statistics for non-public-only chains.
    pub non_public_paths: PathSummary,
    /// Path statistics for interception chains.
    pub interception_paths: PathSummary,
    /// Identified interception entities.
    pub interception_entities: Vec<String>,
    /// DGA-cluster chain count.
    pub dga_chains: u64,
    /// CT-logged / total anchored non-public leaves.
    pub ct_logged: (u64, u64),
    /// Records skipped because they carried no chain (TLS 1.3).
    pub no_chain_records: u64,
    /// Records with unresolvable fingerprints.
    pub unresolvable_records: u64,
}

fn category_key(cat: ChainCategoryLabel) -> &'static str {
    match cat {
        ChainCategoryLabel::PublicOnly => "public",
        ChainCategoryLabel::NonPublicOnly => "non_public",
        ChainCategoryLabel::Hybrid => "hybrid",
        ChainCategoryLabel::Interception => "interception",
    }
}

fn hybrid_key(cat: HybridCategory) -> &'static str {
    match cat {
        HybridCategory::CompleteNonPubToPub => "complete_nonpub_to_pub",
        HybridCategory::CompletePubToPrv => "complete_pub_to_prv",
        HybridCategory::ContainsPath => "contains_path",
        HybridCategory::NoPath(NoPathCategory::SelfSignedLeafMismatches) => {
            "no_path_selfsigned_leaf_mismatches"
        }
        HybridCategory::NoPath(NoPathCategory::SelfSignedLeafValidSubchain) => {
            "no_path_selfsigned_leaf_valid_subchain"
        }
        HybridCategory::NoPath(NoPathCategory::AllMismatched) => "no_path_all_mismatched",
        HybridCategory::NoPath(NoPathCategory::PartialMismatched) => "no_path_partial_mismatched",
        HybridCategory::NoPath(NoPathCategory::RootAppendedToValidSubchain) => {
            "no_path_root_appended"
        }
        HybridCategory::NoPath(NoPathCategory::RootAndMismatches) => "no_path_root_and_mismatches",
    }
}

impl AnalysisSummary {
    /// Roll up an analysis.
    pub fn from_analysis(analysis: &Analysis) -> AnalysisSummary {
        let mut summary = AnalysisSummary {
            no_chain_records: analysis.no_chain_records,
            unresolvable_records: analysis.unresolvable_records,
            interception_entities: analysis.interception_entities.iter().cloned().collect(),
            ..AnalysisSummary::default()
        };
        for cat in [
            ChainCategoryLabel::PublicOnly,
            ChainCategoryLabel::NonPublicOnly,
            ChainCategoryLabel::Hybrid,
            ChainCategoryLabel::Interception,
        ] {
            let usage = analysis.usage_of(|c| c.category == cat);
            summary.categories.insert(
                category_key(cat).to_string(),
                GroupSummary {
                    chains: analysis.chains_in(cat).count() as u64,
                    connections: usage.connections,
                    established_rate: usage.established_rate(),
                    no_sni_rate: usage.no_sni_rate(),
                    client_ips: usage.client_ips.len() as u64,
                },
            );
        }
        for chain in &analysis.chains {
            if let Some(h) = chain.hybrid_category {
                *summary
                    .hybrid_taxonomy
                    .entry(hybrid_key(h).to_string())
                    .or_default() += 1;
            }
            if chain.pub_leaf_no_intermediate {
                summary.pub_leaf_no_intermediate += 1;
            }
            if chain.is_dga {
                summary.dga_chains += 1;
            }
            if let Some(logged) = chain.leaf_ct_logged {
                summary.ct_logged.1 += 1;
                summary.ct_logged.0 += logged as u64;
            }
            let paths = match chain.category {
                ChainCategoryLabel::NonPublicOnly => &mut summary.non_public_paths,
                ChainCategoryLabel::Interception => &mut summary.interception_paths,
                _ => continue,
            };
            if chain.key.len() == 1 {
                paths.single += 1;
                paths.single_self_signed += chain.certs[0].is_self_signed() as u64;
            } else {
                match path_verdict_leaf_agnostic(&chain.path) {
                    PathVerdict::IsComplete => paths.is_matched += 1,
                    PathVerdict::ContainsComplete => paths.contains_matched += 1,
                    PathVerdict::NoComplete => paths.no_match += 1,
                }
            }
        }
        summary
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    /// Parse back from JSON.
    pub fn from_json(text: &str) -> Result<AnalysisSummary, JsonError> {
        AnalysisSummary::from_value(&crate::json::parse(text)?)
    }

    fn to_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "categories".into(),
                JsonValue::Obj(
                    self.categories
                        .iter()
                        .map(|(k, g)| (k.clone(), g.to_value()))
                        .collect(),
                ),
            ),
            (
                "hybrid_taxonomy".into(),
                JsonValue::Obj(
                    self.hybrid_taxonomy
                        .iter()
                        .map(|(k, &n)| (k.clone(), JsonValue::Num(n as f64)))
                        .collect(),
                ),
            ),
            (
                "pub_leaf_no_intermediate".into(),
                JsonValue::Num(self.pub_leaf_no_intermediate as f64),
            ),
            ("non_public_paths".into(), self.non_public_paths.to_value()),
            (
                "interception_paths".into(),
                self.interception_paths.to_value(),
            ),
            (
                "interception_entities".into(),
                JsonValue::Arr(
                    self.interception_entities
                        .iter()
                        .map(|e| JsonValue::Str(e.clone()))
                        .collect(),
                ),
            ),
            ("dga_chains".into(), JsonValue::Num(self.dga_chains as f64)),
            (
                "ct_logged".into(),
                JsonValue::Arr(vec![
                    JsonValue::Num(self.ct_logged.0 as f64),
                    JsonValue::Num(self.ct_logged.1 as f64),
                ]),
            ),
            (
                "no_chain_records".into(),
                JsonValue::Num(self.no_chain_records as f64),
            ),
            (
                "unresolvable_records".into(),
                JsonValue::Num(self.unresolvable_records as f64),
            ),
        ])
    }

    fn from_value(v: &JsonValue) -> Result<AnalysisSummary, JsonError> {
        let ct = req(v, "ct_logged")?
            .as_arr()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| shape("`ct_logged` must be a two-element array"))?;
        Ok(AnalysisSummary {
            categories: req(v, "categories")?
                .as_obj()
                .ok_or_else(|| shape("`categories` must be an object"))?
                .iter()
                .map(|(k, g)| Ok((k.clone(), GroupSummary::from_value(g)?)))
                .collect::<Result<_, JsonError>>()?,
            hybrid_taxonomy: req(v, "hybrid_taxonomy")?
                .as_obj()
                .ok_or_else(|| shape("`hybrid_taxonomy` must be an object"))?
                .iter()
                .map(|(k, n)| Ok((k.clone(), as_count(n, k)?)))
                .collect::<Result<_, JsonError>>()?,
            pub_leaf_no_intermediate: count_field(v, "pub_leaf_no_intermediate")?,
            non_public_paths: PathSummary::from_value(req(v, "non_public_paths")?)?,
            interception_paths: PathSummary::from_value(req(v, "interception_paths")?)?,
            interception_entities: req(v, "interception_entities")?
                .as_arr()
                .ok_or_else(|| shape("`interception_entities` must be an array"))?
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(String::from)
                        .ok_or_else(|| shape("entity must be a string"))
                })
                .collect::<Result<_, JsonError>>()?,
            dga_chains: count_field(v, "dga_chains")?,
            ct_logged: (
                as_count(&ct[0], "ct_logged")?,
                as_count(&ct[1], "ct_logged")?,
            ),
            no_chain_records: count_field(v, "no_chain_records")?,
            unresolvable_records: count_field(v, "unresolvable_records")?,
        })
    }
}

impl GroupSummary {
    fn to_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("chains".into(), JsonValue::Num(self.chains as f64)),
            ("connections".into(), JsonValue::Num(self.connections)),
            (
                "established_rate".into(),
                JsonValue::Num(self.established_rate),
            ),
            ("no_sni_rate".into(), JsonValue::Num(self.no_sni_rate)),
            ("client_ips".into(), JsonValue::Num(self.client_ips as f64)),
        ])
    }

    fn from_value(v: &JsonValue) -> Result<GroupSummary, JsonError> {
        Ok(GroupSummary {
            chains: count_field(v, "chains")?,
            connections: num_field(v, "connections")?,
            established_rate: num_field(v, "established_rate")?,
            no_sni_rate: num_field(v, "no_sni_rate")?,
            client_ips: count_field(v, "client_ips")?,
        })
    }
}

impl PathSummary {
    fn to_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("is_matched".into(), JsonValue::Num(self.is_matched as f64)),
            (
                "contains_matched".into(),
                JsonValue::Num(self.contains_matched as f64),
            ),
            ("no_match".into(), JsonValue::Num(self.no_match as f64)),
            ("single".into(), JsonValue::Num(self.single as f64)),
            (
                "single_self_signed".into(),
                JsonValue::Num(self.single_self_signed as f64),
            ),
        ])
    }

    fn from_value(v: &JsonValue) -> Result<PathSummary, JsonError> {
        Ok(PathSummary {
            is_matched: count_field(v, "is_matched")?,
            contains_matched: count_field(v, "contains_matched")?,
            no_match: count_field(v, "no_match")?,
            single: count_field(v, "single")?,
            single_self_signed: count_field(v, "single_self_signed")?,
        })
    }
}

/// Structural (non-syntax) decode error; offset 0 because the value tree
/// no longer tracks source positions.
fn shape(message: impl Into<String>) -> JsonError {
    JsonError {
        offset: 0,
        message: message.into(),
    }
}

fn req<'v>(v: &'v JsonValue, key: &str) -> Result<&'v JsonValue, JsonError> {
    v.get(key)
        .ok_or_else(|| shape(format!("missing field `{key}`")))
}

fn as_count(v: &JsonValue, key: &str) -> Result<u64, JsonError> {
    v.as_u64()
        .ok_or_else(|| shape(format!("`{key}` must be a non-negative integer")))
}

fn count_field(v: &JsonValue, key: &str) -> Result<u64, JsonError> {
    as_count(req(v, key)?, key)
}

fn num_field(v: &JsonValue, key: &str) -> Result<f64, JsonError> {
    req(v, key)?
        .as_f64()
        .ok_or_else(|| shape(format!("`{key}` must be a number")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrossSignRegistry;
    use certchain_workload::{CampusProfile, CampusTrace};

    #[test]
    fn summary_round_trips_and_matches_tables() {
        let trace = CampusTrace::generate(CampusProfile::quick());
        let pipeline = crate::Pipeline::new(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
        );
        let analysis = pipeline.analyze(&trace.ssl_records, &trace.x509_records, None);
        let summary = AnalysisSummary::from_analysis(&analysis);

        assert_eq!(summary.categories["hybrid"].chains, 321);
        assert_eq!(summary.pub_leaf_no_intermediate, 56);
        assert_eq!(summary.dga_chains, 30);
        assert_eq!(summary.ct_logged, (26, 26));
        assert_eq!(
            summary.hybrid_taxonomy["no_path_all_mismatched"], 61,
            "Table 7 row 3 via the JSON surface"
        );
        assert_eq!(summary.interception_entities.len(), 80);

        // Round trip: floats may shift by an ULP through the textual
        // form, so compare counts exactly and rates with a tolerance.
        let json = summary.to_json();
        let parsed = AnalysisSummary::from_json(&json).unwrap();
        assert_eq!(parsed.hybrid_taxonomy, summary.hybrid_taxonomy);
        assert_eq!(parsed.interception_entities, summary.interception_entities);
        assert_eq!(parsed.non_public_paths, summary.non_public_paths);
        assert_eq!(parsed.interception_paths, summary.interception_paths);
        for (key, group) in &summary.categories {
            let p = &parsed.categories[key];
            assert_eq!(p.chains, group.chains);
            assert_eq!(p.client_ips, group.client_ips);
            assert!((p.established_rate - group.established_rate).abs() < 1e-9);
            assert!((p.no_sni_rate - group.no_sni_rate).abs() < 1e-9);
        }
    }
}
