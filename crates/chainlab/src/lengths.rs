//! Chain-length distributions (Figure 1).

use std::collections::BTreeMap;

/// A weighted chain-length distribution.
#[derive(Debug, Default, Clone)]
pub struct LengthDistribution {
    counts: BTreeMap<usize, f64>,
    total: f64,
    /// Lengths excluded as outliers, with their weights.
    excluded: Vec<(usize, f64)>,
}

/// Chains longer than this are excluded from Figure 1, like the paper's
/// three freak chains (3,822 / 921 / 41 certificates).
pub const OUTLIER_THRESHOLD: usize = 40;

impl LengthDistribution {
    /// Empty distribution.
    pub fn new() -> LengthDistribution {
        LengthDistribution::default()
    }

    /// Add one chain of `len` certificates with statistical `weight`.
    pub fn add(&mut self, len: usize, weight: f64) {
        if len > OUTLIER_THRESHOLD {
            self.excluded.push((len, weight));
            return;
        }
        *self.counts.entry(len).or_default() += weight;
        self.total += weight;
    }

    /// Weighted share of chains with exactly `len` certificates.
    pub fn share(&self, len: usize) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.counts.get(&len).copied().unwrap_or(0.0) / self.total
    }

    /// Cumulative share of chains with length ≤ `len` (the Figure 1 CDF).
    pub fn cdf(&self, len: usize) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.counts.range(..=len).map(|(_, w)| w).sum::<f64>() / self.total
    }

    /// `(length, weighted count)` pairs in ascending length order.
    pub fn points(&self) -> Vec<(usize, f64)> {
        self.counts.iter().map(|(&l, &w)| (l, w)).collect()
    }

    /// Weighted number of chains counted (excluding outliers).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The excluded outliers.
    pub fn excluded(&self) -> &[(usize, f64)] {
        &self.excluded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_and_cdf() {
        let mut d = LengthDistribution::new();
        for _ in 0..8 {
            d.add(1, 1.0);
        }
        d.add(2, 1.0);
        d.add(3, 1.0);
        assert!((d.share(1) - 0.8).abs() < 1e-9);
        assert!((d.cdf(1) - 0.8).abs() < 1e-9);
        assert!((d.cdf(2) - 0.9).abs() < 1e-9);
        assert!((d.cdf(3) - 1.0).abs() < 1e-9);
        assert_eq!(d.points(), vec![(1, 8.0), (2, 1.0), (3, 1.0)]);
    }

    #[test]
    fn weights_are_respected() {
        let mut d = LengthDistribution::new();
        d.add(1, 100.0);
        d.add(2, 1.0);
        assert!((d.share(1) - 100.0 / 101.0).abs() < 1e-9);
    }

    #[test]
    fn outliers_are_excluded_but_remembered() {
        let mut d = LengthDistribution::new();
        d.add(2, 1.0);
        d.add(3_822, 1.0);
        d.add(921, 1.0);
        d.add(41, 1.0);
        assert_eq!(d.total(), 1.0);
        assert_eq!(d.excluded().len(), 3);
        assert!((d.cdf(40) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_distribution_is_zero() {
        let d = LengthDistribution::new();
        assert_eq!(d.share(1), 0.0);
        assert_eq!(d.cdf(10), 0.0);
    }
}
