#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The paper's analysis pipeline: certificate-chain structure and usage
//! analysis over Zeek-style logs.
//!
//! This crate is the primary contribution of the reproduction. It consumes
//! exactly what the original study had — `ssl.log` and `x509.log` records
//! (no raw keys or signatures), the public trust databases, a CT domain
//! index, and CA cross-signing disclosures — and produces every structural
//! and usage statistic the paper reports:
//!
//! 1. certificate classification (public-DB vs non-public-DB issuers, §3.2.1),
//! 2. TLS-interception detection via CT cross-referencing (§3.2.1, Table 1),
//! 3. chain categorization (§3.2.2, Table 2),
//! 4. issuer–subject path analysis: complete/partial matched paths and
//!    mismatch ratios with cross-signing reconciliation (§4.2, Fig. 3/6),
//! 5. hybrid-chain structure taxonomy (Tables 3/6/7, Fig. 4/5),
//! 6. non-public-only and interception path statistics (§4.3, Table 8),
//! 7. the DGA single-certificate cluster (§4.3),
//! 8. CT-logging compliance for anchored non-public leaves (§4.2),
//! 9. chain-length and port/SNI/establishment usage statistics
//!    (Fig. 1, Table 4, §4.2).
//!
//! The pipeline is deliberately *log-typed*: nothing here touches
//! `Certificate` objects or cryptographic material, so it runs unchanged
//! over real Zeek output with the same field subset.

pub mod classify;
pub mod crosssign;
pub mod dga;
pub mod filtercat;
pub mod graph;
pub mod hybrid;
pub mod interception;
pub mod lengths;
pub mod lint;
pub mod matchpath;
pub mod model;
pub mod pipeline;
pub mod summary;
pub mod usage;

/// The workspace JSON value type, re-exported from `certchain-obs` (its
/// home since the observability layer landed) so existing
/// `certchain_chainlab::json::JsonValue` paths keep working.
pub use certchain_obs::json;

pub use classify::CertClass;
pub use crosssign::CrossSignRegistry;
pub use filtercat::{chain_category, CategoryOracle, CertCat};
pub use hybrid::{HybridCategory, NoPathCategory};
pub use lint::{lint_chain, Finding, Severity};
pub use matchpath::{MatchedRun, PathReport, PathVerdict};
pub use model::{CertRecord, ChainKey};
pub use pipeline::{
    Analysis, ChainAnalysis, ChainCategoryLabel, Pipeline, PipelineOptions, PipelineState,
    RowFilter, StateError,
};
pub use summary::AnalysisSummary;
