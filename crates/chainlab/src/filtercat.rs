//! Structural chain-category computation — the `--filter-category`
//! predicate.
//!
//! The vocabulary ([`Category`], [`CategorySet`]) lives in
//! `certchain-colstore`, because per-segment digests of it ride in the
//! columnar manifest; *computing* a row's category needs the trust
//! databases, so the computation lives here. The category is structural
//! on purpose: a function of one row's chain fingerprints, the
//! certificate table, and the trust DBs alone — never of other rows —
//! so filtering by it commutes with any record order, sharding, or
//! whole-segment skip, and filtered reports stay byte-identical across
//! every path. (The report-level interception label needs a global
//! entity-discovery pass and therefore cannot be a row predicate;
//! interception chains are structurally `non_public_only`.)
//!
//! The same fold runs in three places and must stay in lock-step: the
//! TSV ingest path (via [`CategoryOracle`]), the columnar v1/v2 folds
//! (via per-fingerprint-code [`CertCat`] tables), and the store writers
//! (via a digest provider closure). All three call [`chain_category`].

use crate::classify::{classify, CertClass};
use crate::model::CertRecord;
use certchain_colstore::{Category, CategorySet};
use certchain_trust::TrustDb;
use certchain_x509::Fingerprint;
use std::collections::HashMap;

/// What one certificate contributes to its chain's category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertCat {
    /// The fingerprint has no parseable x509 row (yet).
    Unresolved,
    /// Public-DB issued.
    Public,
    /// Non-public, not self-signed.
    NonPublic,
    /// Non-public with issuer == subject.
    NonPublicSelfSigned,
}

impl CertCat {
    /// Classify one resolved certificate.
    pub fn of(cert: &CertRecord, trust: &TrustDb) -> CertCat {
        match classify(cert, trust) {
            CertClass::PublicDbIssued => CertCat::Public,
            CertClass::NonPublicDbIssued if cert.is_self_signed() => CertCat::NonPublicSelfSigned,
            CertClass::NonPublicDbIssued => CertCat::NonPublic,
        }
    }
}

/// Fold a chain's per-certificate classes into its structural category.
/// The one category fold in the workspace — every path (TSV, columnar
/// v1/v2, store writers) routes through here.
pub fn chain_category(codes: impl IntoIterator<Item = CertCat>) -> Category {
    let mut len = 0usize;
    let mut publics = 0usize;
    let mut self_signed = 0usize;
    let mut unresolved = false;
    // srclint: commutative — pure per-class tallies, order-independent
    for code in codes {
        len += 1;
        match code {
            CertCat::Unresolved => unresolved = true,
            CertCat::Public => publics += 1,
            CertCat::NonPublic => {}
            CertCat::NonPublicSelfSigned => self_signed += 1,
        }
    }
    if len == 0 {
        Category::NoChain
    } else if unresolved {
        Category::Incomplete
    } else if len == 1 && self_signed == 1 {
        Category::SelfSigned
    } else if publics == len {
        Category::PublicOnly
    } else if publics == 0 {
        Category::NonPublicOnly
    } else {
        Category::Hybrid
    }
}

/// Resolved category predicate for the record paths: a fingerprint →
/// [`CertCat`] table plus the admitted [`CategorySet`]. Build it only
/// after every x509 row has been folded — the structural category of a
/// row depends on which fingerprints resolve, so an oracle built from a
/// partial certificate table would disagree with the batch pipeline.
#[derive(Debug, Clone)]
pub struct CategoryOracle {
    set: CategorySet,
    codes: HashMap<Fingerprint, CertCat>,
}

impl CategoryOracle {
    /// Build from resolved `(fingerprint, certificate)` pairs.
    pub fn new<'a>(
        set: CategorySet,
        certs: impl IntoIterator<Item = (Fingerprint, &'a CertRecord)>,
        trust: &TrustDb,
    ) -> CategoryOracle {
        let codes = certs
            .into_iter()
            .map(|(fp, cert)| (fp, CertCat::of(cert, trust)))
            .collect();
        CategoryOracle { set, codes }
    }

    /// The admitted categories.
    pub fn set(&self) -> CategorySet {
        self.set
    }

    /// The structural category of a chain, by fingerprints.
    pub fn category(&self, fps: &[Fingerprint]) -> Category {
        chain_category(
            fps.iter()
                .map(|fp| self.codes.get(fp).copied().unwrap_or(CertCat::Unresolved)),
        )
    }

    /// Whether a row with this chain passes the filter.
    pub fn admits(&self, fps: &[Fingerprint]) -> bool {
        self.set.contains(self.category(fps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_fold_covers_all_classes() {
        use CertCat::*;
        assert_eq!(chain_category([]), Category::NoChain);
        assert_eq!(chain_category([Public, Unresolved]), Category::Incomplete);
        assert_eq!(chain_category([NonPublicSelfSigned]), Category::SelfSigned);
        assert_eq!(chain_category([Public, Public]), Category::PublicOnly);
        assert_eq!(chain_category([NonPublic]), Category::NonPublicOnly);
        // Self-signed certs inside a longer chain are just non-public.
        assert_eq!(
            chain_category([NonPublic, NonPublicSelfSigned]),
            Category::NonPublicOnly
        );
        assert_eq!(chain_category([Public, NonPublic]), Category::Hybrid);
        assert_eq!(
            chain_category([NonPublicSelfSigned, Public]),
            Category::Hybrid
        );
    }
}
