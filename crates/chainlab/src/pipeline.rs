//! The end-to-end analysis pipeline (Figure 2's "certificate chain
//! structure analyzer"): certificate enrichment → chain categorization →
//! mismatch & cross-signing detection → complete/partial path detection.

use crate::classify::{classify, CertClass};
use crate::crosssign::CrossSignRegistry;
use crate::dga::is_dga_chain;
use crate::hybrid::{self, HybridCategory};
use crate::interception::{detect, InterceptionVerdict};
use crate::matchpath::{self, PathReport};
use crate::model::{CertRecord, ChainKey};
use crate::usage::UsageStats;
use certchain_ctlog::DomainIndex;
use certchain_netsim::{SslRecord, X509Record};
use certchain_trust::TrustDb;
use certchain_x509::{DistinguishedName, Fingerprint};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// §3.2.2 chain categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainCategoryLabel {
    /// Exclusively public-DB-issued certificates.
    PublicOnly,
    /// Exclusively non-public-DB-issued certificates (interception
    /// excluded).
    NonPublicOnly,
    /// Both classes present.
    Hybrid,
    /// Issued by an entity identified as performing TLS interception.
    Interception,
}

/// Everything the pipeline learned about one distinct delivered chain.
#[derive(Debug, Clone)]
pub struct ChainAnalysis {
    /// Ordered fingerprints (the chain's identity).
    pub key: ChainKey,
    /// Resolved certificate records, delivery order. Certificates are
    /// interned once per fingerprint and shared across chains.
    pub certs: Vec<Arc<CertRecord>>,
    /// Per-certificate issuer classification.
    pub classes: Vec<CertClass>,
    /// §3.2.2 category.
    pub category: ChainCategoryLabel,
    /// Issuer–subject path report.
    pub path: PathReport,
    /// Hybrid taxonomy (only for hybrid chains).
    pub hybrid_category: Option<HybridCategory>,
    /// §4.2's 56-chain subgroup membership.
    pub pub_leaf_no_intermediate: bool,
    /// Whether the chain is in the DGA cluster (§4.3).
    pub is_dga: bool,
    /// For complete non-public→public chains: is the leaf CT-logged?
    pub leaf_ct_logged: Option<bool>,
    /// The intercepting entity key, when category is Interception.
    pub interception_entity: Option<String>,
    /// SNIs observed with this chain.
    pub snis: BTreeSet<String>,
    /// Aggregated usage over the chain's connections.
    pub usage: UsageStats,
}

/// Pipeline output.
#[derive(Debug)]
pub struct Analysis {
    /// Per-chain results.
    pub chains: Vec<ChainAnalysis>,
    /// Chain key → index into `chains`.
    pub index: HashMap<ChainKey, usize>,
    /// ssl.log records carrying no certificates (TLS 1.3 connections).
    pub no_chain_records: u64,
    /// Records referencing fingerprints absent from x509.log.
    pub unresolvable_records: u64,
    /// Distinct certificates seen across all analyzed chains.
    pub distinct_certificates: usize,
    /// The interception entities identified in pass 1.
    pub interception_entities: BTreeSet<String>,
}

/// Tunable analysis options — the ablation knobs DESIGN.md calls out.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Honor cross-signing disclosures during pair matching (§4.2 /
    /// Appendix D.1). Disabling reproduces the naive matcher and its
    /// false mismatches on cross-signed chains.
    pub honor_cross_signing: bool,
    /// Minimum number of distinct forged domains before an interception
    /// candidate is confirmed (the paper's manual-investigation step).
    /// 1 disables corroboration; the default is 2.
    pub confirmation_min_domains: usize,
    /// Worker threads for the parallel stages. `0` (the default) resolves
    /// to the machine's available parallelism; `1` runs the fully
    /// sequential path. The output is byte-identical for every value:
    /// chains are sharded by a stable hash of their fingerprint sequence,
    /// each chain's connections are folded in global record order within
    /// its shard, and per-chain results merge in `ChainKey` order.
    pub threads: usize,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            honor_cross_signing: true,
            confirmation_min_domains: 2,
            threads: 0,
        }
    }
}

/// Resolve a thread-count knob: `0` means available parallelism.
pub(crate) fn resolve_threads(requested: usize) -> usize {
    if requested != 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Stable shard id for a chain: FNV-1a over the fingerprint bytes. Must
/// not vary across runs or platforms — shard membership decides which
/// worker folds a chain's connection stream, and determinism relies on
/// every chain living in exactly one shard.
fn shard_of(fps: &[Fingerprint], shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for fp in fps {
        for &b in &fp.0 {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (h % shards as u64) as usize
}

/// The configured analyzer.
pub struct Pipeline<'a> {
    trust: &'a TrustDb,
    ct: &'a DomainIndex,
    crosssign: CrossSignRegistry,
    options: PipelineOptions,
}

/// Entity key for an issuer DN: the organization when present, otherwise
/// the common name, otherwise the whole DN string. This is the unit at
/// which the paper's manual investigation grouped interception issuers.
pub fn issuer_entity(dn: &DistinguishedName) -> String {
    dn.get(&certchain_x509::dn::AttrType::Organization)
        .or_else(|| dn.common_name())
        .map(str::to_string)
        .unwrap_or_else(|| dn.to_rfc4514())
}

impl<'a> Pipeline<'a> {
    /// Configure the analyzer.
    pub fn new(
        trust: &'a TrustDb,
        ct: &'a DomainIndex,
        crosssign: CrossSignRegistry,
    ) -> Pipeline<'a> {
        Pipeline::with_options(trust, ct, crosssign, PipelineOptions::default())
    }

    /// Configure with explicit [`PipelineOptions`] (ablation studies).
    pub fn with_options(
        trust: &'a TrustDb,
        ct: &'a DomainIndex,
        crosssign: CrossSignRegistry,
        options: PipelineOptions,
    ) -> Pipeline<'a> {
        Pipeline {
            trust,
            ct,
            crosssign,
            options,
        }
    }

    /// Run the full analysis.
    ///
    /// `weights`, when given, must align with `ssl` and carries each
    /// record's statistical weight (1.0 when absent). The pipeline itself
    /// is weight-agnostic; weights only flow into the usage aggregates.
    ///
    /// The stages run on [`PipelineOptions::threads`] workers; the result
    /// is byte-identical for every thread count (see the options docs).
    pub fn analyze(
        &self,
        ssl: &[SslRecord],
        x509: &[X509Record],
        weights: Option<&[f64]>,
    ) -> Analysis {
        if let Some(w) = weights {
            assert_eq!(w.len(), ssl.len(), "weights must align with ssl records");
        }
        let threads = resolve_threads(self.options.threads);

        // --- Certificate enrichment: index x509.log by fingerprint,
        // interning each certificate once behind an `Arc` so chains share
        // records instead of cloning them.
        let cert_index = intern_certs(x509, threads);

        // --- Group connections by delivered chain, resolve certificates,
        // and classify — sharded by chain so every worker owns its chains'
        // whole connection stream (accumulation order per chain matches
        // the sequential fold exactly).
        let (mut prepared, no_chain_records, unresolvable_records) =
            self.accumulate(ssl, weights, &cert_index, threads);
        prepared.sort_by(|a, b| a.key.cmp(&b.key));

        // --- Pass 1: identify interception entities via CT
        // cross-referencing over SNI-bearing observations. The paper
        // confirmed candidates "through manual investigation"; the
        // automatic proxy here is corroboration — an entity must be seen
        // forging at least two distinct domains. One-off conflicts (e.g. a
        // stale leaf for a renamed host preceding a valid chain) stay out.
        let interception_entities = self.find_entities(&prepared, threads);

        // --- Pass 2: categorize every chain and run structure analysis.
        // The effective registry is resolved once, outside the per-chain
        // work.
        let empty_registry = CrossSignRegistry::new();
        let registry = if self.options.honor_cross_signing {
            &self.crosssign
        } else {
            &empty_registry
        };
        let (chains, distinct) =
            self.analyze_chains(prepared, &interception_entities, registry, threads);
        let index = chains
            .iter()
            .enumerate()
            .map(|(i, chain)| (chain.key.clone(), i))
            .collect();

        Analysis {
            chains,
            index,
            no_chain_records,
            unresolvable_records,
            distinct_certificates: distinct.len(),
            interception_entities,
        }
    }

    /// Stage 1/2: fold ssl records into per-chain accumulators and build
    /// the classified [`Prepared`] vector (unsorted). With several
    /// workers, chains are sharded by [`shard_of`]; each worker scans the
    /// whole record stream in order and folds only its own shard's
    /// records, so per-chain f64 accumulation order is identical to the
    /// sequential fold. Returns `(prepared, no_chain, unresolvable)`.
    fn accumulate(
        &self,
        ssl: &[SslRecord],
        weights: Option<&[f64]>,
        cert_index: &HashMap<Fingerprint, Arc<CertRecord>>,
        threads: usize,
    ) -> (Vec<Prepared>, u64, u64) {
        let shards = threads.max(1);
        if shards == 1 {
            return self.accumulate_shard(ssl, weights, cert_index, 0, 1);
        }
        let results: Vec<(Vec<Prepared>, u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|shard| {
                    scope.spawn(move || {
                        self.accumulate_shard(ssl, weights, cert_index, shard, shards)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("accumulation worker panicked"))
                .collect()
        });
        let mut prepared = Vec::with_capacity(results.iter().map(|(p, _, _)| p.len()).sum());
        let mut no_chain = 0u64;
        let mut unresolvable = 0u64;
        for (part, nc, ur) in results {
            prepared.extend(part);
            no_chain += nc;
            unresolvable += ur;
        }
        (prepared, no_chain, unresolvable)
    }

    /// One shard's share of [`Pipeline::accumulate`]. Records without a
    /// chain have no shard; shard 0 counts them.
    fn accumulate_shard(
        &self,
        ssl: &[SslRecord],
        weights: Option<&[f64]>,
        cert_index: &HashMap<Fingerprint, Arc<CertRecord>>,
        shard: usize,
        shards: usize,
    ) -> (Vec<Prepared>, u64, u64) {
        let mut accums: HashMap<ChainKey, ChainAccum> = HashMap::new();
        let mut no_chain = 0u64;
        let mut unresolvable = 0u64;
        for (i, rec) in ssl.iter().enumerate() {
            if rec.cert_chain_fps.is_empty() {
                if shard == 0 {
                    no_chain += 1;
                }
                continue;
            }
            if shards > 1 && shard_of(&rec.cert_chain_fps, shards) != shard {
                continue;
            }
            if !rec
                .cert_chain_fps
                .iter()
                .all(|fp| cert_index.contains_key(fp))
            {
                unresolvable += 1;
                continue;
            }
            let weight = weights.map(|w| w[i]).unwrap_or(1.0);
            // Probe with the borrowed fingerprint slice first; a `ChainKey`
            // is only allocated the first time a chain is seen.
            if !accums.contains_key(rec.cert_chain_fps.as_slice()) {
                accums.insert(ChainKey(rec.cert_chain_fps.clone()), ChainAccum::default());
            }
            let entry = accums
                .get_mut(rec.cert_chain_fps.as_slice())
                .expect("present or just inserted");
            entry.usage.add(
                rec.established,
                rec.server_name.is_some(),
                rec.resp_p,
                rec.orig_h,
                weight,
            );
            if let Some(sni) = &rec.server_name {
                entry.snis.insert(sni.clone());
            }
        }
        let prepared = accums
            .into_iter()
            .map(|(key, accum)| {
                let certs: Vec<Arc<CertRecord>> =
                    key.0.iter().map(|fp| Arc::clone(&cert_index[fp])).collect();
                let classes: Vec<CertClass> =
                    certs.iter().map(|c| classify(c, self.trust)).collect();
                Prepared {
                    key,
                    certs,
                    classes,
                    snis: accum.snis,
                    usage: accum.usage,
                }
            })
            .collect();
        (prepared, no_chain, unresolvable)
    }

    /// Pass-1 kernel: candidate entity → forged-domain set over `part`.
    fn scan_entities<'p>(&self, part: &'p [Prepared]) -> HashMap<String, BTreeSet<&'p str>> {
        let mut candidates: HashMap<String, BTreeSet<&'p str>> = HashMap::new();
        for p in part {
            for sni in &p.snis {
                if detect(&p.certs, Some(sni), self.trust, self.ct)
                    == InterceptionVerdict::LikelyIntercepted
                {
                    candidates
                        .entry(issuer_entity(&p.certs[0].issuer))
                        .or_default()
                        .insert(sni.as_str());
                }
            }
        }
        candidates
    }

    /// Pass 1 over the sorted chains: confirmed interception entities.
    fn find_entities(&self, prepared: &[Prepared], threads: usize) -> BTreeSet<String> {
        let candidate_domains = if threads <= 1 || prepared.len() < 2 {
            self.scan_entities(prepared)
        } else {
            let chunk = prepared.len().div_ceil(threads);
            let maps: Vec<HashMap<String, BTreeSet<&str>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = prepared
                    .chunks(chunk)
                    .map(|part| scope.spawn(|| self.scan_entities(part)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pass-1 worker panicked"))
                    .collect()
            });
            // Entity → domain-set union is order-insensitive.
            let mut merged: HashMap<String, BTreeSet<&str>> = HashMap::new();
            for map in maps {
                for (entity, domains) in map {
                    merged.entry(entity).or_default().extend(domains);
                }
            }
            merged
        };
        candidate_domains
            .into_iter()
            .filter_map(|(entity, domains)| {
                (domains.len() >= self.options.confirmation_min_domains).then_some(entity)
            })
            .collect()
    }

    /// Pass 2: per-chain categorization and structure analysis, in
    /// parallel over contiguous chunks of the sorted `prepared` vector.
    /// Chunks concatenate back in order, so the output sequence equals the
    /// sequential one.
    fn analyze_chains(
        &self,
        prepared: Vec<Prepared>,
        entities: &BTreeSet<String>,
        registry: &CrossSignRegistry,
        threads: usize,
    ) -> (Vec<ChainAnalysis>, BTreeSet<Fingerprint>) {
        let total = prepared.len();
        let analyze_part = |part: Vec<Prepared>| {
            let mut chains = Vec::with_capacity(part.len());
            let mut distinct: BTreeSet<Fingerprint> = BTreeSet::new();
            for p in part {
                distinct.extend(p.key.0.iter().copied());
                chains.push(self.analyze_one(p, entities, registry));
            }
            (chains, distinct)
        };
        if threads <= 1 || total < 2 {
            return analyze_part(prepared);
        }
        let chunk_size = total.div_ceil(threads);
        let mut parts: Vec<Vec<Prepared>> = Vec::with_capacity(threads);
        let mut rest = prepared;
        while rest.len() > chunk_size {
            let tail = rest.split_off(chunk_size);
            parts.push(std::mem::replace(&mut rest, tail));
        }
        parts.push(rest);
        let results: Vec<(Vec<ChainAnalysis>, BTreeSet<Fingerprint>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = parts
                    .into_iter()
                    .map(|part| scope.spawn(|| analyze_part(part)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pass-2 worker panicked"))
                    .collect()
            });
        let mut chains = Vec::with_capacity(total);
        let mut distinct = BTreeSet::new();
        for (part, part_distinct) in results {
            chains.extend(part);
            distinct.extend(part_distinct);
        }
        (chains, distinct)
    }

    /// The per-chain body of pass 2.
    fn analyze_one(
        &self,
        p: Prepared,
        entities: &BTreeSet<String>,
        registry: &CrossSignRegistry,
    ) -> ChainAnalysis {
        let any_public = p.classes.contains(&CertClass::PublicDbIssued);
        let all_public = p.classes.iter().all(|&c| c == CertClass::PublicDbIssued);
        let entity_hit = p
            .certs
            .iter()
            .map(|c| issuer_entity(&c.issuer))
            .find(|e| entities.contains(e));
        let category = if entity_hit.is_some() {
            ChainCategoryLabel::Interception
        } else if all_public {
            ChainCategoryLabel::PublicOnly
        } else if any_public {
            ChainCategoryLabel::Hybrid
        } else {
            ChainCategoryLabel::NonPublicOnly
        };
        let path = matchpath::analyze(&p.certs, registry);
        let hybrid_category = (category == ChainCategoryLabel::Hybrid)
            .then(|| hybrid::categorize(&p.certs, &p.classes, &path));
        let pub_leaf_no_intermediate = category == ChainCategoryLabel::Hybrid
            && matches!(hybrid_category, Some(HybridCategory::NoPath(_)))
            && hybrid::has_public_leaf_without_intermediate(&p.certs, &p.classes);
        let leaf_ct_logged = match hybrid_category {
            Some(HybridCategory::CompleteNonPubToPub) => {
                Some(self.ct.contains_fingerprint(&p.certs[0].fingerprint))
            }
            _ => None,
        };
        let is_dga = category == ChainCategoryLabel::NonPublicOnly && is_dga_chain(&p.certs);
        ChainAnalysis {
            key: p.key,
            certs: p.certs,
            classes: p.classes,
            category,
            path,
            hybrid_category,
            pub_leaf_no_intermediate,
            is_dga,
            leaf_ct_logged,
            interception_entity: entity_hit,
            snis: p.snis,
            usage: p.usage,
        }
    }
}

/// Per-chain connection accumulator (stage 1).
#[derive(Default)]
struct ChainAccum {
    usage: UsageStats,
    snis: BTreeSet<String>,
}

/// A chain with resolved certificates and classes, before pass 2.
struct Prepared {
    key: ChainKey,
    certs: Vec<Arc<CertRecord>>,
    classes: Vec<CertClass>,
    snis: BTreeSet<String>,
    usage: UsageStats,
}

/// Build the fingerprint → interned certificate index. First occurrence
/// in `x509` wins, matching the sequential fold: per-worker chunks stay
/// in input order and merge in chunk order.
fn intern_certs(x509: &[X509Record], threads: usize) -> HashMap<Fingerprint, Arc<CertRecord>> {
    let mut cert_index: HashMap<Fingerprint, Arc<CertRecord>> = HashMap::with_capacity(x509.len());
    if threads <= 1 || x509.len() < 2 {
        for rec in x509 {
            if let Some(cert) = CertRecord::from_record(rec) {
                cert_index
                    .entry(rec.fingerprint)
                    .or_insert_with(|| Arc::new(cert));
            }
        }
        return cert_index;
    }
    let chunk = x509.len().div_ceil(threads);
    let parsed: Vec<Vec<(Fingerprint, Arc<CertRecord>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = x509
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .filter_map(|rec| {
                            CertRecord::from_record(rec)
                                .map(|cert| (rec.fingerprint, Arc::new(cert)))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("intern worker panicked"))
            .collect()
    });
    for part in parsed {
        for (fp, cert) in part {
            cert_index.entry(fp).or_insert(cert);
        }
    }
    cert_index
}

impl Analysis {
    /// Chains of one category.
    pub fn chains_in(&self, category: ChainCategoryLabel) -> impl Iterator<Item = &ChainAnalysis> {
        self.chains.iter().filter(move |c| c.category == category)
    }

    /// Weighted usage aggregate over a chain subset.
    pub fn usage_of(&self, mut pred: impl FnMut(&ChainAnalysis) -> bool) -> UsageStats {
        let mut out = UsageStats::default();
        for chain in self.chains.iter().filter(|c| pred(c)) {
            out.merge(&chain.usage);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_workload::{CampusProfile, CampusTrace};

    fn analysis() -> &'static (CampusTrace, Analysis) {
        static CELL: std::sync::OnceLock<(CampusTrace, Analysis)> = std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            let trace = CampusTrace::generate(CampusProfile::quick());
            let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();
            let pipeline = Pipeline::new(
                &trace.eco.trust,
                &trace.ct_index,
                CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
            );
            let analysis =
                pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights));
            // `analysis` borrows nothing from `trace` (all owned data), so
            // moving both into the cell is fine.
            (trace, analysis)
        })
    }

    #[test]
    fn hybrid_count_is_exactly_321() {
        let (_trace, analysis) = analysis();
        let hybrid = analysis.chains_in(ChainCategoryLabel::Hybrid).count();
        assert_eq!(hybrid, 321);
    }

    #[test]
    fn table3_categories_from_logs_alone() {
        use crate::hybrid::HybridCategory as H;
        let (_trace, analysis) = analysis();
        let mut complete_np = 0;
        let mut complete_prv = 0;
        let mut contains = 0;
        let mut no_path = 0;
        for c in analysis.chains_in(ChainCategoryLabel::Hybrid) {
            match c.hybrid_category.expect("hybrid chains are categorized") {
                H::CompleteNonPubToPub => complete_np += 1,
                H::CompletePubToPrv => complete_prv += 1,
                H::ContainsPath => contains += 1,
                H::NoPath(_) => no_path += 1,
            }
        }
        assert_eq!(complete_np, 26, "Table 3: non-pub chained to pub");
        assert_eq!(complete_prv, 10, "Table 3: pub chained to prv");
        assert_eq!(contains, 70, "Table 3: contains a matched path");
        assert_eq!(no_path, 215, "Table 3: no matched path");
    }

    #[test]
    fn table7_rows_recovered() {
        use crate::hybrid::{HybridCategory as H, NoPathCategory as N};
        let (_trace, analysis) = analysis();
        let mut counts: HashMap<N, usize> = HashMap::new();
        for c in analysis.chains_in(ChainCategoryLabel::Hybrid) {
            if let Some(H::NoPath(n)) = c.hybrid_category {
                *counts.entry(n).or_default() += 1;
            }
        }
        assert_eq!(counts[&N::SelfSignedLeafMismatches], 108);
        assert_eq!(counts[&N::SelfSignedLeafValidSubchain], 13);
        assert_eq!(counts[&N::AllMismatched], 61);
        assert_eq!(counts[&N::PartialMismatched], 27);
        assert_eq!(counts[&N::RootAppendedToValidSubchain], 5);
        assert_eq!(counts[&N::RootAndMismatches], 1);
    }

    #[test]
    fn fifty_six_group_recovered() {
        let (_trace, analysis) = analysis();
        let in_56 = analysis
            .chains
            .iter()
            .filter(|c| c.pub_leaf_no_intermediate)
            .count();
        assert_eq!(in_56, 56);
    }

    #[test]
    fn ct_compliance_all_logged() {
        let (_trace, analysis) = analysis();
        let logged: Vec<_> = analysis
            .chains
            .iter()
            .filter_map(|c| c.leaf_ct_logged)
            .collect();
        assert_eq!(logged.len(), 26);
        assert!(logged.iter().all(|&l| l), "§4.2: all 26 leaves CT-logged");
    }

    #[test]
    fn interception_entities_found() {
        let (trace, analysis) = analysis();
        // The generator plants 80 vendors; the detector should find most
        // of them (the single-cert and no-SNI tails are only attributable
        // via entity matching, which is exactly what pass 2 does).
        assert!(
            analysis.interception_entities.len() >= 60,
            "found {} entities",
            analysis.interception_entities.len()
        );
        // And interception chains should be a large population.
        let interception = analysis.chains_in(ChainCategoryLabel::Interception).count();
        let truth_interception = trace
            .servers
            .iter()
            .filter(|s| {
                matches!(
                    s.category,
                    certchain_workload::trace::ChainCategory::Interception(_)
                )
            })
            .count();
        // Detection is best-effort (the paper's caveat): we must find most
        // but not necessarily all.
        assert!(
            interception as f64 > truth_interception as f64 * 0.9,
            "detected {interception} of {truth_interception}"
        );
    }

    #[test]
    fn undetectable_interception_misclassifies_as_nonpub() {
        let (trace, analysis) = analysis();
        // Appendix B: chains forging non-CT domains evade detection and
        // land in non-public-only — confirm at least one such chain.
        let mut evaded = 0;
        for (key, &server_idx) in &trace.truth.by_chain {
            let server = &trace.servers[server_idx];
            let truly_interception = matches!(
                server.category,
                certchain_workload::trace::ChainCategory::Interception(_)
            );
            if !truly_interception {
                continue;
            }
            let Some(&idx) = analysis.index.get(&ChainKey(key.clone())) else {
                continue;
            };
            if analysis.chains[idx].category == ChainCategoryLabel::NonPublicOnly {
                evaded += 1;
            }
        }
        assert!(evaded > 0, "the Appendix-B caveat should manifest");
    }

    #[test]
    fn dga_cluster_detected() {
        let (_trace, analysis) = analysis();
        let dga = analysis.chains.iter().filter(|c| c.is_dga).count();
        assert_eq!(dga, 30, "the generated DGA cluster is fully recovered");
    }

    #[test]
    fn hybrid_establishment_rates() {
        use crate::hybrid::HybridCategory as H;
        let (_trace, analysis) = analysis();
        let complete = analysis.usage_of(|c| {
            matches!(
                c.hybrid_category,
                Some(H::CompleteNonPubToPub | H::CompletePubToPrv)
            )
        });
        let contains = analysis.usage_of(|c| matches!(c.hybrid_category, Some(H::ContainsPath)));
        let no_path = analysis.usage_of(|c| matches!(c.hybrid_category, Some(H::NoPath(_))));
        assert!((complete.established_rate() - 0.9756).abs() < 0.01);
        assert!((contains.established_rate() - 0.9204).abs() < 0.01);
        assert!((no_path.established_rate() - 0.5742).abs() < 0.015);
    }

    #[test]
    fn classification_agrees_with_ground_truth() {
        use certchain_workload::trace::ChainCategory as Truth;
        let (trace, analysis) = analysis();
        let mut agree = 0u64;
        let mut total = 0u64;
        for (key, &server_idx) in &trace.truth.by_chain {
            let Some(&idx) = analysis.index.get(&ChainKey(key.clone())) else {
                continue;
            };
            let got = analysis.chains[idx].category;
            let want = &trace.servers[server_idx].category;
            total += 1;
            let matches = matches!(
                (got, want),
                (ChainCategoryLabel::PublicOnly, Truth::PublicOnly)
                    | (ChainCategoryLabel::NonPublicOnly, Truth::NonPublicOnly(_))
                    | (ChainCategoryLabel::Hybrid, Truth::Hybrid(_))
                    | (ChainCategoryLabel::Interception, Truth::Interception(_))
            );
            if matches {
                agree += 1;
            }
        }
        let accuracy = agree as f64 / total as f64;
        assert!(
            accuracy > 0.97,
            "pipeline/ground-truth agreement = {accuracy}"
        );
    }

    #[test]
    fn tls13_records_are_skipped() {
        let (_trace, analysis) = analysis();
        assert!(analysis.no_chain_records > 0);
        assert_eq!(analysis.unresolvable_records, 0);
    }
}
