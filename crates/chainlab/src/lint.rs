//! A compact certificate/chain linter in the spirit of zlint, covering the
//! compliance observations the paper makes along the way.
//!
//! Checks implemented (each maps to a paper observation or the RFC it
//! cites):
//!
//! - `basic-constraints-missing` — §4.3: most non-public certificates omit
//!   basicConstraints entirely "rather than explicitly setting it to a
//!   boolean value (TRUE or FALSE) as required by the specification"
//!   (RFC 5280 §4.2.1.9 for CAs).
//! - `leaf-expired` / `leaf-expired-5y` — §4.2: chains served with expired
//!   leaves, the worst over five years past notAfter.
//! - `unnecessary-certificate` — §4.2/§6.1: certificates that contribute
//!   to no matched path.
//! - `root-included` — RFC 5246 §7.4.2: "the root may be omitted"; sending
//!   it costs bandwidth (§6.1).
//! - `staging-certificate` — Appendix F.2: `Fake LE` staging artifacts in
//!   production chains.
//! - `self-signed-leaf-with-tail` — Table 7 rows 1/2: a self-signed leaf
//!   in front of other certificates.
//! - `localhost-subject` — Appendix F.3: default `CN=localhost` material
//!   served publicly.

use crate::matchpath::PathReport;
use crate::model::CertRecord;
use certchain_asn1::Asn1Time;
use std::borrow::Borrow;
use std::fmt;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: interoperability or bandwidth cost.
    Info,
    /// Warning: likely misconfiguration.
    Warning,
    /// Error: standards violation or trust-breaking condition.
    Error,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable check identifier (kebab-case).
    pub check: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Index of the certificate the finding is about.
    pub cert_index: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}] cert {}: {} ({})",
            self.severity, self.cert_index, self.message, self.check
        )
    }
}

/// Lint a delivered chain at observation time `at`.
///
/// `report` must be the chain's [`PathReport`] (so unnecessary-certificate
/// detection agrees with the structure analysis).
pub fn lint_chain<C: Borrow<CertRecord>>(
    chain: &[C],
    report: &PathReport,
    at: Asn1Time,
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Certificates covered by some matched run.
    let mut in_run = vec![false; chain.len()];
    for run in &report.runs {
        for slot in in_run.iter_mut().take(run.end + 1).skip(run.start) {
            *slot = true;
        }
    }

    for (i, cert) in chain.iter().enumerate() {
        let cert = cert.borrow();
        if cert.bc_ca.is_none() {
            findings.push(Finding {
                check: "basic-constraints-missing",
                severity: Severity::Warning,
                cert_index: i,
                message: format!(
                    "basicConstraints absent on {} (RFC 5280 requires an explicit boolean)",
                    cert.subject
                ),
            });
        }
        if i == 0 && cert.validity.is_expired_at(at) {
            let days = cert.validity.days_expired_at(at);
            findings.push(Finding {
                check: if days > 5 * 365 {
                    "leaf-expired-5y"
                } else {
                    "leaf-expired"
                },
                severity: Severity::Error,
                cert_index: 0,
                message: format!("leaf expired {days} day(s) before observation"),
            });
        }
        if chain.len() > 1 && !in_run[i] {
            findings.push(Finding {
                check: "unnecessary-certificate",
                severity: Severity::Warning,
                cert_index: i,
                message: format!(
                    "{} matches no issuer-subject pair in the chain",
                    cert.subject
                ),
            });
        }
        if i > 0 && i == chain.len() - 1 && cert.is_self_signed() && in_run[i] {
            findings.push(Finding {
                check: "root-included",
                severity: Severity::Info,
                cert_index: i,
                message: "self-signed root included in the delivered chain".into(),
            });
        }
        let names = [
            cert.subject.common_name().unwrap_or_default(),
            cert.issuer.common_name().unwrap_or_default(),
        ];
        if names.iter().any(|n| n.starts_with("Fake LE ")) {
            findings.push(Finding {
                check: "staging-certificate",
                severity: Severity::Error,
                cert_index: i,
                message: "Let's Encrypt staging-environment certificate in production".into(),
            });
        }
        if i == 0 && cert.subject.common_name() == Some("localhost") {
            findings.push(Finding {
                check: "localhost-subject",
                severity: Severity::Warning,
                cert_index: 0,
                message: "default localhost certificate served to the network".into(),
            });
        }
    }
    if chain.len() > 1 && chain[0].borrow().is_self_signed() {
        findings.push(Finding {
            check: "self-signed-leaf-with-tail",
            severity: Severity::Warning,
            cert_index: 0,
            message: "self-signed first certificate followed by further certificates".into(),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crosssign::CrossSignRegistry;
    use crate::matchpath::analyze;
    use certchain_x509::{DistinguishedName, Fingerprint, Validity};

    fn cert(n: u8, issuer: &str, subject: &str, ca: Option<bool>) -> CertRecord {
        CertRecord {
            fingerprint: Fingerprint([n; 32]),
            issuer: DistinguishedName::cn(issuer),
            subject: DistinguishedName::cn(subject),
            validity: Validity::days_from(Asn1Time::from_unix(0), 90),
            bc_ca: ca,
            san_dns: vec![],
        }
    }

    fn at_day(d: u64) -> Asn1Time {
        Asn1Time::from_unix(d * 86_400)
    }

    fn lint(chain: &[CertRecord], at: Asn1Time) -> Vec<&'static str> {
        let report = analyze(chain, &CrossSignRegistry::new());
        lint_chain(chain, &report, at)
            .into_iter()
            .map(|f| f.check)
            .collect()
    }

    #[test]
    fn clean_chain_yields_nothing() {
        let chain = [
            cert(1, "ICA", "site.org", Some(false)),
            cert(2, "Root", "ICA", Some(true)),
        ];
        assert!(lint(&chain, at_day(10)).is_empty());
    }

    #[test]
    fn missing_basic_constraints_flagged() {
        let chain = [cert(1, "ICA", "site.org", None)];
        assert_eq!(lint(&chain, at_day(10)), vec!["basic-constraints-missing"]);
    }

    #[test]
    fn expired_leaf_severity_bands() {
        let chain = [
            cert(1, "ICA", "old.org", Some(false)),
            cert(2, "Root", "ICA", Some(true)),
        ];
        assert!(lint(&chain, at_day(120)).contains(&"leaf-expired"));
        assert!(lint(&chain, at_day(91 + 6 * 365)).contains(&"leaf-expired-5y"));
    }

    #[test]
    fn unnecessary_and_staging_flagged() {
        let chain = [
            cert(1, "ICA", "site.org", Some(false)),
            cert(2, "Root", "ICA", Some(true)),
            cert(3, "Fake LE Root X1", "Fake LE Intermediate X1", Some(true)),
        ];
        let checks = lint(&chain, at_day(10));
        assert!(checks.contains(&"unnecessary-certificate"));
        assert!(checks.contains(&"staging-certificate"));
    }

    #[test]
    fn root_included_is_informational() {
        let chain = [
            cert(1, "Root", "site.org", Some(false)),
            cert(2, "Root", "Root", Some(true)),
        ];
        let report = analyze(&chain, &CrossSignRegistry::new());
        let findings = lint_chain(&chain, &report, at_day(10));
        let root = findings
            .iter()
            .find(|f| f.check == "root-included")
            .unwrap();
        assert_eq!(root.severity, Severity::Info);
    }

    #[test]
    fn localhost_and_self_signed_tail() {
        let mut leaf = cert(1, "localhost", "localhost", None);
        leaf.validity = Validity::days_from(Asn1Time::from_unix(0), 3650);
        let chain = [leaf, cert(2, "Root", "ICA", Some(true))];
        let checks = lint(&chain, at_day(10));
        assert!(checks.contains(&"localhost-subject"));
        assert!(checks.contains(&"self-signed-leaf-with-tail"));
    }
}
