//! Log-level certificate model: what the pipeline knows about a
//! certificate, reconstructed from an `x509.log` row.

use certchain_netsim::X509Record;
use certchain_x509::{DistinguishedName, Fingerprint, Validity};

/// A certificate as the analysis sees it. No keys, no signatures — only
/// the fields Zeek logged (§4.2: "the X509 logs did not capture public
/// keys and signatures").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertRecord {
    /// SHA-256 fingerprint (join key).
    pub fingerprint: Fingerprint,
    /// Issuer DN, parsed from the logged RFC 4514 string.
    pub issuer: DistinguishedName,
    /// Subject DN.
    pub subject: DistinguishedName,
    /// Validity window.
    pub validity: Validity,
    /// basicConstraints CA flag; `None` when the extension is absent.
    pub bc_ca: Option<bool>,
    /// subjectAltName dNSNames.
    pub san_dns: Vec<String>,
}

impl CertRecord {
    /// Parse a log record into the model. Returns `None` when a DN string
    /// does not parse (malformed log row).
    pub fn from_record(rec: &X509Record) -> Option<CertRecord> {
        Some(CertRecord {
            fingerprint: rec.fingerprint,
            issuer: DistinguishedName::parse_rfc4514(&rec.issuer)?,
            subject: DistinguishedName::parse_rfc4514(&rec.subject)?,
            validity: Validity {
                not_before: rec.not_before,
                not_after: rec.not_after,
            },
            bc_ca: rec.basic_constraints_ca,
            san_dns: rec.san_dns.clone(),
        })
    }

    /// Log-level self-signed test: issuer and subject strings identical.
    pub fn is_self_signed(&self) -> bool {
        self.issuer == self.subject
    }

    /// Whether this certificate could be an end-entity certificate: it is
    /// one unless basicConstraints explicitly marks it a CA. (Most
    /// non-public certificates omit the extension entirely, §4.3.)
    pub fn is_leaf_candidate(&self) -> bool {
        self.bc_ca != Some(true)
    }
}

/// A delivered chain's identity: the ordered fingerprint sequence from the
/// ssl.log `cert_chain_fps` field.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainKey(pub Vec<Fingerprint>);

/// Lets a `HashMap<ChainKey, _>` be probed with the borrowed fingerprint
/// slice from an ssl.log record, so the hot accumulation loop only
/// allocates a `ChainKey` for chains it has not seen before. Sound because
/// `Vec<T>` and `[T]` hash and compare identically.
impl std::borrow::Borrow<[Fingerprint]> for ChainKey {
    fn borrow(&self) -> &[Fingerprint] {
        &self.0
    }
}

impl ChainKey {
    /// Chain length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the chain is empty (a TLS 1.3 record).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;

    fn record(issuer: &str, subject: &str, bc: Option<bool>) -> X509Record {
        X509Record {
            ts: Asn1Time::from_unix(0),
            fingerprint: Fingerprint([1; 32]),
            cert_version: 3,
            serial: "01".into(),
            subject: subject.into(),
            issuer: issuer.into(),
            not_before: Asn1Time::from_unix(0),
            not_after: Asn1Time::from_unix(86_400),
            basic_constraints_ca: bc,
            path_len: None,
            san_dns: vec!["a.example.org".into()],
        }
    }

    #[test]
    fn parses_dn_strings() {
        let rec = record("CN=CA, O=Org", "CN=leaf.example.org", Some(false));
        let cert = CertRecord::from_record(&rec).unwrap();
        assert_eq!(cert.issuer.common_name(), Some("CA"));
        assert_eq!(cert.subject.common_name(), Some("leaf.example.org"));
        assert!(!cert.is_self_signed());
        assert!(cert.is_leaf_candidate());
    }

    #[test]
    fn self_signed_and_leaf_rules() {
        let rec = record("CN=x", "CN=x", None);
        let cert = CertRecord::from_record(&rec).unwrap();
        assert!(cert.is_self_signed());
        // Absent basicConstraints → still a leaf candidate.
        assert!(cert.is_leaf_candidate());

        let rec = record("CN=root", "CN=ica", Some(true));
        let cert = CertRecord::from_record(&rec).unwrap();
        assert!(!cert.is_leaf_candidate());
    }

    #[test]
    fn malformed_dn_returns_none() {
        let rec = record("NOTAKEY!=zzz", "CN=ok", None);
        assert!(CertRecord::from_record(&rec).is_none());
    }

    #[test]
    fn chain_key_basics() {
        let key = ChainKey(vec![Fingerprint([0; 32]), Fingerprint([1; 32])]);
        assert_eq!(key.len(), 2);
        assert!(!key.is_empty());
        assert!(ChainKey(vec![]).is_empty());
    }
}
