//! Certificate-relationship graphs (Figures 5, 7, 8).
//!
//! Figure 5 draws every certificate appearing in hybrid chains as a node
//! (colored by issuer class, sized by role) with an edge between two
//! certificates that co-occur in at least one chain. Figures 7/8 highlight
//! the complex PKI structures where an intermediate is adjacent to three
//! or more distinct intermediates across chains.

use crate::classify::CertClass;
use crate::model::CertRecord;
use certchain_x509::Fingerprint;
use std::borrow::Borrow;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Node role by position and self-signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CertRole {
    /// First-presented / end-entity certificates.
    Leaf,
    /// Mid-chain certificates.
    Intermediate,
    /// Self-signed certificates presented above position 0.
    Root,
}

/// One node in the chain-structure graph.
#[derive(Debug, Clone)]
pub struct CertNode {
    /// The certificate.
    pub fingerprint: Fingerprint,
    /// Issuer class (Figure 5 node color).
    pub class: CertClass,
    /// Role (Figure 5 node size). A certificate observed in several roles
    /// keeps the "largest" (root > intermediate > leaf).
    pub role: CertRole,
    /// In how many chains the certificate appears.
    pub chain_count: u64,
}

/// The co-occurrence / adjacency graph.
#[derive(Debug, Default)]
pub struct ChainGraph {
    /// Nodes by fingerprint.
    pub nodes: HashMap<Fingerprint, CertNode>,
    /// Co-occurrence edges (both endpoints in one chain), deduplicated.
    pub cooccur_edges: BTreeSet<(Fingerprint, Fingerprint)>,
    /// Adjacency edges (endpoints adjacent in one chain), deduplicated.
    pub adjacency_edges: BTreeSet<(Fingerprint, Fingerprint)>,
}

fn role_of(position: usize, cert: &CertRecord) -> CertRole {
    if position == 0 {
        CertRole::Leaf
    } else if cert.is_self_signed() {
        CertRole::Root
    } else {
        CertRole::Intermediate
    }
}

fn ordered(a: Fingerprint, b: Fingerprint) -> (Fingerprint, Fingerprint) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl ChainGraph {
    /// Empty graph.
    pub fn new() -> ChainGraph {
        ChainGraph::default()
    }

    /// Fold one chain (with per-cert classes) into the graph.
    pub fn add_chain<C: Borrow<CertRecord>>(&mut self, chain: &[C], classes: &[CertClass]) {
        for (i, (cert, &class)) in chain.iter().zip(classes).enumerate() {
            let cert = cert.borrow();
            let role = role_of(i, cert);
            self.nodes
                .entry(cert.fingerprint)
                .and_modify(|node| {
                    node.chain_count += 1;
                    node.role = stronger_role(node.role, role);
                })
                .or_insert(CertNode {
                    fingerprint: cert.fingerprint,
                    class,
                    role,
                    chain_count: 1,
                });
        }
        for i in 0..chain.len() {
            for j in i + 1..chain.len() {
                self.cooccur_edges.insert(ordered(
                    chain[i].borrow().fingerprint,
                    chain[j].borrow().fingerprint,
                ));
            }
            if i + 1 < chain.len() {
                self.adjacency_edges.insert(ordered(
                    chain[i].borrow().fingerprint,
                    chain[i + 1].borrow().fingerprint,
                ));
            }
        }
    }

    /// Node count by (class, role). Callers that render the census must
    /// order the returned map themselves (the figure code sorts rows).
    pub fn census(&self) -> HashMap<(CertClass, CertRole), u64> {
        let mut out = HashMap::new();
        // srclint: commutative -- counting fold; +1 per node in any order
        for node in self.nodes.values() {
            *out.entry((node.class, node.role)).or_default() += 1;
        }
        out
    }

    /// Figures 7/8: intermediates adjacent to at least `k` distinct other
    /// intermediates across chains.
    pub fn hub_intermediates(&self, k: usize) -> Vec<Fingerprint> {
        let is_intermediate = |fp: &Fingerprint| {
            self.nodes
                .get(fp)
                .map(|n| n.role == CertRole::Intermediate)
                .unwrap_or(false)
        };
        let mut neighbors: HashMap<Fingerprint, HashSet<Fingerprint>> = HashMap::new();
        for &(a, b) in &self.adjacency_edges {
            if is_intermediate(&a) && is_intermediate(&b) {
                neighbors.entry(a).or_default().insert(b);
                neighbors.entry(b).or_default().insert(a);
            }
        }
        let mut hubs: Vec<Fingerprint> = neighbors
            .into_iter()
            .filter_map(|(fp, n)| (n.len() >= k).then_some(fp))
            .collect();
        hubs.sort();
        hubs
    }
}

fn stronger_role(a: CertRole, b: CertRole) -> CertRole {
    use CertRole::*;
    match (a, b) {
        (Root, _) | (_, Root) => Root,
        (Intermediate, _) | (_, Intermediate) => Intermediate,
        _ => Leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;
    use certchain_x509::{DistinguishedName, Validity};

    fn cert(n: u8, issuer: &str, subject: &str) -> CertRecord {
        CertRecord {
            fingerprint: Fingerprint([n; 32]),
            issuer: DistinguishedName::cn(issuer),
            subject: DistinguishedName::cn(subject),
            validity: Validity::days_from(Asn1Time::from_unix(0), 1),
            bc_ca: None,
            san_dns: vec![],
        }
    }

    use CertClass::{NonPublicDbIssued as NP, PublicDbIssued as P};

    #[test]
    fn roles_and_census() {
        let mut g = ChainGraph::new();
        let chain = [
            cert(1, "I", "leaf.org"),
            cert(2, "R", "I"),
            cert(3, "R", "R"),
        ];
        g.add_chain(&chain, &[NP, P, P]);
        let census = g.census();
        assert_eq!(census[&(NP, CertRole::Leaf)], 1);
        assert_eq!(census[&(P, CertRole::Intermediate)], 1);
        assert_eq!(census[&(P, CertRole::Root)], 1);
        assert_eq!(g.cooccur_edges.len(), 3);
        assert_eq!(g.adjacency_edges.len(), 2);
    }

    #[test]
    fn shared_certs_merge_across_chains() {
        let mut g = ChainGraph::new();
        let ica = cert(2, "R", "I");
        g.add_chain(&[cert(1, "I", "a.org"), ica.clone()], &[NP, P]);
        g.add_chain(&[cert(3, "I", "b.org"), ica.clone()], &[NP, P]);
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(g.nodes[&ica.fingerprint].chain_count, 2);
    }

    #[test]
    fn hub_detection() {
        let mut g = ChainGraph::new();
        // Hub H adjacent to M1, M2, M3 across three chains.
        let hub = cert(10, "Root", "H");
        for (i, m) in ["M1", "M2", "M3"].iter().enumerate() {
            let leaf = cert(20 + i as u8, m, &format!("svc{i}.org"));
            let mid = cert(30 + i as u8, "H", m);
            g.add_chain(
                &[leaf, mid, hub.clone(), cert(40, "Root", "Root")],
                &[NP, NP, NP, NP],
            );
        }
        let hubs = g.hub_intermediates(3);
        assert_eq!(hubs, vec![hub.fingerprint]);
        assert!(g.hub_intermediates(4).is_empty());
    }

    #[test]
    fn role_upgrades_to_root() {
        // The same certificate appearing first as an intermediate and
        // later self-signed at a non-leaf slot keeps the stronger role.
        let mut g = ChainGraph::new();
        let ss = cert(5, "S", "S");
        g.add_chain(&[cert(1, "S", "x.org"), ss.clone()], &[NP, NP]);
        assert_eq!(g.nodes[&ss.fingerprint].role, CertRole::Root);
        g.add_chain(&[ss.clone(), cert(6, "Q", "Qx")], &[NP, NP]);
        // Still root, even though it appeared at position 0 afterwards.
        assert_eq!(g.nodes[&ss.fingerprint].role, CertRole::Root);
    }
}
