//! Issuer–subject path analysis (§4.2, Figure 3, Appendix D.1).
//!
//! Definitions, following the paper:
//!
//! - A **pair** is an adjacent `(chain[i], chain[i+1])`; it *matches* when
//!   `chain[i].issuer == chain[i+1].subject` (with cross-signing
//!   disclosures honoured).
//! - The **mismatch ratio** is mismatched pairs / total pairs.
//! - A **matched run** is a maximal sequence of consecutive matching pairs.
//! - A **complete matched path** is a matched run whose first certificate
//!   is a *valid leaf* — an end-entity certificate (not explicitly a CA).
//!   A run starting at a CA certificate is only a **partial** path (the
//!   Figure 3 bottom chain).
//! - A chain **is** a complete matched path when one complete path covers
//!   the entire chain; it **contains** one when a complete path exists but
//!   does not cover the chain; otherwise it has **no complete path**.
//!
//! §4.3 applies a leaf-agnostic variant to non-public-only and
//! interception chains ("we do not evaluate the presence of a leaf
//! certificate"): there a chain *is* a matched path when all pairs match,
//! *contains* one when some but not all pairs match, and has none when no
//! pair matches. That variant is [`path_verdict_leaf_agnostic`].

use crate::crosssign::CrossSignRegistry;
use crate::model::CertRecord;
use std::borrow::Borrow;

/// One maximal matched run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchedRun {
    /// Index of the first certificate of the run.
    pub start: usize,
    /// Index of the last certificate of the run (inclusive).
    pub end: usize,
    /// Whether the run starts at a leaf candidate.
    pub starts_at_leaf: bool,
}

impl MatchedRun {
    /// Number of certificates in the run.
    pub fn cert_count(&self) -> usize {
        self.end - self.start + 1
    }
}

/// Leaf-aware verdict for hybrid analysis (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathVerdict {
    /// The whole chain is one complete matched path.
    IsComplete,
    /// A complete matched path exists plus unnecessary certificates.
    ContainsComplete,
    /// No complete matched path.
    NoComplete,
}

/// Full per-chain path report.
#[derive(Debug, Clone, PartialEq)]
pub struct PathReport {
    /// Match flag per adjacent pair (`len = chain_len - 1`).
    pub pair_matches: Vec<bool>,
    /// All maximal matched runs (length ≥ 2 certificates).
    pub runs: Vec<MatchedRun>,
    /// Mismatched-pair positions (indices into `pair_matches`).
    pub mismatch_positions: Vec<usize>,
    /// Mismatch ratio (0 for single-certificate chains).
    pub mismatch_ratio: f64,
    /// Leaf-aware verdict.
    pub verdict: PathVerdict,
}

/// Analyze one chain.
///
/// ```
/// use certchain_asn1::Asn1Time;
/// use certchain_chainlab::matchpath::{analyze, PathVerdict};
/// use certchain_chainlab::{CertRecord, CrossSignRegistry};
/// use certchain_x509::{DistinguishedName, Fingerprint, Validity};
///
/// let cert = |n: u8, issuer: &str, subject: &str| CertRecord {
///     fingerprint: Fingerprint([n; 32]),
///     issuer: DistinguishedName::cn(issuer),
///     subject: DistinguishedName::cn(subject),
///     validity: Validity::days_from(Asn1Time::from_unix(0), 30),
///     bc_ca: Some(n > 1),
///     san_dns: vec![],
/// };
/// let chain = [cert(1, "ICA", "leaf.org"), cert(2, "Root", "ICA")];
/// let report = analyze(&chain, &CrossSignRegistry::new());
/// assert_eq!(report.verdict, PathVerdict::IsComplete);
/// assert_eq!(report.mismatch_ratio, 0.0);
/// ```
pub fn analyze<C: Borrow<CertRecord>>(chain: &[C], crosssign: &CrossSignRegistry) -> PathReport {
    let n = chain.len();
    if n <= 1 {
        return PathReport {
            pair_matches: Vec::new(),
            runs: Vec::new(),
            mismatch_positions: Vec::new(),
            mismatch_ratio: 0.0,
            verdict: PathVerdict::NoComplete,
        };
    }
    let pair_matches: Vec<bool> = (0..n - 1)
        .map(|i| crosssign.pair_matches(&chain[i].borrow().issuer, &chain[i + 1].borrow().subject))
        .collect();
    let mismatch_positions: Vec<usize> = pair_matches
        .iter()
        .enumerate()
        .filter_map(|(i, &m)| (!m).then_some(i))
        .collect();
    let mismatch_ratio = mismatch_positions.len() as f64 / pair_matches.len() as f64;

    // Maximal runs of consecutive matching pairs.
    let mut runs = Vec::new();
    let mut i = 0;
    while i < pair_matches.len() {
        if pair_matches[i] {
            let start = i;
            while i < pair_matches.len() && pair_matches[i] {
                i += 1;
            }
            runs.push(MatchedRun {
                start,
                end: i, // pair indices start..i-1 cover certs start..=i
                starts_at_leaf: chain[start].borrow().is_leaf_candidate(),
            });
        } else {
            i += 1;
        }
    }

    let complete = runs.iter().find(|r| r.starts_at_leaf);
    let verdict = match complete {
        Some(run) if run.start == 0 && run.end == n - 1 => PathVerdict::IsComplete,
        Some(_) => PathVerdict::ContainsComplete,
        None => PathVerdict::NoComplete,
    };

    PathReport {
        pair_matches,
        runs,
        mismatch_positions,
        mismatch_ratio,
        verdict,
    }
}

/// Leaf-agnostic verdict used for non-public-only and interception chains
/// (§4.3). Only meaningful for chains with more than one certificate.
pub fn path_verdict_leaf_agnostic(report: &PathReport) -> PathVerdict {
    if report.pair_matches.is_empty() {
        return PathVerdict::NoComplete;
    }
    let matched = report.pair_matches.iter().filter(|&&m| m).count();
    if matched == report.pair_matches.len() {
        PathVerdict::IsComplete
    } else if matched > 0 {
        PathVerdict::ContainsComplete
    } else {
        PathVerdict::NoComplete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;
    use certchain_x509::{DistinguishedName, Fingerprint, Validity};

    /// Build a CertRecord directly (issuer CN, subject CN, is-CA flag).
    fn cert(n: u8, issuer: &str, subject: &str, ca: Option<bool>) -> CertRecord {
        CertRecord {
            fingerprint: Fingerprint([n; 32]),
            issuer: DistinguishedName::cn(issuer),
            subject: DistinguishedName::cn(subject),
            validity: Validity::days_from(Asn1Time::from_unix(0), 10),
            bc_ca: ca,
            san_dns: vec![],
        }
    }

    fn reg() -> CrossSignRegistry {
        CrossSignRegistry::new()
    }

    #[test]
    fn single_cert_has_no_pairs() {
        let chain = [cert(1, "x", "x", None)];
        let r = analyze(&chain, &reg());
        assert!(r.pair_matches.is_empty());
        assert_eq!(r.verdict, PathVerdict::NoComplete);
        assert_eq!(r.mismatch_ratio, 0.0);
    }

    #[test]
    fn full_chain_is_complete() {
        // leaf ← ica ← root: every pair matches, leaf at position 0.
        let chain = [
            cert(1, "ICA", "leaf.org", Some(false)),
            cert(2, "Root", "ICA", Some(true)),
            cert(3, "Root", "Root", Some(true)),
        ];
        let r = analyze(&chain, &reg());
        assert_eq!(r.pair_matches, vec![true, true]);
        assert_eq!(r.verdict, PathVerdict::IsComplete);
        assert_eq!(r.mismatch_ratio, 0.0);
        assert_eq!(r.runs.len(), 1);
        assert!(r.runs[0].starts_at_leaf);
        assert_eq!(r.runs[0].cert_count(), 3);
    }

    /// The Figure 3 bottom chain: partial path (no valid leaf), complete
    /// path, plus an extra leaf → mismatch ratio 0.4 and a contains
    /// verdict. Layout (6 certs, 5 pairs):
    ///   [CA-b, CA-a] matched (partial: starts at CA)
    ///   mismatch
    ///   [leaf2, CA-d, CA-c] matched (complete: starts at leaf)
    ///   mismatch to trailing extra leaf... — the paper draws the extra
    /// leaf at the end; we model leaf-first ordering within runs.
    #[test]
    fn figure3_bottom_chain() {
        let chain = [
            cert(1, "CA-a", "CA-b", Some(true)),   // partial run start (CA)
            cert(2, "CA-zzz", "CA-a", Some(true)), // run ends: next pair mismatch
            cert(3, "CA-d", "leaf2.org", Some(false)), // complete run start (leaf)
            cert(4, "CA-c", "CA-d", Some(true)),
            cert(5, "CA-c", "CA-c", Some(true)),
            cert(6, "CA-x", "extra-leaf.org", Some(false)), // trailing extra
        ];
        let r = analyze(&chain, &reg());
        assert_eq!(r.pair_matches, vec![true, false, true, true, false]);
        assert!((r.mismatch_ratio - 0.4).abs() < 1e-9);
        assert_eq!(r.verdict, PathVerdict::ContainsComplete);
        assert_eq!(r.runs.len(), 2);
        assert!(!r.runs[0].starts_at_leaf, "first run starts at a CA");
        assert!(r.runs[1].starts_at_leaf);
        assert_eq!(r.mismatch_positions, vec![1, 4]);
    }

    #[test]
    fn matched_run_of_cas_only_is_not_complete() {
        // Self-signed leaf followed by a valid CA sub-chain (Table 7 row 2).
        let chain = [
            cert(1, "dev.local", "dev.local", None),
            cert(2, "Mid", "Inner", Some(true)),
            cert(3, "Root", "Mid", Some(true)),
            cert(4, "Root", "Root", Some(true)),
        ];
        let r = analyze(&chain, &reg());
        assert_eq!(r.verdict, PathVerdict::NoComplete);
        assert_eq!(r.runs.len(), 1);
        assert!(!r.runs[0].starts_at_leaf);
        assert!((r.mismatch_ratio - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn all_mismatched() {
        let chain = [
            cert(1, "A", "leaf.org", Some(false)),
            cert(2, "B", "C", None),
            cert(3, "D", "E", None),
        ];
        let r = analyze(&chain, &reg());
        assert_eq!(r.verdict, PathVerdict::NoComplete);
        assert!(r.runs.is_empty());
        assert_eq!(r.mismatch_ratio, 1.0);
    }

    #[test]
    fn cross_signing_rescues_a_pair() {
        let mut registry = CrossSignRegistry::new();
        registry.disclose(
            DistinguishedName::cn("ICA"),
            DistinguishedName::cn("AltRoot"),
        );
        // The leaf names "AltRoot" as issuer, but the presented parent is
        // the cross-signed twin with subject "ICA".
        let chain = [
            cert(1, "AltRoot", "leaf.org", Some(false)),
            cert(2, "Root", "ICA", Some(true)),
            cert(3, "Root", "Root", Some(true)),
        ];
        // Without disclosure: mismatch at pair 0.
        let r = analyze(&chain, &reg());
        assert_eq!(r.verdict, PathVerdict::NoComplete);
        // With disclosure: complete.
        let r = analyze(&chain, &registry);
        assert_eq!(r.verdict, PathVerdict::IsComplete);
    }

    #[test]
    fn leaf_agnostic_variant() {
        // All pairs match → Is.
        let chain = [
            cert(1, "B", "A", None),
            cert(2, "C", "B", None),
            cert(3, "C", "C", None),
        ];
        let r = analyze(&chain, &reg());
        assert_eq!(path_verdict_leaf_agnostic(&r), PathVerdict::IsComplete);

        // Some pairs → Contains (even though no leaf candidate starts it).
        let chain = [
            cert(1, "X", "A", Some(true)),
            cert(2, "C", "B", Some(true)),
            cert(3, "C", "C", Some(true)),
        ];
        let r = analyze(&chain, &reg());
        assert_eq!(
            path_verdict_leaf_agnostic(&r),
            PathVerdict::ContainsComplete
        );

        // None → No.
        let chain = [cert(1, "X", "A", None), cert(2, "Y", "B", None)];
        let r = analyze(&chain, &reg());
        assert_eq!(path_verdict_leaf_agnostic(&r), PathVerdict::NoComplete);
    }

    #[test]
    fn expired_leaf_is_still_a_complete_path() {
        // §4.2 counts 3 chains with expired leaves among the 36 complete
        // chains, so expiry must not disqualify the leaf.
        let chain = [
            cert(1, "ICA", "old-leaf.org", Some(false)),
            cert(2, "ICA", "ICA", Some(true)),
        ];
        let r = analyze(&chain, &reg());
        assert_eq!(r.verdict, PathVerdict::IsComplete);
    }

    #[test]
    fn mismatch_positions_align_with_keysig_positions() {
        // Appendix D: the issuer–subject mismatch positions equal the
        // positions where key-signature validation fails.
        let chain = [
            cert(1, "ICA", "leaf.org", Some(false)),
            cert(2, "WRONG", "ICA", Some(true)),
            cert(3, "Root", "Root2", Some(true)),
        ];
        let r = analyze(&chain, &reg());
        assert_eq!(r.mismatch_positions, vec![1]);
    }
}
