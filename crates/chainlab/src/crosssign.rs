//! Cross-signing reconciliation (§4.2 / Appendix D.1).
//!
//! An issuer–subject mismatch can be a false positive when the "missing"
//! issuer is a cross-signed twin of a certificate that *is* present under
//! a different issuer DN. The paper reconciles its matching results with
//! Zeek's validation output and CA announcements (e.g. Sectigo's chain
//! documentation); this registry models those announcements as declared
//! DN equivalences consulted during pair matching.

use certchain_x509::DistinguishedName;
use std::collections::{HashMap, HashSet};

/// Declared cross-signing relationships.
#[derive(Debug, Default, Clone)]
pub struct CrossSignRegistry {
    /// subject DN → alternate issuer DNs that also issued a certificate
    /// for this subject.
    alternates: HashMap<DistinguishedName, HashSet<DistinguishedName>>,
}

impl CrossSignRegistry {
    /// Empty registry (no disclosures).
    pub fn new() -> CrossSignRegistry {
        CrossSignRegistry::default()
    }

    /// Build from `(subject, alternate_issuer)` disclosure pairs.
    pub fn from_disclosures(pairs: &[(DistinguishedName, DistinguishedName)]) -> CrossSignRegistry {
        let mut reg = CrossSignRegistry::new();
        for (subject, issuer) in pairs {
            reg.disclose(subject.clone(), issuer.clone());
        }
        reg
    }

    /// Record that `subject` also holds a certificate issued by
    /// `alternate_issuer`.
    pub fn disclose(&mut self, subject: DistinguishedName, alternate_issuer: DistinguishedName) {
        self.alternates
            .entry(subject)
            .or_default()
            .insert(alternate_issuer);
    }

    /// Whether a child whose issuer is `child_issuer` can chain to a
    /// parent certificate with subject `parent_subject`, taking disclosed
    /// cross-signing into account.
    ///
    /// Direct matches do not consult the registry.
    pub fn pair_matches(
        &self,
        child_issuer: &DistinguishedName,
        parent_subject: &DistinguishedName,
    ) -> bool {
        if child_issuer == parent_subject {
            return true;
        }
        // Cross-signed case: the child names an issuer that is disclosed
        // as cross-signed, and the presented parent is one of the twins'
        // subjects... i.e. the child's issuer DN has an alternate identity
        // equal to the parent's subject, or vice versa.
        self.alternates
            .get(child_issuer)
            .map(|alts| alts.contains(parent_subject))
            .unwrap_or(false)
            || self
                .alternates
                .get(parent_subject)
                .map(|alts| alts.contains(child_issuer))
                .unwrap_or(false)
    }

    /// Number of disclosed relationships.
    pub fn len(&self) -> usize {
        // srclint: commutative -- order-insensitive sum of set sizes
        self.alternates.values().map(|v| v.len()).sum()
    }

    /// Whether no disclosures exist.
    pub fn is_empty(&self) -> bool {
        self.alternates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(cn: &str) -> DistinguishedName {
        DistinguishedName::cn(cn)
    }

    #[test]
    fn direct_match_needs_no_disclosure() {
        let reg = CrossSignRegistry::new();
        assert!(reg.pair_matches(&dn("CA X"), &dn("CA X")));
        assert!(!reg.pair_matches(&dn("CA X"), &dn("CA Y")));
    }

    #[test]
    fn disclosed_cross_sign_matches() {
        let mut reg = CrossSignRegistry::new();
        // "COMODO ICA" is also issued by (cross-signed under) "AAA Root".
        reg.disclose(dn("COMODO ICA"), dn("AAA Root"));
        // A child naming "COMODO ICA" as issuer can chain to a presented
        // certificate whose subject is "AAA Root"? No — the twin has
        // subject "COMODO ICA" too. What the disclosure buys: a child
        // naming "AAA Root" as issuer matches a parent with subject
        // "COMODO ICA" (the cross-signed twin presented instead).
        assert!(reg.pair_matches(&dn("AAA Root"), &dn("COMODO ICA")));
        assert!(reg.pair_matches(&dn("COMODO ICA"), &dn("AAA Root")));
        assert!(!reg.pair_matches(&dn("COMODO ICA"), &dn("Other Root")));
    }

    #[test]
    fn from_disclosures_builds() {
        let reg = CrossSignRegistry::from_disclosures(&[(dn("A"), dn("B")), (dn("A"), dn("C"))]);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert!(reg.pair_matches(&dn("B"), &dn("A")));
        assert!(reg.pair_matches(&dn("C"), &dn("A")));
    }
}
