//! [`PipelineState`]: the pipeline's mid-fold accumulator state as a
//! first-class, persistable artifact.
//!
//! Historically the accumulators (chain key → usage stats and SNI sets,
//! the interned certificate table, the stream-loss tallies) lived and
//! died inside one `analyze` call. The paper's deployment shape is the
//! opposite: a border gateway rotates `ssl.log`/`x509.log` hourly for a
//! year, and findings must update as files arrive. This module extracts
//! the state so the pipeline splits into a **resumable fold core**
//! ([`Pipeline::fold_x509_stream`] / [`Pipeline::fold_ssl_stream`], each
//! callable any number of times, in any session) and a **pure finalize**
//! ([`Pipeline::finalize_state`]) that renders an [`super::Analysis`]
//! from any state without mutating it.
//!
//! # Why resumable folding is exact, not approximate
//!
//! Every aggregate in the state is commutative and associative over
//! record folds at unit weight: the usage sums are integer-valued `f64`s
//! (exact in IEEE 754 far beyond any campus corpus), the SNI/client-IP
//! aggregates are set unions, and the counters are integer sums. Folding
//! a record stream as N per-file folds across N processes therefore
//! produces *bit-identical* state to one batch fold — the defining
//! invariant, pinned by tests here and by the serve/analyze `cmp` smoke
//! in CI. (Fractional statistical weights — the batch `analyze
//! --weights` path — are not exact under re-association, so only
//! unit-weight folds should be resumed across sessions; real Zeek logs
//! are always unit-weight.)
//!
//! Certificate resolution is deferred to finalize: the fold core accepts
//! ssl records whose fingerprints have no x509 row *yet* (rotated files
//! interleave arbitrarily), and chains still unresolved when a report is
//! rendered are excluded there, with their record count reported as
//! `unresolvable_records` — byte-identical to the batch pipeline, which
//! drains all x509 rows before any ssl record.
//!
//! # Checkpoint layout
//!
//! Persistence reuses `certchain-colstore`'s checkpoint container
//! (generation directories, one file per field, manifest written last,
//! size-validated loader with fallback to the last complete generation):
//!
//! - `chains.dat` — every per-chain accumulator, sorted by [`ChainKey`]
//!   so the bytes are invariant across thread counts and hash seeds.
//!   Rewritten per generation: it is a mutable aggregate, O(distinct
//!   chains).
//! - `certs-NNNNNN.dat` — the interned certificate table as an
//!   append-only chunk series: each generation writes only the certs
//!   interned since the previous checkpoint and *carries* older chunks
//!   by hard link, so cert persistence costs O(new data).
//! - counters, loss tallies, and the folded-file ledger ride in the
//!   manifest's `meta` object.

use super::categorize::Prepared;
use super::enrich::CertIndex;
use super::ingest::{ChainAccum, IngestCounts};
use super::Pipeline;
use crate::classify::{classify, CertClass};
use crate::model::{CertRecord, ChainKey};
use crate::usage::UsageStats;
use certchain_asn1::Asn1Time;
use certchain_colstore::{Checkpoint, CheckpointWriter, ColError};
use certchain_netsim::X509Record;
use certchain_obs::json::JsonValue;
use certchain_x509::Fingerprint;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The chains field file name.
const CHAINS_FILE: &str = "chains.dat";

/// Errors from checkpoint persistence and reload.
#[derive(Debug)]
pub enum StateError {
    /// The underlying checkpoint container failed (I/O, truncation,
    /// manifest problems).
    Store(ColError),
    /// A field file decoded inconsistently (bad lengths, counts
    /// disagreeing with the manifest, unparseable stored rows).
    Corrupt(String),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Store(e) => write!(f, "checkpoint store: {e}"),
            StateError::Corrupt(msg) => write!(f, "corrupt checkpoint state: {msg}"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<ColError> for StateError {
    fn from(e: ColError) -> StateError {
        StateError::Store(e)
    }
}

/// One already-persisted certificate chunk (carried forward by link).
#[derive(Debug, Clone)]
struct ChunkInfo {
    name: String,
    count: usize,
    bytes: u64,
}

/// Where the state was last persisted — what `save_checkpoint` carries
/// chunks from. Never serialized; rebuilt on load.
#[derive(Debug, Clone)]
struct PrevCheckpoint {
    dir: PathBuf,
    chunks: Vec<ChunkInfo>,
}

/// The pipeline's resumable accumulator state. Build one with
/// [`PipelineState::new`] (or reload with [`PipelineState::load_latest`]),
/// fold any number of record streams into it, checkpoint it between
/// folds, and render reports from it at any point with
/// [`Pipeline::finalize_state`].
#[derive(Default)]
pub struct PipelineState {
    /// Per-chain accumulators.
    pub(crate) chains: HashMap<ChainKey, ChainAccum>,
    /// Interned x509 rows, global first-parseable-occurrence order.
    pub(crate) certs: Vec<X509Record>,
    /// Parsed view of `certs`, index-aligned (every stored row parsed
    /// once, at intern or reload time).
    pub(crate) parsed: Vec<Arc<CertRecord>>,
    /// Fingerprint → index into `certs`.
    pub(crate) cert_lookup: HashMap<Fingerprint, u32>,
    /// Total ssl records folded (after row filtering).
    pub(crate) records: u64,
    /// Folded records with an empty chain (TLS 1.3).
    pub(crate) no_chain: u64,
    /// Total x509 rows folded.
    pub(crate) x509_rows: u64,
    /// X509 rows that failed to parse into a [`CertRecord`].
    pub(crate) x509_unparseable: u64,
    /// Loss-accounting tallies by reason (stream parse losses, skipped
    /// spool files), merged across sessions.
    loss: BTreeMap<String, u64>,
    /// Ledger of spool files already folded, in fold order.
    folded: Vec<String>,
    /// Generation of the last checkpoint written or loaded (0 = none).
    generation: u64,
    /// Aggregate record counts per structural chain category, noted by
    /// the caller (the category fold needs the trust DBs, which the
    /// state does not hold). Persisted into checkpoint meta when set.
    category_census: Option<[u64; certchain_colstore::CATEGORY_COUNT]>,
    /// In-memory change counter (bumps on every fold; not persisted).
    revision: u64,
    /// How many of `certs` are already in persisted chunks.
    certs_persisted: usize,
    prev: Option<PrevCheckpoint>,
}

impl PipelineState {
    /// Fresh, empty state.
    pub fn new() -> PipelineState {
        PipelineState::default()
    }

    /// Total ssl records folded so far (post-filter).
    pub fn ssl_records(&self) -> u64 {
        self.records
    }

    /// Folded records that carried no certificate chain.
    pub fn no_chain_records(&self) -> u64 {
        self.no_chain
    }

    /// Total x509 rows folded so far.
    pub fn x509_rows(&self) -> u64 {
        self.x509_rows
    }

    /// Distinct chains accumulated so far.
    pub fn distinct_chains(&self) -> usize {
        self.chains.len()
    }

    /// Distinct certificates interned so far.
    pub fn distinct_certificates(&self) -> usize {
        self.certs.len()
    }

    /// Generation of the last checkpoint written or loaded (0 = none).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Monotonic in-memory change counter: bumps whenever a fold adds
    /// data, so callers can cache derived artifacts (rendered reports)
    /// keyed on it. Not persisted.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The spool files already folded into this state, in fold order.
    pub fn folded_files(&self) -> &[String] {
        &self.folded
    }

    /// Whether a spool file name is already in the folded ledger.
    pub fn has_folded(&self, name: &str) -> bool {
        self.folded.iter().any(|f| f == name)
    }

    /// Append a file to the folded ledger.
    pub fn note_folded(&mut self, name: &str) {
        self.folded.push(name.to_string());
        self.revision += 1;
    }

    /// Bump a loss-accounting tally (e.g. `"ssl.malformed"`,
    /// `"spool.unrecognized"`). No-op at `n == 0` so callers can pass
    /// tallies through unconditionally.
    pub fn add_loss(&mut self, reason: &str, n: u64) {
        if n > 0 {
            *self.loss.entry(reason.to_string()).or_default() += n;
        }
    }

    /// The merged loss tallies, by reason.
    pub fn loss(&self) -> &BTreeMap<String, u64> {
        &self.loss
    }

    /// Intern one parse-vetted x509 row (first parseable occurrence of a
    /// fingerprint wins, matching the batch enrich stage).
    fn intern(&mut self, rec: &X509Record, cert: CertRecord) {
        if !self.cert_lookup.contains_key(&rec.fingerprint) {
            self.cert_lookup
                .insert(rec.fingerprint, self.certs.len() as u32);
            self.certs.push(rec.clone());
            self.parsed.push(Arc::new(cert));
        }
    }

    /// Fold one x509 row: parse-vet, intern, tally.
    pub(crate) fn fold_x509_row(&mut self, rec: &X509Record) {
        self.x509_rows += 1;
        match CertRecord::from_record(rec) {
            Some(cert) => self.intern(rec, cert),
            None => self.x509_unparseable += 1,
        }
        self.revision += 1;
    }

    /// Absorb one fold's accumulator map and counts. Chain merges are
    /// exact at unit weight (integer-valued sums, set unions), so
    /// absorbing per-file folds reproduces the one-shot batch fold
    /// bit-for-bit.
    pub(crate) fn absorb(&mut self, accums: HashMap<ChainKey, ChainAccum>, counts: IngestCounts) {
        self.records += counts.records;
        self.no_chain += counts.no_chain;
        // srclint: commutative -- merging into a keyed map; each chain's merge order is the fold-call order, not the iteration order
        for (key, accum) in accums {
            match self.chains.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(accum),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(accum);
                }
            }
        }
        self.revision += 1;
    }

    /// Aggregate per-category record counts over everything folded so
    /// far — the checkpoint-level analogue of the columnar store's
    /// per-segment category digests. Chainless records count as `none`;
    /// chains with unresolved fingerprints as `incomplete` (they may
    /// migrate to a resolved category once more x509 files fold, which
    /// is why the census is recomputed at every checkpoint rather than
    /// accumulated incrementally).
    pub fn category_census(
        &self,
        trust: &certchain_trust::TrustDb,
    ) -> [u64; certchain_colstore::CATEGORY_COUNT] {
        let oracle = self.category_oracle(certchain_colstore::CategorySet::empty(), trust);
        let mut counts = [0u64; certchain_colstore::CATEGORY_COUNT];
        counts[certchain_colstore::Category::NoChain.index()] = self.no_chain;
        // srclint: commutative — u64 additions into per-category slots
        for (key, accum) in &self.chains {
            counts[oracle.category(&key.0).index()] += accum.usage.records;
        }
        counts
    }

    /// Note a computed [`PipelineState::category_census`] for
    /// persistence: the next checkpoint carries it in its meta block.
    pub fn note_category_census(&mut self, census: [u64; certchain_colstore::CATEGORY_COUNT]) {
        self.category_census = Some(census);
    }

    /// The last noted (or checkpoint-loaded) category census, if any.
    pub fn noted_category_census(&self) -> Option<&[u64; certchain_colstore::CATEGORY_COUNT]> {
        self.category_census.as_ref()
    }

    /// Build the category row-filter predicate over the interned
    /// certificate table. Only sound once the x509 side has fully
    /// folded: fingerprints missing from the table read as unresolved
    /// and push chains into `incomplete`.
    pub(crate) fn category_oracle(
        &self,
        set: certchain_colstore::CategorySet,
        trust: &certchain_trust::TrustDb,
    ) -> crate::filtercat::CategoryOracle {
        crate::filtercat::CategoryOracle::new(
            set,
            self.certs
                .iter()
                .zip(&self.parsed)
                .map(|(rec, cert)| (rec.fingerprint, &**cert)),
            trust,
        )
    }

    /// The certificate index over the interned table — the same
    /// fingerprint → shared-record map the batch enrich stage builds.
    pub(crate) fn cert_index(&self) -> CertIndex {
        self.certs
            .iter()
            .zip(&self.parsed)
            .map(|(rec, cert)| (rec.fingerprint, Arc::clone(cert)))
            .collect()
    }

    // ---- persistence ----------------------------------------------------

    /// Write a new checkpoint generation under `root` and prune all but
    /// the two newest complete generations. Returns the generation
    /// number. Field files land before the manifest, so a crash
    /// mid-write leaves the previous generation as the loadable one.
    pub fn save_checkpoint(&mut self, root: &Path) -> Result<u64, StateError> {
        self.save_checkpoint_traced(root, None)
    }

    /// [`PipelineState::save_checkpoint`], with an optional parent trace
    /// span: the commit then runs under a `checkpoint.commit` child span
    /// whose events record every field write/carry and the manifest
    /// fsync (see [`CheckpointWriter::attach_trace`]).
    pub fn save_checkpoint_traced(
        &mut self,
        root: &Path,
        trace: Option<&certchain_obs::Span>,
    ) -> Result<u64, StateError> {
        let generation = Checkpoint::next_generation(root)?;
        let mut writer = CheckpointWriter::begin(root, generation)?;
        if let Some(parent) = trace {
            let span = parent.child("checkpoint.commit");
            span.attr("generation", generation.to_string());
            writer.attach_trace(span);
        }
        writer.write_field(CHAINS_FILE, &self.encode_chains())?;
        let mut chunks: Vec<ChunkInfo> = Vec::new();
        if let Some(prev) = &self.prev {
            for chunk in &prev.chunks {
                writer.carry_field(&chunk.name, &prev.dir.join(&chunk.name), chunk.bytes)?;
                chunks.push(chunk.clone());
            }
        }
        let fresh = &self.certs[self.certs_persisted..];
        if !fresh.is_empty() {
            let name = format!("certs-{generation:06}.dat");
            let bytes = encode_certs(fresh);
            writer.write_field(&name, &bytes)?;
            chunks.push(ChunkInfo {
                name,
                count: fresh.len(),
                bytes: bytes.len() as u64,
            });
        }
        writer.set_meta("records", JsonValue::Num(self.records as f64));
        writer.set_meta("no_chain", JsonValue::Num(self.no_chain as f64));
        writer.set_meta("x509_rows", JsonValue::Num(self.x509_rows as f64));
        writer.set_meta(
            "x509_unparseable",
            JsonValue::Num(self.x509_unparseable as f64),
        );
        writer.set_meta("chains", JsonValue::Num(self.chains.len() as f64));
        writer.set_meta("certs", JsonValue::Num(self.certs.len() as f64));
        if let Some(census) = &self.category_census {
            writer.set_meta(
                "category_census",
                JsonValue::Arr(census.iter().map(|&n| JsonValue::Num(n as f64)).collect()),
            );
        }
        writer.set_meta(
            "loss",
            JsonValue::Obj(
                self.loss
                    .iter()
                    .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
                    .collect(),
            ),
        );
        writer.set_meta(
            "files",
            JsonValue::Arr(self.folded.iter().cloned().map(JsonValue::Str).collect()),
        );
        writer.set_meta(
            "cert_chunks",
            JsonValue::Arr(
                chunks
                    .iter()
                    .map(|c| {
                        JsonValue::Obj(vec![
                            ("name".into(), JsonValue::Str(c.name.clone())),
                            ("count".into(), JsonValue::Num(c.count as f64)),
                        ])
                    })
                    .collect(),
            ),
        );
        let sealed = writer.commit()?;
        Checkpoint::prune(root, 2)?;
        self.prev = Some(PrevCheckpoint {
            dir: sealed.dir().to_path_buf(),
            chunks,
        });
        self.certs_persisted = self.certs.len();
        self.generation = generation;
        Ok(generation)
    }

    /// Load the newest complete checkpoint under `root`, falling back
    /// across partial generations ([`Checkpoint::load_latest`]), or
    /// `Ok(None)` when no complete checkpoint exists (fresh start).
    pub fn load_latest(root: &Path) -> Result<Option<PipelineState>, StateError> {
        let Some(ckpt) = Checkpoint::load_latest(root)? else {
            return Ok(None);
        };
        let meta_u64 = |key: &str| -> Result<u64, StateError> {
            ckpt.meta
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| StateError::Corrupt(format!("meta missing numeric {key:?}")))
        };
        let mut state = PipelineState {
            records: meta_u64("records")?,
            no_chain: meta_u64("no_chain")?,
            x509_rows: meta_u64("x509_rows")?,
            x509_unparseable: meta_u64("x509_unparseable")?,
            generation: ckpt.generation,
            ..PipelineState::default()
        };
        // Optional: checkpoints from before category digests carry none.
        if let Some(arr) = ckpt.meta.get("category_census").and_then(JsonValue::as_arr) {
            let mut census = [0u64; certchain_colstore::CATEGORY_COUNT];
            if arr.len() != census.len() {
                return Err(StateError::Corrupt(format!(
                    "category census has {} entries, expected {}",
                    arr.len(),
                    census.len()
                )));
            }
            for (slot, value) in census.iter_mut().zip(arr) {
                *slot = value.as_u64().ok_or_else(|| {
                    StateError::Corrupt("category census entry is not an integer".into())
                })?;
            }
            state.category_census = Some(census);
        }
        if let Some(obj) = ckpt.meta.get("loss").and_then(JsonValue::as_obj) {
            for (reason, count) in obj {
                let n = count.as_u64().ok_or_else(|| {
                    StateError::Corrupt(format!("loss tally {reason:?} is not an integer"))
                })?;
                state.loss.insert(reason.clone(), n);
            }
        }
        if let Some(arr) = ckpt.meta.get("files").and_then(JsonValue::as_arr) {
            for name in arr {
                let name = name
                    .as_str()
                    .ok_or_else(|| StateError::Corrupt("non-string folded file".into()))?;
                state.folded.push(name.to_string());
            }
        }
        let mut chunks: Vec<ChunkInfo> = Vec::new();
        if let Some(arr) = ckpt.meta.get("cert_chunks").and_then(JsonValue::as_arr) {
            for chunk in arr {
                let name = chunk
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| StateError::Corrupt("cert chunk missing name".into()))?;
                let count = chunk
                    .get("count")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| StateError::Corrupt("cert chunk missing count".into()))?;
                let bytes = *ckpt.files.get(name).ok_or_else(|| {
                    StateError::Corrupt(format!("cert chunk {name:?} not in manifest"))
                })?;
                chunks.push(ChunkInfo {
                    name: name.to_string(),
                    count: count as usize,
                    bytes,
                });
            }
        }
        for chunk in &chunks {
            let bytes = ckpt.read_field(&chunk.name)?;
            let before = state.certs.len();
            decode_certs(&bytes, &mut state)?;
            if state.certs.len() - before != chunk.count {
                return Err(StateError::Corrupt(format!(
                    "cert chunk {:?} decoded {} records, manifest says {}",
                    chunk.name,
                    state.certs.len() - before,
                    chunk.count
                )));
            }
        }
        if state.certs.len() as u64 != meta_u64("certs")? {
            return Err(StateError::Corrupt(format!(
                "decoded {} certificates, meta says {}",
                state.certs.len(),
                meta_u64("certs")?
            )));
        }
        decode_chains(&ckpt.read_field(CHAINS_FILE)?, &mut state.chains)?;
        if state.chains.len() as u64 != meta_u64("chains")? {
            return Err(StateError::Corrupt(format!(
                "decoded {} chains, meta says {}",
                state.chains.len(),
                meta_u64("chains")?
            )));
        }
        state.certs_persisted = state.certs.len();
        state.prev = Some(PrevCheckpoint {
            dir: ckpt.dir().to_path_buf(),
            chunks,
        });
        Ok(Some(state))
    }

    /// Encode the chain accumulators, sorted by [`ChainKey`] so the file
    /// bytes are identical regardless of the fold's thread count or the
    /// map's history.
    fn encode_chains(&self) -> Vec<u8> {
        // srclint: commutative -- snapshot of a keyed map, explicitly sorted before encoding
        let mut entries: Vec<(&ChainKey, &ChainAccum)> = self.chains.iter().collect();
        entries.sort_by_key(|&(key, _)| key);
        let mut out = Vec::new();
        for (key, accum) in entries {
            put_u32(&mut out, key.0.len() as u32);
            for fp in &key.0 {
                out.extend_from_slice(&fp.0);
            }
            let u = &accum.usage;
            put_u64(&mut out, u.records);
            put_f64(&mut out, u.connections);
            put_f64(&mut out, u.established);
            put_f64(&mut out, u.with_sni);
            put_u32(&mut out, u.ports.len() as u32);
            for (&port, &weight) in &u.ports {
                put_u16(&mut out, port);
                put_f64(&mut out, weight);
            }
            // srclint: commutative -- set snapshot, explicitly sorted before encoding
            let mut ips: Vec<u32> = u.client_ips.iter().map(|ip| u32::from(*ip)).collect();
            ips.sort_unstable();
            put_u32(&mut out, ips.len() as u32);
            for ip in ips {
                put_u32(&mut out, ip);
            }
            put_u32(&mut out, accum.snis.len() as u32);
            for sni in &accum.snis {
                put_str(&mut out, sni);
            }
        }
        out
    }
}

// ---- Pipeline: the resumable fold core + pure finalize -----------------

impl Pipeline<'_> {
    /// Fold a fallible x509 record stream into `state` — the resumable
    /// form of the enrich stage. Callable any number of times; rows for
    /// already-interned fingerprints are deduplicated exactly as in the
    /// batch path (first parseable occurrence wins).
    pub fn fold_x509_stream<E, J>(&self, state: &mut PipelineState, x509: J) -> Result<(), E>
    where
        J: Iterator<Item = Result<X509Record, E>>,
    {
        let _span = self.obs.stage("enrich");
        let trace = self.obs.trace_span("pipeline.enrich");
        let before = state.x509_rows;
        for rec in x509 {
            state.fold_x509_row(&rec?);
        }
        if let Some(t) = &trace {
            t.attr("rows", (state.x509_rows - before).to_string());
        }
        Ok(())
    }

    /// Batch variant of [`Pipeline::fold_x509_stream`]: parse rows on
    /// `threads` workers (DN parsing dominates), then intern in input
    /// order so the result is byte-identical to the sequential fold.
    pub(crate) fn fold_x509_slice(
        &self,
        state: &mut PipelineState,
        x509: &[X509Record],
        threads: usize,
    ) {
        let _span = self.obs.stage("enrich");
        if threads <= 1 || x509.len() < 2 {
            for rec in x509 {
                state.fold_x509_row(rec);
            }
            return;
        }
        let chunk = x509.len().div_ceil(threads);
        let parsed: Vec<Vec<Option<CertRecord>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = x509
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(CertRecord::from_record).collect()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("x509 parse worker panicked"))
                .collect()
        });
        for (rec, cert) in x509.iter().zip(parsed.into_iter().flatten()) {
            state.x509_rows += 1;
            match cert {
                Some(cert) => state.intern(rec, cert),
                None => state.x509_unparseable += 1,
            }
        }
        state.revision += 1;
    }

    /// Fold a fallible ssl record stream into `state` — the resumable
    /// form of the ingest stage, sharded across
    /// [`super::PipelineOptions::threads`] workers exactly like the batch
    /// fold. Certificate resolution is deferred to finalize, so this
    /// never needs the x509 side to have arrived first — *unless* the
    /// row filter names categories, whose predicate snapshots the
    /// certificate table at fold time and therefore requires the x509
    /// side to be complete first (the one-shot CLI paths guarantee this;
    /// the incremental serve daemon does not expose category filtering).
    pub fn fold_ssl_stream<E, I>(&self, state: &mut PipelineState, ssl: I) -> Result<(), E>
    where
        I: Iterator<Item = Result<certchain_netsim::SslRecord, E>>,
    {
        let _span = self.obs.stage("ingest");
        let _trace = self.obs.trace_span("pipeline.ingest");
        let threads = super::resolve_threads(self.options.threads);
        let oracle = self.category_oracle(state);
        let mut first_err: Option<E> = None;
        let records = super::FuseOnErr {
            inner: ssl,
            err: &mut first_err,
        };
        let (accums, counts) = super::ingest::accumulate(self, records, threads, oracle.as_ref());
        if let Some(e) = first_err {
            return Err(e);
        }
        state.absorb(accums, counts);
        Ok(())
    }

    /// Render an [`super::Analysis`] from `state` without consuming or
    /// mutating it: resolve chains against the interned certificate
    /// table (chains with missing fingerprints are excluded and their
    /// records counted as unresolvable), then run the shared
    /// categorize/finalize stages. Byte-identical to the one-shot batch
    /// paths for every thread count.
    pub fn finalize_state(&self, state: &PipelineState) -> super::Analysis {
        let threads = super::resolve_threads(self.options.threads);
        let trace = self.obs.trace_span("pipeline.resolve");
        let cert_index = {
            let _span = self.obs.stage("resolve");
            state.cert_index()
        };
        self.record_enrich(state.x509_rows, state.x509_unparseable, cert_index.len());
        let (prepared, unresolvable) = {
            let _span = self.obs.stage("resolve");
            prepare_state(self, state, &cert_index, threads)
        };
        if let Some(t) = &trace {
            t.attr("chains", state.chains.len().to_string());
            t.attr("unresolvable", unresolvable.to_string());
        }
        drop(trace);
        let counts = IngestCounts {
            records: state.records,
            no_chain: state.no_chain,
            unresolvable,
        };
        self.finish(prepared, counts, threads)
    }
}

/// Resolve and classify the state's chains against the certificate
/// index, on `threads` workers over arbitrary (unsorted) chunks — safe
/// because per-chain preparation is pure and the caller sorts. Returns
/// the resolvable chains plus the unresolvable-record tally (an integer
/// sum, thread-count invariant).
fn prepare_state(
    pipe: &Pipeline<'_>,
    state: &PipelineState,
    cert_index: &CertIndex,
    threads: usize,
) -> (Vec<Prepared>, u64) {
    // srclint: commutative -- snapshot of a keyed map; workers chunk it arbitrarily and the caller sorts the merged output
    let entries: Vec<(&ChainKey, &ChainAccum)> = state.chains.iter().collect();
    let prepare_part = |part: &[(&ChainKey, &ChainAccum)]| {
        let mut prepared = Vec::with_capacity(part.len());
        let mut unresolvable = 0u64;
        for (key, accum) in part {
            let certs: Option<Vec<Arc<CertRecord>>> = key
                .0
                .iter()
                .map(|fp| cert_index.get(fp).map(Arc::clone))
                .collect();
            match certs {
                Some(certs) => {
                    let classes: Vec<CertClass> =
                        certs.iter().map(|c| classify(c, pipe.trust)).collect();
                    prepared.push(Prepared {
                        key: (*key).clone(),
                        certs,
                        classes,
                        snis: accum.snis.clone(),
                        usage: accum.usage.clone(),
                    });
                }
                None => unresolvable += accum.usage.records,
            }
        }
        (prepared, unresolvable)
    };
    if threads <= 1 || entries.len() < 2 {
        return prepare_part(&entries);
    }
    let chunk = entries.len().div_ceil(threads);
    let parts: Vec<(Vec<Prepared>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = entries
            .chunks(chunk)
            .map(|part| scope.spawn(|| prepare_part(part)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("prepare worker panicked"))
            .collect()
    });
    let mut prepared = Vec::with_capacity(entries.len());
    let mut unresolvable = 0u64;
    for (part, ur) in parts {
        prepared.extend(part);
        unresolvable += ur;
    }
    (prepared, unresolvable)
}

// ---- binary field codecs ----------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// `f64`s are stored as raw IEEE 754 bits: the values are exact integer
/// sums (or single-session weighted sums), and bit-preservation is what
/// makes a resumed fold byte-identical to an uninterrupted one.
fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over a field file.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| {
                StateError::Corrupt(format!(
                    "field file ends early: wanted {n} bytes at offset {}",
                    self.pos
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8_(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    fn u16_(&mut self) -> Result<u16, StateError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32_(&mut self) -> Result<u32, StateError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64_(&mut self) -> Result<u64, StateError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn f64_(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.u64_()?))
    }

    fn str_(&mut self) -> Result<String, StateError> {
        let len = self.u32_()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StateError::Corrupt("invalid UTF-8 in stored string".into()))
    }

    fn fp(&mut self) -> Result<Fingerprint, StateError> {
        Ok(Fingerprint(self.take(32)?.try_into().expect("len 32")))
    }
}

/// Decode a `chains.dat` field into a chain map.
fn decode_chains(
    bytes: &[u8],
    chains: &mut HashMap<ChainKey, ChainAccum>,
) -> Result<(), StateError> {
    let mut cur = Cur::new(bytes);
    while !cur.done() {
        let fp_count = cur.u32_()? as usize;
        let mut fps = Vec::with_capacity(fp_count);
        for _ in 0..fp_count {
            fps.push(cur.fp()?);
        }
        let records = cur.u64_()?;
        let connections = cur.f64_()?;
        let established = cur.f64_()?;
        let with_sni = cur.f64_()?;
        let mut ports = BTreeMap::new();
        for _ in 0..cur.u32_()? {
            let port = cur.u16_()?;
            let weight = cur.f64_()?;
            ports.insert(port, weight);
        }
        let mut client_ips = std::collections::HashSet::new();
        for _ in 0..cur.u32_()? {
            client_ips.insert(Ipv4Addr::from(cur.u32_()?));
        }
        let mut snis = BTreeSet::new();
        for _ in 0..cur.u32_()? {
            snis.insert(cur.str_()?);
        }
        let accum = ChainAccum {
            usage: UsageStats {
                connections,
                established,
                with_sni,
                ports,
                client_ips,
                records,
            },
            snis,
        };
        if chains.insert(ChainKey(fps), accum).is_some() {
            return Err(StateError::Corrupt("duplicate chain in chains.dat".into()));
        }
    }
    Ok(())
}

/// x509 flags byte: bit0 = basicConstraints present, bit1 = its CA
/// value, bit2 = pathLen present.
fn x509_flags(rec: &X509Record) -> u8 {
    let mut flags = 0u8;
    if let Some(ca) = rec.basic_constraints_ca {
        flags |= 1;
        if ca {
            flags |= 2;
        }
    }
    if rec.path_len.is_some() {
        flags |= 4;
    }
    flags
}

/// Encode a run of interned x509 rows (one append-only chunk).
fn encode_certs(certs: &[X509Record]) -> Vec<u8> {
    let mut out = Vec::new();
    for rec in certs {
        out.extend_from_slice(&rec.fingerprint.0);
        put_u64(&mut out, rec.ts.unix_secs());
        put_u64(&mut out, rec.cert_version);
        put_str(&mut out, &rec.serial);
        put_str(&mut out, &rec.subject);
        put_str(&mut out, &rec.issuer);
        put_u64(&mut out, rec.not_before.unix_secs());
        put_u64(&mut out, rec.not_after.unix_secs());
        out.push(x509_flags(rec));
        put_u64(&mut out, rec.path_len.unwrap_or(0));
        put_u32(&mut out, rec.san_dns.len() as u32);
        for san in &rec.san_dns {
            put_str(&mut out, san);
        }
    }
    out
}

/// Decode one cert chunk, appending to the state's interned table. Every
/// stored row was parse-vetted at intern time, so a parse failure here
/// is corruption, not data loss.
fn decode_certs(bytes: &[u8], state: &mut PipelineState) -> Result<(), StateError> {
    let mut cur = Cur::new(bytes);
    while !cur.done() {
        let fingerprint = cur.fp()?;
        let ts = Asn1Time::from_unix(cur.u64_()?);
        let cert_version = cur.u64_()?;
        let serial = cur.str_()?;
        let subject = cur.str_()?;
        let issuer = cur.str_()?;
        let not_before = Asn1Time::from_unix(cur.u64_()?);
        let not_after = Asn1Time::from_unix(cur.u64_()?);
        let flags = cur.u8_()?;
        let path_len_raw = cur.u64_()?;
        let san_count = cur.u32_()? as usize;
        let mut san_dns = Vec::with_capacity(san_count);
        for _ in 0..san_count {
            san_dns.push(cur.str_()?);
        }
        let rec = X509Record {
            ts,
            fingerprint,
            cert_version,
            serial,
            subject,
            issuer,
            not_before,
            not_after,
            basic_constraints_ca: (flags & 1 != 0).then_some(flags & 2 != 0),
            path_len: (flags & 4 != 0).then_some(path_len_raw),
            san_dns,
        };
        let cert = CertRecord::from_record(&rec).ok_or_else(|| {
            StateError::Corrupt(format!(
                "stored certificate {} no longer parses",
                rec.fingerprint
            ))
        })?;
        if state.cert_lookup.contains_key(&rec.fingerprint) {
            return Err(StateError::Corrupt(format!(
                "duplicate stored certificate {}",
                rec.fingerprint
            )));
        }
        state
            .cert_lookup
            .insert(rec.fingerprint, state.certs.len() as u32);
        state.certs.push(rec);
        state.parsed.push(Arc::new(cert));
    }
    Ok(())
}
