//! Pipeline-side observability hooks.
//!
//! A [`Pipeline`](super::Pipeline) optionally carries a metrics registry
//! and a progress reporter; every hook here is a no-op when they are
//! absent, so the instrumented code paths read the same either way and
//! the byte-identical-tables guarantee is trivially unaffected by
//! turning metrics on (a regression test pins that too).
//!
//! Determinism discipline: everything recorded through this module into
//! the registry is derived from thread-count-invariant state — record
//! totals (commutative integer sums), post-merge collection sizes, and
//! the deterministic chain set. Scheduling-dependent values (queue
//! depths, per-worker throughput) go only to the progress reporter,
//! which writes to stderr and never into an artifact.

use certchain_obs::{Progress, Registry, Span, StageTimer, TraceJournal};
use std::sync::Arc;

/// Optional observability wiring carried by a pipeline.
#[derive(Debug, Default, Clone)]
pub(crate) struct PipelineObs {
    /// Deterministic counters/gauges/histograms + stage timings.
    pub(crate) metrics: Option<Arc<Registry>>,
    /// Throttled stderr reporter (never feeds artifacts).
    pub(crate) progress: Option<Arc<Progress>>,
    /// Bounded trace journal (timing side only; never feeds artifacts).
    pub(crate) trace: Option<Arc<TraceJournal>>,
}

impl PipelineObs {
    /// Open a stage span (records wall time into the `timing` section on
    /// drop).
    pub(crate) fn stage(&self, name: &str) -> Option<StageTimer<'_>> {
        self.metrics.as_deref().map(|r| r.stage(name))
    }

    /// Open a root trace span in the journal, if tracing is wired.
    pub(crate) fn trace_span(&self, name: &str) -> Option<Span> {
        self.trace.as_ref().map(|j| j.span(name))
    }

    /// Add to a counter. Called with `n == 0` too, deliberately: the
    /// counter is still registered, so snapshot keys are stable whether
    /// or not events occurred.
    pub(crate) fn add(&self, name: &str, n: u64) {
        if let Some(r) = &self.metrics {
            r.counter(name).add(n);
        }
    }

    /// Set a gauge.
    pub(crate) fn set(&self, name: &str, v: u64) {
        if let Some(r) = &self.metrics {
            r.gauge(name).set(v);
        }
    }

    /// Forward a progress tick (rate-limited by the reporter).
    pub(crate) fn tick(&self, records: u64, queue_depth: usize, per_worker: &[u64]) {
        if let Some(p) = &self.progress {
            p.tick(records, queue_depth, per_worker);
        }
    }

    /// Emit the final progress line.
    pub(crate) fn finish_progress(&self, records: u64) {
        if let Some(p) = &self.progress {
            p.finish(records);
        }
    }
}
