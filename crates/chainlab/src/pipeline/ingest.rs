//! Stage 1 — ingest: fold the ssl.log record stream into per-chain
//! accumulators, chunk by chunk.
//!
//! The engine is generic over how records arrive: the batch path feeds it
//! `&SslRecord` borrows with per-record weights, the streaming path feeds
//! it owned records at weight 1.0. Either way only [`CHUNK`] records are
//! in flight at once, so peak memory is O(distinct chains), not
//! O(connections).
//!
//! Parallelism is *partition-dispatch*: the main thread reads one chunk,
//! splits it by [`shard_of`] into per-shard batches, and hands each batch
//! to a persistent worker over a bounded channel. Each chain belongs to
//! exactly one shard and batches arrive in stream order, so every chain's
//! f64 accumulation order equals the sequential fold — the root of the
//! byte-identical-across-thread-counts guarantee. (The previous design
//! instead had *every* worker rescan the whole record slice and keep only
//! its shard's records — O(records × threads) total work, which made the
//! pipeline scale *negatively* with thread count.)

use super::categorize::{self, Prepared};
use super::{Pipeline, SslItem};
use crate::model::{CertRecord, ChainKey};
use crate::usage::UsageStats;
use certchain_netsim::SslRecord;
use certchain_x509::Fingerprint;
use std::collections::{BTreeSet, HashMap};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

/// Records ingested per dispatch round. Large enough to amortize channel
/// and scheduling overhead, small enough that in-flight memory stays
/// negligible next to the per-chain accumulators.
pub(crate) const CHUNK: usize = 8192;

/// Bounded depth of each worker's batch queue: the main thread stalls
/// instead of buffering unboundedly when workers fall behind.
const CHANNEL_DEPTH: usize = 4;

/// Per-chain connection accumulator.
#[derive(Default)]
pub(crate) struct ChainAccum {
    pub(crate) usage: UsageStats,
    pub(crate) snis: BTreeSet<String>,
}

/// Stable shard id for a chain: FNV-1a over the fingerprint bytes. Must
/// not vary across runs or platforms — shard membership decides which
/// worker folds a chain's connection stream, and determinism relies on
/// every chain living in exactly one shard.
pub(crate) fn shard_of(fps: &[Fingerprint], shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for fp in fps {
        for &b in &fp.0 {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (h % shards as u64) as usize
}

/// Fold one resolvable record into its chain's accumulator.
fn fold(accums: &mut HashMap<ChainKey, ChainAccum>, rec: &SslRecord, weight: f64) {
    // Probe with the borrowed fingerprint slice first; a `ChainKey` is
    // only allocated the first time a chain is seen.
    if !accums.contains_key(rec.cert_chain_fps.as_slice()) {
        accums.insert(ChainKey(rec.cert_chain_fps.clone()), ChainAccum::default());
    }
    let entry = accums
        .get_mut(rec.cert_chain_fps.as_slice())
        .expect("present or just inserted");
    entry.usage.add(
        rec.established,
        rec.server_name.is_some(),
        rec.resp_p,
        rec.orig_h,
        weight,
    );
    if let Some(sni) = &rec.server_name {
        entry.snis.insert(sni.clone());
    }
}

/// Fold the record stream into classified [`Prepared`] chains (unsorted).
/// Returns `(prepared, no_chain, unresolvable)`.
pub(crate) fn accumulate<B, I>(
    pipe: &Pipeline<'_>,
    records: I,
    cert_index: &HashMap<Fingerprint, Arc<CertRecord>>,
    threads: usize,
) -> (Vec<Prepared>, u64, u64)
where
    B: SslItem,
    I: Iterator<Item = (B, f64)>,
{
    if threads <= 1 {
        return sequential(pipe, records, cert_index);
    }
    dispatch(pipe, records, cert_index, threads)
}

/// The single-threaded fold — also the semantic reference the parallel
/// path must reproduce byte-for-byte.
fn sequential<B, I>(
    pipe: &Pipeline<'_>,
    records: I,
    cert_index: &HashMap<Fingerprint, Arc<CertRecord>>,
) -> (Vec<Prepared>, u64, u64)
where
    B: SslItem,
    I: Iterator<Item = (B, f64)>,
{
    let mut accums: HashMap<ChainKey, ChainAccum> = HashMap::new();
    let mut no_chain = 0u64;
    let mut unresolvable = 0u64;
    for (item, weight) in records {
        let rec = item.borrow();
        if rec.cert_chain_fps.is_empty() {
            no_chain += 1;
            continue;
        }
        if !rec
            .cert_chain_fps
            .iter()
            .all(|fp| cert_index.contains_key(fp))
        {
            unresolvable += 1;
            continue;
        }
        fold(&mut accums, rec, weight);
    }
    (
        categorize::prepare(pipe, accums, cert_index),
        no_chain,
        unresolvable,
    )
}

/// The parallel fold: one persistent worker per shard, fed per-shard
/// batches by the main thread, which performs the only scan of the record
/// stream. Counters are sums (order-insensitive); per-chain accumulation
/// order is the batch arrival order, i.e. global stream order.
fn dispatch<B, I>(
    pipe: &Pipeline<'_>,
    mut records: I,
    cert_index: &HashMap<Fingerprint, Arc<CertRecord>>,
    threads: usize,
) -> (Vec<Prepared>, u64, u64)
where
    B: SslItem,
    I: Iterator<Item = (B, f64)>,
{
    let shards = threads;
    let mut no_chain = 0u64;
    let results: Vec<(Vec<Prepared>, u64)> = std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = sync_channel::<Vec<(B, f64)>>(CHANNEL_DEPTH);
            senders.push(tx);
            handles.push(scope.spawn(move || {
                let mut accums: HashMap<ChainKey, ChainAccum> = HashMap::new();
                let mut unresolvable = 0u64;
                while let Ok(batch) = rx.recv() {
                    for (item, weight) in batch {
                        let rec = item.borrow();
                        if !rec
                            .cert_chain_fps
                            .iter()
                            .all(|fp| cert_index.contains_key(fp))
                        {
                            unresolvable += 1;
                            continue;
                        }
                        fold(&mut accums, rec, weight);
                    }
                }
                (categorize::prepare(pipe, accums, cert_index), unresolvable)
            }));
        }
        // The only scan: read a chunk, partition it, dispatch it.
        let mut batches: Vec<Vec<(B, f64)>> = (0..shards).map(|_| Vec::new()).collect();
        loop {
            let mut saw_any = false;
            for (item, weight) in records.by_ref().take(CHUNK) {
                saw_any = true;
                if item.borrow().cert_chain_fps.is_empty() {
                    no_chain += 1;
                    continue;
                }
                let shard = shard_of(&item.borrow().cert_chain_fps, shards);
                batches[shard].push((item, weight));
            }
            for (shard, batch) in batches.iter_mut().enumerate() {
                if !batch.is_empty() {
                    senders[shard]
                        .send(std::mem::take(batch))
                        .expect("accumulation worker hung up early");
                }
            }
            if !saw_any {
                break;
            }
        }
        drop(senders);
        handles
            .into_iter()
            .map(|h| h.join().expect("accumulation worker panicked"))
            .collect()
    });
    let mut prepared = Vec::with_capacity(results.iter().map(|(p, _)| p.len()).sum());
    let mut unresolvable = 0u64;
    for (part, ur) in results {
        prepared.extend(part);
        unresolvable += ur;
    }
    (prepared, no_chain, unresolvable)
}
