//! Stage 1 — ingest: fold the ssl.log record stream into per-chain
//! accumulators, chunk by chunk.
//!
//! The engine is generic over how records arrive: the batch path feeds it
//! `&SslRecord` borrows with per-record weights, the streaming path feeds
//! it owned records at weight 1.0. Either way only [`CHUNK`] records are
//! in flight at once, so peak memory is O(distinct chains), not
//! O(connections).
//!
//! Parallelism is *partition-dispatch*: the main thread reads one chunk,
//! splits it by [`shard_of`] into per-shard batches, and hands each batch
//! to a persistent worker over a bounded channel. Each chain belongs to
//! exactly one shard and batches arrive in stream order, so every chain's
//! f64 accumulation order equals the sequential fold — the root of the
//! byte-identical-across-thread-counts guarantee. (The previous design
//! instead had *every* worker rescan the whole record slice and keep only
//! its shard's records — O(records × threads) total work, which made the
//! pipeline scale *negatively* with thread count.)

use super::{Pipeline, SslItem};
use crate::filtercat::CategoryOracle;
use crate::model::ChainKey;
use crate::usage::UsageStats;
use certchain_netsim::SslRecord;
use certchain_x509::Fingerprint;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::mpsc::sync_channel;

/// Records ingested per dispatch round. Large enough to amortize channel
/// and scheduling overhead, small enough that in-flight memory stays
/// negligible next to the per-chain accumulators.
pub(crate) const CHUNK: usize = 8192;

/// Bounded depth of each worker's batch queue: the main thread stalls
/// instead of buffering unboundedly when workers fall behind.
const CHANNEL_DEPTH: usize = 4;

/// Per-chain connection accumulator.
#[derive(Default, Clone)]
pub(crate) struct ChainAccum {
    pub(crate) usage: UsageStats,
    pub(crate) snis: BTreeSet<String>,
}

impl ChainAccum {
    /// Merge another accumulator for the same chain. Every field is a
    /// commutative aggregate (integer-valued f64 sums at unit weight,
    /// set unions), so merging per-worker partials in any fixed order
    /// reproduces the sequential fold — the row-range-sharded columnar
    /// path relies on this.
    pub(crate) fn merge(&mut self, other: ChainAccum) {
        self.usage.merge(&other.usage);
        self.snis.extend(other.snis);
    }
}

/// Record accounting produced by one accumulation run. Every field is a
/// commutative integer sum over the record stream, so the values are
/// identical for every thread count.
///
/// The fold core itself only ever moves `records` and `no_chain`:
/// resolvability against the certificate index is deferred to finalize
/// (chains referencing unknown fingerprints are folded like any other
/// and excluded there), which is what lets rotated x509/ssl files
/// arrive and fold in any interleaving. The columnar path still fills
/// `unresolvable` during its fold, where the fingerprint table makes
/// the check free.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct IngestCounts {
    /// Total ssl.log records consumed (including skipped ones).
    pub(crate) records: u64,
    /// Records with an empty certificate chain (TLS 1.3 connections).
    pub(crate) no_chain: u64,
    /// Records referencing fingerprints absent from the x509 index.
    pub(crate) unresolvable: u64,
}

/// Stable shard id for a chain: FNV-1a over the fingerprint bytes. Must
/// not vary across runs or platforms — shard membership decides which
/// worker folds a chain's connection stream, and determinism relies on
/// every chain living in exactly one shard.
pub(crate) fn shard_of(fps: &[Fingerprint], shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for fp in fps {
        for &b in &fp.0 {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (h % shards as u64) as usize
}

/// Fold one resolvable record into its chain's accumulator.
fn fold(accums: &mut HashMap<ChainKey, ChainAccum>, rec: &SslRecord, weight: f64) {
    // Probe with the borrowed fingerprint slice first; a `ChainKey` is
    // only allocated the first time a chain is seen.
    if !accums.contains_key(rec.cert_chain_fps.as_slice()) {
        accums.insert(ChainKey(rec.cert_chain_fps.clone()), ChainAccum::default());
    }
    let entry = accums
        .get_mut(rec.cert_chain_fps.as_slice())
        .expect("present or just inserted");
    entry.usage.add(
        rec.established,
        rec.server_name.is_some(),
        rec.resp_p,
        rec.orig_h,
        weight,
    );
    if let Some(sni) = &rec.server_name {
        entry.snis.insert(sni.clone());
    }
}

/// Fold the record stream into per-chain accumulators (no certificate
/// resolution — see [`IngestCounts`]) plus the run's counts. The
/// returned map is one fold's worth of accumulation; callers merge it
/// into longer-lived state ([`super::state::PipelineState`]) or hand it
/// straight to finalize.
///
/// `oracle` is the resolved category predicate when the row filter asks
/// for one (`None` otherwise); like the port/SNI tests it runs before
/// any counter moves, so category-rejected records are invisible.
pub(crate) fn accumulate<B, I>(
    pipe: &Pipeline<'_>,
    records: I,
    threads: usize,
    oracle: Option<&CategoryOracle>,
) -> (HashMap<ChainKey, ChainAccum>, IngestCounts)
where
    B: SslItem,
    I: Iterator<Item = (B, f64)>,
{
    if threads <= 1 {
        return sequential(pipe, records, oracle);
    }
    dispatch(pipe, records, threads, oracle)
}

/// The single-threaded fold — also the semantic reference the parallel
/// path must reproduce byte-for-byte.
fn sequential<B, I>(
    pipe: &Pipeline<'_>,
    records: I,
    oracle: Option<&CategoryOracle>,
) -> (HashMap<ChainKey, ChainAccum>, IngestCounts)
where
    B: SslItem,
    I: Iterator<Item = (B, f64)>,
{
    let mut accums: HashMap<ChainKey, ChainAccum> = HashMap::new();
    let mut counts = IngestCounts::default();
    for (item, weight) in records {
        let rec = item.borrow();
        // The filter runs before any accounting: rejected records are
        // invisible, which is what makes whole-segment zone-map and
        // category-digest skipping in the columnar path equivalent to
        // this per-record test.
        if !pipe
            .options
            .filter
            .admits(rec.resp_p, rec.server_name.as_deref())
        {
            continue;
        }
        if let Some(oracle) = oracle {
            if !oracle.admits(&rec.cert_chain_fps) {
                continue;
            }
        }
        counts.records += 1;
        if counts.records % CHUNK as u64 == 0 {
            pipe.obs.tick(counts.records, 0, &[]);
        }
        if rec.cert_chain_fps.is_empty() {
            counts.no_chain += 1;
            continue;
        }
        fold(&mut accums, rec, weight);
    }
    pipe.obs.finish_progress(counts.records);
    (accums, counts)
}

/// The parallel fold: one persistent worker per shard, fed per-shard
/// batches by the main thread, which performs the only scan of the record
/// stream. Counters are sums (order-insensitive); per-chain accumulation
/// order is the batch arrival order, i.e. global stream order.
///
/// Progress instrumentation rides the dispatch loop: each shard carries
/// an in-flight batch counter (incremented on send, decremented by the
/// worker) and a processed-record tally, giving the reporter queue depth
/// and per-worker throughput without any extra synchronization on the
/// fold itself. Those values are scheduling-dependent and go only to
/// stderr — the deterministic counters come from [`IngestCounts`].
fn dispatch<B, I>(
    pipe: &Pipeline<'_>,
    mut records: I,
    threads: usize,
    oracle: Option<&CategoryOracle>,
) -> (HashMap<ChainKey, ChainAccum>, IngestCounts)
where
    B: SslItem,
    I: Iterator<Item = (B, f64)>,
{
    let shards = threads;
    let tspan = pipe.obs.trace_span("pipeline.dispatch");
    let mut counts = IngestCounts::default();
    let in_flight: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
    let worker_records: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
    let results: Vec<HashMap<ChainKey, ChainAccum>> = std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = sync_channel::<Vec<(B, f64)>>(CHANNEL_DEPTH);
            senders.push(tx);
            let in_flight = &in_flight[shard];
            let processed = &worker_records[shard];
            handles.push(scope.spawn(move || {
                let mut accums: HashMap<ChainKey, ChainAccum> = HashMap::new();
                while let Ok(batch) = rx.recv() {
                    processed.fetch_add(batch.len() as u64, Relaxed);
                    for (item, weight) in batch {
                        fold(&mut accums, item.borrow(), weight);
                    }
                    in_flight.fetch_sub(1, Relaxed);
                }
                accums
            }));
        }
        // The only scan: read a chunk, partition it, dispatch it.
        let mut batches: Vec<Vec<(B, f64)>> = (0..shards).map(|_| Vec::new()).collect();
        loop {
            let mut saw_any = false;
            for (item, weight) in records.by_ref().take(CHUNK) {
                saw_any = true;
                {
                    // Same invisibility rule as the sequential reference:
                    // reject before any counter moves.
                    let rec = item.borrow();
                    if !pipe
                        .options
                        .filter
                        .admits(rec.resp_p, rec.server_name.as_deref())
                    {
                        continue;
                    }
                    if let Some(oracle) = oracle {
                        if !oracle.admits(&rec.cert_chain_fps) {
                            continue;
                        }
                    }
                }
                counts.records += 1;
                if item.borrow().cert_chain_fps.is_empty() {
                    counts.no_chain += 1;
                    continue;
                }
                let shard = shard_of(&item.borrow().cert_chain_fps, shards);
                batches[shard].push((item, weight));
            }
            for (shard, batch) in batches.iter_mut().enumerate() {
                if !batch.is_empty() {
                    in_flight[shard].fetch_add(1, Relaxed);
                    senders[shard]
                        .send(std::mem::take(batch))
                        .expect("accumulation worker hung up early");
                }
            }
            if pipe.obs.progress.is_some() {
                let depth: usize = in_flight.iter().map(|d| d.load(Relaxed)).sum();
                let per_worker: Vec<u64> = worker_records.iter().map(|w| w.load(Relaxed)).collect();
                pipe.obs.tick(counts.records, depth, &per_worker);
            }
            if !saw_any {
                break;
            }
        }
        drop(senders);
        handles
            .into_iter()
            .map(|h| h.join().expect("accumulation worker panicked"))
            .collect()
    });
    pipe.obs.finish_progress(counts.records);
    if let Some(t) = &tspan {
        t.attr("shards", shards.to_string());
        t.attr("records", counts.records.to_string());
    }
    drop(tspan);
    // Shards partition the chain space, so the per-worker maps are
    // disjoint and this is pure collection, not merging.
    let mut accums = HashMap::with_capacity(results.iter().map(HashMap::len).sum());
    for part in results {
        // srclint: commutative -- disjoint per-shard maps collected into a keyed map; insertion order is invisible
        accums.extend(part);
    }
    (accums, counts)
}
