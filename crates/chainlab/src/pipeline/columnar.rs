//! The columnar analyze path: fold straight off a mapped
//! [`DatasetReader`], no parse stage, workers sharded by row ranges.
//!
//! The TSV streaming path pays for a text parse of every row and funnels
//! the whole stream through one dispatch thread (the partition-dispatch
//! scan in [`super::ingest`]), because a chain's connections must reach
//! exactly one worker for the f64 fold order to match the sequential
//! reference. Columnar input removes both costs: fields decode with
//! offset arithmetic off the mapped columns, and workers take contiguous
//! *row ranges* instead of chain shards. Range sharding means one chain's
//! connections can land in several workers — which is sound here because
//! every on-disk row folds at weight 1.0, so all the f64 aggregates are
//! exact small integers and merging per-worker partials (in worker-index
//! order) is bit-identical to the sequential fold. The batch path's
//! fractional per-record weights are exactly why *it* cannot shard by
//! range and the columnar path can.
//!
//! Both store versions are served. A v1 store folds row by row off the
//! zero-copy [`SslColumns`] view. A v2 store runs the vectorized fold:
//! workers claim whole *segments*, consult each segment's zone map to
//! skip row bands that cannot match the active [`super::RowFilter`]
//! (filter predicates are resolved to dictionary codes once, so the
//! per-row test is two integer compares), decode only the five columns
//! the fold touches into reused scratch buffers, and key the per-chain
//! accumulators by fingerprint-*code* sequences — fingerprints and SNI
//! strings are resolved once per distinct chain at the end, not once per
//! row. Zone-map skip decisions are per-segment properties of the data,
//! so they are identical for every thread count, which keeps the
//! `colstore.segments_*` metrics deterministic.

use super::categorize::{self, Prepared};
use super::enrich::CertIndex;
use super::ingest::{ChainAccum, IngestCounts};
use super::{resolve_threads, Analysis, Pipeline, RowFilter};
use crate::filtercat::{chain_category, CategoryOracle, CertCat};
use crate::model::{CertRecord, ChainKey};
use crate::usage::UsageStats;
use certchain_colstore::{
    CategoryDigest, CategorySet, ColError, ColResult, DatasetReader, SslColumns, SslSegments,
    X509Columns, X509Segments, NONE_IDX, VERSION_V1,
};
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

impl Pipeline<'_> {
    /// Run the full analysis over an open columnar store (either format
    /// version). For a store converted from (or generated alongside) a
    /// TSV dataset, the result is byte-identical to
    /// [`Pipeline::analyze_stream`] over the Zeek readers, for every
    /// thread count and for either store version.
    ///
    /// The first corrupt-data error aborts the analysis and is returned
    /// as-is (truncation is already caught by [`DatasetReader::open`]).
    pub fn analyze_colstore(&self, reader: &DatasetReader) -> Result<Analysis, ColError> {
        let threads = resolve_threads(self.options.threads);
        self.obs.set("colstore.bytes_mapped", reader.bytes_mapped());
        let filter = ColFilter::resolve(reader, &self.options.filter)?;
        if reader.format_version() == VERSION_V1 {
            self.analyze_colstore_v1(reader, &filter, threads)
        } else {
            self.analyze_colstore_v2(reader, &filter, threads)
        }
    }

    /// The v1 path: per-row fold off the zero-copy column views.
    fn analyze_colstore_v1(
        &self,
        reader: &DatasetReader,
        filter: &ColFilter,
        threads: usize,
    ) -> Result<Analysis, ColError> {
        // v1 has no zone maps: every row is scanned even under a filter.
        self.obs
            .add("colstore.rows_read", reader.ssl_rows() + reader.x509_rows());
        let (cert_index, unparseable) = {
            let _span = self.obs.stage("enrich");
            enrich_columns(&reader.x509()?)?
        };
        self.record_enrich(reader.x509_rows(), unparseable, cert_index.len());
        // v1 also has no per-fp-code tables, so the category predicate
        // runs through the same oracle the TSV path uses.
        let oracle = filter.categories.map(|set| {
            CategoryOracle::new(
                set,
                cert_index.iter().map(|(fp, cert)| (*fp, &**cert)),
                self.trust,
            )
        });
        let (prepared, counts) = {
            let _span = self.obs.stage("ingest");
            ingest_columns(
                self,
                &reader.ssl()?,
                filter,
                oracle.as_ref(),
                &cert_index,
                threads,
            )?
        };
        Ok(self.finish(prepared, counts, threads))
    }

    /// The v2 path: segment-at-a-time decode, zone-map skipping, and the
    /// code-keyed vectorized fold.
    fn analyze_colstore_v2(
        &self,
        reader: &DatasetReader,
        filter: &ColFilter,
        threads: usize,
    ) -> Result<Analysis, ColError> {
        let x509 = reader.x509_segments()?;
        let (cert_index, unparseable, x509_tally) = {
            let _span = self.obs.stage("enrich");
            enrich_segments(&x509)?
        };
        self.record_enrich(reader.x509_rows(), unparseable, cert_index.len());
        let ssl = reader.ssl_segments()?;
        let (prepared, counts, ssl_tally) = {
            let _span = self.obs.stage("ingest");
            ingest_segments(
                self,
                &ssl,
                filter,
                reader.category_digests(),
                &cert_index,
                threads,
            )?
        };
        // Scan accounting. Skip decisions are per-segment data
        // properties, so every value here is thread-count-invariant;
        // `rows_read` counts rows actually decoded (== the table totals
        // when no filter is active, since nothing is skipped then).
        let tally = x509_tally.plus(ssl_tally);
        self.obs.add("colstore.rows_read", tally.rows);
        self.obs.add("colstore.segments_read", tally.read);
        self.obs.add("colstore.segments_skipped", tally.skipped);
        self.obs
            .add("colstore.segments_skipped_category", tally.skipped_category);
        self.obs.add("colstore.bytes_decoded", tally.bytes);
        Ok(self.finish(prepared, counts, threads))
    }
}

/// A [`RowFilter`] resolved against one store's dictionary, so the
/// per-row test compares integers, never strings.
struct ColFilter {
    port: Option<u16>,
    /// `None` — no SNI predicate. `Some(None)` — the predicate string is
    /// not in the store's dictionary, so no row can match. `Some(Some(c))`
    /// — match rows whose SNI dictionary code is exactly `c`.
    sni: Option<Option<u32>>,
    /// The structural-category predicate. Evaluated per row through a
    /// per-fingerprint-code [`CertCat`] table (v2) or a
    /// [`CategoryOracle`] (v1), and per segment through the manifest's
    /// category digests when the store carries them.
    categories: Option<CategorySet>,
}

impl ColFilter {
    fn resolve(reader: &DatasetReader, filter: &RowFilter) -> ColResult<ColFilter> {
        let sni = match &filter.sni {
            Some(s) => Some(reader.dict_lookup(s)?),
            None => None,
        };
        Ok(ColFilter {
            port: filter.port,
            sni,
            categories: filter.categories,
        })
    }

    /// The per-row test, on raw column values.
    fn admits(&self, resp_p: u16, sni_code: u32) -> bool {
        if let Some(p) = self.port {
            if resp_p != p {
                return false;
            }
        }
        match self.sni {
            None => true,
            Some(None) => false,
            Some(Some(code)) => sni_code == code,
        }
    }

    /// Whether any row of an ssl segment could pass, judged from zone
    /// maps alone. Conservative in exactly one direction: `true` may be
    /// wrong (rows are then tested individually), `false` never is.
    fn may_match_segment(&self, ssl: &SslSegments<'_>, seg: usize) -> bool {
        if let Some(p) = self.port {
            if !ssl.resp_p.meta(seg).zone.contains(u64::from(p)) {
                return false;
            }
        }
        match self.sni {
            None => true,
            Some(None) => false,
            Some(Some(code)) => ssl.sni.meta(seg).zone.may_contain_code(code),
        }
    }
}

/// Deterministic scan accounting for one segmented analysis.
#[derive(Debug, Default, Clone, Copy)]
struct SegTally {
    /// Segments whose columns were decoded.
    read: u64,
    /// Segments skipped entirely (zone maps or category digests);
    /// `read + skipped` always equals the segment total scanned.
    skipped: u64,
    /// The subset of `skipped` vetoed by a category digest.
    skipped_category: u64,
    /// Rows in the decoded segments.
    rows: u64,
    /// Encoded payload bytes decoded.
    bytes: u64,
}

impl SegTally {
    fn plus(self, other: SegTally) -> SegTally {
        SegTally {
            read: self.read + other.read,
            skipped: self.skipped + other.skipped,
            skipped_category: self.skipped_category + other.skipped_category,
            rows: self.rows + other.rows,
            bytes: self.bytes + other.bytes,
        }
    }
}

/// Enrich off the **v1** x509 columns: first occurrence of a fingerprint
/// wins, and a duplicate is skipped on the 4-byte fingerprint index
/// alone — the row's strings are never resolved. Returns the interned
/// index and the unparseable-row tally.
fn enrich_columns(cols: &X509Columns<'_>) -> ColResult<(CertIndex, u64)> {
    let mut cert_index: CertIndex = HashMap::new();
    let mut unparseable = 0u64;
    for row in 0..cols.rows {
        let fp = cols.fingerprint(row)?;
        if cert_index.contains_key(&fp) {
            continue;
        }
        let rec = cols.record(row)?;
        match CertRecord::from_record(&rec) {
            Some(cert) => {
                cert_index.insert(fp, std::sync::Arc::new(cert));
            }
            None => unparseable += 1,
        }
    }
    Ok((cert_index, unparseable))
}

/// Enrich off the **v2** x509 segments: decode a segment's columns once,
/// then intern each row whose fingerprint *code* is unseen. An interned
/// code is tracked in a plain bitmap, so duplicate rows — the common
/// case, since every reappearance of a certificate logs a row — cost one
/// vector load and no string resolution. A row that fails to parse is
/// *not* marked seen, so a later duplicate retries it, matching the v1
/// and streaming enrich semantics exactly.
fn enrich_segments(cols: &X509Segments<'_>) -> ColResult<(CertIndex, u64, SegTally)> {
    let mut cert_index: CertIndex = HashMap::new();
    let mut unparseable = 0u64;
    let mut tally = SegTally::default();
    let mut interned = vec![false; cols.fps.len() / 32];
    let (mut ts, mut fp, mut version) = (Vec::new(), Vec::new(), Vec::new());
    let (mut serial, mut subject, mut issuer) = (Vec::new(), Vec::new(), Vec::new());
    let (mut not_before, mut not_after) = (Vec::new(), Vec::new());
    let (mut flags, mut path_len, mut san_idx) = (Vec::new(), Vec::new(), Vec::new());
    for seg in 0..cols.segment_count() {
        let columns = [
            (&cols.ts, &mut ts),
            (&cols.fp, &mut fp),
            (&cols.version, &mut version),
            (&cols.serial, &mut serial),
            (&cols.subject, &mut subject),
            (&cols.issuer, &mut issuer),
            (&cols.not_before, &mut not_before),
            (&cols.not_after, &mut not_after),
            (&cols.flags, &mut flags),
            (&cols.path_len, &mut path_len),
            (&cols.san_idx, &mut san_idx),
        ];
        for (col, buf) in columns {
            col.decode_into(seg, buf)?;
            tally.bytes += col.meta(seg).bytes;
        }
        let (row_start, rows) = cols.ts.row_range(seg);
        tally.read += 1;
        tally.rows += rows;
        let san_base = cols.san_start(seg);
        for i in 0..rows as usize {
            let row = row_start + i as u64;
            let code = fp[i] as u32;
            let slot = interned.get_mut(code as usize).ok_or_else(|| {
                ColError::Corrupt(format!(
                    "x509.fp row {row}: fingerprint index {code} out of range"
                ))
            })?;
            if *slot {
                continue;
            }
            let san_from = if i == 0 { san_base } else { san_idx[i - 1] };
            let san_codes = var_codes(cols.san_dat, san_from, san_idx[i], "x509.san", row)?;
            let mut san_dns = Vec::with_capacity(san_codes.len() / 4);
            for entry in san_codes.chunks_exact(4) {
                let c = u32::from_le_bytes(entry.try_into().expect("4-byte slice"));
                san_dns.push(cols.dict.get(c)?.to_string());
            }
            let fl = flags[i] as u8;
            let rec = certchain_netsim::X509Record {
                ts: certchain_asn1::Asn1Time::from_unix(ts[i]),
                fingerprint: cols.fp(code)?,
                cert_version: version[i],
                serial: cols.dict.get(serial[i] as u32)?.to_string(),
                subject: cols.dict.get(subject[i] as u32)?.to_string(),
                issuer: cols.dict.get(issuer[i] as u32)?.to_string(),
                not_before: certchain_asn1::Asn1Time::from_unix(not_before[i]),
                not_after: certchain_asn1::Asn1Time::from_unix(not_after[i]),
                basic_constraints_ca: (fl & certchain_colstore::write::FLAG_BC_PRESENT != 0)
                    .then_some(fl & certchain_colstore::write::FLAG_BC_CA != 0),
                path_len: (fl & certchain_colstore::write::FLAG_PATH_LEN != 0).then(|| path_len[i]),
                san_dns,
            };
            match CertRecord::from_record(&rec) {
                Some(cert) => {
                    cert_index.insert(rec.fingerprint, std::sync::Arc::new(cert));
                    *slot = true;
                }
                None => unparseable += 1,
            }
        }
    }
    Ok((cert_index, unparseable, tally))
}

/// Bounds-check a decoded var-length `start..end` offset pair and return
/// the slice; also enforces whole-number-of-u32-entries.
fn var_codes<'a>(dat: &'a [u8], start: u64, end: u64, what: &str, row: u64) -> ColResult<&'a [u8]> {
    if start > end || end > dat.len() as u64 {
        return Err(ColError::Corrupt(format!(
            "{what} row {row}: offsets {start}..{end} out of bounds (data length {})",
            dat.len()
        )));
    }
    let bytes = &dat[start as usize..end as usize];
    if bytes.len() % 4 != 0 {
        return Err(ColError::Corrupt(format!(
            "{what} row {row}: {} bytes is not a whole number of entries",
            bytes.len()
        )));
    }
    Ok(bytes)
}

/// Fold rows `lo..hi` of a **v1** table into per-chain accumulators.
/// This is the one body both the sequential and the range-sharded
/// parallel v1 path run.
fn fold_range(
    cols: &SslColumns<'_>,
    lo: u64,
    hi: u64,
    filter: &ColFilter,
    oracle: Option<&CategoryOracle>,
    cert_index: &CertIndex,
) -> ColResult<(HashMap<ChainKey, ChainAccum>, IngestCounts)> {
    let mut accums: HashMap<ChainKey, ChainAccum> = HashMap::new();
    let mut counts = IngestCounts::default();
    let mut fps = Vec::new();
    for row in lo..hi {
        if !filter.admits(cols.resp_p(row), cols.sni_code(row)) {
            continue;
        }
        cols.chain_fps_into(row, &mut fps)?;
        // Same invisibility rule as the streaming reference: a
        // category-rejected row moves no counter, not even `records`.
        if let Some(oracle) = oracle {
            if !oracle.admits(&fps) {
                continue;
            }
        }
        counts.records += 1;
        if fps.is_empty() {
            counts.no_chain += 1;
            continue;
        }
        if !fps.iter().all(|fp| cert_index.contains_key(fp)) {
            counts.unresolvable += 1;
            continue;
        }
        // Probe with the borrowed slice; allocate a key only on first
        // sight of a chain (same discipline as the streaming fold).
        if !accums.contains_key(fps.as_slice()) {
            accums.insert(ChainKey(fps.clone()), ChainAccum::default());
        }
        let entry = accums
            .get_mut(fps.as_slice())
            .expect("present or just inserted");
        let sni = cols.sni(row)?;
        entry.usage.add(
            cols.established(row),
            sni.is_some(),
            cols.resp_p(row),
            cols.orig_h(row),
            1.0,
        );
        if let Some(sni) = sni {
            entry.snis.insert(sni.to_string());
        }
    }
    Ok((accums, counts))
}

/// Ingest a **v1** ssl table: contiguous row ranges per worker, partials
/// merged in worker-index order, then one classification pass.
fn ingest_columns(
    pipe: &Pipeline<'_>,
    cols: &SslColumns<'_>,
    filter: &ColFilter,
    oracle: Option<&CategoryOracle>,
    cert_index: &CertIndex,
    threads: usize,
) -> ColResult<(Vec<Prepared>, IngestCounts)> {
    let rows = cols.rows;
    let (accums, counts) = if threads <= 1 || rows < 2 {
        fold_range(cols, 0, rows, filter, oracle, cert_index)?
    } else {
        let per = rows.div_ceil(threads as u64);
        let parts: Vec<ColResult<_>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads as u64)
                .map(|w| {
                    let lo = (w * per).min(rows);
                    let hi = ((w + 1) * per).min(rows);
                    scope.spawn(move || fold_range(cols, lo, hi, filter, oracle, cert_index))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("columnar ingest worker panicked"))
                .collect()
        });
        let mut merged: HashMap<ChainKey, ChainAccum> = HashMap::new();
        let mut counts = IngestCounts::default();
        for part in parts {
            let (accums, c) = part?;
            counts.records += c.records;
            counts.no_chain += c.no_chain;
            counts.unresolvable += c.unresolvable;
            // srclint: commutative -- per-chain merge into a keyed map; ChainAccum::merge is commutative at unit weight, so worker-map iteration order is invisible
            for (key, accum) in accums {
                match merged.get_mut(&key) {
                    Some(existing) => existing.merge(accum),
                    None => {
                        merged.insert(key, accum);
                    }
                }
            }
        }
        (merged, counts)
    };
    pipe.obs.finish_progress(counts.records);
    Ok((categorize::prepare(pipe, accums, cert_index), counts))
}

/// Per-chain accumulator keyed by fingerprint-*code* sequence. Identical
/// aggregates to [`ChainAccum`], but nothing is resolved to strings or
/// 32-byte fingerprints during the fold — codes are rekeyed once per
/// distinct chain afterwards.
#[derive(Default)]
struct CodeAccum {
    usage: UsageStats,
    sni_codes: BTreeSet<u32>,
}

impl CodeAccum {
    /// Commutative merge, same argument as [`ChainAccum::merge`].
    fn merge(&mut self, other: CodeAccum) {
        self.usage.merge(&other.usage);
        self.sni_codes.extend(other.sni_codes);
    }
}

/// Fold segments `seg_lo..seg_hi` of a **v2** ssl table. Category
/// digests and zone maps veto whole segments first; surviving segments
/// decode only the five columns the fold touches, into scratch buffers
/// reused across segments.
///
/// `cats` maps every fingerprint code to its [`CertCat`] (with
/// `Unresolved` doubling as the resolvability bit); `digests` is the
/// manifest's per-segment category digest array when the store carries
/// one. A digest veto is sound because the digest was computed by the
/// same [`chain_category`] fold over the same complete certificate
/// table at write time, and rejected rows are invisible to every
/// counter — skipping the segment is exactly equivalent to testing each
/// of its rows.
fn fold_segments(
    ssl: &SslSegments<'_>,
    seg_lo: usize,
    seg_hi: usize,
    filter: &ColFilter,
    digests: Option<&[CategoryDigest]>,
    cats: &[CertCat],
) -> ColResult<(HashMap<Vec<u32>, CodeAccum>, IngestCounts, SegTally)> {
    let mut accums: HashMap<Vec<u32>, CodeAccum> = HashMap::new();
    let mut counts = IngestCounts::default();
    let mut tally = SegTally::default();
    let (mut resp_p, mut established) = (Vec::new(), Vec::new());
    let (mut sni, mut orig_h, mut chain_idx) = (Vec::new(), Vec::new(), Vec::new());
    let mut codes: Vec<u32> = Vec::new();
    for seg in seg_lo..seg_hi {
        if let (Some(set), Some(digests)) = (filter.categories, digests) {
            // Digest-less segments (None overall) are never skipped.
            if digests.get(seg).is_some_and(|d| !d.intersects(set)) {
                tally.skipped += 1;
                tally.skipped_category += 1;
                continue;
            }
        }
        if !filter.may_match_segment(ssl, seg) {
            tally.skipped += 1;
            continue;
        }
        let columns = [
            (&ssl.resp_p, &mut resp_p),
            (&ssl.established, &mut established),
            (&ssl.sni, &mut sni),
            (&ssl.orig_h, &mut orig_h),
            (&ssl.chain_idx, &mut chain_idx),
        ];
        for (col, buf) in columns {
            col.decode_into(seg, buf)?;
            tally.bytes += col.meta(seg).bytes;
        }
        let (row_start, rows) = ssl.ts.row_range(seg);
        tally.read += 1;
        tally.rows += rows;
        let chain_base = ssl.chain_start(seg);
        for i in 0..rows as usize {
            let sni_code = sni[i] as u32;
            if !filter.admits(resp_p[i] as u16, sni_code) {
                continue;
            }
            let row = row_start + i as u64;
            let from = if i == 0 { chain_base } else { chain_idx[i - 1] };
            let chain_bytes = var_codes(ssl.chain_dat, from, chain_idx[i], "ssl.chain", row)?;
            codes.clear();
            let mut all_resolvable = true;
            for entry in chain_bytes.chunks_exact(4) {
                let code = u32::from_le_bytes(entry.try_into().expect("4-byte slice"));
                match cats.get(code as usize) {
                    Some(cat) => all_resolvable &= *cat != CertCat::Unresolved,
                    None => {
                        return Err(ColError::Corrupt(format!(
                            "ssl.chain row {row}: fingerprint index {code} out of range"
                        )))
                    }
                }
                codes.push(code);
            }
            // Same invisibility rule as the streaming reference: a
            // category-rejected row moves no counter, not even `records`
            // (an empty chain folds to `none` here, matching the
            // oracle's view of a chainless record).
            if let Some(set) = filter.categories {
                let cat = chain_category(codes.iter().map(|&c| cats[c as usize]));
                if !set.contains(cat) {
                    continue;
                }
            }
            counts.records += 1;
            if codes.is_empty() {
                counts.no_chain += 1;
                continue;
            }
            if !all_resolvable {
                counts.unresolvable += 1;
                continue;
            }
            if !accums.contains_key(codes.as_slice()) {
                accums.insert(codes.clone(), CodeAccum::default());
            }
            let entry = accums
                .get_mut(codes.as_slice())
                .expect("present or just inserted");
            entry.usage.add(
                established[i] != 0,
                sni_code != NONE_IDX,
                resp_p[i] as u16,
                Ipv4Addr::from(orig_h[i] as u32),
                1.0,
            );
            if sni_code != NONE_IDX {
                entry.sni_codes.insert(sni_code);
            }
        }
    }
    Ok((accums, counts, tally))
}

/// Ingest a **v2** ssl table: contiguous *segment* ranges per worker,
/// partials merged in worker-index order, code keys resolved once per
/// distinct chain, then one classification pass.
fn ingest_segments(
    pipe: &Pipeline<'_>,
    ssl: &SslSegments<'_>,
    filter: &ColFilter,
    digests: Option<&[CategoryDigest]>,
    cert_index: &CertIndex,
    threads: usize,
) -> ColResult<(Vec<Prepared>, IngestCounts, SegTally)> {
    // The category class of every fingerprint code, precomputed once
    // (`Unresolved` doubles as the resolvability bit): the per-row tests
    // become vector loads instead of hash probes and classifications.
    let mut cats = vec![CertCat::Unresolved; ssl.fp_count()];
    for (code, slot) in cats.iter_mut().enumerate() {
        if let Some(cert) = cert_index.get(&ssl.fp(code as u32)?) {
            *slot = CertCat::of(cert, pipe.trust);
        }
    }
    let segs = ssl.segment_count();
    let (code_accums, counts, tally) = if threads <= 1 || segs < 2 {
        fold_segments(ssl, 0, segs, filter, digests, &cats)?
    } else {
        let per = segs.div_ceil(threads);
        let cats = &cats;
        let parts: Vec<ColResult<_>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let lo = (w * per).min(segs);
                    let hi = ((w + 1) * per).min(segs);
                    scope.spawn(move || fold_segments(ssl, lo, hi, filter, digests, cats))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("segmented ingest worker panicked"))
                .collect()
        });
        let mut merged: HashMap<Vec<u32>, CodeAccum> = HashMap::new();
        let mut counts = IngestCounts::default();
        let mut tally = SegTally::default();
        for part in parts {
            let (accums, c, t) = part?;
            counts.records += c.records;
            counts.no_chain += c.no_chain;
            counts.unresolvable += c.unresolvable;
            tally = tally.plus(t);
            // srclint: commutative -- per-chain merge into a keyed map; CodeAccum::merge is commutative at unit weight, so worker-map iteration order is invisible
            for (key, accum) in accums {
                match merged.get_mut(&key) {
                    Some(existing) => existing.merge(accum),
                    None => {
                        merged.insert(key, accum);
                    }
                }
            }
        }
        (merged, counts, tally)
    };
    // Rekey code sequences to fingerprint chains and SNI codes to
    // strings — once per distinct chain, the only string work in the
    // whole v2 ingest.
    let mut accums: HashMap<ChainKey, ChainAccum> = HashMap::new();
    // srclint: commutative -- map-to-map rekeying; the code->fingerprint mapping is injective, so each source entry lands in a distinct key and iteration order is invisible
    for (code_key, code_accum) in code_accums {
        let mut fps = Vec::with_capacity(code_key.len());
        for code in &code_key {
            fps.push(ssl.fp(*code)?);
        }
        let mut snis = BTreeSet::new();
        for code in &code_accum.sni_codes {
            snis.insert(ssl.dict.get(*code)?.to_string());
        }
        accums.insert(
            ChainKey(fps),
            ChainAccum {
                usage: code_accum.usage,
                snis,
            },
        );
    }
    pipe.obs.finish_progress(counts.records);
    Ok((categorize::prepare(pipe, accums, cert_index), counts, tally))
}
